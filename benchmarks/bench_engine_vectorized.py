"""Extension — vectorized ensemble engine vs the scalar SSA loop.

The Figure 6 workload is the paper's heaviest stochastic experiment:
``N = 10^4`` SIR chains under the hysteresis environment ``theta_1``,
run as large ensembles.  This bench times that exact ensemble on both
execution engines of :func:`~repro.simulation.batch_simulate`:

- ``vectorized`` — :func:`repro.engine.simulate_ensemble`, the full
  ensemble stepped as ``(n_runs, d)`` arrays;
- ``scalar`` — the legacy per-replication loop over the scalar
  Gillespie kernel, measured on a smaller slice of the ensemble and
  reported *per trajectory* (running all ``n_runs`` scalar replications
  would dominate the whole benchmark suite's wall-clock; per-trajectory
  cost is constant across the slice, as the recorded slice timing
  shows).

Expected: the vectorized engine amortises the per-event Python overhead
across rows and clears the >=5x acceptance threshold with a wide margin
(typically >20x at this ensemble size); both engines agree on the
ensemble mean within CLT tolerance.
"""

import numpy as np

from _common import run_once, save_experiment, timed
from repro.engine import simulate_ensemble
from repro.models import make_sir_model
from repro.reporting import ExperimentResult
from repro.simulation import HysteresisPolicy, batch_simulate

POPULATION_SIZE = 10_000
N_RUNS = 100
N_RUNS_SCALAR = 6
T_FINAL = 2.0
N_SAMPLES = 80
X0 = [0.7, 0.3]


def _theta1_factory():
    return HysteresisPolicy(
        [1.0], [10.0], coordinate=0, low_threshold=0.5, high_threshold=0.85,
    )


def compute_engine_comparison() -> ExperimentResult:
    model = make_sir_model()
    population = model.instantiate(POPULATION_SIZE, X0)
    result = ExperimentResult(
        "engine_vectorized",
        "Vectorized ensemble SSA vs scalar loop "
        f"(Fig. 6 SIR ensemble, N = {POPULATION_SIZE}, theta_1)",
        parameters={
            "population_size": POPULATION_SIZE, "n_runs": N_RUNS,
            "n_runs_scalar_slice": N_RUNS_SCALAR, "t_final": T_FINAL,
            "policy": "theta1 hysteresis",
        },
    )

    vec, vec_seconds = timed(
        simulate_ensemble, population, _theta1_factory, T_FINAL,
        n_runs=N_RUNS, seed=2016, n_samples=N_SAMPLES,
    )
    sca, sca_seconds = timed(
        batch_simulate, population, _theta1_factory, T_FINAL,
        n_runs=N_RUNS_SCALAR, seed=2016, n_samples=N_SAMPLES,
        engine="scalar",
    )

    vec_per_run = vec_seconds / N_RUNS
    sca_per_run = sca_seconds / N_RUNS_SCALAR
    speedup = sca_per_run / vec_per_run
    events_per_second = vec.n_events / vec_seconds

    result.add_finding("vectorized_seconds_total", vec_seconds)
    result.add_finding("vectorized_seconds_per_run", vec_per_run)
    result.add_finding("scalar_seconds_per_run", sca_per_run)
    result.add_finding("speedup_per_trajectory", speedup)
    result.add_finding("vectorized_events_per_second", events_per_second)
    result.add_finding("vectorized_n_events", float(vec.n_events))

    # Cross-engine sanity: ensemble means agree at CLT scale (the full
    # statistical comparison lives in tests/test_engine_equivalence.py).
    gap = np.max(np.abs(vec.mean() - sca.mean()))
    tolerance = (
        6.0 * float(np.max(vec.std())) / np.sqrt(N_RUNS_SCALAR)
        + 3.0 / POPULATION_SIZE
    )
    result.add_finding("cross_engine_mean_gap", gap)
    result.add_finding("cross_engine_tolerance", tolerance)
    result.add_note(
        "speedup is per-trajectory wall-clock: scalar cost measured on a "
        f"{N_RUNS_SCALAR}-run slice, vectorized on the full {N_RUNS}-run "
        "ensemble"
    )
    return result


def bench_engine_vectorized(benchmark):
    result = run_once(benchmark, compute_engine_comparison)
    save_experiment(result)
    # Acceptance: >=5x per-trajectory speedup on the Fig. 6 ensemble.
    assert result.findings["speedup_per_trajectory"] >= 5.0
    assert (result.findings["cross_engine_mean_gap"]
            <= result.findings["cross_engine_tolerance"])


if __name__ == "__main__":
    save_experiment(compute_engine_comparison())
