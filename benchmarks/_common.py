"""Shared helpers for the benchmark harness.

Every benchmark regenerates one figure (or numeric result) of the paper
as an :class:`~repro.reporting.ExperimentResult`, renders it to stdout
and archives both the text and the JSON payload under
``benchmarks/results/``.  EXPERIMENTS.md is written from those archives.
"""

from __future__ import annotations

import pathlib
import time

from repro.reporting import ExperimentResult

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def timed(fn, *args, **kwargs):
    """Run ``fn(*args, **kwargs)`` and return ``(result, seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def save_experiment(result: ExperimentResult, time_points=None) -> str:
    """Render, print and archive an experiment result; returns the text."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = result.render(time_points=time_points)
    (RESULTS_DIR / f"{result.experiment_id}.txt").write_text(text + "\n")
    (RESULTS_DIR / f"{result.experiment_id}.json").write_text(result.to_json())
    print("\n" + text)
    return text


def run_once(benchmark, fn):
    """Run a heavy experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
