"""Shared helpers for the benchmark harness.

Every benchmark regenerates one figure (or numeric result) of the paper
as an :class:`~repro.reporting.ExperimentResult`, renders it to stdout
and archives both the text and the JSON payload under
``benchmarks/results/``.  EXPERIMENTS.md is written from those archives.

Wall-clock timings of every harnessed experiment are additionally
accumulated in ``benchmarks/results/BENCH_scenarios.json`` (one entry
per experiment id, overwritten in place), so the performance trajectory
of the scenario pipeline is tracked across commits alongside the
figures themselves.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import time

from repro import telemetry
from repro.reporting import ExperimentResult

RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"

#: Accumulated wall-clock timings of the harnessed experiments.
TIMINGS_PATH = RESULTS_DIR / "BENCH_scenarios.json"


def timed(fn, *args, **kwargs):
    """Run ``fn(*args, **kwargs)`` and return ``(result, seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def best_of(fn, repeats: int):
    """Minimum wall time over ``repeats`` runs, plus the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def record_timing(experiment_id: str, seconds: float, **extra) -> None:
    """Merge one experiment's wall-clock time into the timing summary.

    The summary is a plain ``{experiment_id: {seconds, recorded_unix,
    ...extra}}`` JSON object; existing entries for other experiments are
    preserved, the entry for this one is replaced.

    When telemetry is enabled at record time, the current counter
    snapshot is embedded as the entry's ``"metrics"`` key, so
    BENCH_*.json entries explain *why* a number moved (steps,
    rejections, cache tiers) instead of being wall-clock-only.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    if telemetry.enabled() and "metrics" not in extra:
        counters = telemetry.snapshot()["counters"]
        if counters:
            extra["metrics"] = counters
    try:
        summary = json.loads(TIMINGS_PATH.read_text())
        if not isinstance(summary, dict):
            summary = {}
    except (OSError, ValueError):
        summary = {}
    summary[str(experiment_id)] = {
        "seconds": round(float(seconds), 6),
        "recorded_unix": int(time.time()),
        **extra,
    }
    # Atomic replace: a crashed or concurrent writer can lose its own
    # merge, but can never leave truncated JSON that wipes the history.
    fd, tmp_name = tempfile.mkstemp(dir=RESULTS_DIR, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(json.dumps(summary, indent=1, sort_keys=True) + "\n")
        os.replace(tmp_name, TIMINGS_PATH)
    finally:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)


def save_experiment(result: ExperimentResult, time_points=None) -> str:
    """Render, print and archive an experiment result; returns the text."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = result.render(time_points=time_points)
    (RESULTS_DIR / f"{result.experiment_id}.txt").write_text(text + "\n")
    (RESULTS_DIR / f"{result.experiment_id}.json").write_text(result.to_json())
    print("\n" + text)
    return text


def run_once(benchmark, fn):
    """Run a heavy experiment exactly once under pytest-benchmark timing.

    When the experiment returns an :class:`ExperimentResult`, its
    wall-clock time lands in the ``BENCH_scenarios.json`` summary keyed
    by its experiment id — every harnessed figure gets tracked without
    per-benchmark boilerplate.  The run executes with telemetry enabled
    (metrics cleared first), so the archived entry carries the
    experiment's counter snapshot alongside its seconds; the previous
    enable state is restored afterwards.
    """
    was_enabled = telemetry.enabled()
    telemetry.enable()
    telemetry.reset_metrics()
    try:
        start = time.perf_counter()
        result = benchmark.pedantic(fn, rounds=1, iterations=1)
        seconds = time.perf_counter() - start
        if isinstance(result, ExperimentResult):
            record_timing(result.experiment_id, seconds)
    finally:
        if not was_enabled:
            telemetry.disable()
    return result
