"""Figure 3 — steady-state regime: imprecise Birkhoff centre vs uncertain curve.

Regenerates the steady-state comparison of the SIR model with
``theta_max = 10 theta_min``: the convex Birkhoff-centre region of the
imprecise model (Section V-C construction) against the curve of fixed
points of the uncertain models.

Paper-expected shape: the uncertain steady states are strictly included
in the imprecise region, and the region contains points with smaller
``X_S`` and larger ``X_I`` than any uncertain stationary point.
"""

import numpy as np

from _common import run_once, save_experiment
from repro.models import make_sir_model
from repro.reporting import ExperimentResult
from repro.steadystate import birkhoff_centre_2d, uncertain_fixed_points


def compute_fig3() -> ExperimentResult:
    model = make_sir_model()
    result = ExperimentResult(
        "fig3",
        "SIR steady state: Birkhoff centre (imprecise) vs fixed points "
        "(uncertain)",
        parameters={"theta": "[1, 10]"},
    )

    region = birkhoff_centre_2d(model, x0_guess=[0.7, 0.05])
    curve = uncertain_fixed_points(model, resolution=41)

    vertices = region.polygon.vertices
    # Close the polygon for the archived series.
    closed = np.vstack([vertices, vertices[:1]])
    result.add_series("region_boundary_S", np.arange(closed.shape[0], dtype=float),
                      closed[:, 0])
    result.add_series("region_boundary_I", np.arange(closed.shape[0], dtype=float),
                      closed[:, 1])
    thetas = model.theta_set.grid(41).ravel()
    result.add_series("uncertain_fp_S", thetas, curve[:, 0])
    result.add_series("uncertain_fp_I", thetas, curve[:, 1])

    inside = sum(region.contains(fp, tol=1e-3) for fp in curve)
    result.add_finding("region_area", region.polygon.area)
    result.add_finding("region_converged", float(region.converged))
    result.add_finding("uncertain_points_inside", float(inside))
    result.add_finding("uncertain_points_total", float(curve.shape[0]))
    result.add_finding("region_S_min", vertices[:, 0].min())
    result.add_finding("region_S_max", vertices[:, 0].max())
    result.add_finding("region_I_max", vertices[:, 1].max())
    result.add_finding("uncertain_S_min", curve[:, 0].min())
    result.add_finding("uncertain_I_max", curve[:, 1].max())
    result.add_note(
        "paper: region contains points with smaller X_S and larger X_I than "
        "any uncertain stationary point; measured "
        f"S_min {vertices[:, 0].min():.3f} < {curve[:, 0].min():.3f} and "
        f"I_max {vertices[:, 1].max():.3f} > {curve[:, 1].max():.3f}"
    )
    return result


def bench_fig3_sir_steadystate(benchmark):
    result = run_once(benchmark, compute_fig3)
    save_experiment(result)
    assert bool(result.findings["region_converged"])
    assert (
        result.findings["uncertain_points_inside"]
        == result.findings["uncertain_points_total"]
    )
    assert result.findings["region_S_min"] < result.findings["uncertain_S_min"]
    assert result.findings["region_I_max"] > result.findings["uncertain_I_max"]
