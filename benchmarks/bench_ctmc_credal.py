"""Credal-operator hot path — scalar vs batched interval-DTMC kernels.

The imprecise-CTMC layer reduces to two primitives: the row-knapsack
upper-expectation operator of Škulj's interval DTMCs, and the
constant-theta sweep of the master equation.  This bench measures what
batching each of them buys:

- **operator_100x50**: 50 steps of value iteration on a random
  100-state interval chain.  The legacy path runs one Python knapsack
  loop per state per step; the batched kernel solves all row knapsacks
  of a step in one argsort + cumulative-subtraction pass.
- **uniformized_bike**: both-direction expectation bounds on the
  uniformized bike-station chain (N = 12) over its natural ~1-horizon
  step count — the workload of the interval-DTMC ablation.
- **sweep_block_ode**: ``uncertain_reward_envelope`` on the bike chain
  — one block ODE over the whole theta stack vs one ``solve_ivp`` call
  per theta.
- **sweep_rk4_batch**: the mean-field ``uncertain_envelope`` RK4 path
  on SIR — one ``drift_batch`` call per RK4 stage vs one Python
  callback per theta per stage.

The DTMC kernels and the RK4 sweep must produce bit-identical results
in both modes — the bench asserts it — so the timing difference is pure
batching overhead; the block ODE shares its adaptive step sequence
across lanes and is compared at integration accuracy.  Results land in
``benchmarks/results/BENCH_ctmc.json``.

Run directly (``--smoke`` for the CI-sized variant)::

    PYTHONPATH=src:benchmarks python benchmarks/bench_ctmc_credal.py [--smoke]
"""

import argparse
import json
import time

import numpy as np

from _common import RESULTS_DIR, best_of
from repro.bounds import uncertain_envelope
from repro.ctmc import ImpreciseCTMC, IntervalDTMC, uncertain_reward_envelope
from repro.ctmc.interval_dtmc import random_interval_dtmc
from repro.models import make_bike_station_model, make_sir_model

BENCH_PATH = RESULTS_DIR / "BENCH_ctmc.json"


def bench_operator_100x50(smoke: bool) -> dict:
    n_states = 40 if smoke else 100
    steps = 10 if smoke else 50
    repeats = 1 if smoke else 3
    rng = np.random.default_rng(2016)
    dtmc = random_interval_dtmc(n_states, rng, width=0.05)
    reward = rng.normal(size=n_states)

    batched_s, batched = best_of(
        lambda: dtmc.expectation_bounds(reward, steps), repeats
    )
    scalar_s, scalar = best_of(
        lambda: dtmc.expectation_bounds(reward, steps, batch=False), repeats
    )
    assert np.array_equal(batched[0], scalar[0]), "lower bounds diverged"
    assert np.array_equal(batched[1], scalar[1]), "upper bounds diverged"
    return {
        "n_states": n_states,
        "steps": steps,
        "scalar_seconds": round(scalar_s, 6),
        "batched_seconds": round(batched_s, 6),
        "speedup": round(scalar_s / batched_s, 3),
        "identical_bounds": True,
    }


def bench_uniformized_bike(smoke: bool) -> dict:
    n_racks = 8 if smoke else 12
    repeats = 1 if smoke else 3
    model = make_bike_station_model()
    chain = ImpreciseCTMC(model.instantiate(n_racks, [0.5]))
    dtmc, rate = IntervalDTMC.from_imprecise_ctmc(chain)
    steps = int(np.ceil(1.0 * rate))
    reward = chain.densities()[:, 0]

    batched_s, batched = best_of(
        lambda: dtmc.expectation_bounds(reward, steps), repeats
    )
    scalar_s, scalar = best_of(
        lambda: dtmc.expectation_bounds(reward, steps, batch=False), repeats
    )
    assert np.array_equal(batched[0], scalar[0])
    assert np.array_equal(batched[1], scalar[1])
    return {
        "n_states": chain.n_states,
        "steps": steps,
        "scalar_seconds": round(scalar_s, 6),
        "batched_seconds": round(batched_s, 6),
        "speedup": round(scalar_s / batched_s, 3),
        "identical_bounds": True,
    }


def bench_sweep_block_ode(smoke: bool) -> dict:
    n_racks = 6 if smoke else 10
    resolution = 5 if smoke else 9
    repeats = 1 if smoke else 3
    model = make_bike_station_model()
    chain = ImpreciseCTMC(model.instantiate(n_racks, [0.5]))
    reward = chain.densities()[:, 0]
    t_eval = np.linspace(0.0, 2.0, 9)

    def run(batch):
        return uncertain_reward_envelope(
            chain, reward, t_eval, resolution=resolution, batch=batch
        )

    batched_s, batched = best_of(lambda: run(True), repeats)
    scalar_s, scalar = best_of(lambda: run(False), repeats)
    deviation = max(
        float(np.max(np.abs(batched[1] - scalar[1]))),
        float(np.max(np.abs(batched[2] - scalar[2]))),
    )
    assert deviation < 1e-8, f"block ODE deviated by {deviation:.2e}"
    theta_set = chain.model.theta_set
    n_thetas = np.unique(
        np.vstack([theta_set.grid(resolution), theta_set.corners()]), axis=0
    ).shape[0]
    return {
        "n_states": chain.n_states,
        "n_thetas": int(n_thetas),
        "scalar_seconds": round(scalar_s, 6),
        "batched_seconds": round(batched_s, 6),
        "speedup": round(scalar_s / batched_s, 3),
        "max_deviation": deviation,
        "note": "adaptive steps are shared across lanes, so agreement "
                "is at solver accuracy rather than bit-for-bit",
    }


def bench_sweep_rk4_batch(smoke: bool) -> dict:
    resolution = 9 if smoke else 21
    rk4_steps = 100 if smoke else 400
    repeats = 1 if smoke else 3
    model = make_sir_model()
    t_eval = np.linspace(0.0, 3.0, 7)

    def run(batch):
        return uncertain_envelope(
            model, [0.7, 0.3], t_eval, resolution=resolution,
            integrator="rk4", rk4_steps=rk4_steps, batch=batch,
        )

    batched_s, batched = best_of(lambda: run(True), repeats)
    scalar_s, scalar = best_of(lambda: run(False), repeats)
    for name in batched.observable_names:
        assert np.array_equal(batched.lower[name], scalar.lower[name])
        assert np.array_equal(batched.upper[name], scalar.upper[name])
    return {
        "n_thetas": int(batched.thetas.shape[0]),
        "rk4_steps": rk4_steps,
        "scalar_seconds": round(scalar_s, 6),
        "batched_seconds": round(batched_s, 6),
        "speedup": round(scalar_s / batched_s, 3),
        "identical_bounds": True,
    }


WORKLOADS = {
    "operator_100x50": bench_operator_100x50,
    "uniformized_bike": bench_uniformized_bike,
    "sweep_block_ode": bench_sweep_block_ode,
    "sweep_rk4_batch": bench_sweep_rk4_batch,
}


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (smaller chains, one repeat); "
                             "timings are not archived")
    args = parser.parse_args(argv)

    summary = {"smoke": bool(args.smoke), "recorded_unix": int(time.time())}
    for name, fn in WORKLOADS.items():
        entry = summary[name] = fn(args.smoke)
        print(f"{name}: scalar {entry['scalar_seconds']:.3f}s  "
              f"batched {entry['batched_seconds']:.3f}s  "
              f"speedup {entry['speedup']:.2f}x")
    if not args.smoke:
        if summary["operator_100x50"]["speedup"] < 5.0:
            raise SystemExit(
                "operator_100x50 speedup fell below the 5x target: "
                f"{summary['operator_100x50']['speedup']:.2f}x"
            )
        RESULTS_DIR.mkdir(exist_ok=True)
        BENCH_PATH.write_text(json.dumps(summary, indent=1, sort_keys=True)
                              + "\n")
        print(f"wrote {BENCH_PATH}")
    return summary


if __name__ == "__main__":
    main()
