"""Figure 1 — SIR transient bounds: uncertain vs imprecise.

Regenerates the four curves of the paper's Figure 1: the minimum and
maximum proportion of infected nodes over ``t in [0, 4]`` for

- the *uncertain* model (constant unknown ``theta``): parameter sweep;
- the *imprecise* model (``theta(t)`` arbitrary in ``[1, 10]``):
  Pontryagin forward–backward sweeps per horizon.

Paper-expected shape: the imprecise envelope strictly contains the
uncertain one, with the gap growing in ``t`` (the imprecise maximum is
"much larger, especially for large values of t").
"""

import numpy as np

from _common import run_once, save_experiment
from repro.bounds import pontryagin_transient_bounds, uncertain_envelope
from repro.models import SIR_PAPER_PARAMS, make_sir_model
from repro.reporting import ExperimentResult

HORIZONS = np.linspace(0.25, 4.0, 16)


def compute_fig1() -> ExperimentResult:
    model = make_sir_model()
    x0 = np.asarray(SIR_PAPER_PARAMS["x0"])
    result = ExperimentResult(
        "fig1",
        "SIR: bounds on the proportion of infected (uncertain vs imprecise)",
        parameters={
            "a": 0.1, "b": 5.0, "c": 1.0,
            "theta": "[1, 10]", "x0": tuple(x0), "T": 4.0,
        },
    )

    env = uncertain_envelope(model, x0, np.concatenate([[0.0], HORIZONS]),
                             resolution=41, observables=["I"])
    result.add_series("xI_max_uncertain", env.times, env.upper["I"])
    result.add_series("xI_min_uncertain", env.times, env.lower["I"])

    imprecise = pontryagin_transient_bounds(
        model, x0, HORIZONS, observables=["I"], steps_per_unit=100,
    )
    t_imp = np.concatenate([[0.0], HORIZONS])
    result.add_series(
        "xI_max_imprecise", t_imp,
        np.concatenate([[x0[1]], imprecise.upper["I"]]),
    )
    result.add_series(
        "xI_min_imprecise", t_imp,
        np.concatenate([[x0[1]], imprecise.lower["I"]]),
    )

    gap_at_4 = imprecise.upper["I"][-1] - env.upper["I"][-1]
    gap_at_1 = (
        result.series["xI_max_imprecise"].at(1.0)
        - result.series["xI_max_uncertain"].at(1.0)
    )
    result.add_finding("imprecise_max_at_4", imprecise.upper["I"][-1])
    result.add_finding("uncertain_max_at_4", env.upper["I"][-1])
    result.add_finding("upper_gap_at_1", gap_at_1)
    result.add_finding("upper_gap_at_4", gap_at_4)
    result.add_note(
        "paper shape: imprecise envelope strictly contains the uncertain "
        "one and the gap grows with t "
        f"(measured gap: {gap_at_1:.4f} at t=1 -> {gap_at_4:.4f} at t=4)"
    )
    return result


def bench_fig1_sir_transient(benchmark):
    result = run_once(benchmark, compute_fig1)
    save_experiment(result)
    # Shape assertions (the reproduction contract).
    assert result.findings["upper_gap_at_4"] > 0.02
    assert result.findings["upper_gap_at_4"] > result.findings["upper_gap_at_1"]
