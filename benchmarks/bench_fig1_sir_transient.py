"""Figure 1 — SIR transient bounds: uncertain vs imprecise.

Regenerates the four curves of the paper's Figure 1: the minimum and
maximum proportion of infected nodes over ``t in [0, 4]`` for

- the *uncertain* model (constant unknown ``theta``): parameter sweep;
- the *imprecise* model (``theta(t)`` arbitrary in ``[1, 10]``):
  Pontryagin forward–backward sweeps per horizon.

The computation goes through the declarative scenario subsystem: the
``sir-transient`` catalog entry is derived (``with_overrides``) to the
figure's dense horizon ladder, run uncached for honest timing, and the
figure-specific gap findings are read off the returned series.

Paper-expected shape: the imprecise envelope strictly contains the
uncertain one, with the gap growing in ``t`` (the imprecise maximum is
"much larger, especially for large values of t").
"""

import numpy as np

from _common import run_once, save_experiment
from repro.reporting import ExperimentResult
from repro.scenarios import Question, get_scenario, run_scenario

HORIZONS = np.linspace(0.25, 4.0, 16)

#: The Fig. 1 variant of the catalogued sir-transient scenario: same
#: model and initial state, dense ladder and a 41-point sweep.
FIG1_SPEC = get_scenario("sir-transient").with_overrides(
    name="fig1",
    title="SIR: bounds on the proportion of infected "
          "(uncertain vs imprecise)",
    horizon=4.0,
    questions=(
        Question("envelope",
                 options={"times": [0.0] + list(HORIZONS),
                          "resolution": 41}),
        Question("pontryagin",
                 options={"horizons": list(HORIZONS),
                          "steps_per_unit": 100}),
    ),
)


def compute_fig1() -> ExperimentResult:
    result = run_scenario(FIG1_SPEC, use_cache=False).result
    x0 = FIG1_SPEC.x0

    # Prepend the shared initial state to the imprecise curves so all
    # four series start at t = 0, as in the figure.
    for side in ("lower", "upper"):
        series = result.series.pop(f"I_imprecise_{side}")
        result.add_series(
            f"I_imprecise_{side}",
            np.concatenate([[0.0], series.times]),
            np.concatenate([[x0[1]], series.values]),
        )

    upper_imp = result.series["I_imprecise_upper"]
    upper_unc = result.series["I_uncertain_upper"]
    gap_at_1 = upper_imp.at(1.0) - upper_unc.at(1.0)
    gap_at_4 = upper_imp.at(4.0) - upper_unc.at(4.0)
    result.add_finding("imprecise_max_at_4", upper_imp.at(4.0))
    result.add_finding("uncertain_max_at_4", upper_unc.at(4.0))
    result.add_finding("upper_gap_at_1", gap_at_1)
    result.add_finding("upper_gap_at_4", gap_at_4)
    result.add_note(
        "paper shape: imprecise envelope strictly contains the uncertain "
        "one and the gap grows with t "
        f"(measured gap: {gap_at_1:.4f} at t=1 -> {gap_at_4:.4f} at t=4)"
    )
    return result


def bench_fig1_sir_transient(benchmark):
    result = run_once(benchmark, compute_fig1)
    save_experiment(result)
    # Shape assertions (the reproduction contract).
    assert result.findings["upper_gap_at_4"] > 0.02
    assert result.findings["upper_gap_at_4"] > result.findings["upper_gap_at_1"]
