"""Figure 5 — steady state: Birkhoff centre vs uncertain curve vs hull box.

Regenerates the steady-state comparison for
``theta_max in {2, 3, 4, 5}`` (``theta_min = 1``): the imprecise
Birkhoff region, the uncertain fixed-point curve and the stationary
rectangle of the differential hull — each ``theta_max`` a derived
variant of the catalogued ``sir-steadystate`` scenario.

Paper-expected shape: the hull rectangle is an accurate enclosure for
``theta_max = 2`` and ``3``, clearly loose at ``5``, and trivial
(divergent) for ``theta_max >= 6`` (checked as an extra finding).
"""

import numpy as np

from _common import run_once, save_experiment
from repro.reporting import ExperimentResult
from repro.scenarios import Question, get_scenario, run_scenario

THETA_MAX_VALUES = (2.0, 3.0, 4.0, 5.0)


def fig5_variant(theta_max: float, horizon: float = 200.0,
                 birkhoff: bool = True):
    return get_scenario("sir-steadystate").with_overrides(
        name=f"fig5-tm{theta_max:g}",
        model_kwargs={"theta_max": theta_max},
        questions=(
            Question("steadystate",
                     options={"x0_guess": [0.7, 0.05],
                              "fp_resolution": 21,
                              "horizon": horizon,
                              "birkhoff": birkhoff}),
        ),
    )


def compute_fig5() -> ExperimentResult:
    result = ExperimentResult(
        "fig5",
        "SIR steady state: hull rectangle vs Birkhoff region vs uncertain "
        "fixed points, theta_max in {2, 3, 4, 5}",
        parameters={"theta_min": 1.0},
    )
    for theta_max in THETA_MAX_VALUES:
        tag = f"tm{theta_max:g}"
        f = run_scenario(fig5_variant(theta_max), use_cache=False).result.findings

        region_area = f["birkhoff_area"]
        widths = np.array([
            max(f[f"steady_hull_{name}_upper"] - f[f"steady_hull_{name}_lower"],
                0.0)
            for name in ("S", "I")
        ])
        rect_area = float(np.prod(widths))
        result.add_finding(f"{tag}_region_area", region_area)
        result.add_finding(f"{tag}_hull_rect_area", rect_area)
        result.add_finding(f"{tag}_hull_converged", f["steady_hull_converged"])
        result.add_finding(f"{tag}_area_ratio",
                           rect_area / max(region_area, 1e-12))
        result.add_finding(f"{tag}_uncertain_inside_region",
                           f["uncertain_fp_inside_region"])
        result.add_finding(f"{tag}_region_inside_rect",
                           f["birkhoff_inside_steady_rect"])
    # The divergence case the paper mentions ("trivial for theta_max >= 6").
    divergent = run_scenario(
        fig5_variant(6.0, horizon=60.0, birkhoff=False), use_cache=False
    ).result.findings
    result.add_finding("tm6_hull_converged", divergent["steady_hull_converged"])
    result.add_note(
        "paper: hull rectangle accurate for theta_max=2,3; very loose at 5; "
        "trivial for theta_max>=6"
    )
    return result


def bench_fig5_hull_steadystate(benchmark):
    result = run_once(benchmark, compute_fig5)
    save_experiment(result)
    # Soundness: hull rectangle always contains the Birkhoff region.
    for tag in ("tm2", "tm3", "tm4", "tm5"):
        assert bool(result.findings[f"{tag}_region_inside_rect"])
        assert bool(result.findings[f"{tag}_hull_converged"])
    # Looseness grows non-linearly in theta_max.
    assert (result.findings["tm5_area_ratio"]
            > 3.0 * result.findings["tm2_area_ratio"])
    # Divergence at theta_max = 6.
    assert result.findings["tm6_hull_converged"] == 0.0
