"""Figure 5 — steady state: Birkhoff centre vs uncertain curve vs hull box.

Regenerates the steady-state comparison for
``theta_max in {2, 3, 4, 5}`` (``theta_min = 1``): the imprecise
Birkhoff region, the uncertain fixed-point curve and the stationary
rectangle of the differential hull.

Paper-expected shape: the hull rectangle is an accurate enclosure for
``theta_max = 2`` and ``3``, clearly loose at ``5``, and trivial
(divergent) for ``theta_max >= 6`` (checked as an extra finding).
"""

import numpy as np

from _common import run_once, save_experiment
from repro.models import make_sir_model
from repro.reporting import ExperimentResult
from repro.steadystate import (
    birkhoff_centre_2d,
    hull_steady_rectangle,
    uncertain_fixed_points,
)

THETA_MAX_VALUES = (2.0, 3.0, 4.0, 5.0)


def compute_fig5() -> ExperimentResult:
    result = ExperimentResult(
        "fig5",
        "SIR steady state: hull rectangle vs Birkhoff region vs uncertain "
        "fixed points, theta_max in {2, 3, 4, 5}",
        parameters={"theta_min": 1.0},
    )
    for theta_max in THETA_MAX_VALUES:
        model = make_sir_model(theta_max=theta_max)
        tag = f"tm{theta_max:g}"

        region = birkhoff_centre_2d(model, x0_guess=[0.7, 0.05])
        curve = uncertain_fixed_points(model, resolution=21)
        rect = hull_steady_rectangle(model, [0.7, 0.3])

        vertices = region.polygon.vertices
        result.add_finding(f"{tag}_region_area", region.polygon.area)
        rect_area = float(np.prod(np.maximum(rect.widths(), 0.0)))
        result.add_finding(f"{tag}_hull_rect_area", rect_area)
        result.add_finding(f"{tag}_hull_converged", float(rect.converged))
        result.add_finding(
            f"{tag}_area_ratio", rect_area / max(region.polygon.area, 1e-12)
        )
        result.add_finding(
            f"{tag}_uncertain_inside_region",
            float(sum(region.contains(fp, tol=1e-3) for fp in curve)),
        )
        result.add_finding(
            f"{tag}_region_inside_rect",
            float(all(rect.contains(v, tol=1e-2) for v in vertices)),
        )
    # The divergence case the paper mentions ("trivial for theta_max >= 6").
    divergent = hull_steady_rectangle(make_sir_model(theta_max=6.0),
                                      [0.7, 0.3], horizon=60.0)
    result.add_finding("tm6_hull_converged", float(divergent.converged))
    result.add_note(
        "paper: hull rectangle accurate for theta_max=2,3; very loose at 5; "
        "trivial for theta_max>=6"
    )
    return result


def bench_fig5_hull_steadystate(benchmark):
    result = run_once(benchmark, compute_fig5)
    save_experiment(result)
    # Soundness: hull rectangle always contains the Birkhoff region.
    for tag in ("tm2", "tm3", "tm4", "tm5"):
        assert result.findings[f"{tag}_region_inside_rect"] == 1.0
        assert result.findings[f"{tag}_hull_converged"] == 1.0
    # Looseness grows non-linearly in theta_max.
    assert (result.findings["tm5_area_ratio"]
            > 3.0 * result.findings["tm2_area_ratio"])
    # Divergence at theta_max = 6.
    assert result.findings["tm6_hull_converged"] == 0.0
