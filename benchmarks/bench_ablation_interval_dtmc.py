"""Ablation — interval-DTMC relaxation vs exact imprecise-CTMC bounds.

The paper builds on Škulj's interval DTMCs [10] and notes its own
contribution is the population/mean-field extension.  This ablation
quantifies what the entry-wise interval relaxation costs on a finite
chain: uniformize the imprecise bike-station CTMC into an interval DTMC
and compare its upper expectation of the "station empty" indicator with
the exact Pontryagin bound on the master equation.

Expected: the interval-DTMC bound is sound (above the exact bound) but
looser.  The comparison is run both ways: the raw ``k``-step power
(whose gap is dominated by the ``O(1/Lambda)`` uniformization
time-discretization bias) and the Poisson-mixed
:meth:`~repro.ctmc.IntervalDTMC.uniformized_bounds` (which isolates
what the entry-wise relaxation itself costs — the per-entry intervals
forget that one shared theta drives all entries simultaneously).
"""

import numpy as np

from _common import run_once, save_experiment
from repro.ctmc import ImpreciseCTMC, IntervalDTMC, imprecise_reward_bounds
from repro.models import make_bike_station_model
from repro.reporting import ExperimentResult

HORIZON = 3.0
N_RACKS = 12


def compute_comparison() -> ExperimentResult:
    result = ExperimentResult(
        "ablation_interval_dtmc",
        "Interval-DTMC relaxation vs exact imprecise Kolmogorov bound "
        "(bike station, P(empty at T))",
        parameters={"n_racks": N_RACKS, "T": HORIZON},
    )
    model = make_bike_station_model(arrival_bounds=(0.7, 1.3),
                                    return_bounds=(0.8, 1.2))
    chain = ImpreciseCTMC(model.instantiate(N_RACKS, [0.5]))
    reward = (chain.states[:, 0] == 0).astype(float)

    exact = imprecise_reward_bounds(chain, reward, HORIZON,
                                    maximize=True, n_steps=200)
    dtmc, rate = IntervalDTMC.from_imprecise_ctmc(chain)
    steps = int(np.ceil(HORIZON * rate))
    relaxed = float(dtmc.upper_expectation(reward, steps)[0])
    _, mixed = dtmc.uniformized_bounds(reward, HORIZON, rate)

    result.add_finding("exact_upper", exact.value)
    result.add_finding("interval_dtmc_upper", relaxed)
    result.add_finding("interval_dtmc_mixed_upper", float(mixed[0]))
    result.add_finding("relaxation_gap", relaxed - exact.value)
    result.add_finding("mixed_relaxation_gap", float(mixed[0]) - exact.value)
    result.add_finding("uniformization_rate", rate)
    result.add_finding("dtmc_steps", float(steps))
    result.add_note(
        "the step-power gap is dominated by the O(1/Lambda) "
        "time-discretization bias; the Poisson-mixed gap isolates the "
        "entry-wise relaxation, which forgets that one shared theta "
        "drives every generator entry"
    )
    return result


def bench_ablation_interval_dtmc(benchmark):
    result = run_once(benchmark, compute_comparison)
    save_experiment(result)
    assert result.findings["relaxation_gap"] >= -5e-3  # O(1/rate) bias
    assert result.findings["mixed_relaxation_gap"] >= -1e-6  # sound
    assert result.findings["interval_dtmc_upper"] <= 1.0 + 1e-9
