"""Ablation — bound tightness vs parameter-interval width (DESIGN.md).

The quantitative version of the Figure 4/5 accuracy discussion: sweep
``theta_max`` and record, for the infected coordinate at ``T = 6``, the
bound widths of the three methods (uncertain sweep, Pontryagin,
differential hull).  The hull/Pontryagin looseness ratio must grow
super-linearly in the interval width, ending in divergence.
"""

import numpy as np

from _common import run_once, save_experiment
from repro.analysis import interval_width_sensitivity
from repro.models import make_sir_model
from repro.reporting import ExperimentResult

WIDTHS = [0.5, 1.0, 2.0, 4.0, 5.0]  # theta_max = 1 + width


def compute_sensitivity() -> ExperimentResult:
    result = ExperimentResult(
        "ablation_hull_width",
        "Bound widths (infected, T = 6) vs the width of the theta interval",
        parameters={"theta_min": 1.0, "theta_max": [1 + w for w in WIDTHS],
                    "horizon": 6.0},
    )
    study = interval_width_sensitivity(
        lambda w: make_sir_model(theta_max=1.0 + w),
        widths=WIDTHS,
        x0=[0.7, 0.3],
        horizon=6.0,
        observable_index=1,
        n_steps=150,
        sweep_resolution=9,
    )
    widths = np.asarray(WIDTHS, dtype=float)
    result.add_series("width_uncertain", widths, np.asarray(study.uncertain))
    result.add_series("width_pontryagin", widths, np.asarray(study.pontryagin))
    hull = np.asarray(study.hull)
    result.add_series("width_hull", widths,
                      np.where(np.isfinite(hull), hull, -1.0))
    for w, trivial in zip(WIDTHS, study.hull_trivial):
        result.add_finding(f"hull_trivial_width_{w:g}", float(trivial))
    ratios = study.hull_over_pontryagin()
    finite = np.isfinite(ratios)
    result.add_finding("min_looseness_ratio", float(np.min(ratios[finite])))
    result.add_finding("max_finite_looseness_ratio",
                       float(np.max(ratios[finite])))
    result.add_finding("superlinear_degradation",
                       float(study.degradation_is_superlinear()))
    result.add_note(
        "uncertain <= pontryagin <= hull at every width; the hull ratio "
        "explodes and the hull turns trivial at the top of the ladder "
        "(paper Figures 4-5)"
    )
    return result


def bench_ablation_hull_width(benchmark):
    result = run_once(benchmark, compute_sensitivity)
    save_experiment(result)
    assert bool(result.findings["superlinear_degradation"])
    assert result.findings["min_looseness_ratio"] >= 1.0 - 1e-6
