"""Bounds-layer hot path — scalar vs batched drift extremization.

Every bound computation reduces to extremizing ``p . f(x, theta)`` over
``Theta``; this bench measures what batching that primitive buys on the
two paper workloads that stress it hardest:

- **fig4 hull**: the differential hull of the SIR model on the golden
  Figure-4 grid.  The scalar RHS issues ``O(d 2^(d-1))`` Python-level
  extremizer calls per ``solve_ivp`` evaluation; the batched RHS issues
  one ``velocity_envelope_batch`` call over the precomputed rectangle
  corners.
- **fig1 pontryagin**: the transient-bound ladder of Figure 1.  The
  scalar sweep re-maximises the Hamiltonian one grid interval at a
  time; the batched sweep processes all ``n_steps`` intervals per
  iteration in one call.  (The RK4 state/costate integrations are
  shared by both modes, so the end-to-end ratio is much smaller than
  the hull's.)

Both modes must produce identical bounds — the bench asserts it — so
the timing difference is pure extremization overhead.  Results land in
``benchmarks/results/BENCH_bounds.json``.

Run directly (``--smoke`` for the CI-sized variant)::

    PYTHONPATH=src python benchmarks/bench_bounds_extremizer.py [--smoke]
"""

import argparse
import json
import time

import numpy as np

from _common import RESULTS_DIR, best_of
from repro.bounds import differential_hull_bounds, pontryagin_transient_bounds
from repro.models import make_sir_model

BENCH_PATH = RESULTS_DIR / "BENCH_bounds.json"

X0 = (0.7, 0.3)

#: The golden Figure-4 hull grid (tests/test_golden_figures.py).
FIG4_T_EVAL = np.linspace(0.0, 1.5, 7)

#: The golden Figure-1 horizon ladder.
FIG1_HORIZONS = np.array([0.5, 1.0, 2.0, 3.0])


def bench_fig4_hull(smoke: bool) -> dict:
    model = make_sir_model()
    repeats = 1 if smoke else 5

    def run(batch):
        return differential_hull_bounds(model, X0, FIG4_T_EVAL, batch=batch)

    # Warm both paths (lazy batch validation, numpy caches).
    run(True), run(False)
    batched_s, batched = best_of(lambda: run(True), repeats)
    scalar_s, scalar = best_of(lambda: run(False), repeats)
    assert np.array_equal(batched.lower, scalar.lower), "hull modes diverged"
    assert np.array_equal(batched.upper, scalar.upper), "hull modes diverged"
    return {
        "scalar_seconds": round(scalar_s, 6),
        "batched_seconds": round(batched_s, 6),
        "speedup": round(scalar_s / batched_s, 3),
        "identical_bounds": True,
    }


def bench_fig1_pontryagin(smoke: bool) -> dict:
    model = make_sir_model()
    horizons = FIG1_HORIZONS[:2] if smoke else FIG1_HORIZONS
    steps_per_unit = 40.0 if smoke else 100.0
    repeats = 1 if smoke else 2

    def run(batch):
        # lanes=False pins both modes to the sequential warm-started
        # sweep so the comparison isolates *extremizer* batching; the
        # lane-parallel integrator rewrite is benched end-to-end in
        # bench_ode_core.py.
        return pontryagin_transient_bounds(
            model, X0, horizons, observables=["I"],
            steps_per_unit=steps_per_unit, batch=batch, lanes=False,
        )

    batched_s, batched = best_of(lambda: run(True), repeats)
    scalar_s, scalar = best_of(lambda: run(False), repeats)
    assert np.array_equal(batched.lower["I"], scalar.lower["I"])
    assert np.array_equal(batched.upper["I"], scalar.upper["I"])
    return {
        "scalar_seconds": round(scalar_s, 6),
        "batched_seconds": round(batched_s, 6),
        "speedup": round(scalar_s / batched_s, 3),
        "identical_bounds": True,
        "note": "end-to-end; the shared RK4 state/costate sweeps dominate "
                "— see fig1_hamiltonian_remax for the extremization phase "
                "and bench_ode_core.py for the lane-parallel sweep",
    }


def bench_fig1_hamiltonian_remax(smoke: bool) -> dict:
    """The sweep's extremization phase in isolation, on realistic data.

    Times step (8) — re-maximising ``p . f(x, theta)`` on every grid
    interval — over the state/costate trajectories of a converged fig1
    sweep, one-interval-at-a-time vs one batched call.
    """
    from repro.bounds import extremal_trajectory
    from repro.inclusion import DriftExtremizer

    model = make_sir_model()
    n_steps = 120 if smoke else 400
    result = extremal_trajectory(model, X0, FIG1_HORIZONS[-1], [0.0, 1.0],
                                 n_steps=n_steps)
    states = result.states[:-1]
    costates = result.costates[:-1]
    batched = DriftExtremizer(model)
    scalar = DriftExtremizer(model, batch=False)
    repeats = 3 if smoke else 20
    batched.maximize_direction_batch(states, costates)  # warm validation

    batched_s, (thetas_b, values_b) = best_of(
        lambda: batched.maximize_direction_batch(states, costates), repeats
    )
    scalar_s, (thetas_s, values_s) = best_of(
        lambda: scalar.maximize_direction_batch(states, costates), repeats
    )
    assert np.array_equal(thetas_b, thetas_s)
    return {
        "n_intervals": int(n_steps),
        "scalar_seconds": round(scalar_s, 6),
        "batched_seconds": round(batched_s, 6),
        "speedup": round(scalar_s / batched_s, 3),
    }


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (fewer repeats, shorter ladder); "
                             "timings are not archived")
    args = parser.parse_args(argv)

    summary = {
        "fig4_hull": bench_fig4_hull(args.smoke),
        "fig1_pontryagin": bench_fig1_pontryagin(args.smoke),
        "fig1_hamiltonian_remax": bench_fig1_hamiltonian_remax(args.smoke),
        "smoke": bool(args.smoke),
        "recorded_unix": int(time.time()),
    }
    for name in ("fig4_hull", "fig1_pontryagin", "fig1_hamiltonian_remax"):
        entry = summary[name]
        print(f"{name}: scalar {entry['scalar_seconds']:.3f}s  "
              f"batched {entry['batched_seconds']:.3f}s  "
              f"speedup {entry['speedup']:.2f}x")
    if not args.smoke:
        RESULTS_DIR.mkdir(exist_ok=True)
        BENCH_PATH.write_text(json.dumps(summary, indent=1, sort_keys=True)
                              + "\n")
        print(f"wrote {BENCH_PATH}")
    return summary


if __name__ == "__main__":
    main()
