"""Figure 6 — SSA sample paths vs the Birkhoff centre.

Regenerates the stochastic-simulation experiment of Section V-E: the SIR
chain is simulated at ``N in {100, 1000, 10000}`` under the two
parameter policies of the paper —

- ``theta_1``: hysteresis switching on ``X_S`` (to ``theta_min`` when
  ``X_S < 0.5``, back to ``theta_max`` when ``X_S > 0.85``);
- ``theta_2``: re-draw ``theta`` uniformly at rate ``5 X_I``;

and the stationary part of each path is compared with the Birkhoff
centre of the mean-field inclusion.  Each (policy, size) cell runs a
small ensemble of independent chains on the vectorized engine
(:mod:`repro.engine`) and pools their stationary samples.

Paper-expected shape: for ``N >= 1000`` the stationary behaviour
essentially remains inside the Birkhoff centre, for both policies, and
the inclusion tightens as ``N`` grows.
"""

import numpy as np

from _common import run_once, save_experiment
from repro.analysis import convergence_study
from repro.models import make_sir_model
from repro.reporting import ExperimentResult
from repro.simulation import HysteresisPolicy, RandomJumpPolicy
from repro.steadystate import birkhoff_centre_2d

SIZES = (100, 1000, 10000)
T_FINAL = 80.0
BURN_IN = 30.0
N_RUNS = 2  # independent chains per (policy, size) cell, pooled


def compute_fig6() -> ExperimentResult:
    model = make_sir_model()
    result = ExperimentResult(
        "fig6",
        "SIR: stationary SSA samples vs Birkhoff centre "
        "(policies theta_1, theta_2; N in {100, 1000, 10000})",
        parameters={
            "sizes": SIZES, "t_final": T_FINAL, "burn_in": BURN_IN,
            "epsilon": "3/sqrt(N)", "n_runs": N_RUNS,
            "engine": "vectorized",
        },
    )
    region = birkhoff_centre_2d(model, x0_guess=[0.7, 0.05])
    result.add_finding("region_area", region.polygon.area)

    policies = {
        "theta1": lambda: HysteresisPolicy(
            [1.0], [10.0], coordinate=0,
            low_threshold=0.5, high_threshold=0.85,
        ),
        "theta2": lambda: RandomJumpPolicy(
            model.theta_set, rate_fn=lambda t, x: 5.0 * x[1],
        ),
    }
    study = convergence_study(
        model, region, policies, SIZES, x0=[0.7, 0.3],
        t_final=T_FINAL, burn_in=BURN_IN, seed=2016, n_samples=1500,
        n_runs=N_RUNS, engine="vectorized",
    )
    for name in policies:
        fracs = study.fractions(name)
        result.add_series(
            f"{name}_inside_fraction", np.asarray(SIZES, dtype=float),
            np.asarray(fracs),
        )
        for n, frac in zip(SIZES, fracs):
            result.add_finding(f"{name}_inside_N{n}", frac)
        by_size = study.stats[name]
        for n in SIZES:
            result.add_finding(
                f"{name}_meandist_N{n}", by_size[n].mean_distance
            )
    result.add_note(
        "paper: for N >= 1000 the stationary behaviour essentially remains "
        "inside the Birkhoff centre for both policies; inclusion tightens "
        "with N"
    )
    return result


def bench_fig6_simulation(benchmark):
    result = run_once(benchmark, compute_fig6)
    save_experiment(result)
    for name in ("theta1", "theta2"):
        assert result.findings[f"{name}_inside_N1000"] > 0.9
        assert result.findings[f"{name}_inside_N10000"] > 0.95
        # Mean distance to the region shrinks with N.
        assert (result.findings[f"{name}_meandist_N10000"]
                <= result.findings[f"{name}_meandist_N100"] + 1e-6)
