"""Figure 7 — GPS model: maximal queue length, uncertain vs imprecise.

Regenerates the queueing-network comparison of Section VI: the maximal
(and minimal) per-class queue fractions ``Q_1(t)``, ``Q_2(t)`` over
``t in [0, 5]`` for the uncertain and imprecise scenarios, for both
job-creation processes:

- *Poisson* arrivals (matched mean inter-job times);
- *MAP* arrivals (activation stage at rate ``a_i`` before sending).

Paper-expected shape: under Poisson arrivals the uncertain and imprecise
envelopes coincide (monotone congestion in ``lambda``); under MAP
arrivals the imprecise maximum is significantly larger than any
constant-parameter maximum (the activation delay lets a varying rate
beat every constant one).
"""

import numpy as np

from _common import run_once, save_experiment
from repro.bounds import pontryagin_transient_bounds, uncertain_envelope
from repro.models import (
    GPS_PAPER_PARAMS,
    gps_initial_state_map,
    gps_initial_state_poisson,
    make_gps_map_model,
    make_gps_poisson_model,
)
from repro.reporting import ExperimentResult

HORIZONS = np.linspace(0.5, 5.0, 10)


def _bound_scenario(result, tag, model, x0):
    env = uncertain_envelope(
        model, x0, np.concatenate([[0.0], HORIZONS]), resolution=7,
        observables=["Q1", "Q2"],
    )
    imprecise = pontryagin_transient_bounds(
        model, x0, HORIZONS, observables=[
            ("Q1", model.observables["Q1"]),
            ("Q2", model.observables["Q2"]),
        ],
        steps_per_unit=60,
    )
    for name in ("Q1", "Q2"):
        q0 = float(model.observables[name] @ x0)
        result.add_series(f"{tag}_{name}_max_uncertain", env.times,
                          env.upper[name])
        result.add_series(f"{tag}_{name}_min_uncertain", env.times,
                          env.lower[name])
        result.add_series(
            f"{tag}_{name}_max_imprecise",
            np.concatenate([[0.0], HORIZONS]),
            np.concatenate([[q0], imprecise.upper[name]]),
        )
        result.add_series(
            f"{tag}_{name}_min_imprecise",
            np.concatenate([[0.0], HORIZONS]),
            np.concatenate([[q0], imprecise.lower[name]]),
        )
        result.add_finding(f"{tag}_{name}_max_uncertain_at_5",
                           env.upper[name][-1])
        result.add_finding(f"{tag}_{name}_max_imprecise_at_5",
                           imprecise.upper[name][-1])
        result.add_finding(
            f"{tag}_{name}_gap_at_5",
            imprecise.upper[name][-1] - env.upper[name][-1],
        )


def compute_fig7() -> ExperimentResult:
    result = ExperimentResult(
        "fig7",
        "GPS: maximal queue length vs time, uncertain vs imprecise, "
        "Poisson vs MAP arrivals",
        parameters={
            "mu": GPS_PAPER_PARAMS["mu"],
            "phi": GPS_PAPER_PARAMS["phi"],
            "lambda1": "[1, 7]", "lambda2": "[2, 3]",
            "a": GPS_PAPER_PARAMS["activation"],
            "Q0": GPS_PAPER_PARAMS["q0_class_fraction"],
        },
    )
    _bound_scenario(result, "poisson", make_gps_poisson_model(),
                    gps_initial_state_poisson())
    _bound_scenario(result, "map", make_gps_map_model(),
                    gps_initial_state_map())
    result.add_note(
        "paper: Poisson -> uncertain and imprecise bounds coincide; "
        "MAP -> imprecise max queue significantly larger than uncertain"
    )
    return result


def bench_fig7_gps_transient(benchmark):
    result = run_once(benchmark, compute_fig7)
    save_experiment(result)
    # Poisson: coincidence (within numerical tolerance).
    assert abs(result.findings["poisson_Q1_gap_at_5"]) < 5e-3
    assert abs(result.findings["poisson_Q2_gap_at_5"]) < 5e-3
    # MAP: strict gap, large for the fast class.
    assert result.findings["map_Q1_gap_at_5"] > 0.05
    assert result.findings["map_Q2_gap_at_5"] > 0.0
