"""Section VI-C — robust tuning of the GPS weights.

Regenerates the design study at the end of Section VI: choose the GPS
weight ``phi_1`` (with ``phi_2 = 1``) minimising the worst-case total
queue length ``max_theta (Q_1 + Q_2)(T)`` over the imprecise inclusion.

Paper-expected shape: the worst-case total queue length is a convex
function of ``phi_1`` and the optimum gives clear priority to class 1
(the paper reports ``phi_1 = 9.0 phi_2`` for its configuration).
"""

import numpy as np

from _common import run_once, save_experiment
from repro.analysis import robust_minimize_scalar
from repro.analysis.robust import worst_case_objective
from repro.models import gps_initial_state_map, make_gps_map_model
from repro.reporting import ExperimentResult

HORIZON = 5.0


def objective(phi1: float) -> float:
    model = make_gps_map_model(phi=(phi1, 1.0))
    x0 = gps_initial_state_map()
    return worst_case_objective(
        model, x0, HORIZON, model.observables["Qtotal"], n_steps=150,
    )


def compute_weights() -> ExperimentResult:
    result = ExperimentResult(
        "gps_weights",
        "GPS: robust choice of the weight phi_1 (phi_2 = 1) minimising the "
        "worst-case total queue length at T = 5",
        parameters={"phi2": 1.0, "T": HORIZON, "search": "[0.5, 20]"},
    )
    design = robust_minimize_scalar(objective, (0.5, 20.0),
                                    coarse_points=9, xatol=0.05)
    result.add_series("objective_vs_phi1", design.design_grid,
                      design.objective_grid)
    result.add_finding("phi1_optimal", design.optimum)
    result.add_finding("worst_case_at_optimum", design.value)
    result.add_finding("convex_on_grid", float(design.is_convex_on_grid(
        tol=1e-3)))
    result.add_finding("worst_case_at_phi1_1", float(design.objective_grid[
        int(np.argmin(np.abs(design.design_grid - 1.0)))]))
    result.add_note(
        "paper: objective convex in phi_1, optimum at phi_1 = 9.0 phi_2 "
        "(their capacity configuration); we report the measured optimum "
        "for the normalised-capacity configuration of this reproduction"
    )
    return result


def bench_gps_robust_weights(benchmark):
    result = run_once(benchmark, compute_weights)
    save_experiment(result)
    # Priority to class 1, as the paper finds.
    assert result.findings["phi1_optimal"] > 1.0
    # The optimum genuinely improves on equal weights.
    assert (result.findings["worst_case_at_optimum"]
            < result.findings["worst_case_at_phi1_1"] - 1e-4)
