"""Extension — empirical mean-field convergence rate (Theorem 1, quantified).

Measures the sup-norm deviation between the finite-``N`` SIR chain and
its mean-field ODE across a population ladder and fits the log–log
rate.  The Kurtz regime predicts ``O(1 / sqrt(N))``; the fitted constant
also calibrates the ``eps_N = c / sqrt(N)`` inclusion tolerance used by
the Figure 6 measurements.
"""

import numpy as np

from _common import run_once, save_experiment
from repro.meanfield import mean_field_accuracy
from repro.models import make_sir_model
from repro.reporting import ExperimentResult

SIZES = (100, 400, 1600, 6400)


def compute_accuracy() -> ExperimentResult:
    result = ExperimentResult(
        "meanfield_accuracy",
        "SIR: empirical SSA-to-ODE deviation rate across population sizes",
        parameters={"theta": 5.0, "T": 2.0, "sizes": SIZES,
                    "replications": 10},
    )
    study = mean_field_accuracy(
        make_sir_model(), [5.0], [0.7, 0.3], 2.0,
        sizes=SIZES, n_replications=10, seed=7,
    )
    result.add_series("mean_sup_deviation", np.asarray(SIZES, float),
                      np.asarray(study.mean_deviation))
    result.add_series("max_sup_deviation", np.asarray(SIZES, float),
                      np.asarray(study.max_deviation))
    result.add_finding("fitted_rate", study.fitted_rate())
    result.add_finding("deviation_constant", study.deviation_constant())
    result.add_note(
        "Kurtz regime: deviation ~ c / sqrt(N); the fitted constant "
        "calibrates the Figure-6 inclusion tolerance eps_N"
    )
    return result


def bench_meanfield_accuracy(benchmark):
    result = run_once(benchmark, compute_accuracy)
    save_experiment(result)
    assert -0.75 < result.findings["fitted_rate"] < -0.3
    assert result.findings["deviation_constant"] > 0.0
