"""Full-catalog conformance sweep — the cost of "tests for free".

Every registered scenario inherits its soundness suite from
:class:`repro.testing.ScenarioConformance`; this bench times that
inheritance across the whole catalog: one ``run_all()`` per unique
model (bound-family ordering, batch-vs-scalar kernels, finite-``N``
ensembles, interval-DTMC conservativeness, validity perturbation).

The sweep doubles as a standing audit — a violation anywhere in the
catalog fails the bench, so the archived timing is also a certificate
that every entry passed.  Timings land per check family in
``benchmarks/results/BENCH_scenarios.json`` under the
``catalog_conformance`` experiment id.

Run directly (``--smoke`` for the CI-sized variant: ensembles shrunk,
timings not archived)::

    PYTHONPATH=src:benchmarks python benchmarks/bench_catalog_conformance.py [--smoke]
"""

import argparse
import time
from collections import defaultdict

from _common import record_timing
from repro.testing import ScenarioConformance, unique_model_cases


def sweep(smoke: bool) -> dict:
    population_size = 100 if smoke else 200
    n_runs = 8 if smoke else 10

    per_check = defaultdict(float)
    scenarios = 0
    checks = 0
    start = time.perf_counter()
    for spec in unique_model_cases():
        report = ScenarioConformance(spec).run_all(
            population_size=population_size, n_runs=n_runs,
        )
        print(report.render())
        scenarios += 1
        for outcome in report.outcomes:
            if outcome.status == "passed":
                checks += 1
                per_check[outcome.name] += outcome.seconds
    total = time.perf_counter() - start
    return {
        "total_seconds": round(total, 6),
        "scenarios": scenarios,
        "checks_passed": checks,
        "seconds_per_check_family": {
            name: round(seconds, 6)
            for name, seconds in sorted(per_check.items())
        },
        "ensemble_population_size": population_size,
    }


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (smaller ensembles); timings "
                             "are not archived")
    args = parser.parse_args(argv)

    summary = sweep(args.smoke)
    print(f"\ncatalog conformance: {summary['scenarios']} scenarios, "
          f"{summary['checks_passed']} checks passed in "
          f"{summary['total_seconds']:.2f}s")
    if not args.smoke:
        record_timing("catalog_conformance", summary["total_seconds"],
                      scenarios=summary["scenarios"],
                      checks_passed=summary["checks_passed"],
                      per_check_family=summary["seconds_per_check_family"])
        print("recorded catalog_conformance in BENCH_scenarios.json")
    return summary


if __name__ == "__main__":
    main()
