"""Backend seam — numpy reference vs the numba JIT backend.

PR 9 put a pluggable compiled-array backend under every batch kernel;
this bench measures what the opt-in numba backend buys (and costs) on
the two workloads that stress the seam from opposite ends:

- **fig2 pontryagin ladder**: the Figure-2 bang-bang transient ladder —
  drift/jacobian model kernels plus the lockstep RK4 stage math, the
  most kernel-dispatch-heavy bound computation in the library;
- **fig6 ensemble**: the Figure-6 finite-``N`` ensemble sweep — the
  vectorized SSA engine's hot loop dispatching the batched transition
  rates through the seam.

For each installed backend the *first* call runs against a fresh model
(so JIT compilation is inside the measurement) and is archived as the
``first_call_seconds`` entry; steady-state wall time is the best of the
following repeats with the compile cache warm, which is what the
speedup compares.  Results (plus the backend telemetry counters:
compiles, dispatches, fallbacks) are archived into
``benchmarks/results/BENCH_backend.json``.  Without numba installed the
bench degrades to a numpy-only baseline record — it never fails.

Run directly (``--smoke`` for the CI-sized variant)::

    PYTHONPATH=src python benchmarks/bench_backend.py [--smoke]
"""

import argparse
import json
import time

import numpy as np

from _common import RESULTS_DIR, best_of, timed
from repro import telemetry
from repro.backend import available_backends
from repro.bounds import pontryagin_transient_bounds
from repro.engine import sweep_constant_ensembles
from repro.models import make_sir_model

BENCH_PATH = RESULTS_DIR / "BENCH_backend.json"
TELEMETRY_PATH = RESULTS_DIR / "backend_telemetry.json"

X0 = (0.7, 0.3)

#: Figure-2 problem horizon (the bang-bang extremals at T = 3).
FIG2_HORIZON = 3.0

#: Steady-state speedup floor on the fig2 ladder (full runs, numba on).
FIG2_NUMBA_FLOOR = 3.0


def bench_fig2_ladder(smoke: bool, backend: str) -> dict:
    """The fig2 Pontryagin transient ladder on one backend."""
    n_horizons = 3 if smoke else 8
    steps_per_unit = 60.0 if smoke else 200.0
    observables = ["I"] if smoke else ["S", "I"]
    horizons = np.linspace(FIG2_HORIZON / n_horizons, FIG2_HORIZON,
                           n_horizons)
    model = make_sir_model()

    def run():
        return pontryagin_transient_bounds(
            model, X0, horizons, observables=observables,
            steps_per_unit=steps_per_unit, backend=backend,
        )

    # First call against a fresh model: any JIT compilation happens here.
    bounds, first_s = timed(run)
    steady_s, _ = best_of(run, 1 if smoke else 3)
    return {
        "first_call_seconds": round(first_s, 6),
        "steady_seconds": round(steady_s, 6),
        "compile_overhead_seconds": round(max(0.0, first_s - steady_s), 6),
        "final_lower_I": float(bounds.lower["I"][-1]),
        "final_upper_I": float(bounds.upper["I"][-1]),
    }


def bench_fig6_ensemble(smoke: bool, backend: str) -> dict:
    """The fig6 finite-``N`` ensemble sweep on one backend."""
    population_size = 100 if smoke else 1000
    n_runs = 4 if smoke else 16
    thetas = [1.0, 10.0] if smoke else [1.0, 4.0, 7.0, 10.0]

    def run():
        return sweep_constant_ensembles(
            make_sir_model, X0, population_size, thetas,
            t_final=1.0 if smoke else 3.0, n_runs=n_runs,
            seed=2016, n_samples=20, backend=backend,
        )

    results, first_s = timed(run)
    steady_s, _ = best_of(run, 1)
    return {
        "first_call_seconds": round(first_s, 6),
        "steady_seconds": round(steady_s, 6),
        "total_events": int(sum(batch.n_events for batch in results)),
    }


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (smaller ladders, no speedup "
                             "floor)")
    args = parser.parse_args(argv)

    telemetry.enable()
    telemetry.clear()
    backends = available_backends()
    summary = {
        "backends": {},
        "numba_available": "numba" in backends,
        "smoke": bool(args.smoke),
        "recorded_unix": int(time.time()),
    }
    for backend in backends:
        entry = {
            "fig2_ladder": bench_fig2_ladder(args.smoke, backend),
            "fig6_ensemble": bench_fig6_ensemble(args.smoke, backend),
        }
        summary["backends"][backend] = entry
        fig2 = entry["fig2_ladder"]
        print(f"{backend}: fig2 first {fig2['first_call_seconds']:.3f}s  "
              f"steady {fig2['steady_seconds']:.3f}s  "
              f"fig6 steady "
              f"{entry['fig6_ensemble']['steady_seconds']:.3f}s")

    if summary["numba_available"]:
        ref = summary["backends"]["numpy"]
        jit = summary["backends"]["numba"]
        speedups = {
            "fig2_ladder": round(
                ref["fig2_ladder"]["steady_seconds"]
                / jit["fig2_ladder"]["steady_seconds"], 3
            ),
            "fig6_ensemble": round(
                ref["fig6_ensemble"]["steady_seconds"]
                / jit["fig6_ensemble"]["steady_seconds"], 3
            ),
        }
        summary["numba_speedup"] = speedups
        print(f"numba speedup: fig2 {speedups['fig2_ladder']:.2f}x  "
              f"fig6 {speedups['fig6_ensemble']:.2f}x")
        if not args.smoke:
            assert speedups["fig2_ladder"] >= FIG2_NUMBA_FLOOR, (
                f"fig2 ladder numba speedup {speedups['fig2_ladder']:.2f}x "
                f"below the {FIG2_NUMBA_FLOOR:.1f}x floor"
            )
    else:
        print("numba not installed: numpy-only baseline recorded")

    counters = telemetry.snapshot()["counters"]
    summary["metrics"] = {
        name: value for name, value in sorted(counters.items())
        if name.startswith("backend.")
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    BENCH_PATH.write_text(json.dumps(summary, indent=1, sort_keys=True)
                          + "\n")
    telemetry.save_snapshot(TELEMETRY_PATH, telemetry.snapshot())
    print(f"wrote {BENCH_PATH} and {TELEMETRY_PATH}")
    telemetry.disable()
    telemetry.clear()
    return summary


if __name__ == "__main__":
    main()
