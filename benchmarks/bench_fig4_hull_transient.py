"""Figure 4 — differential hull vs imprecise (Pontryagin) transient bounds.

Regenerates the transient comparison for ``theta_max in {2, 5, 6}``
(``theta_min = 1``): proportion of susceptible and infected over
``t in [0, 10]``, bounded by (a) the differential-hull pair of ODEs and
(b) the exact Pontryagin bounds.

Paper-expected shape: the hull is accurate for ``theta_max = 2``,
noticeably loose for ``theta_max = 5`` (infected upper bound far above
the exact bound) and *trivial* for ``theta_max = 6`` beyond ``t ~ 4``
(bounds cover the whole [0, 1] range), while the Pontryagin bounds stay
informative throughout.
"""

import numpy as np

from _common import run_once, save_experiment
from repro.bounds import differential_hull_bounds, pontryagin_transient_bounds
from repro.models import SIR_PAPER_PARAMS, make_sir_model
from repro.reporting import ExperimentResult

THETA_MAX_VALUES = (2.0, 5.0, 6.0)
T_GRID = np.linspace(0.0, 10.0, 21)


def compute_fig4() -> ExperimentResult:
    x0 = np.asarray(SIR_PAPER_PARAMS["x0"])
    result = ExperimentResult(
        "fig4",
        "SIR transient: differential hull vs exact imprecise bounds, "
        "theta_max in {2, 5, 6}",
        parameters={"theta_min": 1.0, "T": 10.0, "x0": tuple(x0)},
    )
    for theta_max in THETA_MAX_VALUES:
        model = make_sir_model(theta_max=theta_max)
        tag = f"tm{theta_max:g}"

        hull = differential_hull_bounds(model, x0, T_GRID)
        result.add_series(f"{tag}_hull_S_lower", T_GRID, hull.lower[:, 0])
        result.add_series(f"{tag}_hull_S_upper", T_GRID, hull.upper[:, 0])
        result.add_series(f"{tag}_hull_I_lower", T_GRID, hull.lower[:, 1])
        result.add_series(f"{tag}_hull_I_upper", T_GRID, hull.upper[:, 1])

        exact = pontryagin_transient_bounds(
            model, x0, T_GRID[1:], observables=["S", "I"], steps_per_unit=60,
        )
        t_exact = T_GRID
        for name in ("S", "I"):
            result.add_series(
                f"{tag}_exact_{name}_lower", t_exact,
                np.concatenate([[x0[0 if name == 'S' else 1]],
                                exact.lower[name]]),
            )
            result.add_series(
                f"{tag}_exact_{name}_upper", t_exact,
                np.concatenate([[x0[0 if name == 'S' else 1]],
                                exact.upper[name]]),
            )

        hull_width = float(hull.width(1)[-1])
        exact_width = float(exact.upper["I"][-1] - exact.lower["I"][-1])
        result.add_finding(f"{tag}_hull_I_width_at_10", hull_width)
        result.add_finding(f"{tag}_exact_I_width_at_10", exact_width)
        result.add_finding(f"{tag}_hull_trivial", float(hull.is_trivial(1)))
    result.add_note(
        "paper: hull accurate at theta_max=2, loose at 5, trivial at 6 "
        "while the Pontryagin bounds remain informative"
    )
    return result


def bench_fig4_hull_transient(benchmark):
    result = run_once(benchmark, compute_fig4)
    save_experiment(result)
    assert result.findings["tm2_hull_trivial"] == 0.0
    assert result.findings["tm6_hull_trivial"] == 1.0
    # Looseness ratio grows sharply between theta_max = 2 and 5.
    ratio2 = (result.findings["tm2_hull_I_width_at_10"]
              / max(result.findings["tm2_exact_I_width_at_10"], 1e-9))
    ratio5 = (result.findings["tm5_hull_I_width_at_10"]
              / max(result.findings["tm5_exact_I_width_at_10"], 1e-9))
    assert ratio5 > 2.0 * ratio2
    # The exact bounds stay inside [0, 1] even at theta_max = 6.
    assert 0.0 <= result.findings["tm6_exact_I_width_at_10"] <= 1.0
