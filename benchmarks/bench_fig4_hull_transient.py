"""Figure 4 — differential hull vs imprecise (Pontryagin) transient bounds.

Regenerates the transient comparison for ``theta_max in {2, 5, 6}``
(``theta_min = 1``): proportion of susceptible and infected over
``t in [0, 10]``, bounded by (a) the differential-hull pair of ODEs and
(b) the exact Pontryagin bounds.

Each ``theta_max`` is a derived variant of the catalogued ``sir-hull``
scenario (same questions, wider horizon, overridden parameter set); the
figure result merges the three variant runs under ``tm*`` series
prefixes.

Paper-expected shape: the hull is accurate for ``theta_max = 2``,
noticeably loose for ``theta_max = 5`` (infected upper bound far above
the exact bound) and *trivial* for ``theta_max = 6`` beyond ``t ~ 4``
(bounds cover the whole [0, 1] range), while the Pontryagin bounds stay
informative throughout.
"""

import numpy as np

from _common import run_once, save_experiment
from repro.reporting import ExperimentResult
from repro.scenarios import Question, get_scenario, run_scenario

THETA_MAX_VALUES = (2.0, 5.0, 6.0)
T_GRID = np.linspace(0.0, 10.0, 21)


def fig4_variant(theta_max: float):
    """The Fig. 4 derivation of the sir-hull catalog entry."""
    return get_scenario("sir-hull").with_overrides(
        name=f"fig4-tm{theta_max:g}",
        horizon=10.0,
        model_kwargs={"theta_max": theta_max},
        questions=(
            Question("hull", options={"times": list(T_GRID)}),
            Question("pontryagin",
                     options={"horizons": list(T_GRID[1:]),
                              "steps_per_unit": 60}),
        ),
    )


def compute_fig4() -> ExperimentResult:
    x0 = get_scenario("sir-hull").x0
    result = ExperimentResult(
        "fig4",
        "SIR transient: differential hull vs exact imprecise bounds, "
        "theta_max in {2, 5, 6}",
        parameters={"theta_min": 1.0, "T": 10.0, "x0": tuple(x0)},
    )
    for theta_max in THETA_MAX_VALUES:
        tag = f"tm{theta_max:g}"
        variant = run_scenario(fig4_variant(theta_max), use_cache=False).result

        for name in ("S", "I"):
            for side in ("lower", "upper"):
                hull_series = variant.series[f"hull_{name}_{side}"]
                result.add_series(f"{tag}_hull_{name}_{side}",
                                  hull_series.times, hull_series.values)
                exact = variant.series[f"{name}_imprecise_{side}"]
                result.add_series(
                    f"{tag}_exact_{name}_{side}",
                    np.concatenate([[0.0], exact.times]),
                    np.concatenate(
                        [[x0[0 if name == "S" else 1]], exact.values]
                    ),
                )

        hull_width = (variant.series["hull_I_upper"].final
                      - variant.series["hull_I_lower"].final)
        exact_width = (variant.series["I_imprecise_upper"].final
                       - variant.series["I_imprecise_lower"].final)
        result.add_finding(f"{tag}_hull_I_width_at_10", hull_width)
        result.add_finding(f"{tag}_exact_I_width_at_10", exact_width)
        result.add_finding(f"{tag}_hull_trivial",
                           variant.findings["hull_I_trivial"])
    result.add_note(
        "paper: hull accurate at theta_max=2, loose at 5, trivial at 6 "
        "while the Pontryagin bounds remain informative"
    )
    return result


def bench_fig4_hull_transient(benchmark):
    result = run_once(benchmark, compute_fig4)
    save_experiment(result)
    assert result.findings["tm2_hull_trivial"] == 0.0
    assert bool(result.findings["tm6_hull_trivial"])
    # Looseness ratio grows sharply between theta_max = 2 and 5.
    ratio2 = (result.findings["tm2_hull_I_width_at_10"]
              / max(result.findings["tm2_exact_I_width_at_10"], 1e-9))
    ratio5 = (result.findings["tm5_hull_I_width_at_10"]
              / max(result.findings["tm5_exact_I_width_at_10"], 1e-9))
    assert ratio5 > 2.0 * ratio2
    # The exact bounds stay inside [0, 1] even at theta_max = 6.
    assert 0.0 <= result.findings["tm6_exact_I_width_at_10"] <= 1.0
