"""Extension — scalability in the state dimension (bounds + ensembles).

The paper closes with "we will … test the approach on larger models, to
properly understand its scalability".  This bench does that on the
power-of-two-choices load balancer, whose buffer truncation ``K`` sets
the state dimension, along both analysis axes:

- *bound machinery*: the imprecise upper bound on the mean queue length
  at ``T = 3`` for ``K in {5, 10, 20, 40}``, with wall time and sweep
  iterations;
- *simulation machinery*: a vectorized SSA ensemble
  (:func:`repro.engine.simulate_ensemble`) of the same model per depth,
  with wall time and event throughput — the batched rate evaluation
  touches ``2K`` transitions per step, so this probes how the engine
  scales with the transition count.

Expected: bound cost grows roughly linearly in ``K`` (the sweep is
``O(K)`` per step through the analytic Jacobian and the affine
Hamiltonian maximiser), the bound converges as ``K`` grows (deep buffer
levels are exponentially empty), and ensemble throughput degrades
gracefully (not worse than ~linearly in ``K``).
"""

import numpy as np

from _common import run_once, save_experiment, timed
from repro.bounds import extremal_trajectory
from repro.engine import simulate_ensemble
from repro.models import make_power_of_d_model
from repro.reporting import ExperimentResult
from repro.simulation import ConstantPolicy

DEPTHS = (5, 10, 20, 40)
HORIZON = 3.0
ENSEMBLE_POPULATION = 1000
ENSEMBLE_RUNS = 50
ENSEMBLE_HORIZON = 2.0


def compute_scalability() -> ExperimentResult:
    result = ExperimentResult(
        "scalability",
        "Pontryagin bound cost vs state dimension "
        "(power-of-two-choices, max mean queue length at T = 3)",
        parameters={"depths": DEPTHS, "T": HORIZON,
                    "arrival_bounds": (0.7, 0.95)},
    )
    values, times = [], []
    for depth in DEPTHS:
        model = make_power_of_d_model(buffer_depth=depth)
        x0 = np.zeros(depth)
        x0[0] = 0.5  # half the servers busy, no deeper backlog
        weights = model.observables["mean_queue_length"]
        res, elapsed = timed(extremal_trajectory, model, x0, HORIZON,
                             weights, n_steps=150)
        values.append(res.value)
        times.append(elapsed)
        result.add_finding(f"bound_K{depth}", res.value)
        result.add_finding(f"seconds_K{depth}", elapsed)
        result.add_finding(f"iterations_K{depth}", float(res.iterations))
    result.add_series("bound_vs_K", np.asarray(DEPTHS, float),
                      np.asarray(values))
    result.add_series("seconds_vs_K", np.asarray(DEPTHS, float),
                      np.asarray(times))

    # Vectorized-ensemble scalability along the same depth ladder.
    throughputs = []
    for depth in DEPTHS:
        model = make_power_of_d_model(buffer_depth=depth)
        x0 = np.zeros(depth)
        x0[0] = 0.5
        population = model.instantiate(ENSEMBLE_POPULATION, x0)
        batch, seconds = timed(
            simulate_ensemble, population, lambda: ConstantPolicy([0.9]),
            ENSEMBLE_HORIZON, n_runs=ENSEMBLE_RUNS, seed=7,
            n_samples=40,
        )
        events_per_second = batch.n_events / max(seconds, 1e-9)
        throughputs.append(events_per_second)
        result.add_finding(f"engine_seconds_K{depth}", seconds)
        result.add_finding(f"engine_events_per_sec_K{depth}",
                           events_per_second)
    result.add_series("engine_throughput_vs_K", np.asarray(DEPTHS, float),
                      np.asarray(throughputs))
    result.add_finding("bound_truncation_drift",
                       abs(values[-1] - values[-2]))
    result.add_note(
        "bound converges in the truncation depth; cost grows polynomially "
        "(per-sweep work is O(K) rate evaluations + O(K^2) Jacobian); "
        f"ensemble throughput at N={ENSEMBLE_POPULATION}, "
        f"{ENSEMBLE_RUNS} runs"
    )
    return result


def bench_scalability(benchmark):
    result = run_once(benchmark, compute_scalability)
    save_experiment(result)
    # Truncation-converged bound.
    assert result.findings["bound_truncation_drift"] < 1e-3
    # Sane growth: 8x dimension should not cost more than ~100x time.
    assert (result.findings["seconds_K40"]
            < 100.0 * max(result.findings["seconds_K5"], 1e-3))
    # Engine throughput degrades gracefully with the transition count:
    # 8x more transitions should not cost more than ~30x throughput.
    assert (result.findings["engine_events_per_sec_K40"]
            > result.findings["engine_events_per_sec_K5"] / 30.0)


if __name__ == "__main__":
    save_experiment(compute_scalability())
