"""Extension — scalability of the Pontryagin bounds in the state dimension.

The paper closes with "we will … test the approach on larger models, to
properly understand its scalability".  This bench does that on the
power-of-two-choices load balancer, whose buffer truncation ``K`` sets
the state dimension: compute the imprecise upper bound on the mean queue
length at ``T = 3`` for ``K in {5, 10, 20, 40}`` and record wall time
and sweep iterations.

Expected: cost grows roughly linearly in ``K`` (the sweep is
``O(K)`` per step through the analytic Jacobian and the affine
Hamiltonian maximiser) and the bound converges as ``K`` grows (deep
buffer levels are exponentially empty).
"""

import time

import numpy as np

from _common import run_once, save_experiment
from repro.bounds import extremal_trajectory
from repro.models import make_power_of_d_model
from repro.reporting import ExperimentResult

DEPTHS = (5, 10, 20, 40)
HORIZON = 3.0


def compute_scalability() -> ExperimentResult:
    result = ExperimentResult(
        "scalability",
        "Pontryagin bound cost vs state dimension "
        "(power-of-two-choices, max mean queue length at T = 3)",
        parameters={"depths": DEPTHS, "T": HORIZON,
                    "arrival_bounds": (0.7, 0.95)},
    )
    values, times = [], []
    for depth in DEPTHS:
        model = make_power_of_d_model(buffer_depth=depth)
        x0 = np.zeros(depth)
        x0[0] = 0.5  # half the servers busy, no deeper backlog
        weights = model.observables["mean_queue_length"]
        start = time.perf_counter()
        res = extremal_trajectory(model, x0, HORIZON, weights, n_steps=150)
        elapsed = time.perf_counter() - start
        values.append(res.value)
        times.append(elapsed)
        result.add_finding(f"bound_K{depth}", res.value)
        result.add_finding(f"seconds_K{depth}", elapsed)
        result.add_finding(f"iterations_K{depth}", float(res.iterations))
    result.add_series("bound_vs_K", np.asarray(DEPTHS, float),
                      np.asarray(values))
    result.add_series("seconds_vs_K", np.asarray(DEPTHS, float),
                      np.asarray(times))
    result.add_finding("bound_truncation_drift",
                       abs(values[-1] - values[-2]))
    result.add_note(
        "bound converges in the truncation depth; cost grows polynomially "
        "(per-sweep work is O(K) rate evaluations + O(K^2) Jacobian)"
    )
    return result


def bench_scalability(benchmark):
    result = run_once(benchmark, compute_scalability)
    save_experiment(result)
    # Truncation-converged bound.
    assert result.findings["bound_truncation_drift"] < 1e-3
    # Sane growth: 8x dimension should not cost more than ~100x time.
    assert (result.findings["seconds_K40"]
            < 100.0 * max(result.findings["seconds_K5"], 1e-3))
