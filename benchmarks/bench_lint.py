"""Static-analysis gate throughput — full-repo ``repro lint`` timing.

The linter runs in CI before every test job, so its wall-clock time is
part of every contributor's feedback loop.  This bench times the full
pipeline — file discovery, AST pass over ``src``/``tests``/
``benchmarks`` with all REP rules, and the registry contract audit —
on the repository itself, asserts the report is strict-clean, and
enforces a hard latency budget so a slow rule cannot creep in
unnoticed.

The timing lands in ``benchmarks/results/BENCH_scenarios.json`` under
the ``lint_full_repo`` id, alongside the scenario-pipeline timings.

Run directly (``--smoke`` for the CI-sized single-repeat variant)::

    PYTHONPATH=src:benchmarks python benchmarks/bench_lint.py [--smoke]
"""

import argparse
import pathlib

from _common import best_of, record_timing
from repro.analysis.lint import run_lint

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

#: Hard ceiling on one full-repo lint pass (discovery + AST + audit).
BUDGET_SECONDS = 5.0


def bench_full_repo(smoke: bool) -> dict:
    repeats = 1 if smoke else 3
    run_lint(REPO_ROOT)  # warm: imports, catalog registration, pyc
    seconds, report = best_of(lambda: run_lint(REPO_ROOT), repeats)

    assert report.exit_code(strict=True) == 0, report.render_text()
    assert report.registry_audited, "registry audit did not run"
    assert seconds < BUDGET_SECONDS, (
        f"full-repo lint took {seconds:.2f}s, budget is {BUDGET_SECONDS}s"
    )
    return {
        "seconds": seconds,
        "files_checked": report.files_checked,
        "errors": len(report.errors),
        "warnings": len(report.warnings),
        "budget_seconds": BUDGET_SECONDS,
    }


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (single repeat)")
    args = parser.parse_args(argv)

    summary = bench_full_repo(args.smoke)
    print(f"lint_full_repo: {summary['files_checked']} files in "
          f"{summary['seconds']:.3f}s (budget {BUDGET_SECONDS:.0f}s, "
          f"strict-clean)")
    record_timing("lint_full_repo", summary["seconds"],
                  files_checked=summary["files_checked"],
                  budget_seconds=BUDGET_SECONDS,
                  smoke=bool(args.smoke))
    return summary


if __name__ == "__main__":
    main()
