"""ODE-core hot path — scalar integrator loops vs the batched kernels.

PR 3 made the bounds layer extremization-batched; the remaining scalar
chokepoint was the integrators themselves: one Python RK4 loop per
Pontryagin sweep lane and one scipy ``solve_ivp`` dispatch per constant
``theta``.  This bench measures what the ``repro.ode.batch`` kernels buy
on the paper workloads that stress them hardest:

- **fig2 pontryagin**: the Figure-2 bang-bang problem widened to its
  transient ladder — both observables, both sides, eight horizons up to
  ``T = 3`` at 200 steps/unit (32 sweep lanes).  The lane-parallel path
  advances every sweep through one batched forward call, one batched
  costate call (precomputed analytic Jacobian stacks) and one
  Hamiltonian re-maximisation per iteration; the scalar path runs the
  legacy warm-started per-lane loop.
- **fig1 adaptive sweep**: the Figure-1 uncertain envelope over the
  41-point theta grid, adaptive integrator.  The batched path pushes the
  whole grid through ``dopri_batch`` (per-lane error control, lane
  retirement); the scalar path dispatches one scipy ``solve_ivp`` per
  theta.
- **fixed-point scan**: the Figure-3 steady-state curve (41 equilibria);
  ``find_fixed_point_batch`` settles the whole stack in one vectorized
  solver loop.

Both modes must agree (asserted: bounds to sweep tolerance, envelopes to
integration tolerance, fixed points to Newton tolerance).  Full runs
enforce the roadmap speedup floors (>= 4x fig2, >= 3x fig1) and archive
into ``benchmarks/results/BENCH_ode.json``.

Run directly (``--smoke`` for the CI-sized variant)::

    PYTHONPATH=src python benchmarks/bench_ode_core.py [--smoke]
"""

import argparse
import json
import time

import numpy as np

from _common import RESULTS_DIR, best_of
from repro.bounds import pontryagin_transient_bounds, uncertain_envelope
from repro.models import make_sir_model
from repro.steadystate import uncertain_fixed_points

BENCH_PATH = RESULTS_DIR / "BENCH_ode.json"

X0 = (0.7, 0.3)

#: Figure-2 problem horizon (the bang-bang extremals at T = 3).
FIG2_HORIZON = 3.0

#: Figure-1 envelope settings (the 41-point theta grid of the curves).
FIG1_T_EVAL = np.linspace(0.0, 4.0, 17)
FIG1_RESOLUTION = 41


def bench_fig2_pontryagin(smoke: bool) -> dict:
    """Lane-parallel vs sequential Pontryagin on the fig2 ladder."""
    n_horizons = 3 if smoke else 8
    steps_per_unit = 60.0 if smoke else 200.0
    observables = ["I"] if smoke else ["S", "I"]
    horizons = np.linspace(FIG2_HORIZON / n_horizons, FIG2_HORIZON,
                           n_horizons)

    def run(lanes):
        model = make_sir_model()  # fresh caches: no cross-mode warm state
        return pontryagin_transient_bounds(
            model, X0, horizons, observables=observables,
            steps_per_unit=steps_per_unit, lanes=lanes,
        )

    lane_s, lane_bounds = best_of(lambda: run(True), 1)
    scalar_s, scalar_bounds = best_of(lambda: run(False), 1)
    # rtol 1e-3: cold-started lanes and warm-started scalar sweeps stop
    # at slightly different depths of the same bang-bang optimum (the
    # lane value is occasionally the *better* one).
    for name in observables:
        np.testing.assert_allclose(lane_bounds.lower[name],
                                   scalar_bounds.lower[name],
                                   rtol=1e-3, atol=1e-8)
        np.testing.assert_allclose(lane_bounds.upper[name],
                                   scalar_bounds.upper[name],
                                   rtol=1e-3, atol=1e-8)
    return {
        "n_lanes": int(len(observables) * 2 * n_horizons),
        "steps_per_unit": steps_per_unit,
        "scalar_seconds": round(scalar_s, 6),
        "batched_seconds": round(lane_s, 6),
        "speedup": round(scalar_s / lane_s, 3),
        "bounds_match": True,
    }


def bench_fig1_adaptive_sweep(smoke: bool) -> dict:
    """``dopri_batch`` vs per-theta scipy on the fig1 envelope grid."""
    resolution = 9 if smoke else FIG1_RESOLUTION
    t_eval = FIG1_T_EVAL[:9] if smoke else FIG1_T_EVAL
    model = make_sir_model()
    repeats = 1 if smoke else 3

    def run(batch):
        return uncertain_envelope(model, X0, t_eval, resolution=resolution,
                                  batch=batch)

    run(True)  # warm the lazy drift-batch validation
    batched_s, batched = best_of(lambda: run(True), repeats)
    scalar_s, scalar = best_of(lambda: run(False), repeats)
    for name in batched.observable_names:
        np.testing.assert_allclose(batched.lower[name], scalar.lower[name],
                                   rtol=1e-6, atol=1e-6)
        np.testing.assert_allclose(batched.upper[name], scalar.upper[name],
                                   rtol=1e-6, atol=1e-6)
    return {
        "n_thetas": int(resolution),
        "scalar_seconds": round(scalar_s, 6),
        "batched_seconds": round(batched_s, 6),
        "speedup": round(scalar_s / batched_s, 3),
        "envelopes_match": True,
    }


def bench_fig3_fixed_point_scan(smoke: bool) -> dict:
    """Batched vs warm-started scalar settling of the steady-state curve."""
    resolution = 9 if smoke else 41

    def run(batch):
        model = make_sir_model()
        return uncertain_fixed_points(model, resolution=resolution,
                                      batch=batch)

    batched_s, batched = best_of(lambda: run(True), 1)
    scalar_s, scalar = best_of(lambda: run(False), 1)
    np.testing.assert_allclose(batched, scalar, atol=1e-8)
    return {
        "n_thetas": int(resolution),
        "scalar_seconds": round(scalar_s, 6),
        "batched_seconds": round(batched_s, 6),
        "speedup": round(scalar_s / batched_s, 3),
        "fixed_points_match": True,
    }


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (smaller ladders, weaker speedup "
                             "floors); timings are not archived")
    args = parser.parse_args(argv)

    summary = {
        "fig2_pontryagin": bench_fig2_pontryagin(args.smoke),
        "fig1_adaptive_sweep": bench_fig1_adaptive_sweep(args.smoke),
        "fig3_fixed_point_scan": bench_fig3_fixed_point_scan(args.smoke),
        "smoke": bool(args.smoke),
        "recorded_unix": int(time.time()),
    }
    for name in ("fig2_pontryagin", "fig1_adaptive_sweep",
                 "fig3_fixed_point_scan"):
        entry = summary[name]
        print(f"{name}: scalar {entry['scalar_seconds']:.3f}s  "
              f"batched {entry['batched_seconds']:.3f}s  "
              f"speedup {entry['speedup']:.2f}x")

    fig2_floor, fig1_floor = (1.2, 1.2) if args.smoke else (4.0, 3.0)
    fig2 = summary["fig2_pontryagin"]["speedup"]
    fig1 = summary["fig1_adaptive_sweep"]["speedup"]
    assert fig2 >= fig2_floor, (
        f"fig2 Pontryagin speedup {fig2:.2f}x below the {fig2_floor:.1f}x floor"
    )
    assert fig1 >= fig1_floor, (
        f"fig1 adaptive-sweep speedup {fig1:.2f}x below the "
        f"{fig1_floor:.1f}x floor"
    )

    if not args.smoke:
        RESULTS_DIR.mkdir(exist_ok=True)
        BENCH_PATH.write_text(json.dumps(summary, indent=1, sort_keys=True)
                              + "\n")
        print(f"wrote {BENCH_PATH}")
    return summary


if __name__ == "__main__":
    main()
