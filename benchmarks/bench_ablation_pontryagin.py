"""Ablation — Pontryagin sweep design choices (DESIGN.md).

Three studies on the SIR ``max x_I(3)`` problem of Figure 2:

1. *Optimal vs myopic*: the greedy selection that maximises the drift of
   the objective pointwise (an obvious cheap alternative) versus the
   forward–backward sweep.  The paper's whole point is that the optimum
   is non-myopic — the maximising control starts at ``theta_min``.
2. *Grid resolution*: the bound's sensitivity to the number of RK4/control
   intervals.
3. *Warm start*: horizon continuation (as used by
   :func:`pontryagin_transient_bounds`) versus cold starts.
"""

import numpy as np

from _common import run_once, save_experiment
from repro.bounds import extremal_trajectory
from repro.inclusion import ParametricInclusion
from repro.models import make_sir_model
from repro.reporting import ExperimentResult

MODEL = make_sir_model()
X0 = np.array([0.7, 0.3])
HORIZON = 3.0
DIRECTION = np.array([0.0, 1.0])


def compute_ablation() -> ExperimentResult:
    result = ExperimentResult(
        "ablation_pontryagin",
        "Pontryagin sweep ablations on the SIR max x_I(3) problem",
        parameters={"T": HORIZON},
    )

    # 1. optimal vs myopic greedy selection.
    optimal = extremal_trajectory(MODEL, X0, HORIZON, DIRECTION, n_steps=400)
    inclusion = ParametricInclusion(MODEL)
    greedy = inclusion.extreme_velocity_solution(DIRECTION, X0,
                                                 (0.0, HORIZON))
    result.add_finding("optimal_value", optimal.value)
    result.add_finding("greedy_value", float(greedy.final_state[1]))
    result.add_finding("greedy_shortfall",
                       optimal.value - float(greedy.final_state[1]))

    # 2. grid resolution sensitivity.
    for n_steps in (50, 100, 200, 400, 800):
        res = extremal_trajectory(MODEL, X0, HORIZON, DIRECTION,
                                  n_steps=n_steps)
        result.add_finding(f"value_nsteps_{n_steps}", res.value)
    coarse = result.findings["value_nsteps_50"]
    fine = result.findings["value_nsteps_800"]
    result.add_finding("grid_sensitivity", abs(fine - coarse))

    # 3. warm start vs cold start over a horizon ladder: same bounds,
    # measured iteration counts (the relaxation schedule restarts per
    # horizon, so warm starting is about robustness, not fewer sweeps).
    horizons = np.linspace(0.5, HORIZON, 6)
    cold_iters = 0
    cold_values = []
    for horizon in horizons:
        res = extremal_trajectory(MODEL, X0, float(horizon), DIRECTION,
                                  n_steps=200)
        cold_iters += res.iterations
        cold_values.append(res.value)
    warm_iters = 0
    warm_values = []
    warm = None
    for horizon in horizons:
        initial = None
        if warm is not None:
            from repro.bounds.pontryagin import _resample_controls

            initial = _resample_controls(
                warm[0], warm[1], np.linspace(0.0, float(horizon), 201)
            )
        res = extremal_trajectory(MODEL, X0, float(horizon), DIRECTION,
                                  n_steps=200, initial_controls=initial)
        warm = (res.times, res.controls)
        warm_iters += res.iterations
        warm_values.append(res.value)
    result.add_finding("cold_start_iterations", float(cold_iters))
    result.add_finding("warm_start_iterations", float(warm_iters))
    result.add_finding(
        "warm_cold_value_deviation",
        float(np.max(np.abs(np.asarray(cold_values) - np.asarray(warm_values)))),
    )
    result.add_note(
        "myopic greedy is suboptimal (the optimal control starts at "
        "theta_min); warm and cold starts agree on the bounds"
    )
    return result


def bench_ablation_pontryagin(benchmark):
    result = run_once(benchmark, compute_ablation)
    save_experiment(result)
    assert result.findings["greedy_shortfall"] > 0.01
    assert result.findings["grid_sensitivity"] < 5e-3
    assert result.findings["warm_cold_value_deviation"] < 1e-3
