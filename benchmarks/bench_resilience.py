"""No-fault overhead of the resilience layer.

The robust executor, the per-question isolation wiring and the fault
seams are all opt-in; the contract is that the *default* path pays
(almost) nothing for their existence.  This bench pins that contract
with three measurements:

- **shard fan-out**: legacy ``map_shards`` vs the policy-governed path
  on an identical serial workload — the ratio is the headline
  ``overhead_ratio`` and must stay within ``OVERHEAD_CEILING`` (1.05,
  the ISSUE's <=5%% budget) on full runs;
- **fault seams disarmed**: the exact operation count of a disarmed
  ``faults.active_plan()`` seam check — zero tallies, by construction
  one global load each;
- **scenario runner**: a cached-off envelope scenario under the legacy
  plan vs ``on_error="partial"`` (robust serial loop), recorded for the
  trajectory but not gated (single-run scenario noise dwarfs 5%%).

Results land in ``benchmarks/results/BENCH_resilience.json``.

Run directly (``--smoke`` for the CI-sized variant)::

    PYTHONPATH=src python benchmarks/bench_resilience.py [--smoke]
"""

import argparse
import json
import time

import numpy as np

from _common import RESULTS_DIR, best_of, record_timing
from repro.engine import map_shards
from repro.models import make_sir_model
from repro.ode.batch import dopri_batch
from repro.resilience import RetryPolicy, faults
from repro.scenarios import Question, get_scenario, run_scenario

BENCH_PATH = RESULTS_DIR / "BENCH_resilience.json"

#: The ISSUE's no-fault overhead budget for the robust shard path.
OVERHEAD_CEILING = 1.05


def _shard_workload(theta):
    """One CPU-bound shard: a small batched ODE integration."""
    f = lambda t, X: -theta * X
    sol = dopri_batch(f, np.ones((4, 2)), (0.0, 1.0),
                      t_eval=np.linspace(0.0, 1.0, 5))
    return float(sol.final_states.sum())


def bench_shard_overhead(smoke: bool) -> dict:
    """Legacy vs robust ``map_shards`` on an identical serial workload."""
    n_shards = 8 if smoke else 32
    repeats = 3 if smoke else 10
    payloads = [0.5 + 0.1 * i for i in range(n_shards)]
    policy = RetryPolicy()

    legacy_s, legacy_out = best_of(
        lambda: map_shards(_shard_workload, payloads), repeats)
    robust_s, robust_out = best_of(
        lambda: map_shards(_shard_workload, payloads, policy=policy),
        repeats)
    if legacy_out != robust_out:
        raise AssertionError(
            "robust no-fault path diverged from the legacy results"
        )
    return {
        "n_shards": n_shards,
        "legacy_seconds": round(legacy_s, 6),
        "robust_seconds": round(robust_s, 6),
        "overhead_ratio": round(robust_s / legacy_s, 4),
        "bit_identical": True,
    }


def bench_disarmed_seams() -> dict:
    """Prove the disarmed seam cost by operation count, not wall clock."""
    faults.reset_stats()
    checks = 10_000
    start = time.perf_counter()
    for _ in range(checks):
        faults.active_plan()
    elapsed = time.perf_counter() - start
    stats = faults.stats()
    if stats["seam_checks"] != 0 or stats["injected"] != 0:
        raise AssertionError(
            f"disarmed seams tallied operations: {stats}"
        )
    return {
        "disarmed_checks": checks,
        "tallied_operations": stats["seam_checks"],
        "nanoseconds_per_check": round(elapsed / checks * 1e9, 1),
    }


def bench_scenario_overhead(smoke: bool) -> dict:
    """Legacy plan vs ``on_error="partial"`` on a healthy scenario."""
    repeats = 2 if smoke else 5
    spec = get_scenario("sir-transient").with_overrides(
        name="bench-resilience-envelope",
        questions=[Question("envelope",
                            options={"n_times": 4 if smoke else 13})],
    )
    legacy_s, _ = best_of(lambda: run_scenario(spec, use_cache=False),
                          repeats)
    robust_s, _ = best_of(
        lambda: run_scenario(spec, use_cache=False, on_error="partial"),
        repeats)
    return {
        "legacy_seconds": round(legacy_s, 6),
        "robust_seconds": round(robust_s, 6),
        "overhead_ratio": round(robust_s / legacy_s, 4),
    }


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (fewer shards/repeats, no "
                             "overhead-ceiling gate)")
    args = parser.parse_args(argv)

    summary = {
        "smoke": bool(args.smoke),
        "overhead_ceiling": OVERHEAD_CEILING,
        "shard_fanout": bench_shard_overhead(args.smoke),
        "disarmed_seams": bench_disarmed_seams(),
        "scenario_runner": bench_scenario_overhead(args.smoke),
        "recorded_unix": int(time.time()),
    }
    shard = summary["shard_fanout"]
    print(f"shard fan-out: legacy {shard['legacy_seconds']:.4f}s  "
          f"robust {shard['robust_seconds']:.4f}s  "
          f"ratio {shard['overhead_ratio']:.3f}")
    print(f"disarmed seams: {summary['disarmed_seams']['disarmed_checks']} "
          f"checks, {summary['disarmed_seams']['tallied_operations']} "
          f"tallied, "
          f"{summary['disarmed_seams']['nanoseconds_per_check']:.0f} ns "
          "each")
    scen = summary["scenario_runner"]
    print(f"scenario runner: legacy {scen['legacy_seconds']:.4f}s  "
          f"robust {scen['robust_seconds']:.4f}s  "
          f"ratio {scen['overhead_ratio']:.3f}")

    if not args.smoke and shard["overhead_ratio"] > OVERHEAD_CEILING:
        raise AssertionError(
            f"no-fault robust shard path costs "
            f"{shard['overhead_ratio']:.3f}x the legacy path "
            f"(ceiling {OVERHEAD_CEILING:.2f}x)"
        )

    RESULTS_DIR.mkdir(exist_ok=True)
    BENCH_PATH.write_text(json.dumps(summary, indent=1, sort_keys=True)
                          + "\n")
    record_timing("bench_resilience",
                  shard["legacy_seconds"] + shard["robust_seconds"],
                  overhead_ratio=shard["overhead_ratio"])
    print(f"wrote {BENCH_PATH}")
    return summary


if __name__ == "__main__":
    main()
