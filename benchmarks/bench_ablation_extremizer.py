"""Ablation — extremiser strategies (DESIGN.md: affine fast path).

Compares the three Hamiltonian-maximisation strategies on the SIR model:
the closed-form bang-bang rule for affine-in-theta drifts, corner
enumeration, and grid search.  All three must agree on the support
function for affine models; the ablation measures what the closed form
buys in runtime (it is the inner loop of every Pontryagin sweep).
"""

import numpy as np

from _common import save_experiment
from repro.inclusion import DriftExtremizer
from repro.models import make_sir_model
from repro.reporting import ExperimentResult

MODEL = make_sir_model()
RNG = np.random.default_rng(99)
POINTS = [(RNG.uniform(0, 1, size=2), RNG.normal(size=2)) for _ in range(50)]


def _sweep(extremizer):
    total = 0.0
    for x, p in POINTS:
        total += extremizer.maximize_direction(x, p)[1]
    return total


def bench_ablation_extremizer_affine(benchmark):
    ext = DriftExtremizer(MODEL, method="affine")
    value = benchmark(_sweep, ext)
    assert np.isfinite(value)


def bench_ablation_extremizer_corners(benchmark):
    ext = DriftExtremizer(MODEL, method="corners")
    value = benchmark(_sweep, ext)
    # Corners are exact for affine models: same support values.
    assert value == benchmark.extra_info.setdefault("value", value)


def bench_ablation_extremizer_grid(benchmark):
    ext = DriftExtremizer(MODEL, method="grid", grid_resolution=21)
    value = benchmark(_sweep, ext)
    assert np.isfinite(value)


def bench_ablation_extremizer_agreement(benchmark):
    """Archive the agreement check across strategies."""

    def check():
        result = ExperimentResult(
            "ablation_extremizer",
            "Extremiser strategies agree on affine models",
            parameters={"points": len(POINTS)},
        )
        affine = _sweep(DriftExtremizer(MODEL, method="affine"))
        corners = _sweep(DriftExtremizer(MODEL, method="corners"))
        grid = _sweep(DriftExtremizer(MODEL, method="grid",
                                      grid_resolution=21))
        result.add_finding("sum_support_affine", affine)
        result.add_finding("sum_support_corners", corners)
        result.add_finding("sum_support_grid", grid)
        result.add_finding("max_abs_deviation",
                           max(abs(affine - corners), abs(affine - grid)))
        return result

    result = benchmark.pedantic(check, rounds=1, iterations=1)
    save_experiment(result)
    assert result.findings["max_abs_deviation"] < 1e-9
