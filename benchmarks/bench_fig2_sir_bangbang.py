"""Figure 2 — extremal SIR trajectories and their bang-bang controls.

Regenerates the trajectories attaining the maximum and minimum number of
infected nodes at ``T = 3`` and extracts the switching structure of the
optimal parameter signals.

Paper-expected shape: both extremals are bang-bang; the maximising
control applies ``theta_min`` until ``t ~ 2.25`` then ``theta_max``; the
minimising control is ``theta_min`` until ``t ~ 0.7``, ``theta_max``
until ``t ~ 2.2``, then ``theta_min`` again.
"""

import numpy as np

from _common import run_once, save_experiment
from repro.bounds import extremal_trajectory, switching_times_from_costate
from repro.models import SIR_PAPER_PARAMS, make_sir_model
from repro.reporting import ExperimentResult

HORIZON = 3.0


def compute_fig2() -> ExperimentResult:
    model = make_sir_model()
    x0 = np.asarray(SIR_PAPER_PARAMS["x0"])
    result = ExperimentResult(
        "fig2",
        "SIR: trajectories attaining max/min infected at T = 3 (bang-bang)",
        parameters={"T": HORIZON, "theta": "[1, 10]", "x0": tuple(x0)},
    )

    maximal = extremal_trajectory(model, x0, HORIZON, [0.0, 1.0],
                                  maximize=True, n_steps=600)
    minimal = extremal_trajectory(model, x0, HORIZON, [0.0, 1.0],
                                  maximize=False, n_steps=600)

    result.add_series("xI_traj_max", maximal.times, maximal.states[:, 1])
    result.add_series("xS_traj_max", maximal.times, maximal.states[:, 0])
    result.add_series("xI_traj_min", minimal.times, minimal.states[:, 1])
    result.add_series("xS_traj_min", minimal.times, minimal.states[:, 0])
    result.add_series("control_max", maximal.times[:-1],
                      maximal.controls[:, 0])
    result.add_series("control_min", minimal.times[:-1],
                      minimal.controls[:, 0])

    # Read the structural switches off the costate switching function —
    # the discrete control can chatter across grid cells near a switch,
    # while sigma(t) = p . G(x) crosses zero once per genuine switch.
    sw_max = switching_times_from_costate(maximal, model)
    sw_min = switching_times_from_costate(minimal, model)
    result.add_finding("max_xI_at_3", maximal.value)
    result.add_finding("min_xI_at_3", minimal.value)
    result.add_finding("n_switches_max", float(len(sw_max)))
    result.add_finding("n_switches_min", float(len(sw_min)))
    for k, t in enumerate(sw_max):
        result.add_finding(f"switch_max_{k}", t)
    for k, t in enumerate(sw_min):
        result.add_finding(f"switch_min_{k}", t)
    result.add_note(
        "paper: maximising control switches theta_min->theta_max at ~2.25; "
        f"measured {sw_max}"
    )
    result.add_note(
        "paper: minimising control switches at ~0.7 and ~2.2; "
        f"measured {sw_min}"
    )
    return result


def bench_fig2_sir_bangbang(benchmark):
    result = run_once(benchmark, compute_fig2)
    save_experiment(result)
    assert result.findings["n_switches_max"] == 1
    assert 2.0 < result.findings["switch_max_0"] < 2.5
    assert result.findings["n_switches_min"] == 2
    assert 0.4 < result.findings["switch_min_0"] < 1.0
    assert 1.8 < result.findings["switch_min_1"] < 2.4
