"""Robust load balancing: does power-of-two-choices survive bursty demand?

An extension example on the classical supermarket model (``N`` servers,
jobs sample ``d`` servers and join the shortest queue).  The arrival
rate is *imprecise*: it may swing anywhere in ``[0.7, 0.95]`` jobs per
server per unit time, on any schedule — flash crowds, diurnal waves,
retry storms.  Three questions a capacity planner would ask:

1. How much worse can the backlog get under adversarial demand than
   under the worst *constant* demand?  (Pontryagin vs sweep bounds.)
2. Does sampling two servers (d = 2) still beat random routing (d = 1)
   in the worst case, not just on average?
3. What box certifiably contains the long-run state, whatever the
   demand does?  (Asymptotic reachable hull — the steady-state template
   method, which works in this 10-dimensional model where the 2-D
   Birkhoff construction does not apply.)

Run:  python examples/load_balancing.py
"""

import numpy as np

from repro import (
    Question,
    box_directions,
    get_scenario,
    make_power_of_d_model,
    render_table,
    run_scenario,
)
from repro.steadystate import asymptotic_reachable_hull

DEPTH = 10
HORIZON = 4.0
ARRIVALS = (0.7, 0.95)


def backlog_spec(choices: int):
    """Derive the catalogued load-balancing scenario to this study's
    depth-10 configuration and routing degree."""
    x0 = np.zeros(DEPTH)
    x0[0] = 0.5
    return get_scenario("load-balancing").with_overrides(
        name=f"load-balancing-d{choices}",
        x0=tuple(x0),
        horizon=HORIZON,
        model_kwargs={"buffer_depth": DEPTH, "choices": choices,
                      "arrival_bounds": list(ARRIVALS)},
        observables=("mean_queue_length",),
        questions=(
            Question("envelope", options={"times": [0.0, HORIZON],
                                          "resolution": 9}),
            Question("pontryagin", options={"horizons": [HORIZON],
                                            "steps_per_unit": 50,
                                            "sides": ["upper"]}),
        ),
    )


def worst_case_backlog(choices: int):
    spec = backlog_spec(choices)
    findings = run_scenario(spec).result.findings
    model = spec.build_model()
    return (model, np.asarray(spec.x0),
            findings["mean_queue_length_imprecise_max_final"],
            findings["mean_queue_length_uncertain_max_final"])


def main():
    print(f"supermarket model, buffer depth {DEPTH}, "
          f"arrival rate imprecise in {ARRIVALS}\n")

    rows = []
    results = {}
    for d in (1, 2):
        model, x0, imprecise, uncertain = worst_case_backlog(d)
        results[d] = (model, x0)
        rows.append([f"d = {d}", uncertain, imprecise, imprecise - uncertain])
    print("1) Worst-case mean queue length at T = %g" % HORIZON)
    print(render_table(
        ["routing", "max (uncertain)", "max (imprecise)", "gap"],
        rows, float_format="{:.4f}",
    ))
    ratio = rows[1][2] / rows[0][2]
    print(f"\n2) Robust d=2 vs d=1: worst-case backlog ratio = {ratio:.2f} "
          "- the power-of-two advantage survives adversarial demand.\n")

    model, x0 = results[2]
    hull = asymptotic_reachable_hull(
        model, x0,
        horizons=np.array([6.0, 12.0, 18.0]),
        directions=box_directions(DEPTH),
        n_steps_per_unit=30,
    )
    lower, upper = hull.bounding_box()
    print("3) Certified long-run box for d = 2 (per tail coordinate x_k):")
    print(render_table(
        ["k", "x_k lower", "x_k upper"],
        [[k + 1, float(lower[k]), float(upper[k])] for k in range(DEPTH)],
        float_format="{:.4f}",
    ))
    print(
        "\nWhatever the demand trajectory inside the interval, the "
        "stationary tail fractions stay inside this box — e.g. the "
        f"fraction of servers with >= 4 jobs never settles above "
        f"{upper[3]:.3f}."
    )


if __name__ == "__main__":
    main()
