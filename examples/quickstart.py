"""Quickstart: transient bounds for an epidemic with an imprecise contact rate.

The SIR model of the paper (Section V): nodes are susceptible, infected
or recovered; the contact rate ``theta`` is only known to lie in
``[1, 10]`` and may vary arbitrarily in time (the *imprecise* scenario).
The analysis is one call into the declarative scenario catalog: the
``sir-transient`` entry bundles

1. the *uncertain* envelope — the range reachable by any constant
   ``theta`` (a parameter sweep over the mean-field ODEs), and
2. the *imprecise* bounds — the exact range reachable when ``theta``
   varies in time, computed by Pontryagin forward–backward sweeps on the
   mean-field differential inclusion,

which this script derives onto a denser horizon ladder and prints side
by side.  The imprecise bounds are strictly wider: an adversarial
environment can push the epidemic beyond what any fixed parameter
explains.  Results are memoized in the scenario disk cache — re-run the
script and the table is served from ``~/.cache/repro-scenarios``.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Question, get_scenario, render_table, run_scenario


def main():
    horizons = np.linspace(0.5, 4.0, 8)
    spec = get_scenario("sir-transient").with_overrides(
        name="quickstart",
        horizon=4.0,
        questions=(
            Question("envelope",
                     options={"times": [0.0] + list(horizons),
                              "resolution": 21}),
            Question("pontryagin",
                     options={"horizons": list(horizons),
                              "steps_per_unit": 80}),
        ),
    )

    print("SIR with imprecise contact rate theta(t) in [1, 10]")
    print(f"initial state (S, I) = {spec.x0}\n")

    run = run_scenario(spec)
    series = run.result.series

    rows = []
    for t in horizons:
        rows.append([
            float(t),
            series["I_uncertain_lower"].at(t),
            series["I_uncertain_upper"].at(t),
            series["I_imprecise_lower"].at(t),
            series["I_imprecise_upper"].at(t),
        ])
    print(render_table(
        ["t", "I min (uncertain)", "I max (uncertain)",
         "I min (imprecise)", "I max (imprecise)"],
        rows, float_format="{:.4f}",
    ))

    gap = (series["I_imprecise_upper"].final
           - series["I_uncertain_upper"].final)
    print(
        f"\nAt t = {horizons[-1]:g} the imprecise maximum exceeds the best "
        f"constant-parameter maximum by {gap:.4f} — time-varying "
        "environments are strictly more dangerous than unknown-but-fixed "
        "ones (Figure 1 of the paper)."
    )
    print(f"\n[{'cache hit' if run.report.cache_hit else 'computed'} "
          f"in {run.report.elapsed_seconds:.2f}s — "
          "see `python -m repro list` for the full scenario catalog]")


if __name__ == "__main__":
    main()
