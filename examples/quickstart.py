"""Quickstart: transient bounds for an epidemic with an imprecise contact rate.

The SIR model of the paper (Section V): nodes are susceptible, infected
or recovered; the contact rate ``theta`` is only known to lie in
``[1, 10]`` and may vary arbitrarily in time (the *imprecise* scenario).
This script computes, for the proportion of infected nodes:

1. the *uncertain* envelope — the range reachable by any constant
   ``theta`` (a parameter sweep over the mean-field ODEs), and
2. the *imprecise* bounds — the exact range reachable when ``theta``
   varies in time, computed by Pontryagin forward–backward sweeps on the
   mean-field differential inclusion,

and prints them side by side.  The imprecise bounds are strictly wider:
an adversarial environment can push the epidemic beyond what any fixed
parameter explains.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    make_sir_model,
    pontryagin_transient_bounds,
    render_table,
    uncertain_envelope,
)


def main():
    model = make_sir_model()          # a=0.1, b=5, c=1, theta in [1, 10]
    x0 = [0.7, 0.3]                   # 70% susceptible, 30% infected
    horizons = np.linspace(0.5, 4.0, 8)

    print("SIR with imprecise contact rate theta(t) in [1, 10]")
    print(f"initial state (S, I) = {tuple(x0)}\n")

    uncertain = uncertain_envelope(
        model, x0, np.concatenate([[0.0], horizons]),
        resolution=21, observables=["I"],
    )
    imprecise = pontryagin_transient_bounds(
        model, x0, horizons, observables=["I"], steps_per_unit=80,
    )

    rows = []
    for k, t in enumerate(horizons):
        rows.append([
            float(t),
            float(uncertain.lower["I"][k + 1]),
            float(uncertain.upper["I"][k + 1]),
            float(imprecise.lower["I"][k]),
            float(imprecise.upper["I"][k]),
        ])
    print(render_table(
        ["t", "I min (uncertain)", "I max (uncertain)",
         "I min (imprecise)", "I max (imprecise)"],
        rows, float_format="{:.4f}",
    ))

    gap = imprecise.upper["I"][-1] - uncertain.upper["I"][-1]
    print(
        f"\nAt t = {horizons[-1]:g} the imprecise maximum exceeds the best "
        f"constant-parameter maximum by {gap:.4f} — time-varying "
        "environments are strictly more dangerous than unknown-but-fixed "
        "ones (Figure 1 of the paper)."
    )


if __name__ == "__main__":
    main()
