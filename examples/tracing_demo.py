"""Observability demo: trace a scenario run down to the ODE kernels.

``repro.telemetry`` is a zero-dependency tracer + metrics registry
built into the toolkit.  It is off by default (instrumented code pays
one flag check); switched on, every scenario run produces

1. a **span tree** — nested, walltime-annotated sections from the
   runner through the question backends down to the batched
   integrator kernels, with repeated kernel invocations folded into
   one aggregate line;
2. a **metrics snapshot** — counters (accepted/rejected ODE steps,
   Pontryagin iterations, cache hits by miss reason), gauges
   (SSA events/sec) and power-of-two-bucket histograms (per-shard
   seconds, residual magnitudes);
3. optionally a **Chrome-trace JSON** timeline loadable in
   ``chrome://tracing`` or https://ui.perfetto.dev.

This script runs the paper's Fig. 1 scenario with telemetry on, prints
the tree and the most interesting counters, and demonstrates the live
subscriber seam (a progress line per top-level question).  The same
workflow is available without code via::

    python -m repro run sir-transient --trace \
        --metrics-out metrics.json --trace-out trace.json

Run:  python examples/tracing_demo.py
"""

from repro import get_scenario, run_scenario, telemetry


def progress(event, span):
    """A live subscriber: one line per finished question."""
    if event == "span_end" and span.name == "scenario.question":
        kind = span.attributes.get("kind", "?")
        print(f"  [progress] question {kind!r} finished "
              f"in {span.duration:.3f}s")


def main():
    telemetry.enable()
    telemetry.clear()
    token = telemetry.subscribe(progress)

    print("running sir-transient with telemetry enabled...")
    run = run_scenario(get_scenario("sir-transient"), use_cache=False)
    telemetry.unsubscribe(token)

    print("\nspan tree (runner -> backends -> kernels):")
    print(telemetry.render_trace())

    snap = telemetry.snapshot()
    print("\nselected counters:")
    for key in sorted(snap["counters"]):
        if key.startswith(("ode.", "pontryagin.", "scenarios.")):
            print(f"  {key} = {snap['counters'][key]:g}")

    residuals = snap["histograms"].get("pontryagin.value_residual")
    if residuals:
        print("\npontryagin residual histogram "
              f"(n={residuals['count']}, mean={residuals['mean']:.3g}):")
        for edge, n in residuals["buckets"]:
            print(f"  <= {edge:.3g}: {n}")

    path = telemetry.save_chrome_trace("trace.json")
    print(f"\nchrome trace written to {path} "
          "(open chrome://tracing or ui.perfetto.dev)")
    print(f"report: {run.report.render()}")


if __name__ == "__main__":
    main()
