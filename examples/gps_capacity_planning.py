"""Cloud capacity planning with the GPS model: arrivals matter, weights too.

The queueing study of Section VI, as an operator would use it.  Two
application classes share one machine under generalised processor
sharing (GPS).  Per-class sending rates are imprecise (``lambda_1 in
[1, 7]``, ``lambda_2 in [2, 3]``).  This example answers two planning
questions:

1. *Does the arrival process matter?*  The catalogued ``gps-poisson``
   and ``gps-map`` scenarios bundle the uncertain envelope and the
   imprecise Pontryagin bounds per class; under Poisson job creation the
   worst time-varying demand is no worse than the worst constant demand,
   under MAP creation (an activation stage before sending) a varying
   rate beats every constant one.  Sizing a system from constant-rate
   envelopes is unsafe when arrivals are bursty.
2. *How should the GPS weights be set?*  Tune ``phi_1`` to minimise the
   worst-case total queue length over the imprecise inclusion — the
   robust design of Section VI-C.

Run:  python examples/gps_capacity_planning.py
"""

from repro import (
    Question,
    get_scenario,
    gps_initial_state_map,
    make_gps_map_model,
    render_table,
    robust_minimize_scalar,
    run_scenario,
)
from repro.analysis.robust import worst_case_objective

HORIZON = 5.0


def planning_spec(base_name: str):
    """Derive the catalog entry to the planning ladder (envelope at the
    horizon + both-sided Pontryagin bounds, per class)."""
    return get_scenario(base_name).with_overrides(
        name=f"{base_name}-planning",
        questions=(
            Question("envelope", options={"times": [0.0, HORIZON],
                                          "resolution": 7}),
            Question("pontryagin", options={"horizons": [HORIZON],
                                            "steps_per_unit": 40}),
        ),
    )


def arrival_process_comparison():
    print("1) Worst-case queue build-up: Poisson vs MAP arrivals")
    rows = []
    for label, base in (("Poisson", "gps-poisson"), ("MAP", "gps-map")):
        result = run_scenario(planning_spec(base)).result
        for name in ("Q1", "Q2"):
            uncertain = result.findings[f"{name}_uncertain_max_final"]
            imprecise = result.findings[f"{name}_imprecise_max_final"]
            rows.append([label, name, uncertain, imprecise,
                         imprecise - uncertain])
    print(render_table(
        ["arrivals", "class", "max (uncertain)", "max (imprecise)", "gap"],
        rows, float_format="{:.4f}",
    ))
    print(
        "-> Poisson: gap ~ 0 (constant worst case suffices). MAP: the "
        "imprecise worst case is strictly larger — time-varying demand "
        "exploits the activation delay (Figure 7 of the paper).\n"
    )


def weight_tuning():
    print("2) Robust GPS weight: minimise worst-case Q1 + Q2 at T = 5")

    def objective(phi1: float) -> float:
        model = make_gps_map_model(phi=(phi1, 1.0))
        return worst_case_objective(
            model, gps_initial_state_map(), HORIZON,
            model.observables["Qtotal"], n_steps=120,
        )

    design = robust_minimize_scalar(objective, (0.5, 20.0),
                                    coarse_points=7, xatol=0.1)
    rows = [[g, v] for g, v in zip(design.design_grid,
                                   design.objective_grid)]
    print(render_table(["phi1 (phi2 = 1)", "worst-case Q1 + Q2"],
                       rows, float_format="{:.4f}"))
    print(f"\nrobust optimum: phi1* = {design.optimum:.2f} "
          f"(worst case {design.value:.4f}; convex on grid: "
          f"{design.is_convex_on_grid(tol=1e-3)})")
    print(
        "-> The optimum prioritises the fast-service class well beyond "
        "equal weights, mirroring the paper's phi_1 = 9 phi_2 finding for "
        "its configuration."
    )


def main():
    arrival_process_comparison()
    weight_tuning()


if __name__ == "__main__":
    main()
