"""Cloud capacity planning with the GPS model: arrivals matter, weights too.

The queueing study of Section VI, as an operator would use it.  Two
application classes share one machine under generalised processor
sharing (GPS).  Per-class sending rates are imprecise (``lambda_1 in
[1, 7]``, ``lambda_2 in [2, 3]``).  This example answers two planning
questions:

1. *Does the arrival process matter?*  Under Poisson job creation the
   worst time-varying demand is no worse than the worst constant demand;
   under MAP creation (an activation stage before sending) a varying
   rate beats every constant one.  Sizing a system from constant-rate
   envelopes is unsafe when arrivals are bursty.
2. *How should the GPS weights be set?*  Tune ``phi_1`` to minimise the
   worst-case total queue length over the imprecise inclusion — the
   robust design of Section VI-C.

Run:  python examples/gps_capacity_planning.py
"""

import numpy as np

from repro import (
    extremal_trajectory,
    gps_initial_state_map,
    gps_initial_state_poisson,
    make_gps_map_model,
    make_gps_poisson_model,
    render_table,
    robust_minimize_scalar,
    uncertain_envelope,
)
from repro.analysis.robust import worst_case_objective

HORIZON = 5.0


def arrival_process_comparison():
    print("1) Worst-case queue build-up: Poisson vs MAP arrivals")
    rows = []
    for label, model, x0 in (
        ("Poisson", make_gps_poisson_model(), gps_initial_state_poisson()),
        ("MAP", make_gps_map_model(), gps_initial_state_map()),
    ):
        for name in ("Q1", "Q2"):
            imprecise = extremal_trajectory(
                model, x0, HORIZON, model.observables[name], n_steps=200,
            )
            env = uncertain_envelope(
                model, x0, np.array([0.0, HORIZON]), resolution=7,
                observables=[name],
            )
            rows.append([
                label, name, float(env.upper[name][-1]), imprecise.value,
                imprecise.value - float(env.upper[name][-1]),
            ])
    print(render_table(
        ["arrivals", "class", "max (uncertain)", "max (imprecise)", "gap"],
        rows, float_format="{:.4f}",
    ))
    print(
        "-> Poisson: gap ~ 0 (constant worst case suffices). MAP: the "
        "imprecise worst case is strictly larger — time-varying demand "
        "exploits the activation delay (Figure 7 of the paper).\n"
    )


def weight_tuning():
    print("2) Robust GPS weight: minimise worst-case Q1 + Q2 at T = 5")

    def objective(phi1: float) -> float:
        model = make_gps_map_model(phi=(phi1, 1.0))
        return worst_case_objective(
            model, gps_initial_state_map(), HORIZON,
            model.observables["Qtotal"], n_steps=120,
        )

    design = robust_minimize_scalar(objective, (0.5, 20.0),
                                    coarse_points=7, xatol=0.1)
    rows = [[g, v] for g, v in zip(design.design_grid,
                                   design.objective_grid)]
    print(render_table(["phi1 (phi2 = 1)", "worst-case Q1 + Q2"],
                       rows, float_format="{:.4f}"))
    print(f"\nrobust optimum: phi1* = {design.optimum:.2f} "
          f"(worst case {design.value:.4f}; convex on grid: "
          f"{design.is_convex_on_grid(tol=1e-3)})")
    print(
        "-> The optimum prioritises the fast-service class well beyond "
        "equal weights, mirroring the paper's phi_1 = 9 phi_2 finding for "
        "its configuration."
    )


def main():
    arrival_process_comparison()
    weight_tuning()


if __name__ == "__main__":
    main()
