"""Bike-sharing station under imprecise demand: exact finite-N analysis.

The running example of Sections II–III: one station with ``N`` racks,
customers take bikes at rate ``theta_a(t)`` and return them at rate
``theta_r(t)``, both rates only known to lie in intervals.  At this
scale (one station) the chain is small enough for *exact* analysis, so
this example works at finite ``N`` rather than in the mean-field limit:

1. bound the *occupancy density* through the catalogued
   ``bike-station`` scenario (mean-field envelope, imprecise Pontryagin
   bounds and a finite-``N`` vectorized SSA ensemble in one call);
2. enumerate the birth–death chain and build the imprecise generator
   family ``Q(theta)``;
3. bound the probability that the station is *empty* at the end of a
   rush hour via the imprecise Kolmogorov equations (Eq. 2 of the
   paper), solved exactly with the same Pontryagin machinery used for
   mean-field bounds — here on the master equation;
4. compare with the uncertain (constant-rate) envelope and with SSA
   estimates under an adversarial demand policy.

Run:  python examples/bike_sharing.py
"""

import numpy as np

from repro import make_bike_station_model, render_table, run_scenario, simulate
from repro.ctmc import (
    ImpreciseCTMC,
    imprecise_reward_bounds,
    uncertain_reward_envelope,
)
from repro.scenarios import get_scenario
from repro.simulation import FeedbackPolicy

N_RACKS = 15
HORIZON = 6.0  # the rush-hour window
INITIAL_FILL = 0.6


def mean_field_overview(arrival_bounds, return_bounds):
    """The catalogued scenario, derived to this example's demand set."""
    spec = get_scenario("bike-station").with_overrides(
        name="bike-rush-hour",
        x0=(INITIAL_FILL,),
        model_kwargs={"arrival_bounds": list(arrival_bounds),
                      "return_bounds": list(return_bounds)},
    )
    run = run_scenario(spec)
    f = run.result.findings
    print("mean-field occupancy bounds at the end of the rush hour "
          f"(t = {HORIZON:g}):")
    print(f"  uncertain envelope: [{f['occupied_uncertain_min_final']:.3f}, "
          f"{f['occupied_uncertain_max_final']:.3f}]")
    print(f"  imprecise (exact):  [{f['occupied_imprecise_min_final']:.3f}, "
          f"{f['occupied_imprecise_max_final']:.3f}]")
    print(f"  N = {int(f['ensemble_population_size'])} ensemble mean: "
          f"[{f['ensemble_occupied_final_mean_min']:.3f}, "
          f"{f['ensemble_occupied_final_mean_max']:.3f}] "
          "(across extreme constant demands)")
    print("  (for this 1-D model the imprecise bounds provably contain "
          "the envelope and both saturate the [0, 1] occupancy range; "
          "the displayed values carry ~2e-3 integrator chatter where "
          "the drift slides on the boundary)\n")


def main():
    arrival_bounds, return_bounds = (0.6, 1.4), (0.8, 1.2)
    mean_field_overview(arrival_bounds, return_bounds)
    model = make_bike_station_model(arrival_bounds=arrival_bounds,
                                    return_bounds=return_bounds)
    population = model.instantiate(N_RACKS, [INITIAL_FILL])
    chain = ImpreciseCTMC(population)
    print(f"station with {N_RACKS} racks, {chain.n_states} chain states, "
          f"initial fill {INITIAL_FILL:.0%}")
    print("demand theta_a in [0.6, 1.4], returns theta_r in [0.8, 1.2]\n")

    empty = (chain.states[:, 0] == 0).astype(float)
    full = (chain.states[:, 0] == N_RACKS).astype(float)

    rows = []
    for label, reward in (("P(empty)", empty), ("P(full)", full)):
        res_max = imprecise_reward_bounds(chain, reward, HORIZON,
                                          maximize=True, n_steps=200)
        res_min = imprecise_reward_bounds(chain, reward, HORIZON,
                                          maximize=False, n_steps=200)
        _, lo, hi = uncertain_reward_envelope(
            chain, reward, np.array([0.0, HORIZON]), resolution=7,
        )
        rows.append([label, res_min.value, res_max.value,
                     float(lo[-1]), float(hi[-1])])
    print(render_table(
        ["metric", "imprecise min", "imprecise max",
         "uncertain min", "uncertain max"],
        rows, float_format="{:.4f}",
    ))

    # Validate the worst-case bound with an adversarial simulation: a
    # demand policy that always drains the station (max arrivals, min
    # returns) should approach the imprecise P(empty) upper bound.
    adversary = FeedbackPolicy(lambda t, x: [1.4, 0.8])
    n_runs, hits = 400, 0
    for seed in range(n_runs):
        run = simulate(population, adversary, HORIZON,
                       rng=np.random.default_rng(seed), n_samples=2)
        hits += run.final_state[0] == 0.0
    res_max = imprecise_reward_bounds(chain, empty, HORIZON,
                                      maximize=True, n_steps=200)
    print(f"\nadversarial SSA estimate of P(empty at T): "
          f"{hits / n_runs:.4f} over {n_runs} runs")
    print(f"imprecise upper bound:                     {res_max.value:.4f}")
    print(
        "\nThe imprecise bounds certify worst-case stock-out risk against "
        "any demand pattern inside the intervals — the input a rebalancing "
        "planner needs when demand is driven by weather and events it "
        "cannot predict."
    )


if __name__ == "__main__":
    main()
