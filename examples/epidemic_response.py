"""Robust epidemic response: sizing a patching campaign under imprecision.

The paper's introduction motivates the framework with epidemic/malware
response: "we can design a patching (or vaccination) strategy to
counteract an epidemic which is effective even if the infection rate
changes in time in unpredictable ways."  This example does exactly that.

Scenario: malware spreads through a network following the SIR dynamics
of Section V, with a contact rate ``theta(t)`` the operator cannot
observe, bounded in ``[1, 10]``.  The operator controls the *patching
rate* ``b`` (how fast infected machines are cleaned).  The design
question: what is the smallest ``b`` such that, whatever the environment
does, the proportion of infected machines never exceeds 5% once the
initial outbreak has been absorbed?

Method: each candidate ``b`` is a derived scenario (same spec, one
overridden model parameter) whose single Pontryagin question computes
the worst-case infected proportion over a horizon grid; bisection on
``b`` finds the certified minimum.  Every candidate lands in the
content-hash scenario cache, so re-running the design study (or
extending the bisection) reuses all previously evaluated candidates.

Run:  python examples/epidemic_response.py
"""

import numpy as np

from repro import Question, ScenarioSpec, make_sir_model, render_table, run_scenario

TARGET_INFECTED = 0.05
HORIZONS = np.linspace(1.0, 8.0, 8)
X0 = (0.95, 0.05)  # small initial outbreak


def candidate_spec(patch_rate: float) -> ScenarioSpec:
    """The design candidate as a declarative scenario."""
    return ScenarioSpec(
        name=f"epidemic-response-b{patch_rate:.6g}",
        title=f"SIR worst-case infections at patch rate b={patch_rate:.6g}",
        model_factory=make_sir_model,
        model_kwargs={"b": float(patch_rate)},
        x0=X0,
        horizon=float(HORIZONS[-1]),
        observables=("I",),
        questions=(
            Question("pontryagin",
                     options={"horizons": list(HORIZONS),
                              "steps_per_unit": 50,
                              "sides": ["upper"]}),
        ),
        tags=("design", "epidemic"),
    )


def worst_case_peak(patch_rate: float) -> float:
    """Worst-case infected proportion over the horizon grid (cached)."""
    run = run_scenario(candidate_spec(patch_rate))
    return float(np.max(run.result.series["I_imprecise_upper"].values))


def main():
    print("Designing a patching rate b such that worst-case infections "
          f"stay below {TARGET_INFECTED:.0%}")
    print("contact rate theta(t) in [1, 10], arbitrary in time\n")

    # Coarse landscape first: show how the guarantee improves with b.
    grid = [2.0, 4.0, 6.0, 8.0, 10.0, 12.0]
    rows = [[b, worst_case_peak(b)] for b in grid]
    print(render_table(["patch rate b", "worst-case peak infected"],
                       rows, float_format="{:.4f}"))

    # Bisection for the certified minimal rate.
    lo, hi = 2.0, 12.0
    if worst_case_peak(hi) > TARGET_INFECTED:
        raise SystemExit("target unreachable in the searched range")
    for _ in range(12):
        mid = 0.5 * (lo + hi)
        if worst_case_peak(mid) > TARGET_INFECTED:
            lo = mid
        else:
            hi = mid
    print(f"\nminimal certified patching rate: b* = {hi:.3f}")
    print(f"worst-case peak at b*: {worst_case_peak(hi):.4f} "
          f"(target {TARGET_INFECTED})")
    print(
        "\nThe certificate quantifies over *all* admissible theta(t): an "
        "adaptive adversary (or any environment) cannot push infections "
        "above the target. A design based only on the uncertain "
        "(constant-theta) envelope would under-provision — see "
        "examples/quickstart.py for the size of that gap. All evaluated "
        "candidates are cached; a second run of this design study is "
        "near-instant."
    )


if __name__ == "__main__":
    main()
