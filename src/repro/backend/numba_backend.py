"""The opt-in numba JIT backend: ``njit``-compiled batch kernels.

Everything here is *guarded*: numba is imported lazily (the module
imports cleanly in a pure-numpy environment), kernels are compiled at
first call, and any typing/lowering failure — or a first-call
disagreement with the numpy reference beyond JIT-reassociation
tolerance — warns, stamps the ``backend.numba.fallbacks`` counter and
permanently reroutes that kernel to the reference implementation.  A
numba backend therefore never makes a computation *wrong or crashing*,
only (in the worst case) no faster than numpy.

Compile accounting: ``backend.numba.compile.count`` counts new
specializations (one per kernel signature) and
``backend.numba.compile.seconds`` observes the wall time of the calls
that triggered them (compile plus the first execution — the "first call
is slow" cost benchmarks report separately).

Model kernels are built from the model's own batch declarations
(:meth:`~repro.population.PopulationModel.batch_kernel_declarations`):
per-transition rate functions are individually ``njit``-ed and folded
into a single compiled drift chain that preserves the reference
accumulation order, and the declared affine/Jacobian batch kernels are
compiled directly.  The REG005 registry-audit contract
(:func:`repro.backend.kernel_compilable`) exists precisely so these
declarations stay compilable.

Some reference kernels are numpy-idiomatic in ways numba does not
support (``np.tensordot``, ``np.mean(axis=...)``, fancy-indexed
knapsacks); for those, :data:`_OVERRIDES` maps the kernel key to a
semantically-equivalent explicit-loop form that is compiled instead.
The overrides are tolerance-pinned (not bit-pinned) against the
reference by the differential suites.
"""

from __future__ import annotations

import time
import warnings
from typing import Callable, Dict, Optional

import numpy as np

from repro import telemetry
from repro.backend.core import ArrayBackend, ModelKernels, register_backend

__all__ = ["NumbaBackend"]

#: Relative/absolute tolerance of the first-call cross-check against the
#: numpy reference (JIT compilation may reassociate float arithmetic).
_CHECK_RTOL = 1e-9
_CHECK_ATOL = 1e-12


def _numba():
    try:
        import numba
    except ImportError:
        return None
    return numba


def _fallback_event(key: str, why: str) -> None:
    warnings.warn(
        f"numba backend: kernel {key!r} fell back to numpy ({why})",
        RuntimeWarning,
        stacklevel=4,
    )
    telemetry.inc("backend.numba.fallbacks")
    telemetry.inc(f"backend.numba.fallbacks.{key}")


def _signature_count(jitted) -> int:
    sigs = getattr(jitted, "signatures", None)
    return len(sigs) if sigs is not None else 0


class _GuardedKernel:
    """A jitted kernel with a permanent per-kernel numpy escape hatch."""

    __slots__ = ("key", "_jitted", "_reference", "_use_reference")

    def __init__(self, key: str, jitted: Callable, reference: Callable):
        self.key = key
        self._jitted = jitted
        self._reference = reference
        self._use_reference = False

    def __call__(self, *args):
        if self._use_reference:
            return self._reference(*args)
        before = _signature_count(self._jitted)
        start = time.perf_counter()
        try:
            out = self._jitted(*args)
        except Exception as exc:  # repro: noqa[REP002] - _fallback_event warns and stamps the fallback counter
            _fallback_event(self.key, f"{type(exc).__name__}: {exc}")
            self._use_reference = True
            return self._reference(*args)
        after = _signature_count(self._jitted)
        if after > before:
            telemetry.inc("backend.numba.compile.count", after - before)
            telemetry.observe(
                "backend.numba.compile.seconds", time.perf_counter() - start
            )
        return out


# ----------------------------------------------------------------------
# Explicit-loop equivalents of numpy-idiomatic reference kernels
# ----------------------------------------------------------------------

def _dp_stage_sum_loops(coeffs, stages):
    """``np.tensordot(coeffs, stages, axes=(0, 0))`` as an explicit fold."""
    out = coeffs[0] * stages[0]
    for j in range(1, coeffs.shape[0]):
        out = out + coeffs[j] * stages[j]
    return out


def _rms_norm_loops(v):
    """Row-wise RMS norm (``np.mean(axis=1)`` is unsupported in njit)."""
    n, d = v.shape
    out = np.empty(n)
    for i in range(n):
        acc = 0.0
        for j in range(d):
            acc += v[i, j] * v[i, j]
        out[i] = np.sqrt(acc / d)
    return out


def _knapsack_rows_loops(lower, room, slack0, order):
    """Explicit-loop credal row knapsack (matches the vectorized fill).

    Mirrors the reference semantics exactly: the slack chain subtracts
    the *full* room of every visited column (not the clipped take), and
    the returned leftover is the final chain value, so the feasibility
    check in the caller sees identical numbers.
    """
    m = order.shape[0]
    n = lower.shape[0]
    rows = np.empty((m, n, n))
    leftover = np.empty((m, n))
    for a in range(m):
        for i in range(n):
            slack = slack0[i]
            for jj in range(n):
                j = order[a, jj]
                take = slack
                if take < 0.0:
                    take = 0.0
                if take > room[i, j]:
                    take = room[i, j]
                rows[a, i, j] = lower[i, j] + take
                slack -= room[i, j]
            leftover[a, i] = slack
    return rows, leftover


#: Kernel-key -> njit-friendly replacement compiled *instead of* the
#: reference function (same signature, same semantics, loop idiom).
_OVERRIDES: Dict[str, Callable] = {
    "ode.dp_stage_sum": _dp_stage_sum_loops,
    "ode.rms_norm": _rms_norm_loops,
    "ctmc.knapsack_rows": _knapsack_rows_loops,
}


# ----------------------------------------------------------------------
# Model kernels
# ----------------------------------------------------------------------

class _ModelKernelGuard:
    """Shared compile/validate/fallback state for one model's kernels."""

    __slots__ = ("label", "compiled", "checked", "failed")

    def __init__(self, label: str):
        self.label = label
        self.compiled = False
        self.checked = False
        self.failed = False

    def run(self, compiled_call, reference_call, compare=None):
        """Run the compiled form, cross-checking its first result.

        ``reference_call`` is only evaluated on failure or for the
        one-time check; after a clean first call the compiled path runs
        alone.  Any exception or tolerance violation trips the
        permanent fallback.
        """
        if self.failed:
            return reference_call()
        start = time.perf_counter()
        try:
            out = compiled_call()
        except FloatingPointError:
            # Bad *data* (NaN rates), not a bad kernel: let the
            # reference path produce its canonical error, keep the
            # compiled path armed for the next batch.
            return reference_call()
        except Exception as exc:  # repro: noqa[REP002] - _fallback_event warns and stamps the fallback counter
            _fallback_event(self.label, f"{type(exc).__name__}: {exc}")
            self.failed = True
            return reference_call()
        if not self.compiled:
            self.compiled = True
            telemetry.inc("backend.numba.compile.count")
            telemetry.observe(
                "backend.numba.compile.seconds", time.perf_counter() - start
            )
        if not self.checked:
            self.checked = True
            reference = reference_call()
            agree = compare(out, reference) if compare is not None else (
                np.allclose(out, reference, rtol=_CHECK_RTOL, atol=_CHECK_ATOL)
            )
            if not agree:
                _fallback_event(self.label, "first-call cross-check mismatch")
                self.failed = True
                return reference
        return out


def _pair_close(got, want) -> bool:
    return np.allclose(got[0], want[0], rtol=_CHECK_RTOL, atol=_CHECK_ATOL) \
        and np.allclose(got[1], want[1], rtol=_CHECK_RTOL, atol=_CHECK_ATOL)


class NumbaBackend(ArrayBackend):
    """``njit``-compiled kernels with guarded fallback to numpy."""

    name = "numba"

    def __init__(self) -> None:
        super().__init__()
        nb = _numba()
        if nb is None:
            raise RuntimeError(
                "numba is not importable; resolve_backend() should have "
                "fallen back to numpy before instantiating this backend"
            )
        self._njit = nb.njit(cache=False, fastmath=False)

    @classmethod
    def available(cls) -> bool:
        return _numba() is not None

    # -- generic kernels ----------------------------------------------

    def _compile(self, fn: Callable, key: Optional[str]) -> Callable:
        target = _OVERRIDES.get(key, fn) if key is not None else fn
        label = key if key is not None else getattr(fn, "__name__", "kernel")
        return _GuardedKernel(label, self._njit(target), fn)

    # -- model kernels -------------------------------------------------

    def _build_model_kernels(self, model) -> ModelKernels:
        if not hasattr(model, "transitions"):
            # Duck-typed model-like objects (e.g. the Kolmogorov ODE
            # system) declare no transition structure to compile; their
            # reference batch methods are the kernels.
            return super()._build_model_kernels(model)
        rate_jits = tuple(self._njit(tr.rate) for tr in model.transitions)
        changes = tuple(
            np.asarray(tr.change, dtype=float) for tr in model.transitions
        )
        chain = self._drift_chain(rate_jits, changes)
        label = f"model.{model.name}"

        drift_guard = _ModelKernelGuard(f"{label}.drift")

        def drift(x, theta):
            x2 = np.atleast_2d(np.asarray(x, dtype=float))
            th2 = np.atleast_2d(np.asarray(theta, dtype=float))
            return drift_guard.run(
                lambda: chain(x2.T, th2.T),
                lambda: model.drift_batch(x2, th2),
            )

        rates_guard = _ModelKernelGuard(f"{label}.rates")
        n_tr = len(model.transitions)

        def rates(x, theta):
            x2 = np.atleast_2d(np.asarray(x, dtype=float))
            th2 = np.atleast_2d(np.asarray(theta, dtype=float))

            def compiled():
                out = np.empty((x2.shape[0], n_tr))
                x_t, th_t = x2.T, th2.T
                for j, jit_rate in enumerate(rate_jits):
                    out[:, j] = jit_rate(x_t, th_t)
                np.maximum(out, 0.0, out=out)
                if np.isnan(out).any():
                    # Delegate NaN handling (and its error message) to
                    # the reference path.
                    raise FloatingPointError("NaN rate in compiled batch")
                return out

            return rates_guard.run(
                compiled, lambda: model.transition_rates_batch(x2, th2)
            )

        decls = model.batch_kernel_declarations()
        affine_decl = decls.get("affine_drift_batch")
        if affine_decl is None:
            affine = model.affine_parts_batch
        else:
            affine_jit = self._njit(affine_decl)
            affine_guard = _ModelKernelGuard(f"{label}.affine")

            def affine(x):
                x2 = np.atleast_2d(np.asarray(x, dtype=float))
                return affine_guard.run(
                    lambda: affine_jit(x2),
                    lambda: model.affine_parts_batch(x2),
                    compare=_pair_close,
                )

        jac_decl = decls.get("drift_jacobian_batch")
        if jac_decl is None:
            jacobian = model.jacobian_x_batch
        else:
            jac_jit = self._njit(jac_decl)
            jac_guard = _ModelKernelGuard(f"{label}.jacobian")

            def jacobian(x, theta):
                x2 = np.atleast_2d(np.asarray(x, dtype=float))
                th2 = np.atleast_2d(np.asarray(theta, dtype=float))
                return jac_guard.run(
                    lambda: np.asarray(jac_jit(x2, th2), dtype=float),
                    lambda: model.jacobian_x_batch(x2, th2),
                )

        telemetry.inc("backend.numba.model_kernels.built")
        return ModelKernels(
            backend_name=self.name,
            drift=drift,
            rates=rates,
            affine=affine,
            jacobian=jacobian,
        )

    def _drift_chain(self, rate_jits, changes) -> Callable:
        """Fold the per-transition terms into one compiled drift kernel.

        The left fold reproduces the reference accumulation order of
        ``out += vals[:, None] * change[None, :]`` term by term; inputs
        are coordinate-major (``x.T``/``theta.T``) exactly like the
        reference rate evaluation.
        """
        chain = None
        for jit_rate, change in zip(rate_jits, changes):
            if chain is None:
                def term(x_t, theta_t, _rate=jit_rate, _change=change):
                    return np.outer(_rate(x_t, theta_t), _change)
            else:
                def term(x_t, theta_t, _prev=chain, _rate=jit_rate,
                         _change=change):
                    return _prev(x_t, theta_t) + np.outer(
                        _rate(x_t, theta_t), _change
                    )
            chain = self._njit(term)
        return chain


register_backend("numba", NumbaBackend)
