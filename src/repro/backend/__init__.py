"""``repro.backend`` — the pluggable compiled-array backend seam.

Every batch primitive in the library (model drift/affine/Jacobian
stacks, the lockstep and adaptive ODE stage math, the credal row
knapsacks) dispatches through an :class:`ArrayBackend`.  The ``numpy``
backend is always available and bit-identical to calling the kernels
directly; the ``numba`` backend JIT-compiles them when numba is
installed; a JAX ``vmap``+``jit`` backend slots into the same registry.

Select a backend with :func:`set_backend`, the ``REPRO_BACKEND``
environment variable, or ``python -m repro run --backend=NAME``;
see :func:`resolve_backend` for the precedence.  Unknown or missing
backends warn and degrade to numpy — selection never crashes.
"""

from repro.backend.core import (
    BACKEND_ENV_VAR,
    ArrayBackend,
    ModelKernels,
    available_backends,
    get_backend,
    kernel_compilable,
    register_backend,
    registered_backends,
    reset_backend,
    resolve_backend,
    set_backend,
    use_backend,
)
from repro.backend.numba_backend import NumbaBackend
from repro.backend.numpy_backend import NumpyBackend

__all__ = [
    "ArrayBackend",
    "BACKEND_ENV_VAR",
    "ModelKernels",
    "NumbaBackend",
    "NumpyBackend",
    "available_backends",
    "get_backend",
    "kernel_compilable",
    "register_backend",
    "registered_backends",
    "reset_backend",
    "resolve_backend",
    "set_backend",
    "use_backend",
]
