"""The array-backend seam: resolution, kernel compilation, model kernels.

Every hot path of the library funnels through a small set of batch
primitives (``drift_batch``, ``affine_parts_batch``, ``jacobian_x_batch``,
the lockstep/adaptive ODE stage math, the credal row knapsacks).  An
:class:`ArrayBackend` is the substrate those primitives execute on: it
owns an array namespace (:attr:`ArrayBackend.xp`), a kernel-compilation
hook (:meth:`ArrayBackend.compile_kernel`) and a per-model compiled
kernel cache (:meth:`ArrayBackend.model_kernels`).

The ``numpy`` backend is always available and is the *reference*: its
``compile_kernel`` is the identity and its model kernels are the model's
own (validated) batch methods, so routing through the seam is
bit-identical to calling the kernels directly.  Accelerated backends
(``numba`` today; a JAX ``vmap``+``jit`` backend slots into the same
registry) compile semantically-equivalent kernels and are
tolerance-pinned against the numpy path by the differential suites.

Resolution order (first match wins):

1. an explicit ``backend=`` argument on the public entry points
   (a name, or an :class:`ArrayBackend` instance);
2. the process default installed by :func:`set_backend`;
3. the ``REPRO_BACKEND`` environment variable, read once per process;
4. ``numpy``.

A requested backend that is unknown or not importable **never crashes**:
resolution warns, stamps the ``backend.fallback`` /
``backend.fallback.<name>`` counters and degrades to numpy.
"""

from __future__ import annotations

import os
import types
import warnings
import weakref
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro import telemetry

__all__ = [
    "ArrayBackend",
    "ModelKernels",
    "available_backends",
    "get_backend",
    "kernel_compilable",
    "register_backend",
    "registered_backends",
    "reset_backend",
    "resolve_backend",
    "set_backend",
    "use_backend",
]

#: Environment variable naming the process-default backend.
BACKEND_ENV_VAR = "REPRO_BACKEND"


class ModelKernels:
    """The compiled batch kernels of one model on one backend.

    Attributes
    ----------
    backend_name:
        Name of the backend the kernels were compiled on.
    drift:
        ``(x, theta) -> (n, d)`` raw (unclamped) batched drift; the
        compiled analogue of
        :meth:`~repro.population.PopulationModel.drift_batch`.
    rates:
        ``(x, theta) -> (n, n_transitions)`` clamped batched rates; the
        compiled analogue of
        :meth:`~repro.population.PopulationModel.transition_rates_batch`.
    affine:
        ``x -> (g0s, Gs)`` batched affine decomposition (raises
        ``ValueError`` for models without one, exactly like
        :meth:`~repro.population.PopulationModel.affine_parts_batch`).
    jacobian:
        ``(x, theta) -> (n, d, d)`` batched drift Jacobians.
    """

    __slots__ = ("backend_name", "drift", "rates", "affine", "jacobian")

    def __init__(self, backend_name: str, drift: Callable, rates: Callable,
                 affine: Callable, jacobian: Callable):
        self.backend_name = backend_name
        self.drift = drift
        self.rates = rates
        self.affine = affine
        self.jacobian = jacobian

    def __repr__(self) -> str:
        return f"ModelKernels(backend={self.backend_name!r})"


class ArrayBackend:
    """Base class of the backend seam (the numpy reference semantics).

    Subclasses override :meth:`_compile` (turn one pure-array kernel
    function into its compiled form) and/or :meth:`_build_model_kernels`
    (compile a model's batch declarations).  Both are memoized here —
    kernels compile once per process per backend, models once per
    ``(model, backend)`` pair — which is what "compiled once and
    memoized on the backend" means throughout the library docs.
    """

    #: Registry name; subclasses must override.
    name = "abstract"

    def __init__(self) -> None:
        self._kernel_cache: Dict[object, Callable] = {}
        # Keyed by the model object itself; a model garbage-collected by
        # the caller must not pin its compiled kernels alive.
        self._model_cache: "weakref.WeakKeyDictionary" = (
            weakref.WeakKeyDictionary()
        )

    # -- capability ----------------------------------------------------

    @classmethod
    def available(cls) -> bool:
        """Whether the backend's substrate is importable here."""
        return True

    @property
    def xp(self):
        """The array namespace kernels are written against."""
        return np

    # -- kernel compilation -------------------------------------------

    def compile_kernel(self, fn: Callable, key: Optional[str] = None) -> Callable:
        """Compile (and memoize) one pure-array kernel function.

        ``key`` names the kernel for the compile cache and for telemetry;
        accelerated backends may also use it to substitute a
        semantically-equivalent implementation better suited to their
        substrate (e.g. an explicit-loop knapsack instead of the
        fancy-indexing reference).  Defaults to caching on the function
        object itself.
        """
        cache_key = key if key is not None else fn
        cached = self._kernel_cache.get(cache_key)
        if cached is None:
            cached = self._compile(fn, key)
            self._kernel_cache[cache_key] = cached
        telemetry.inc(f"backend.{self.name}.kernel_dispatch")
        return cached

    def _compile(self, fn: Callable, key: Optional[str]) -> Callable:
        return fn

    # -- model kernels -------------------------------------------------

    def model_kernels(self, model) -> ModelKernels:
        """The model's batch kernels compiled on this backend (memoized)."""
        kernels = self._model_cache.get(model)
        if kernels is None:
            kernels = self._build_model_kernels(model)
            self._model_cache[model] = kernels
        telemetry.inc(f"backend.{self.name}.model_kernel_dispatch")
        return kernels

    def _build_model_kernels(self, model) -> ModelKernels:
        # The reference kernels *are* the model's batch methods — the
        # numpy path through the seam is the direct call, bit for bit.
        # Kernel slots the model does not implement (duck-typed models
        # such as the Kolmogorov system expose only drift/affine) stay
        # ``None``; consumers that need them must check.
        return ModelKernels(
            backend_name=self.name,
            drift=model.drift_batch,
            rates=getattr(model, "transition_rates_batch", None),
            affine=getattr(model, "affine_parts_batch", None),
            jacobian=getattr(model, "jacobian_x_batch", None),
        )

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


# ----------------------------------------------------------------------
# Registry and resolution
# ----------------------------------------------------------------------

_REGISTRY: Dict[str, type] = {}
_INSTANCES: Dict[str, ArrayBackend] = {}
_ACTIVE: Optional[ArrayBackend] = None
_ENV_READ = False


def register_backend(name: str, cls: type) -> None:
    """Register an :class:`ArrayBackend` subclass under ``name``."""
    if not (isinstance(cls, type) and issubclass(cls, ArrayBackend)):
        raise TypeError("backend class must subclass ArrayBackend")
    _REGISTRY[str(name)] = cls


def registered_backends() -> List[str]:
    """All registered backend names (available or not)."""
    return sorted(_REGISTRY)


def available_backends() -> List[str]:
    """Registered backend names whose substrate imports here."""
    return [name for name in sorted(_REGISTRY) if _REGISTRY[name].available()]


def _fallback(name: str, reason: str) -> ArrayBackend:
    warnings.warn(
        f"backend {name!r} {reason}; falling back to numpy",
        RuntimeWarning,
        stacklevel=4,
    )
    telemetry.inc("backend.fallback")
    telemetry.inc(f"backend.fallback.{name}")
    return _instantiate("numpy")


def _instantiate(name: str) -> ArrayBackend:
    """Instantiate (and cache) a backend by name, degrading to numpy."""
    instance = _INSTANCES.get(name)
    if instance is not None:
        return instance
    cls = _REGISTRY.get(name)
    if cls is None:
        return _fallback(name, f"is not registered (known: {registered_backends()})")
    if not cls.available():
        return _fallback(name, "is not installed in this environment")
    instance = cls()
    _INSTANCES[name] = instance
    telemetry.inc(f"backend.resolve.{name}")
    return instance


def set_backend(backend: Union[str, ArrayBackend]) -> ArrayBackend:
    """Install the process-default backend; returns the resolved instance.

    Accepts a registered name or a ready instance.  An unknown or
    missing name warns and installs numpy (the seam never crashes on
    backend selection).
    """
    global _ACTIVE, _ENV_READ
    if isinstance(backend, ArrayBackend):
        _ACTIVE = backend
    else:
        _ACTIVE = _instantiate(str(backend))
    _ENV_READ = True  # an explicit choice outranks the environment
    return _ACTIVE


def get_backend() -> ArrayBackend:
    """The process-default backend (env-resolved once, numpy otherwise)."""
    global _ACTIVE, _ENV_READ
    if _ACTIVE is None:
        requested = os.environ.get(BACKEND_ENV_VAR) if not _ENV_READ else None
        _ENV_READ = True
        _ACTIVE = _instantiate(requested) if requested else _instantiate("numpy")
    return _ACTIVE


def reset_backend() -> None:
    """Forget the process default (the next resolve re-reads the env).

    A test hook: the library itself resolves once per process.
    """
    global _ACTIVE, _ENV_READ
    _ACTIVE = None
    _ENV_READ = False


def resolve_backend(
    backend: Union[None, str, ArrayBackend] = None,
) -> ArrayBackend:
    """Resolve an optional ``backend=`` argument to an instance.

    ``None`` means the process default; a string resolves through the
    registry (warn-and-fallback on unknown/missing names); an instance
    passes through.
    """
    if backend is None:
        return get_backend()
    if isinstance(backend, ArrayBackend):
        return backend
    return _instantiate(str(backend))


@contextmanager
def use_backend(backend: Union[str, ArrayBackend]):
    """Temporarily install a process-default backend (tests, benches)."""
    global _ACTIVE, _ENV_READ
    previous, previous_env = _ACTIVE, _ENV_READ
    try:
        yield set_backend(backend)
    finally:
        _ACTIVE, _ENV_READ = previous, previous_env


# ----------------------------------------------------------------------
# Compilability contract (REG005)
# ----------------------------------------------------------------------

_ALLOWED_SCALARS = (bool, int, float, complex, str, bytes, type(None))
_ALLOWED_MODULES = ("numpy", "math")


def _value_compilable(value, seen, depth) -> Tuple[bool, str]:
    if isinstance(value, _ALLOWED_SCALARS) or isinstance(
        value, (np.ndarray, np.generic)
    ):
        return True, ""
    if isinstance(value, types.ModuleType):
        root = value.__name__.split(".", 1)[0]
        if root in _ALLOWED_MODULES:
            return True, ""
        return False, f"module {value.__name__!r} is not a compiled-array namespace"
    if isinstance(value, np.ufunc) or (
        callable(value)
        and getattr(value, "__module__", "").split(".", 1)[0] in _ALLOWED_MODULES
    ):
        return True, ""
    if isinstance(value, tuple):
        for item in value:
            ok, reason = _value_compilable(item, seen, depth)
            if not ok:
                return False, reason
        return True, ""
    if isinstance(value, (list, dict, set)):
        return False, (
            f"captures a mutable Python container ({type(value).__name__})"
        )
    if isinstance(value, types.FunctionType):
        return _fn_compilable(value, seen, depth + 1)
    return False, f"captures a Python object of type {type(value).__name__}"


def _fn_compilable(fn, seen, depth) -> Tuple[bool, str]:
    if depth > 5:
        return False, "helper-function nesting too deep to verify"
    if id(fn) in seen:
        return True, ""
    seen.add(id(fn))
    if not isinstance(fn, types.FunctionType):
        return False, (
            f"{fn!r} is not a plain Python function (got {type(fn).__name__})"
        )
    code = fn.__code__
    closure = fn.__closure__ or ()
    for name, cell in zip(code.co_freevars, closure):
        try:
            value = cell.cell_contents
        except ValueError:
            return False, f"free variable {name!r} is unbound"
        ok, reason = _value_compilable(value, seen, depth)
        if not ok:
            return False, f"free variable {name!r}: {reason}"
    for name in code.co_names:
        if name in fn.__globals__:
            ok, reason = _value_compilable(fn.__globals__[name], seen, depth)
            if not ok:
                return False, f"global {name!r}: {reason}"
    return True, ""


def kernel_compilable(fn: Callable) -> Tuple[bool, str]:
    """Whether a batch-kernel declaration is backend-compilable.

    The contract (REG005 of the registry audit): a kernel must be a
    plain Python function whose captured state — closure cells and
    referenced globals — is nothing but numbers, strings, numpy arrays,
    the numpy/math namespaces and helper functions satisfying the same
    contract.  Capturing arbitrary Python objects (models, dicts, open
    handles, foreign modules) makes the kernel uncompilable on an
    accelerated backend, silently pinning every consumer to the slow
    path.

    Returns ``(ok, reason)`` with ``reason`` empty when ``ok``.
    """
    return _fn_compilable(fn, set(), 0)
