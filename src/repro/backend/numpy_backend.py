"""The always-available reference backend: plain numpy, zero wrapping.

``compile_kernel`` is the identity and ``model_kernels`` returns the
model's own bound batch methods, so every seam call site degenerates to
the direct numpy call — bit-identical by construction, which is what the
differential suites pin.
"""

from __future__ import annotations

from repro.backend.core import ArrayBackend, register_backend

__all__ = ["NumpyBackend"]


class NumpyBackend(ArrayBackend):
    """The identity backend (inherits the reference semantics wholesale)."""

    name = "numpy"


register_backend("numpy", NumpyBackend)
