"""Higher-level studies built on the bound machinery.

- :mod:`repro.analysis.robust` — robust design: tune controllable model
  parameters against the worst-case imprecise behaviour (the GPS weight
  optimisation of Section VI-C).
- :mod:`repro.analysis.convergence` — finite-``N`` convergence studies:
  how fast stochastic trajectories concentrate on the Birkhoff centre
  (the quantitative reading of Figure 6 / Theorem 3).
- :mod:`repro.analysis.lint` — the repo's own static-analysis gate
  (``python -m repro lint``): AST rules REP001–REP010 plus the registry
  contract audit REG001–REG004.  Not imported here — it is a dev tool,
  not part of the numeric API.
"""

from repro.analysis.convergence import (
    ConvergenceStudy,
    birkhoff_inclusion_fraction,
    convergence_study,
    ensemble_inclusion_fraction,
)
from repro.analysis.robust import RobustDesignResult, robust_minimize_scalar
from repro.analysis.sensitivity import WidthSensitivity, interval_width_sensitivity

__all__ = [
    "robust_minimize_scalar",
    "RobustDesignResult",
    "birkhoff_inclusion_fraction",
    "ensemble_inclusion_fraction",
    "convergence_study",
    "ConvergenceStudy",
    "interval_width_sensitivity",
    "WidthSensitivity",
]
