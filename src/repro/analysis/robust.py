"""Robust design of controllable parameters (Section VI-C).

The imprecise framework turns "tune the system for the worst case" into a
min–max program: minimise, over a *design* parameter ``phi``, the
worst-case value of an observable over all admissible parameter processes
``theta(t)``:

.. math::
    \\min_{\\phi} \\; \\max_{\\theta(\\cdot)} \\; w \\cdot x^{\\phi,\\theta}(T)

The inner maximum is exactly the Pontryagin bound; the outer scalar
minimisation uses a coarse bracketing grid followed by golden-section
refinement (the paper reports the GPS objective is convex in the weight
ratio, and finds the optimum at ``phi_1 = 9.0 phi_2``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np
from scipy.optimize import minimize_scalar

from repro.bounds.pontryagin import extremal_trajectory
from repro.inclusion import DriftExtremizer

__all__ = ["RobustDesignResult", "robust_minimize_scalar", "worst_case_objective"]


def worst_case_objective(
    model,
    x0,
    horizon: float,
    weights,
    n_steps: int = 200,
    extremizer: Optional[DriftExtremizer] = None,
    **sweep_kwargs,
) -> float:
    """The inner max: worst-case ``w . x(T)`` over the imprecise inclusion."""
    result = extremal_trajectory(
        model, x0, horizon, np.asarray(weights, dtype=float),
        maximize=True, n_steps=n_steps, extremizer=extremizer, **sweep_kwargs,
    )
    return result.value


@dataclass
class RobustDesignResult:
    """Outcome of a scalar robust-design optimisation.

    Attributes
    ----------
    optimum:
        The minimising design value.
    value:
        The worst-case objective at the optimum.
    design_grid, objective_grid:
        The bracketing sweep (useful to inspect convexity, as the paper
        does for the GPS weights).
    """

    optimum: float
    value: float
    design_grid: np.ndarray
    objective_grid: np.ndarray

    def is_convex_on_grid(self, tol: float = 1e-9) -> bool:
        """Whether the sampled objective is convex along the grid."""
        y = self.objective_grid
        if y.shape[0] < 3:
            return True
        second_differences = np.diff(y, 2)
        return bool(
            np.all(second_differences >= -tol * np.maximum(1.0, np.abs(y[1:-1])))
        )


def robust_minimize_scalar(
    objective: Callable[[float], float],
    bounds: Tuple[float, float],
    coarse_points: int = 9,
    xatol: float = 1e-3,
) -> RobustDesignResult:
    """Minimise a scalar design objective (worst-case metric).

    Parameters
    ----------
    objective:
        Maps the design scalar (e.g. the GPS weight ratio
        ``phi_1 / phi_2``) to the worst-case metric; typically a closure
        that rebuilds the model and calls :func:`worst_case_objective`.
    bounds:
        Search interval for the design scalar.
    coarse_points:
        Size of the bracketing grid evaluated first (also returned for
        convexity inspection).
    xatol:
        Absolute tolerance of the bounded golden-section refinement.
    """
    lo, hi = float(bounds[0]), float(bounds[1])
    if lo >= hi:
        raise ValueError("bounds must satisfy lo < hi")
    if coarse_points < 3:
        raise ValueError("coarse_points must be >= 3")
    grid = np.linspace(lo, hi, coarse_points)
    values = np.array([float(objective(g)) for g in grid])
    k_best = int(np.argmin(values))
    bracket_lo = grid[max(k_best - 1, 0)]
    bracket_hi = grid[min(k_best + 1, coarse_points - 1)]
    if bracket_lo == bracket_hi:
        return RobustDesignResult(
            optimum=float(grid[k_best]),
            value=float(values[k_best]),
            design_grid=grid,
            objective_grid=values,
        )
    result = minimize_scalar(
        objective,
        bounds=(bracket_lo, bracket_hi),
        method="bounded",
        options={"xatol": xatol},
    )
    optimum = float(result.x)
    value = float(result.fun)
    if values[k_best] < value:
        optimum = float(grid[k_best])
        value = float(values[k_best])
    return RobustDesignResult(
        optimum=optimum,
        value=value,
        design_grid=grid,
        objective_grid=values,
    )
