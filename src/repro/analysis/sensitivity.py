"""Sensitivity of the bounds to the parameter-interval width.

Figures 4 and 5 show the differential hull degrading "non linearly in
theta_max" while the Pontryagin bounds stay informative.  This module
turns that observation into a reusable study: sweep the width of the
parameter set and record, per width, the bound widths produced by each
method.  The resulting curves are the quantitative version of the
paper's accuracy discussion and feed the ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence

import numpy as np

from repro.bounds.hull import differential_hull_bounds
from repro.bounds.pontryagin import extremal_trajectory
from repro.bounds.sweep import uncertain_envelope

__all__ = ["WidthSensitivity", "interval_width_sensitivity"]


@dataclass
class WidthSensitivity:
    """Bound widths of the three methods across parameter-set widths.

    All widths refer to one observable at one horizon:
    ``width = upper bound - lower bound``.
    """

    widths: np.ndarray
    hull: List[float] = field(default_factory=list)
    pontryagin: List[float] = field(default_factory=list)
    uncertain: List[float] = field(default_factory=list)
    hull_trivial: List[bool] = field(default_factory=list)

    def hull_over_pontryagin(self) -> np.ndarray:
        """Looseness ratio of the hull relative to the exact bounds."""
        exact = np.maximum(np.asarray(self.pontryagin), 1e-12)
        return np.asarray(self.hull) / exact

    def degradation_is_superlinear(self) -> bool:
        """Whether the hull/exact ratio grows faster than the width."""
        ratios = self.hull_over_pontryagin()
        if ratios.shape[0] < 2 or not np.all(np.isfinite(ratios)):
            return True
        width_growth = self.widths[-1] / self.widths[0]
        ratio_growth = ratios[-1] / max(ratios[0], 1e-12)
        return bool(ratio_growth > width_growth)


def interval_width_sensitivity(
    model_factory: Callable[[float], object],
    widths: Sequence[float],
    x0,
    horizon: float,
    observable_index: int = 0,
    n_steps: int = 200,
    sweep_resolution: int = 11,
) -> WidthSensitivity:
    """Measure bound widths of all three methods across ``Theta`` widths.

    Parameters
    ----------
    model_factory:
        Maps a width scalar to a model (e.g.
        ``lambda w: make_sir_model(theta_max=1.0 + w)``).
    widths:
        The sweep of width scalars (increasing).
    x0, horizon:
        Initial state and evaluation horizon.
    observable_index:
        The state coordinate whose bound width is recorded.
    """
    widths = np.asarray(list(widths), dtype=float)
    if widths.ndim != 1 or widths.shape[0] < 1:
        raise ValueError("widths must be a non-empty sequence")
    study = WidthSensitivity(widths=widths)
    direction = None
    t_grid = np.linspace(0.0, float(horizon), 11)
    for width in widths:
        model = model_factory(float(width))
        if direction is None:
            direction = np.zeros(model.dim)
            direction[observable_index] = 1.0

        hull = differential_hull_bounds(model, x0, t_grid)
        hull_width = float(hull.width(observable_index)[-1])
        study.hull.append(hull_width)
        study.hull_trivial.append(bool(not np.isfinite(hull_width)
                                       or hull.is_trivial(observable_index)))

        upper = extremal_trajectory(model, x0, horizon, direction,
                                    maximize=True, n_steps=n_steps)
        lower = extremal_trajectory(model, x0, horizon, direction,
                                    maximize=False, n_steps=n_steps)
        study.pontryagin.append(float(upper.value - lower.value))

        env = uncertain_envelope(model, x0, np.array([0.0, horizon]),
                                 resolution=sweep_resolution)
        name = model.state_names[observable_index]
        study.uncertain.append(float(env.upper[name][-1] - env.lower[name][-1]))
    return study
