"""Finite-``N`` convergence to the Birkhoff centre (Figure 6 / Theorem 2).

Theorem 2 states that the distance from the finite-``N`` process to the
asymptotic set of the inclusion vanishes (in probability) as ``N`` grows;
Figure 6 illustrates it with SSA sample paths against the Birkhoff
centre.  This module quantifies the picture:

- :func:`birkhoff_inclusion_fraction` — the fraction of post-burn-in SSA
  samples lying within ``eps`` of the computed region, plus distance
  statistics;
- :func:`ensemble_inclusion_fraction` — the same measurement pooled
  over every run of a vectorized ensemble
  (:class:`~repro.simulation.BatchResult`);
- :func:`convergence_study` — run the measurement over a ladder of
  population sizes and policies, producing the numbers behind the
  "as N grows, the simulation gets included in the Birkhoff centre"
  claim.  Ensembles run on the vectorized engine by default
  (``n_runs`` independent chains per size/policy cell).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.simulation import ControlPolicy, SimulationResult, batch_simulate
from repro.steadystate.birkhoff import BirkhoffResult

__all__ = [
    "InclusionStats",
    "birkhoff_inclusion_fraction",
    "ensemble_inclusion_fraction",
    "ConvergenceStudy",
    "convergence_study",
]


@dataclass
class InclusionStats:
    """Distance statistics of a sampled path against a region."""

    fraction_inside: float
    mean_distance: float
    max_distance: float
    n_samples: int

    def __repr__(self) -> str:
        return (
            f"InclusionStats(inside={self.fraction_inside:.3f}, "
            f"mean_d={self.mean_distance:.4g}, max_d={self.max_distance:.4g})"
        )


def birkhoff_inclusion_fraction(
    result: SimulationResult,
    region: BirkhoffResult,
    burn_in: float = 0.0,
    epsilon: float = 0.0,
    projection: Optional[Sequence[int]] = None,
) -> InclusionStats:
    """Measure how much of a sampled path lies inside a Birkhoff region.

    Parameters
    ----------
    result:
        An SSA run (its states are normalised densities).
    region:
        A computed Birkhoff centre (2-D).
    burn_in:
        Time before which samples are discarded (transient window).
    epsilon:
        Inclusion tolerance: a sample within distance ``epsilon`` counts
        as inside (the ``eps_N`` of Theorem 2; a natural choice is a few
        multiples of ``1/sqrt(N)``).
    projection:
        Indices of the two state coordinates matching the region's plane
        (defaults to the first two).
    """
    sampled = result.after(burn_in) if burn_in > 0 else result
    projection = list(projection) if projection is not None else [0, 1]
    if len(projection) != 2:
        raise ValueError("projection must name exactly two coordinates")
    pts = sampled.states[:, projection]
    return _inclusion_stats_of_points(pts, region, epsilon)


def _inclusion_stats_of_points(pts: np.ndarray, region: BirkhoffResult,
                               epsilon: float) -> InclusionStats:
    distances = np.array([region.distance(p) for p in pts])
    inside = distances <= epsilon + 1e-12
    return InclusionStats(
        fraction_inside=float(np.mean(inside)),
        mean_distance=float(np.mean(distances)),
        max_distance=float(np.max(distances)),
        n_samples=int(pts.shape[0]),
    )


def ensemble_inclusion_fraction(
    batch,
    region: BirkhoffResult,
    burn_in: float = 0.0,
    epsilon: float = 0.0,
    projection: Optional[Sequence[int]] = None,
) -> InclusionStats:
    """Inclusion statistics pooled over all runs of an ensemble.

    ``batch`` is a :class:`~repro.simulation.BatchResult`; every run's
    post-burn-in samples contribute to one pooled point cloud, so the
    statistics sharpen with ``n_runs`` as well as with the horizon.
    """
    projection = list(projection) if projection is not None else [0, 1]
    if len(projection) != 2:
        raise ValueError("projection must name exactly two coordinates")
    mask = batch.times >= burn_in
    if not mask.any():
        raise ValueError(f"no samples at or after t={burn_in}")
    pts = batch.states[:, mask][:, :, projection].reshape(-1, 2)
    return _inclusion_stats_of_points(pts, region, epsilon)


@dataclass
class ConvergenceStudy:
    """Inclusion statistics across population sizes and policies."""

    region: BirkhoffResult
    stats: Dict[str, Dict[int, InclusionStats]] = field(default_factory=dict)

    def fractions(self, policy_name: str) -> List[float]:
        """Inside fractions of one policy, ordered by population size."""
        by_size = self.stats[policy_name]
        return [by_size[n].fraction_inside for n in sorted(by_size)]

    def is_monotone_improving(self, policy_name: str, slack: float = 0.05) -> bool:
        """Whether inclusion improves (weakly, up to ``slack``) with N."""
        fracs = self.fractions(policy_name)
        return all(b >= a - slack for a, b in zip(fracs, fracs[1:]))


def convergence_study(
    model,
    region: BirkhoffResult,
    policies: Dict[str, Callable[[], ControlPolicy]],
    sizes: Sequence[int],
    x0,
    t_final: float,
    burn_in: float,
    seed: int = 0,
    n_samples: int = 2000,
    epsilon_fn: Optional[Callable[[int], float]] = None,
    projection: Optional[Sequence[int]] = None,
    n_runs: int = 1,
    engine: str = "vectorized",
) -> ConvergenceStudy:
    """Run the Figure-6 measurement over sizes and policies.

    Parameters
    ----------
    policies:
        Mapping from a policy label to a *factory* returning a fresh
        policy instance (policies are stateful).
    epsilon_fn:
        Inclusion tolerance per population size; defaults to
        ``3 / sqrt(N)`` (the CLT-scale fluctuation band around the
        mean-field limit).
    n_runs:
        Independent chains per (policy, size) cell; their post-burn-in
        samples are pooled into one inclusion measurement.
    engine:
        Forwarded to :func:`~repro.simulation.batch_simulate`
        (``"vectorized"`` by default; ``"scalar"`` for the legacy
        kernel).

    Seeds are derived from a stable checksum of the policy label (not
    the process-salted ``hash``), so studies are reproducible across
    interpreter invocations.
    """
    if epsilon_fn is None:
        epsilon_fn = lambda n: 3.0 / np.sqrt(n)  # noqa: E731
    study = ConvergenceStudy(region=region)
    for name, factory in policies.items():
        study.stats[name] = {}
        name_salt = zlib.crc32(name.encode()) % 1000
        for k, n in enumerate(sizes):
            population = model.instantiate(int(n), x0)
            batch = batch_simulate(
                population, factory, t_final,
                n_runs=n_runs, seed=seed + 1000 * k + name_salt,
                n_samples=n_samples, engine=engine,
            )
            study.stats[name][int(n)] = ensemble_inclusion_fraction(
                batch, region, burn_in=burn_in, epsilon=epsilon_fn(int(n)),
                projection=projection,
            )
    return study
