"""Finite-``N`` convergence to the Birkhoff centre (Figure 6 / Theorem 2).

Theorem 2 states that the distance from the finite-``N`` process to the
asymptotic set of the inclusion vanishes (in probability) as ``N`` grows;
Figure 6 illustrates it with SSA sample paths against the Birkhoff
centre.  This module quantifies the picture:

- :func:`birkhoff_inclusion_fraction` — the fraction of post-burn-in SSA
  samples lying within ``eps`` of the computed region, plus distance
  statistics;
- :func:`convergence_study` — run the measurement over a ladder of
  population sizes and policies, producing the numbers behind the
  "as N grows, the simulation gets included in the Birkhoff centre"
  claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.simulation import ControlPolicy, SimulationResult, simulate
from repro.steadystate.birkhoff import BirkhoffResult

__all__ = [
    "InclusionStats",
    "birkhoff_inclusion_fraction",
    "ConvergenceStudy",
    "convergence_study",
]


@dataclass
class InclusionStats:
    """Distance statistics of a sampled path against a region."""

    fraction_inside: float
    mean_distance: float
    max_distance: float
    n_samples: int

    def __repr__(self) -> str:
        return (
            f"InclusionStats(inside={self.fraction_inside:.3f}, "
            f"mean_d={self.mean_distance:.4g}, max_d={self.max_distance:.4g})"
        )


def birkhoff_inclusion_fraction(
    result: SimulationResult,
    region: BirkhoffResult,
    burn_in: float = 0.0,
    epsilon: float = 0.0,
    projection: Optional[Sequence[int]] = None,
) -> InclusionStats:
    """Measure how much of a sampled path lies inside a Birkhoff region.

    Parameters
    ----------
    result:
        An SSA run (its states are normalised densities).
    region:
        A computed Birkhoff centre (2-D).
    burn_in:
        Time before which samples are discarded (transient window).
    epsilon:
        Inclusion tolerance: a sample within distance ``epsilon`` counts
        as inside (the ``eps_N`` of Theorem 2; a natural choice is a few
        multiples of ``1/sqrt(N)``).
    projection:
        Indices of the two state coordinates matching the region's plane
        (defaults to the first two).
    """
    sampled = result.after(burn_in) if burn_in > 0 else result
    projection = list(projection) if projection is not None else [0, 1]
    if len(projection) != 2:
        raise ValueError("projection must name exactly two coordinates")
    pts = sampled.states[:, projection]
    distances = np.array([region.distance(p) for p in pts])
    inside = distances <= epsilon + 1e-12
    return InclusionStats(
        fraction_inside=float(np.mean(inside)),
        mean_distance=float(np.mean(distances)),
        max_distance=float(np.max(distances)),
        n_samples=int(pts.shape[0]),
    )


@dataclass
class ConvergenceStudy:
    """Inclusion statistics across population sizes and policies."""

    region: BirkhoffResult
    stats: Dict[str, Dict[int, InclusionStats]] = field(default_factory=dict)

    def fractions(self, policy_name: str) -> List[float]:
        """Inside fractions of one policy, ordered by population size."""
        by_size = self.stats[policy_name]
        return [by_size[n].fraction_inside for n in sorted(by_size)]

    def is_monotone_improving(self, policy_name: str, slack: float = 0.05) -> bool:
        """Whether inclusion improves (weakly, up to ``slack``) with N."""
        fracs = self.fractions(policy_name)
        return all(b >= a - slack for a, b in zip(fracs, fracs[1:]))


def convergence_study(
    model,
    region: BirkhoffResult,
    policies: Dict[str, Callable[[], ControlPolicy]],
    sizes: Sequence[int],
    x0,
    t_final: float,
    burn_in: float,
    seed: int = 0,
    n_samples: int = 2000,
    epsilon_fn: Optional[Callable[[int], float]] = None,
    projection: Optional[Sequence[int]] = None,
) -> ConvergenceStudy:
    """Run the Figure-6 measurement over sizes and policies.

    Parameters
    ----------
    policies:
        Mapping from a policy label to a *factory* returning a fresh
        policy instance (policies are stateful).
    epsilon_fn:
        Inclusion tolerance per population size; defaults to
        ``3 / sqrt(N)`` (the CLT-scale fluctuation band around the
        mean-field limit).
    """
    if epsilon_fn is None:
        epsilon_fn = lambda n: 3.0 / np.sqrt(n)  # noqa: E731
    study = ConvergenceStudy(region=region)
    for name, factory in policies.items():
        study.stats[name] = {}
        for k, n in enumerate(sizes):
            rng = np.random.default_rng(seed + 1000 * k + hash(name) % 1000)
            population = model.instantiate(int(n), x0)
            run = simulate(
                population, factory(), t_final, rng=rng, n_samples=n_samples
            )
            study.stats[name][int(n)] = birkhoff_inclusion_fraction(
                run, region, burn_in=burn_in, epsilon=epsilon_fn(int(n)),
                projection=projection,
            )
    return study
