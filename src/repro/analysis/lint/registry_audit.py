"""Pass 2: the registry contract audit.

Unlike pass 1 this *imports the package* and walks the live scenario
registry, so it can check contracts no AST can see:

- **REG001** — every registered model declares the batch-kernel pair
  (``affine_drift_batch`` + ``drift_jacobian_batch``) the bounds layers
  assume; a model without them silently drops every catalog entry that
  uses it onto the slow per-row paths.
- **REG002** — ``Question.kind`` values and the runner's backend table
  are in bijection: a kind without a backend fails at dispatch, a
  backend without a kind is dead code.
- **REG003** — every :class:`ScenarioSpec` dataclass field is explicitly
  classified as hash-included or hash-excluded
  (:data:`~repro.scenarios.spec.HASH_INCLUDED_FIELDS` /
  ``HASH_EXCLUDED_FIELDS``), and the classification is *verified
  behaviourally*: mutating an included field on a probe spec must change
  ``spec_hash()``, mutating an excluded field must not.
- **REG004** — every spec declaring ``golden`` pins also declares
  ``validity`` ranges: a pinned scenario without perturbation metadata
  freezes its numbers while exempting itself from the robustness sweep.
- **REG005** — every registered model's batch-kernel declarations
  (``batch_kernel_declarations()``: per-transition rates plus the
  affine/jacobian kernels) must be *backend-compilable* — expressible in
  pure numpy with no Python-object captures
  (:func:`repro.backend.kernel_compilable`) — or the compiled backends
  silently reroute that model to the reference path on every call.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List

from repro.analysis.lint.framework import Finding

__all__ = ["audit_registry"]

#: Where audit findings point (there is no single source line to blame).
_REGISTRY_FILE = "src/repro/scenarios/catalog.py"
_SPEC_FILE = "src/repro/scenarios/spec.py"
_RUNNER_FILE = "src/repro/scenarios/runner.py"


def _probe_spec():
    """A minimal valid spec the REG003 field mutations start from."""
    from repro.models import make_sir_model
    from repro.scenarios.spec import Question, ScenarioSpec

    return ScenarioSpec(
        name="lint-audit-probe",
        title="registry-audit probe",
        model_factory=make_sir_model,
        x0=(0.9, 0.1),
        horizon=1.0,
        questions=(Question("envelope", options={"n_times": 3}),),
        observables=("I",),
        model_kwargs={"a": 0.1},
    )


def _field_variants() -> Dict[str, Callable]:
    """One mutation per ScenarioSpec field, applied via with_overrides.

    A dataclass field with no entry here is itself a REG003 finding:
    whoever adds the field must teach the audit how to perturb it (and
    classify it in the hash manifest) in the same change.
    """
    from repro.models import make_seir_model
    from repro.scenarios.spec import Question

    return {
        "name": lambda s: s.with_overrides(name="lint-audit-probe-2"),
        "title": lambda s: s.with_overrides(title="other title"),
        "description": lambda s: s.with_overrides(description="other text"),
        "tags": lambda s: s.with_overrides(tags=("lint",)),
        "validity": lambda s: s.with_overrides(validity={"a": (0.05, 0.3)}),
        "golden": lambda s: s.with_overrides(golden={"probe": 1.0}),
        "model_factory": lambda s: s.with_overrides(
            model_factory=make_seir_model, model_kwargs={"a": None}
        ),
        "model_kwargs": lambda s: s.with_overrides(model_kwargs={"a": 0.2}),
        "x0": lambda s: s.with_overrides(x0=(0.8, 0.2)),
        "horizon": lambda s: s.with_overrides(horizon=2.0),
        "observables": lambda s: s.with_overrides(observables=("S",)),
        "questions": lambda s: s.with_overrides(
            questions=(Question("envelope", options={"n_times": 4}),)
        ),
    }


def _audit_models(findings: List[Finding]) -> None:
    from repro.scenarios import list_scenarios

    seen = set()
    for spec in list_scenarios():
        key = (spec.factory_ref, spec.model_kwargs)
        if key in seen:
            continue
        seen.add(key)
        try:
            model = spec.build_model()
        except Exception as exc:  # repro: noqa[REP002] - a broken factory must become a finding, not a crash
            findings.append(Finding(
                file=_REGISTRY_FILE, line=1, code="REG001",
                message=f"scenario {spec.name!r}: model factory "
                        f"{spec.factory_ref} failed to build: {exc}",
            ))
            continue
        missing = [
            kernel for kernel, declared in (
                ("affine_drift_batch", model.declares_affine_drift_batch),
                ("drift_jacobian_batch", model.declares_drift_jacobian_batch),
            ) if not declared
        ]
        if missing:
            findings.append(Finding(
                file=_REGISTRY_FILE, line=1, code="REG001",
                message=f"scenario {spec.name!r}: model {model.name!r} does "
                        f"not declare {', '.join(missing)} — the bounds "
                        "layers fall back to per-row loops",
            ))


def _audit_backends(findings: List[Finding]) -> None:
    from repro.scenarios.runner import _BACKENDS
    from repro.scenarios.spec import QUESTION_KINDS

    kinds = set(QUESTION_KINDS)
    backends = set(_BACKENDS)
    for kind in sorted(kinds - backends):
        findings.append(Finding(
            file=_RUNNER_FILE, line=1, code="REG002",
            message=f"question kind {kind!r} has no run_question backend",
        ))
    for kind in sorted(backends - kinds):
        findings.append(Finding(
            file=_RUNNER_FILE, line=1, code="REG002",
            message=f"runner backend {kind!r} is not a declared "
                    "Question.kind",
        ))


def _audit_hash_manifest(findings: List[Finding]) -> None:
    from repro.scenarios.spec import (
        HASH_EXCLUDED_FIELDS,
        HASH_INCLUDED_FIELDS,
        ScenarioSpec,
    )

    fields = {f.name for f in dataclasses.fields(ScenarioSpec)}
    included = set(HASH_INCLUDED_FIELDS)
    excluded = set(HASH_EXCLUDED_FIELDS)
    for name in sorted(included & excluded):
        findings.append(Finding(
            file=_SPEC_FILE, line=1, code="REG003",
            message=f"spec field {name!r} is listed as both hash-included "
                    "and hash-excluded",
        ))
    for name in sorted(fields - included - excluded):
        findings.append(Finding(
            file=_SPEC_FILE, line=1, code="REG003",
            message=f"spec field {name!r} is not classified: add it to "
                    "HASH_INCLUDED_FIELDS or HASH_EXCLUDED_FIELDS (and a "
                    "mutation to the registry audit)",
        ))
    for name in sorted((included | excluded) - fields):
        findings.append(Finding(
            file=_SPEC_FILE, line=1, code="REG003",
            message=f"hash manifest names {name!r}, which is not a "
                    "ScenarioSpec field",
        ))

    base = _probe_spec()
    base_hash = base.spec_hash()
    variants = _field_variants()
    for name in sorted(fields):
        mutate = variants.get(name)
        if mutate is None:
            findings.append(Finding(
                file=_SPEC_FILE, line=1, code="REG003",
                message=f"registry audit has no mutation for spec field "
                        f"{name!r}: teach _field_variants() about it",
            ))
            continue
        try:
            variant_hash = mutate(base).spec_hash()
        except Exception as exc:  # repro: noqa[REP002] - a broken mutation must become a finding, not a crash
            findings.append(Finding(
                file=_SPEC_FILE, line=1, code="REG003",
                message=f"mutating spec field {name!r} failed: {exc}",
            ))
            continue
        changed = variant_hash != base_hash
        if name in included and not changed:
            findings.append(Finding(
                file=_SPEC_FILE, line=1, code="REG003",
                message=f"spec field {name!r} is declared hash-included "
                        "but mutating it leaves spec_hash() unchanged — "
                        "stale cache entries would be served",
            ))
        elif name in excluded and changed:
            findings.append(Finding(
                file=_SPEC_FILE, line=1, code="REG003",
                message=f"spec field {name!r} is declared hash-excluded "
                        "but mutating it changes spec_hash() — caches "
                        "would be invalidated by metadata edits",
            ))


def _check_kernel_declarations(scenario_name: str, model,
                               findings: List[Finding]) -> None:
    """REG005 core: every declared batch kernel must be compilable.

    Split out from the registry walk so the test-suite can aim it at a
    deliberately bad fixture model without registering one.
    """
    from repro.backend import kernel_compilable

    declarations = getattr(model, "batch_kernel_declarations", None)
    if declarations is None:
        return
    for label, fn in declarations().items():
        ok, reason = kernel_compilable(fn)
        if not ok:
            findings.append(Finding(
                file=_REGISTRY_FILE, line=1, code="REG005",
                message=f"scenario {scenario_name!r}: batch kernel "
                        f"{label!r} is not backend-compilable ({reason}) "
                        "— compiled backends will reroute this model to "
                        "the reference path",
            ))


def _audit_kernel_declarations(findings: List[Finding]) -> None:
    from repro.scenarios import list_scenarios

    seen = set()
    for spec in list_scenarios():
        key = (spec.factory_ref, spec.model_kwargs)
        if key in seen:
            continue
        seen.add(key)
        try:
            model = spec.build_model()
        except Exception:  # repro: noqa[REP002] - REG001 already reports broken factories
            continue
        _check_kernel_declarations(spec.name, model, findings)


def _audit_golden_validity(findings: List[Finding]) -> None:
    from repro.scenarios import list_scenarios

    for spec in list_scenarios():
        if spec.golden and not spec.validity:
            findings.append(Finding(
                file=_REGISTRY_FILE, line=1, code="REG004",
                message=f"scenario {spec.name!r} declares golden pins but "
                        "no validity ranges — pinned scenarios must also "
                        "join the perturbation sweep",
            ))


def audit_registry() -> List[Finding]:
    """Run every registry contract check; returns the findings."""
    findings: List[Finding] = []
    _audit_models(findings)
    _audit_backends(findings)
    _audit_hash_manifest(findings)
    _audit_golden_validity(findings)
    _audit_kernel_declarations(findings)
    return findings
