"""Check framework of the static-analysis pass.

A :class:`Check` inspects one parsed file (a :class:`FileContext`) and
yields :class:`Finding`\\ s.  The framework owns everything rule-agnostic:
file discovery and section assignment (``src`` / ``tests`` /
``benchmarks``), parsing, ``# repro: noqa[REPxxx]`` suppression
accounting (including the unused-suppression check, REP000), and the
report object the CLI renders.

Pass 1 is deliberately **zero-dependency and import-free**: it parses
the target files with :mod:`ast` and never imports them, so a broken
module is a lint finding rather than a lint crash, and linting cannot
execute repository code.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Check",
    "FileContext",
    "Finding",
    "LintReport",
    "Suppression",
    "SECTIONS",
    "build_test_index",
    "discover_files",
    "lint_file",
    "lint_source",
]

#: The file sections rules scope themselves to.
SECTIONS = ("src", "tests", "benchmarks")

#: Directory names never linted (fixtures are *deliberately* violating).
EXCLUDED_DIR_NAMES = frozenset({
    "__pycache__", ".git", "analysis_fixtures", "results", ".ruff_cache",
})

#: Code of the framework's own unused-suppression finding.
UNUSED_SUPPRESSION_CODE = "REP000"
#: Code attached to files pass 1 cannot parse.
PARSE_ERROR_CODE = "REP900"

_SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation (or audit failure) at a location."""

    file: str
    line: int
    code: str
    message: str
    severity: str = "error"

    def render(self) -> str:
        return f"{self.file}:{self.line}: {self.code} [{self.severity}] {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "file": self.file,
            "line": self.line,
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }

    def sort_key(self) -> Tuple[str, int, str]:
        return (self.file, self.line, self.code)


@dataclass
class Suppression:
    """One ``# repro: noqa`` comment found in a file.

    ``codes`` of ``None`` means the bare form (suppresses every code on
    its line); ``file_level`` marks the ``noqa-file[...]`` form, which
    suppresses the listed codes everywhere in the file and always
    requires explicit codes — a blanket file-wide mute would hide new
    rules silently.
    """

    line: int
    codes: Optional[FrozenSet[str]]
    file_level: bool = False
    used: bool = False

    def matches(self, finding: Finding) -> bool:
        if self.codes is None:
            return True
        return finding.code in self.codes


_NOQA_LINE_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Za-z0-9_,\s]+)\])?"
)
_NOQA_FILE_RE = re.compile(
    r"#\s*repro:\s*noqa-file\[(?P<codes>[A-Za-z0-9_,\s]+)\]"
)


def _iter_comments(text: str):
    """``(lineno, comment_text)`` for every real comment token.

    Tokenize-based on purpose: a docstring or string literal *mentioning*
    ``# repro: noqa`` (this framework documents the syntax, after all)
    must not register as a suppression.
    """
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparseable files are reported as REP900 by the caller; any
        # suppression accounting for them is moot.
        return


def _parse_suppressions(text: str) -> List[Suppression]:
    out: List[Suppression] = []
    for lineno, line in _iter_comments(text):
        if "noqa" not in line:
            continue
        m = _NOQA_FILE_RE.search(line)
        if m:
            codes = frozenset(
                c.strip().upper() for c in m.group("codes").split(",")
                if c.strip()
            )
            out.append(Suppression(line=lineno, codes=codes, file_level=True))
            continue
        m = _NOQA_LINE_RE.search(line)
        if m:
            raw = m.group("codes")
            line_codes = None
            if raw is not None:
                line_codes = frozenset(
                    c.strip().upper() for c in raw.split(",") if c.strip()
                )
            out.append(Suppression(line=lineno, codes=line_codes))
    return out


@dataclass
class FileContext:
    """Everything a check may look at for one file."""

    path: str                 # root-relative posix path (what findings show)
    section: str              # "src" | "tests" | "benchmarks"
    text: str
    tree: ast.AST
    #: Names referenced anywhere in the test suite (REP007's index);
    #: empty when linting a single file without cross-file context.
    test_names: FrozenSet[str] = frozenset()

    def finding(self, node: ast.AST, code: str, message: str,
                severity: str = "error") -> Finding:
        return Finding(file=self.path, line=getattr(node, "lineno", 1),
                       code=code, message=message, severity=severity)


class Check:
    """Base class of one lint rule.

    Subclasses set ``code`` / ``title`` / ``rationale`` (the README rule
    table is generated from these), restrict ``sections`` when a rule
    only makes sense for part of the tree, and implement :meth:`run`.
    """

    code: str = "REP999"
    title: str = ""
    rationale: str = ""
    sections: Tuple[str, ...] = SECTIONS

    def run(self, ctx: FileContext) -> Iterable[Finding]:  # pragma: no cover
        raise NotImplementedError


# ----------------------------------------------------------------------
# Discovery and the cross-file test index
# ----------------------------------------------------------------------

def _iter_py(directory: Path) -> List[Path]:
    if not directory.is_dir():
        return []
    out = []
    for path in sorted(directory.rglob("*.py")):
        if any(part in EXCLUDED_DIR_NAMES for part in path.parts):
            continue
        out.append(path)
    return out


def discover_files(root: Path) -> Dict[str, List[Path]]:
    """The lintable files of a repo, keyed by section."""
    root = Path(root)
    return {
        "src": _iter_py(root / "src"),
        "tests": _iter_py(root / "tests"),
        "benchmarks": _iter_py(root / "benchmarks"),
    }


def build_test_index(test_files: Sequence[Path]) -> FrozenSet[str]:
    """Every identifier / attribute / string literal the tests mention.

    This is REP007's cross-file reference index: a public batch kernel
    counts as covered when any ``tests/test_*.py`` file names it — as a
    bare name, an attribute access, a definition, or a string (the
    ``getattr``/parametrize spelling).
    """
    names: set = set()
    for path in test_files:
        if not path.name.startswith("test_"):
            continue
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except (OSError, SyntaxError, ValueError):
            continue
        for node in ast.walk(tree):
            if isinstance(node, ast.Name):
                names.add(node.id)
            elif isinstance(node, ast.Attribute):
                names.add(node.attr)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                names.add(node.name)
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                if node.value.isidentifier():
                    names.add(node.value)
    return frozenset(names)


# ----------------------------------------------------------------------
# Running checks over one file
# ----------------------------------------------------------------------

def lint_source(text: str, path: str, section: str,
                checks: Sequence[Check],
                test_names: FrozenSet[str] = frozenset()) -> List[Finding]:
    """Lint one source string; the fixture tests' entry point.

    Applies the section filter, runs every applicable check, then the
    suppression accounting (matched findings are dropped and their
    suppressions marked used; unused suppressions come back as REP000
    warnings).  Returns the surviving findings sorted by location.
    """
    if section not in SECTIONS:
        raise ValueError(f"unknown section {section!r}; expected one of {SECTIONS}")
    try:
        tree = ast.parse(text)
    except SyntaxError as exc:
        return [Finding(file=path, line=int(exc.lineno or 1),
                        code=PARSE_ERROR_CODE,
                        message=f"file does not parse: {exc.msg}")]
    ctx = FileContext(path=path, section=section, text=text, tree=tree,
                      test_names=test_names)
    raw: List[Finding] = []
    for check in checks:
        if section not in check.sections:
            continue
        raw.extend(check.run(ctx))

    suppressions = _parse_suppressions(text)
    line_sups = [s for s in suppressions if not s.file_level]
    file_sups = [s for s in suppressions if s.file_level]
    kept: List[Finding] = []
    for f in raw:
        hit = None
        for s in line_sups:
            if s.line == f.line and s.matches(f):
                hit = s
                break
        if hit is None:
            for s in file_sups:
                if s.matches(f):
                    hit = s
                    break
        if hit is None:
            kept.append(f)
        else:
            hit.used = True
    for s in suppressions:
        if not s.used:
            scope = "file-level " if s.file_level else ""
            codes = "all codes" if s.codes is None else ",".join(sorted(s.codes))
            kept.append(Finding(
                file=path, line=s.line, code=UNUSED_SUPPRESSION_CODE,
                message=f"unused {scope}suppression ({codes}): nothing to "
                        "suppress here — remove the noqa comment",
                severity="warning",
            ))
    return sorted(kept, key=Finding.sort_key)


def lint_file(path: Path, rel: str, section: str, checks: Sequence[Check],
              test_names: FrozenSet[str] = frozenset()) -> List[Finding]:
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, ValueError) as exc:
        return [Finding(file=rel, line=1, code=PARSE_ERROR_CODE,
                        message=f"file is unreadable: {exc}")]
    return lint_source(text, rel, section, checks, test_names)


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------

@dataclass
class LintReport:
    """The outcome of one full lint run (pass 1 + optional pass 2)."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    registry_audited: bool = False

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    def exit_code(self, strict: bool = False) -> int:
        if self.errors:
            return 1
        if strict and self.findings:
            return 1
        return 0

    def render_text(self) -> str:
        lines = [f.render() for f in sorted(self.findings, key=Finding.sort_key)]
        audit = "with" if self.registry_audited else "without"
        lines.append(
            f"repro lint: {self.files_checked} files checked {audit} "
            f"registry audit — {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s)"
        )
        return "\n".join(lines)

    def to_json(self) -> Dict[str, object]:
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "registry_audited": self.registry_audited,
            "counts": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
            },
            "findings": [
                f.to_json()
                for f in sorted(self.findings, key=Finding.sort_key)
            ],
        }

    def render_json(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True)
