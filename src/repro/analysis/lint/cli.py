"""``python -m repro lint`` — the command-line face of the analyzer.

Runs pass 1 (AST rules over ``src/``, ``tests/`` and ``benchmarks/``)
and, unless ``--no-registry``, pass 2 (the registry contract audit,
which imports the package).  Exit code 0 means clean, 1 means findings
(errors always; warnings too under ``--strict``), 2 means the lint run
itself could not start (bad root).
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.analysis.lint.framework import (
    LintReport,
    build_test_index,
    discover_files,
    lint_file,
)
from repro.analysis.lint.rules import ALL_CHECKS, all_checks

__all__ = ["add_lint_arguments", "run_lint", "main"]


def run_lint(root, registry: bool = True) -> LintReport:
    """Lint the repo at ``root``; the programmatic entry point."""
    root = Path(root).resolve()
    if not (root / "src" / "repro").is_dir():
        raise FileNotFoundError(
            f"{root} does not look like the repro repo (no src/repro/); "
            "run from the checkout root or pass --root"
        )
    files = discover_files(root)
    test_names = build_test_index(files["tests"])
    report = LintReport()
    for section, paths in files.items():
        for path in paths:
            rel = path.relative_to(root).as_posix()
            report.findings.extend(
                lint_file(path, rel, section, checks=all_checks(),
                          test_names=test_names)
            )
            report.files_checked += 1
    if registry:
        from repro.analysis.lint.registry_audit import audit_registry

        report.findings.extend(audit_registry())
        report.registry_audited = True
    return report


def add_lint_arguments(parser) -> None:
    parser.add_argument("--strict", action="store_true",
                        help="fail on warnings (unused suppressions) too")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="findings as human-readable text or as the "
                             "JSON schema documented in the README")
    parser.add_argument("--root", default=".",
                        help="repository root (default: current directory)")
    parser.add_argument("--no-registry", action="store_true",
                        help="skip pass 2 (the import-time registry audit)")
    parser.add_argument("--rules", action="store_true",
                        help="list the pass-1 rules and exit")


def _print_rules() -> int:
    for cls in ALL_CHECKS:
        sections = ",".join(cls.sections)
        print(f"{cls.code}  [{sections}]  {cls.title}")
    print("REP000 is the framework's unused-suppression warning; "
          "REG001-REG005 are the registry-audit contracts.")
    return 0


def main(args) -> int:
    """Execute the ``lint`` subcommand (argparse namespace in, exit code out)."""
    if args.rules:
        return _print_rules()
    try:
        report = run_lint(args.root, registry=not args.no_registry)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(report.render_json())
    else:
        print(report.render_text())
    return report.exit_code(strict=args.strict)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    import argparse

    parser = argparse.ArgumentParser(prog="repro-lint")
    add_lint_arguments(parser)
    sys.exit(main(parser.parse_args()))
