"""The repo-specific AST rules (REP001–REP011).

Each rule encodes one convention the reproduction's test campaign
hardened dynamically; the linter makes it registration-time static.
``ALL_CHECKS`` is the pass-1 rule set the CLI runs; the README rule
table is generated from the ``code`` / ``title`` / ``rationale``
metadata on each class.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List, Optional, Tuple

from repro.analysis.lint.framework import (
    Check,
    FileContext,
    Finding,
    _iter_comments,
)

__all__ = ["ALL_CHECKS", "all_checks"]


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


#: Legacy module-level numpy RNG entry points (global hidden state).
_GLOBAL_RNG_FNS = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "uniform", "normal", "standard_normal", "choice", "shuffle",
    "permutation", "seed", "get_state", "set_state", "exponential",
    "poisson", "binomial", "beta", "gamma", "lognormal", "multinomial",
})


class UnseededRngCheck(Check):
    code = "REP001"
    title = "no unseeded or global RNG in src/"
    rationale = (
        "Reproducibility is load-bearing: every stochastic path threads "
        "seeded np.random.Generator objects spawned from SeedSequence. "
        "An argument-less default_rng() or a np.random.<dist> module call "
        "draws from hidden global entropy and breaks replay."
    )
    sections = ("src",)

    def run(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted(node.func)
            if name is None:
                continue
            if name in ("np.random.default_rng", "numpy.random.default_rng",
                        "default_rng") and not node.args and not node.keywords:
                yield ctx.finding(
                    node, self.code,
                    "unseeded default_rng(): thread a seeded Generator / "
                    "SeedSequence instead",
                )
            elif (name.startswith(("np.random.", "numpy.random."))
                    and name.rsplit(".", 1)[1] in _GLOBAL_RNG_FNS):
                yield ctx.finding(
                    node, self.code,
                    f"global-state RNG call {name}(): use a seeded "
                    "np.random.Generator",
                )


#: Call attributes that count as "the handler stamped the error".
_STAMP_ATTRS = frozenset({
    "inc", "observe", "observe_many", "set_gauge", "count_op",
    "warn", "warning", "error", "exception", "log",
})


class SilentExceptCheck(Check):
    code = "REP002"
    title = "no silent broad exception swallow"
    rationale = (
        "A bare `except:` or `except Exception:` that neither re-raises "
        "nor stamps the failure (telemetry counter / count_op / "
        "warnings.warn / logging) turns bugs into silently-wrong numbers. "
        "Deliberate swallows carry a justified # repro: noqa[REP002]."
    )
    sections = ("src", "benchmarks")

    def run(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if self._body_stamps_or_raises(node.body):
                continue
            caught = "bare except" if node.type is None else \
                f"except {_dotted(node.type)}"
            yield ctx.finding(
                node, self.code,
                f"{caught} swallows silently: re-raise, stamp the error "
                "(telemetry/warnings/logging), or justify with "
                "# repro: noqa[REP002]",
            )

    @staticmethod
    def _is_broad(type_node: Optional[ast.AST]) -> bool:
        if type_node is None:
            return True
        if isinstance(type_node, ast.Tuple):
            return any(_dotted(e) in ("Exception", "BaseException")
                       for e in type_node.elts)
        return _dotted(type_node) in ("Exception", "BaseException")

    @staticmethod
    def _body_stamps_or_raises(body) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Raise):
                    return True
                if isinstance(node, ast.Call):
                    name = _dotted(node.func)
                    if name and name.rsplit(".", 1)[-1] in _STAMP_ATTRS:
                        return True
        return False


class FloatEqualityCheck(Check):
    code = "REP003"
    title = "no ==/!= against nonzero float literals outside tests"
    rationale = (
        "Bounds and envelopes are solver outputs; exact equality against "
        "a float literal is tolerance-free and flips with integrator "
        "step-size. Compare with a tolerance (np.isclose / <=). Exact "
        "0.0 sentinel checks remain legal — they test bit-level zeros."
    )
    sections = ("src", "benchmarks")

    def run(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (operands[i], operands[i + 1]):
                    if (isinstance(side, ast.Constant)
                            and isinstance(side.value, float)
                            and side.value != 0.0):
                        yield ctx.finding(
                            node, self.code,
                            f"exact float comparison against {side.value!r}: "
                            "use a tolerance (np.isclose or an explicit "
                            "bound)",
                        )
                        break


class MutableDefaultCheck(Check):
    code = "REP004"
    title = "no mutable default arguments"
    rationale = (
        "A list/dict/set default is shared across calls; with specs and "
        "models cached and sharded across processes, call-to-call "
        "leakage is a heisenbug. Default to None and build inside."
    )

    def run(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield ctx.finding(
                        default, self.code,
                        f"mutable default argument in {node.name}(): "
                        "default to None and construct per call",
                    )

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return _dotted(node.func) in ("list", "dict", "set")
        return False


class PrintAndClockCheck(Check):
    code = "REP005"
    title = "no print()/time.time()/breakpoint() in library code"
    rationale = (
        "Library output goes through reporting/telemetry, not stdout, "
        "and timing uses time.perf_counter() (time.time() is not "
        "monotonic). The CLI (__main__) and reporting modules are "
        "allowlisted — printing is their job."
    )
    sections = ("src",)
    #: Path fragments where printing is the module's purpose.
    allow_fragments = ("repro/__main__.py", "repro/reporting/",
                       "repro/analysis/lint/cli.py")

    def run(self, ctx: FileContext) -> Iterable[Finding]:
        posix = ctx.path.replace("\\", "/")
        if any(fragment in posix for fragment in self.allow_fragments):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted(node.func)
            if name in ("print", "breakpoint"):
                yield ctx.finding(
                    node, self.code,
                    f"{name}() in library code: emit through "
                    "repro.reporting or repro.telemetry",
                )
            elif name == "time.time":
                yield ctx.finding(
                    node, self.code,
                    "time.time() is non-monotonic: use "
                    "time.perf_counter() for timing",
                )


#: Gated module-level metric helpers that pay a lookup per call.
_LOOP_TELEMETRY = frozenset({"inc", "observe", "observe_many", "set_gauge"})


class LoopTelemetryCheck(Check):
    code = "REP006"
    title = "loop-body metrics must use hoisted live_* handles"
    rationale = (
        "telemetry.inc()/observe() re-check the gate and re-look-up the "
        "instrument per call; inside hot loops the convention is one "
        "live_counter()/live_histogram() hoist before the loop (None "
        "when disabled) and plain attribute ops per iteration."
    )
    sections = ("src",)

    def run(self, ctx: FileContext) -> Iterable[Finding]:
        return self._visit(ctx, ctx.tree, loop_depth=0)

    def _visit(self, ctx: FileContext, node: ast.AST,
               loop_depth: int) -> Iterable[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                # A nested def is invoked on its own schedule, not once
                # per enclosing-loop iteration; restart the depth.
                yield from self._visit(ctx, child, 0)
                continue
            depth = loop_depth
            if isinstance(child, (ast.For, ast.AsyncFor, ast.While)):
                depth += 1
            if depth > 0 and isinstance(child, ast.Call):
                name = _dotted(child.func)
                if (name and name.startswith("telemetry.")
                        and name.rsplit(".", 1)[1] in _LOOP_TELEMETRY):
                    yield ctx.finding(
                        child, self.code,
                        f"{name}() inside a loop body: hoist a "
                        "telemetry.live_counter()/live_histogram() handle "
                        "before the loop",
                    )
            yield from self._visit(ctx, child, depth)


class UntestedBatchKernelCheck(Check):
    code = "REP007"
    title = "every public *_batch kernel is named in tests/"
    rationale = (
        "The batching campaign's acceptance gate is the differential "
        "suite: a batched kernel without a test pinning it to its scalar "
        "twin is an unverified fast path. Any tests/test_*.py mention "
        "(name, attribute, or string) counts."
    )
    sections = ("src",)

    def run(self, ctx: FileContext) -> Iterable[Finding]:
        for node, name in self._public_batch_defs(ctx.tree):
            if name not in ctx.test_names:
                yield ctx.finding(
                    node, self.code,
                    f"public batch kernel {name}() is never named in any "
                    "tests/test_*.py — add a differential test pinning it "
                    "to its scalar twin",
                )

    @staticmethod
    def _public_batch_defs(tree: ast.AST):
        """Module-level and class-level (not nested) *_batch defs."""
        def scan(body) -> Iterable[Tuple[ast.AST, str]]:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if (stmt.name.endswith("_batch")
                            and not stmt.name.startswith("_")):
                        yield stmt, stmt.name
                elif isinstance(stmt, ast.ClassDef):
                    yield from scan(stmt.body)
        return scan(tree.body)


class WildcardImportCheck(Check):
    code = "REP008"
    title = "no wildcard imports"
    rationale = (
        "`from x import *` hides provenance and defeats the __all__ "
        "contract the public-API tests pin; every name is imported "
        "explicitly."
    )

    def run(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                if any(alias.name == "*" for alias in node.names):
                    yield ctx.finding(
                        node, self.code,
                        f"wildcard import from {node.module!r}: import the "
                        "needed names explicitly",
                    )


class AssertInLibraryCheck(Check):
    code = "REP009"
    title = "no assert statements in library code"
    rationale = (
        "python -O strips asserts, so validation guarded by them "
        "vanishes in optimized runs; library code raises explicit "
        "ValueError/TypeError (tests keep using assert, of course)."
    )
    sections = ("src",)

    def run(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                yield ctx.finding(
                    node, self.code,
                    "assert in library code is stripped under -O: raise an "
                    "explicit exception",
                )


class RaiseWithoutFromCheck(Check):
    code = "REP010"
    title = "exception conversions must chain (raise ... from ...)"
    rationale = (
        "Converting an exception inside an except handler without "
        "`from exc` (or an explicit `from None`) loses the causal "
        "traceback the next debugger needs; the repo chains everywhere."
    )
    sections = ("src",)

    def run(self, ctx: FileContext) -> Iterable[Finding]:
        return self._visit(ctx, ctx.tree, in_handler=False)

    def _visit(self, ctx: FileContext, node: ast.AST,
               in_handler: bool) -> Iterable[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                yield from self._visit(ctx, child, False)
                continue
            inside = in_handler or isinstance(child, ast.ExceptHandler)
            if (inside and isinstance(child, ast.Raise)
                    and child.exc is not None and child.cause is None):
                yield ctx.finding(
                    child, self.code,
                    "raise inside an except handler without `from`: chain "
                    "with `from exc` or mark deliberate with `from None`",
                )
            yield from self._visit(ctx, child, inside)


#: Identifier fragments that signal a loop-exit condition is a *bound*
#: (budget, deadline, retry cap ...) rather than a data-driven test.
_BOUND_TOKENS = (
    "max", "deadline", "timeout", "attempt", "retr", "budget", "remaining",
    "limit", "round", "patience", "iter", "count", "steps", "bound",
)

_UNBOUNDED_OK_RE = re.compile(
    r"#\s*repro:\s*unbounded-ok\[(?P<reason>[^\]]+)\]"
)


class UnboundedWhileCheck(Check):
    code = "REP011"
    title = "every while-True loop in src/ carries an explicit bound"
    rationale = (
        "The resilience campaign's failure mode is the loop that spins "
        "forever when a worker hangs or an iteration stops converging. "
        "A constant-true `while` must either contain a recognisable "
        "bound check (an `if` naming a max/deadline/attempt/budget-style "
        "limit that breaks, returns or raises) or justify itself with "
        "# repro: unbounded-ok[reason] on the `while` line."
    )
    sections = ("src",)

    def run(self, ctx: FileContext) -> Iterable[Finding]:
        waived = {
            lineno for lineno, comment in _iter_comments(ctx.text)
            if _UNBOUNDED_OK_RE.search(comment)
        }
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.While):
                continue
            if not (isinstance(node.test, ast.Constant)
                    and bool(node.test.value)):
                continue
            if node.lineno in waived:
                continue
            if self._has_bound(node):
                continue
            yield ctx.finding(
                node, self.code,
                "unbounded `while True`: add an explicit bound (an `if` "
                "on a max/deadline/attempt/budget-style limit that "
                "breaks/returns/raises) or justify with "
                "# repro: unbounded-ok[reason]",
            )

    @classmethod
    def _has_bound(cls, loop: ast.While) -> bool:
        """The loop body contains a bound-named `if` that exits.

        Nested function definitions are not descended into: a `return`
        inside a closure does not exit *this* loop, and `break` cannot
        cross a function boundary at all.
        """
        for node in cls._walk_shallow(loop.body):
            if not isinstance(node, ast.If):
                continue
            if not cls._names_a_bound(node.test):
                continue
            for inner in cls._walk_shallow([node]):
                if isinstance(inner, (ast.Break, ast.Raise, ast.Return)):
                    return True
        return False

    @staticmethod
    def _walk_shallow(nodes) -> Iterable[ast.AST]:
        stack = list(nodes)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _names_a_bound(test: ast.AST) -> bool:
        for node in ast.walk(test):
            name = None
            if isinstance(node, ast.Name):
                name = node.id
            elif isinstance(node, ast.Attribute):
                name = node.attr
            if name is None:
                continue
            lowered = name.lower()
            if any(token in lowered for token in _BOUND_TOKENS):
                return True
        return False


ALL_CHECKS = (
    UnseededRngCheck,
    SilentExceptCheck,
    FloatEqualityCheck,
    MutableDefaultCheck,
    PrintAndClockCheck,
    LoopTelemetryCheck,
    UntestedBatchKernelCheck,
    WildcardImportCheck,
    AssertInLibraryCheck,
    RaiseWithoutFromCheck,
    UnboundedWhileCheck,
)


def all_checks() -> List[Check]:
    """Fresh instances of every pass-1 rule."""
    return [cls() for cls in ALL_CHECKS]
