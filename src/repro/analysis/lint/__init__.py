"""repro.analysis.lint — the repo's own static-analysis gate.

Two passes enforce the conventions seven PRs of growth hardened:

- **Pass 1** (:mod:`~repro.analysis.lint.rules`): ~10 AST rules
  (REP001–REP010) run over ``src/``, ``tests/`` and ``benchmarks/``
  without importing the target — seeded-RNG threading, no silent
  exception swallows, hoisted loop-body telemetry, differential-tested
  batch kernels, and friends.  Suppressions are
  ``# repro: noqa[REPxxx]`` (same line) or
  ``# repro: noqa-file[REPxxx]`` (whole file); unused suppressions are
  themselves findings (REP000).
- **Pass 2** (:mod:`~repro.analysis.lint.registry_audit`): imports the
  package and audits the scenario registry — batch-kernel declarations,
  question-kind/backend bijection, the ScenarioSpec hash-field
  manifest, golden ⇒ validity (REG001–REG004).

CLI: ``python -m repro lint [--strict] [--format=text|json]``; the
programmatic surface is :func:`run_lint` returning a
:class:`LintReport`.
"""

from repro.analysis.lint.cli import run_lint
from repro.analysis.lint.framework import (
    Check,
    FileContext,
    Finding,
    LintReport,
    build_test_index,
    lint_source,
)
from repro.analysis.lint.rules import ALL_CHECKS, all_checks

__all__ = [
    "ALL_CHECKS",
    "Check",
    "FileContext",
    "Finding",
    "LintReport",
    "all_checks",
    "build_test_index",
    "lint_source",
    "run_lint",
]
