"""Retry policies and typed failure records for fault-tolerant execution.

A :class:`RetryPolicy` is the one knob object of the resilience layer:
it bounds attempts, caps per-shard wall clock, fixes the (deterministic)
exponential backoff schedule and decides whether an exhausted shard
aborts the whole fan-out (``on_error="raise"``) or degrades it to a
partial result (``on_error="partial"``).  Failures that survive the
policy come back as *values* — :class:`ShardFailure` in a
:func:`~repro.engine.map_shards` result slot, :class:`QuestionFailure`
on a :class:`~repro.scenarios.ScenarioRun` — so callers can merge what
succeeded and report what did not, instead of losing everything to one
bad worker.

The backoff schedule is a pure function of the policy (no jitter, no
clock reads), which is what makes recovered sweeps reproducible: the
same faults against the same policy yield the same retry timeline on
any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["RetryPolicy", "ShardFailure", "QuestionFailure",
           "FAILURE_KINDS"]

#: The ways a shard attempt can fail: a raising payload function, a
#: per-shard wall-clock timeout, or the death of the worker process
#: running it (OOM kill, segfault, ``os._exit``).
FAILURE_KINDS = ("error", "timeout", "pool-crash")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry execution policy for sharded fan-outs.

    Attributes
    ----------
    max_attempts:
        Total attempts per shard (1 = no retries).
    timeout_seconds:
        Per-attempt wall-clock budget.  Only enforceable on the pool
        path (a hung worker is killed and the pool rebuilt); the serial
        path cannot preempt a running payload and ignores it.
    backoff_base, backoff_factor, backoff_max:
        Deterministic exponential backoff: the delay before retry
        ``k`` (after attempt ``k`` failed) is
        ``min(backoff_max, backoff_base * backoff_factor**(k - 1))``.
        No jitter — reproducibility beats thundering-herd avoidance at
        this scale, and the chaos suite pins the exact schedule.
    on_error:
        ``"partial"`` places a :class:`ShardFailure` in the failed
        slot and keeps going; ``"raise"`` re-raises the shard's final
        error once its attempts are exhausted (legacy semantics).
    max_pool_rebuilds:
        Hard bound on pool kill/rebuild cycles (worker deaths and
        timeout reclamations) per fan-out, so a systematically dying
        environment terminates instead of thrashing.
    """

    max_attempts: int = 3
    timeout_seconds: Optional[float] = None
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    on_error: str = "partial"
    max_pool_rebuilds: int = 8

    def __post_init__(self):
        if int(self.max_attempts) < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive (or None)")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.backoff_max < 0:
            raise ValueError("backoff_max must be >= 0")
        if self.on_error not in ("raise", "partial"):
            raise ValueError(
                f"on_error must be 'raise' or 'partial', got {self.on_error!r}"
            )
        if int(self.max_pool_rebuilds) < 1:
            raise ValueError("max_pool_rebuilds must be >= 1")

    def backoff_delay(self, attempt: int) -> float:
        """Seconds to wait after (1-based) ``attempt`` failed."""
        if attempt < 1:
            raise ValueError("attempt numbers are 1-based")
        return min(self.backoff_max,
                   self.backoff_base * self.backoff_factor ** (attempt - 1))

    def backoff_schedule(self) -> Tuple[float, ...]:
        """The full delay sequence between the policy's attempts."""
        return tuple(self.backoff_delay(k)
                     for k in range(1, self.max_attempts))


@dataclass(frozen=True)
class ShardFailure:
    """One shard's terminal failure, in its :func:`map_shards` slot.

    Attributes
    ----------
    index:
        The payload index the failure belongs to (results keep input
        order, so this is also the slot the record occupies).
    error_type, message:
        Exception class name and message of the final failing attempt
        (synthesised for timeouts and worker deaths).
    kind:
        One of :data:`FAILURE_KINDS`.
    attempts:
        Attempts consumed before giving up.
    elapsed_seconds:
        Wall clock from the shard's first attempt to its final failure.
    """

    index: int
    error_type: str
    message: str
    kind: str
    attempts: int
    elapsed_seconds: float

    def __post_init__(self):
        if self.kind not in FAILURE_KINDS:
            raise ValueError(
                f"kind must be one of {FAILURE_KINDS}, got {self.kind!r}"
            )

    def describe(self) -> str:
        return (f"shard {self.index} failed ({self.kind}) after "
                f"{self.attempts} attempt(s) in {self.elapsed_seconds:.3f}s: "
                f"{self.error_type}: {self.message}")


@dataclass(frozen=True)
class QuestionFailure:
    """One scenario question's terminal failure (``on_error="partial"``).

    The scenario-level twin of :class:`ShardFailure`: identifies the
    question by kind/label, carries the exception taxonomy and the
    attempt accounting, and rides on :class:`~repro.scenarios.ScenarioRun`
    next to the outcomes that survived.
    """

    scenario: str
    kind: str
    label: str
    error_type: str
    message: str
    attempts: int
    elapsed_seconds: float

    @property
    def question(self) -> str:
        """``kind`` or ``kind[label]`` — the question's display name."""
        return f"{self.kind}[{self.label}]" if self.label else self.kind

    def describe(self) -> str:
        return (f"question {self.question} of {self.scenario} failed after "
                f"{self.attempts} attempt(s) in {self.elapsed_seconds:.3f}s: "
                f"{self.error_type}: {self.message}")
