"""Fault-tolerant shard execution for :func:`repro.engine.map_shards`.

The legacy pool path (``multiprocessing.Pool.map``) has all-or-nothing
semantics: one raising payload, one hung worker or one OOM kill aborts
the whole fan-out and discards every finished shard.  This module is
the robust alternative the engine delegates to whenever a
:class:`~repro.resilience.RetryPolicy` is supplied:

- **Async submission, per-task collection.**  Shards go through a
  :class:`concurrent.futures.ProcessPoolExecutor` one task per shard,
  at most one task per worker in flight, so each shard has its own
  wall-clock deadline and its own retry budget.
- **Typed failures, not aborts.**  Under ``on_error="partial"`` a shard
  that exhausts its attempts yields a
  :class:`~repro.resilience.ShardFailure` in its result slot; every
  other slot keeps its real result.  ``on_error="raise"`` restores
  legacy semantics (the final error propagates) while keeping retries.
- **Pool death recovery.**  A crashed/OOM-killed worker surfaces as
  ``BrokenProcessPool``; the executor is rebuilt and outstanding shards
  resubmitted.  Blame is only assigned when exactly one task was in
  flight — otherwise nobody is charged an attempt and the pool enters
  *quarantine* (one worker, one task in flight) where the next death
  identifies the culprit exactly.  Rebuilds are bounded by
  ``policy.max_pool_rebuilds``.
- **Timeout reclamation.**  A shard past ``policy.timeout_seconds`` is
  charged a ``timeout`` attempt and its worker killed (the only way to
  preempt arbitrary Python); innocent shards interrupted by the pool
  kill get their attempt refunded, which also keeps fault injection —
  keyed on ``(index, attempt)`` — deterministic across rebuilds.
- **Determinism.**  Backoff is the policy's pure schedule, fault
  decisions are pure in ``(index, attempt)``, and results keep input
  order — a recovered sweep is reproducible on any worker count, and
  the no-fault robust path is bit-identical to the legacy path.

The serial path mirrors the retry/backoff/partial semantics in-process;
it cannot preempt a running payload, so ``timeout_seconds`` is ignored
there (documented on :class:`~repro.resilience.RetryPolicy`).
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import (FIRST_COMPLETED, CancelledError,
                                ProcessPoolExecutor, wait)
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Optional, Sequence

from repro import telemetry
from repro.resilience import faults
from repro.resilience.policy import RetryPolicy, ShardFailure

__all__ = ["map_shards_robust", "warn_pool_unavailable"]

#: Seam for tests: the one sleep primitive of the resilience layer
#: (serial backoff and idle waits).  Monkeypatching ``execution._sleep``
#: captures the exact deterministic backoff schedule without waiting.
_sleep = time.sleep

#: Pool-unavailable warnings fire once per process, not once per sweep.
_pool_warned = False


class _PoolUnavailable(RuntimeError):
    """Process-pool creation failed (sandboxed env, missing semaphores)."""


def warn_pool_unavailable(exc: BaseException) -> None:
    """Stamp + warn (once) that shards degrade to the serial path."""
    global _pool_warned
    telemetry.inc("engine.shard.pool_unavailable")
    if not _pool_warned:
        _pool_warned = True
        warnings.warn(
            f"process pool unavailable ({exc}); running shards serially",
            RuntimeWarning, stacklevel=3,
        )


class _ShardTask:
    """Picklable per-attempt wrapper executed inside the worker.

    Carries the parent's fault plan across the pool boundary and
    re-arms it (:func:`repro.resilience.faults.activate`) so seams
    inside the payload — and the shard-level fault itself — behave
    identically to the serial path.  Returns ``(seconds, result)``:
    the telemetry registry is process-local, so worker-side wall time
    must ride back with the result (same contract as the legacy
    ``_TimedCall``).
    """

    __slots__ = ("fn", "plan")

    def __init__(self, fn: Callable, plan) -> None:
        self.fn = fn
        self.plan = plan

    def __call__(self, pack):
        index, attempt, payload = pack
        with faults.activate(self.plan) as plan:
            if plan is not None:
                faults.apply_shard_fault(plan, index, attempt)
            start = time.perf_counter()
            result = self.fn(payload)
            return time.perf_counter() - start, result


def _new_executor(pool_size: int, initializer,
                  initargs) -> ProcessPoolExecutor:
    try:
        return ProcessPoolExecutor(max_workers=pool_size,
                                   initializer=initializer,
                                   initargs=initargs)
    except (OSError, ImportError) as exc:
        raise _PoolUnavailable(str(exc)) from exc


def _kill_executor(executor: ProcessPoolExecutor) -> None:
    """Tear an executor down *now*: hung or doomed workers get killed,
    not joined (joining a worker asleep in an injected hang — or a real
    one — would wait the hang out, defeating the timeout)."""
    processes = getattr(executor, "_processes", None) or {}
    for proc in list(processes.values()):
        proc.kill()
    executor.shutdown(wait=False, cancel_futures=True)


def map_shards_robust(fn: Callable, payloads: Sequence,
                      processes: Optional[int] = None,
                      policy: Optional[RetryPolicy] = None,
                      initializer: Optional[Callable] = None,
                      initargs: tuple = ()) -> List:
    """Policy-governed :func:`~repro.engine.map_shards` equivalent.

    Same contract (input order, serial short-circuit, initializer
    protocol) plus the :class:`RetryPolicy` semantics described in the
    module docstring.  Under ``policy.on_error="partial"`` the returned
    list may contain :class:`ShardFailure` records in the slots of
    shards that exhausted their attempts.
    """
    if policy is None:
        policy = RetryPolicy()
    payloads = list(payloads)
    plan = faults.active_plan()
    serial = processes is None or processes <= 1 or len(payloads) <= 1
    if not telemetry.enabled():
        return _dispatch(fn, payloads, processes, policy,
                         initializer, initargs, plan, serial)
    with telemetry.span("engine.map_shards", shards=len(payloads),
                        processes=1 if serial else processes, robust=1):
        return _dispatch(fn, payloads, processes, policy,
                         initializer, initargs, plan, serial)


def _dispatch(fn, payloads, processes, policy, initializer, initargs,
              plan, serial) -> List:
    if serial:
        return _run_serial(fn, payloads, policy, initializer, initargs,
                           plan)
    try:
        return _run_pool(fn, payloads, min(processes, len(payloads)),
                         policy, initializer, initargs, plan)
    except _PoolUnavailable as exc:
        # Sandboxed environments (no /dev/shm, no semaphores) fail at
        # executor construction; degrade to the serial path rather than
        # crash the sweep.  fn is deterministic per payload, so a rerun
        # from scratch is safe.
        warn_pool_unavailable(exc.__cause__ or exc)
        return _run_serial(fn, payloads, policy, initializer, initargs,
                           plan)


def _run_serial(fn, payloads, policy, initializer, initargs,
                plan) -> List:
    if initializer is not None:
        initializer(*initargs)
    retries_c = telemetry.live_counter("resilience.shard.retries")
    errors_c = telemetry.live_counter("resilience.shard.errors")
    failures_c = telemetry.live_counter("resilience.shard.failures")
    results: List = [None] * len(payloads)
    seconds_list: List[float] = []
    for idx, payload in enumerate(payloads):
        started = time.monotonic()
        last_exc: Optional[BaseException] = None
        for attempt in range(1, policy.max_attempts + 1):
            try:
                t0 = time.perf_counter()
                if plan is not None:
                    faults.apply_shard_fault(plan, idx, attempt)
                value = fn(payload)
            except Exception as exc:
                last_exc = exc
                if errors_c is not None:
                    errors_c.inc()
                if attempt < policy.max_attempts:
                    if retries_c is not None:
                        retries_c.inc()
                    _sleep(policy.backoff_delay(attempt))
                continue
            results[idx] = value
            seconds_list.append(time.perf_counter() - t0)
            break
        else:
            if policy.on_error == "raise":
                raise last_exc
            if failures_c is not None:
                failures_c.inc()
            results[idx] = ShardFailure(
                index=idx, error_type=type(last_exc).__name__,
                message=str(last_exc), kind="error",
                attempts=policy.max_attempts,
                elapsed_seconds=time.monotonic() - started,
            )
    if telemetry.enabled():
        telemetry.inc("engine.shard.calls", len(seconds_list))
        telemetry.observe_many("engine.shard.seconds", seconds_list)
    return results


def _run_pool(fn, payloads, pool_size, policy, initializer, initargs,
              plan) -> List:
    n = len(payloads)
    retries_c = telemetry.live_counter("resilience.shard.retries")
    errors_c = telemetry.live_counter("resilience.shard.errors")
    timeouts_c = telemetry.live_counter("resilience.shard.timeouts")
    crashes_c = telemetry.live_counter("resilience.shard.pool_crashes")
    rebuilds_c = telemetry.live_counter("resilience.shard.pool_rebuilds")
    failures_c = telemetry.live_counter("resilience.shard.failures")

    results: List = [None] * n
    outstanding = set(range(n))
    attempts = [0] * n
    started: List[Optional[float]] = [None] * n
    next_eligible = [0.0] * n
    shard_seconds: List[float] = []
    in_flight: dict = {}
    rebuilds = 0
    quarantine = False
    # Set when on_error="raise" meets a terminal failure: (kind, exc,
    # message).  Deferred so the raise happens outside any except
    # handler, after executor cleanup.
    fatal: Optional[tuple] = None

    task = _ShardTask(fn, plan)
    executor = _new_executor(pool_size, initializer, initargs)

    def charge(idx: int, kind: str, error_type: str, message: str,
               exc: Optional[BaseException]) -> None:
        """Charge shard ``idx`` one failed attempt of ``kind``."""
        nonlocal fatal
        now = time.monotonic()
        if attempts[idx] >= policy.max_attempts:
            if policy.on_error == "raise":
                fatal = (kind, exc,
                         f"shard {idx} failed ({kind}) after "
                         f"{attempts[idx]} attempt(s): {error_type}: "
                         f"{message}")
                return
            if failures_c is not None:
                failures_c.inc()
            results[idx] = ShardFailure(
                index=idx, error_type=error_type, message=message,
                kind=kind, attempts=attempts[idx],
                elapsed_seconds=now - (started[idx] or now),
            )
            outstanding.discard(idx)
        else:
            if retries_c is not None:
                retries_c.inc()
            next_eligible[idx] = now + policy.backoff_delay(attempts[idx])

    def rebuild() -> ProcessPoolExecutor:
        nonlocal rebuilds
        rebuilds += 1
        if rebuilds > policy.max_pool_rebuilds:
            raise RuntimeError(
                f"process pool died or timed out {rebuilds} times "
                f"(max_pool_rebuilds={policy.max_pool_rebuilds}); "
                "giving up on this fan-out"
            )
        if rebuilds_c is not None:
            rebuilds_c.inc()
        _kill_executor(executor)
        return _new_executor(1 if quarantine else pool_size,
                             initializer, initargs)

    def refund_in_flight() -> None:
        """The pool died under these shards through no fault of their
        own: give the attempt back, so the resubmission replays the
        same ``(index, attempt)`` — the key fault injection and the
        backoff schedule are deterministic in."""
        for other_idx, _, _ in in_flight.values():
            attempts[other_idx] -= 1
        in_flight.clear()

    try:
        while outstanding and fatal is None:
            now = time.monotonic()
            broke_on_submit = False
            busy = {meta[0] for meta in in_flight.values()}
            for idx in sorted(outstanding - busy):
                if len(in_flight) >= (1 if quarantine else pool_size):
                    break
                if next_eligible[idx] > now:
                    continue
                attempts[idx] += 1
                if started[idx] is None:
                    started[idx] = now
                try:
                    fut = executor.submit(
                        task, (idx, attempts[idx], payloads[idx])
                    )
                except BrokenProcessPool:
                    # A worker died between the last wait() and this
                    # submit; this shard never ran, so its attempt goes
                    # back and the death is processed like any other
                    # pool break (the doomed futures are still in
                    # in_flight).
                    attempts[idx] -= 1
                    broke_on_submit = True
                    break
                in_flight[fut] = (idx, attempts[idx], time.monotonic())

            if broke_on_submit:
                if crashes_c is not None:
                    crashes_c.inc()
                victims = [m[0] for m in in_flight.values()]
                if len(victims) == 1:
                    # Exactly one task was running: blame is certain,
                    # and its consumed attempt stands.
                    in_flight.clear()
                    charge(victims[0], "pool-crash", "BrokenProcessPool",
                           "worker process died abruptly", None)
                else:
                    refund_in_flight()
                    quarantine = True
                executor = rebuild()
                continue

            if not in_flight:
                # Everyone left is backing off; sleep to the earliest
                # eligibility instead of spinning.
                delay = min(next_eligible[i] for i in outstanding)
                delay -= time.monotonic()
                if delay > 0:
                    _sleep(delay)
                continue

            deadlines = [next_eligible[i]
                         for i in outstanding
                         if i not in {m[0] for m in in_flight.values()}]
            if policy.timeout_seconds is not None:
                deadlines.extend(t0 + policy.timeout_seconds
                                 for _, _, t0 in in_flight.values())
            timeout = (max(0.0, min(deadlines) - time.monotonic())
                       if deadlines else None)
            done, _ = wait(set(in_flight), timeout=timeout,
                           return_when=FIRST_COMPLETED)

            broken: List[int] = []
            for fut in done:
                idx, attempt, t0 = in_flight.pop(fut)
                try:
                    seconds, value = fut.result()
                except BrokenProcessPool:
                    broken.append(idx)
                    continue
                except CancelledError:
                    attempts[idx] -= 1  # never ran; refund the attempt
                    continue
                except Exception as exc:
                    if errors_c is not None:
                        errors_c.inc()
                    charge(idx, "error", type(exc).__name__, str(exc),
                           exc)
                    continue
                results[idx] = value
                outstanding.discard(idx)
                shard_seconds.append(seconds)

            if broken:
                # Pool death poisons every in-flight future, not just
                # the task whose worker died; the survivors still in
                # in_flight are equally doomed.
                if crashes_c is not None:
                    crashes_c.inc()
                victims = broken + [m[0] for m in in_flight.values()]
                refund_in_flight()
                if len(victims) == 1:
                    # Exactly one task was running: blame is certain.
                    charge(victims[0], "pool-crash", "BrokenProcessPool",
                           "worker process died abruptly", None)
                else:
                    # Ambiguous blame: refund everyone (broken
                    # included) and quarantine — one worker, one task
                    # in flight — so the next death is attributable.
                    for idx in broken:
                        attempts[idx] -= 1
                    quarantine = True
                executor = rebuild()
                continue

            if policy.timeout_seconds is not None and in_flight:
                now = time.monotonic()
                expired = [
                    (fut, meta) for fut, meta in in_flight.items()
                    if now - meta[2] >= policy.timeout_seconds
                ]
                if expired:
                    for fut, (idx, attempt, t0) in expired:
                        del in_flight[fut]
                        if timeouts_c is not None:
                            timeouts_c.inc()
                        charge(idx, "timeout", "TimeoutError",
                               f"shard exceeded "
                               f"{policy.timeout_seconds:g}s wall-clock "
                               f"budget", None)
                    # Killing the pool is the only way to preempt the
                    # hung worker; shards merely sharing the pool get
                    # their attempt refunded.
                    refund_in_flight()
                    executor = rebuild()
    finally:
        _kill_executor(executor)

    if fatal is not None:
        kind, exc, message = fatal
        if exc is not None:
            raise exc
        if kind == "timeout":
            raise TimeoutError(message)
        raise RuntimeError(message)

    if telemetry.enabled():
        telemetry.inc("engine.shard.calls", len(shard_seconds))
        telemetry.observe_many("engine.shard.seconds", shard_seconds)
    return results
