"""Deterministic fault injection for the chaos test suite.

The recovery paths of the resilience layer (retries, pool rebuilds,
lane retirement, cache-corruption tolerance) only count if tests can
*prove* they fire.  This module plants seams at the three layers the
tentpole hardens — :func:`~repro.engine.map_shards` shard execution,
the scenario disk cache, and the batched ODE core — and drives them
from a :class:`FaultPlan` installed by the :func:`inject` context
manager.

Design rules, mirroring :mod:`repro.telemetry`:

- **Off by default at provably zero cost.**  Every seam reads the
  module-global ``_armed`` flag first; disarmed, a seam is one global
  load and a branch.  The operation tally (:func:`stats`) counts seam
  evaluations while armed, so the overhead test converts "seams per
  workload" into a bound instead of a flaky wall-clock A/B.
- **Deterministic and worker-count invariant.**  Fault decisions are
  pure functions of ``(shard index, attempt number)`` — no RNG, no
  clocks, no worker-local state (a killed worker keeps no state).  The
  same plan against the same policy produces the same failures and the
  same recovery whether the sweep runs serially or over any pool size.
- **Pool-portable.**  A :class:`FaultPlan` is a frozen tuple-of-tuples
  dataclass, picklable under any start method; the shard wrapper
  carries it into workers and re-arms it there via :func:`activate`.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import time
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Optional, Tuple, Union

__all__ = ["FaultPlan", "InjectedFault", "inject", "activate",
           "active_plan", "armed", "count_injection", "stats",
           "reset_stats"]


class InjectedFault(RuntimeError):
    """The exception an injected shard crash raises (distinguishable in
    tests from genuine payload errors)."""


#: ``(index, n_attempts)`` pairs: the shard at ``index`` faults on its
#: first ``n_attempts`` attempts (``-1`` = every attempt).
_ShardFaults = Tuple[Tuple[int, int], ...]

#: Accepted spellings for a per-shard fault spec in :func:`inject`.
ShardFaultSpec = Union[int, Tuple[int, int], Mapping[int, int], None]


@dataclass(frozen=True)
class FaultPlan:
    """A frozen, picklable description of the faults to inject.

    Attributes
    ----------
    crash_shards:
        Shards whose payload call raises :class:`InjectedFault`.
    hang_shards:
        Shards whose payload call sleeps ``hang_seconds`` first (the
        parent's per-shard timeout is what reclaims them on the pool
        path; serially the sleep simply elapses).
    kill_shards:
        Shards whose worker process dies hard (``os._exit``) — the
        BrokenProcessPool / pool-rebuild path.  On the serial path
        (no worker to kill) this degrades to a crash.
    hang_seconds:
        Sleep length of a hang fault.
    poison_nan:
        ``(lane, after_accepted_steps)``: the batched ODE core writes
        NaN into that lane's state once it has accepted that many
        steps — the lane-retirement path.
    corrupt_cache:
        Every cache entry classification reports ``corrupt``.
    cache_store_errors:
        The first N ``store_result`` publish attempts raise a
        transient ``OSError`` (1 exercises the retry, 2 exhausts it).
    """

    crash_shards: _ShardFaults = ()
    hang_shards: _ShardFaults = ()
    kill_shards: _ShardFaults = ()
    hang_seconds: float = 30.0
    poison_nan: Optional[Tuple[int, int]] = None
    corrupt_cache: bool = False
    cache_store_errors: int = 0

    def shard_fault(self, index: int, attempt: int) -> Optional[str]:
        """The fault (if any) shard ``index``'s ``attempt`` suffers.

        Pure in ``(index, attempt)``; kill takes precedence over hang
        over crash when a shard appears in several lists.
        """
        for kind, entries in (("kill", self.kill_shards),
                              ("hang", self.hang_shards),
                              ("crash", self.crash_shards)):
            for i, n in entries:
                if i == index and (n < 0 or attempt <= n):
                    return kind
        return None


# Armed flag read directly (``faults._armed``) on hot seams: one global
# load, no function call, exactly like ``telemetry.core._enabled``.
_armed: bool = False

_plan_var: ContextVar[Optional[FaultPlan]] = ContextVar(
    "repro-fault-plan", default=None
)

#: How many contexts currently hold a plan (inject/activate nest).
_arm_depth: int = 0

_ops: Dict[str, int] = {"seam_checks": 0, "injected": 0}


def armed() -> bool:
    """Whether any fault plan is currently installed (process-wide)."""
    return _armed


def active_plan() -> Optional[FaultPlan]:
    """The installed :class:`FaultPlan`, or ``None`` when disarmed.

    The disarmed fast path is a single global load; seam-check
    accounting only happens while armed, so :func:`stats` proves the
    disarmed cost is exactly that load.
    """
    if not _armed:
        return None
    _ops["seam_checks"] += 1
    return _plan_var.get()


def count_injection(kind: str) -> None:
    """Tally one fired injection (``stats()["injected"]``)."""
    _ops["injected"] += 1
    _ops[f"injected.{kind}"] = _ops.get(f"injected.{kind}", 0) + 1


def stats() -> Dict[str, int]:
    """Seam-evaluation and injection counts since :func:`reset_stats`."""
    return dict(_ops)


def reset_stats() -> None:
    _ops.clear()
    _ops.update({"seam_checks": 0, "injected": 0})


def _normalise(spec: ShardFaultSpec) -> _ShardFaults:
    """Normalise a shard-fault spec into ``((index, n_attempts), ...)``.

    An ``int`` means "that shard faults on every attempt"; an
    ``(index, n)`` pair limits the fault to the first ``n`` attempts;
    a mapping gives several shards their own attempt counts.
    """
    if spec is None:
        return ()
    if isinstance(spec, Mapping):
        return tuple((int(i), int(n)) for i, n in sorted(spec.items()))
    if isinstance(spec, tuple) and len(spec) == 2:
        return ((int(spec[0]), int(spec[1])),)
    if isinstance(spec, int):
        return ((spec, -1),)
    raise TypeError(
        f"shard fault spec must be an index, an (index, n_attempts) pair "
        f"or a mapping; got {spec!r}"
    )


@contextlib.contextmanager
def activate(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultPlan]]:
    """Install an already-built plan for the duration of the context.

    The worker-side re-arming seam: the shard wrapper pickles the
    parent's plan into the worker and activates it there, so nested
    cache / ODE seams inside the payload see the same faults the
    parent's :func:`inject` block declared.  ``activate(None)`` is a
    no-op passthrough (the common disarmed case costs nothing).
    """
    global _armed, _arm_depth
    if plan is None:
        yield None
        return
    token = _plan_var.set(plan)
    _arm_depth += 1
    _armed = True
    try:
        yield plan
    finally:
        _plan_var.reset(token)
        _arm_depth -= 1
        _armed = _arm_depth > 0


@contextlib.contextmanager
def inject(
    *,
    crash_shard: ShardFaultSpec = None,
    hang_shard: ShardFaultSpec = None,
    kill_shard: ShardFaultSpec = None,
    hang_seconds: float = 30.0,
    poison_nan: Optional[Tuple[int, int]] = None,
    corrupt_cache: bool = False,
    cache_store_errors: int = 0,
) -> Iterator[FaultPlan]:
    """Build and install a :class:`FaultPlan` for the ``with`` block.

    Example — a sweep whose shard 2 crashes once and shard 5 hangs
    forever::

        with faults.inject(crash_shard={2: 1}, hang_shard=5,
                           hang_seconds=30.0):
            results = map_shards(fn, payloads, processes=4, policy=policy)
    """
    plan = FaultPlan(
        crash_shards=_normalise(crash_shard),
        hang_shards=_normalise(hang_shard),
        kill_shards=_normalise(kill_shard),
        hang_seconds=float(hang_seconds),
        poison_nan=(None if poison_nan is None
                    else (int(poison_nan[0]), int(poison_nan[1]))),
        corrupt_cache=bool(corrupt_cache),
        cache_store_errors=int(cache_store_errors),
    )
    with activate(plan):
        yield plan


def apply_shard_fault(plan: FaultPlan, index: int, attempt: int) -> None:
    """Fire the planned fault (if any) for one shard attempt.

    Called by the shard wrapper *inside* the executing process.  A
    ``kill`` fault terminates the worker hard — but only when there is
    a parent process to notice; on the serial path it degrades to a
    crash so the test process itself survives.
    """
    kind = plan.shard_fault(index, attempt)
    if kind is None:
        return
    count_injection(kind)
    if kind == "hang":
        time.sleep(plan.hang_seconds)
        return
    if kind == "kill" and multiprocessing.parent_process() is not None:
        os._exit(17)
    raise InjectedFault(
        f"injected {kind} in shard {index} (attempt {attempt})"
    )
