"""``repro.resilience`` — fault tolerance for the execution layer.

The reproduction fans hot workloads over process pools
(:func:`repro.engine.map_shards`), multi-question scenario runs and
long Pontryagin/dopri iterations; without this package one crashed
worker, hung shard, raising question backend or NaN-poisoned lane
aborts the entire run and discards every already-computed result.
ROADMAP item 2 (bounds-as-a-service) needs better-than-all-or-nothing
failure semantics, and this package supplies them:

- :class:`RetryPolicy` — bounded retries, deterministic exponential
  backoff, per-shard wall-clock timeouts, ``on_error="raise"|"partial"``;
- :class:`ShardFailure` / :class:`QuestionFailure` — failures as typed
  *values* in result slots, next to everything that survived;
- :func:`map_shards_robust` — the async-submission pool executor with
  worker-death recovery that :func:`~repro.engine.map_shards` delegates
  to when a policy is supplied;
- :mod:`repro.resilience.faults` — the deterministic fault-injection
  harness (off by default at provably zero cost, same op-tally
  discipline as :mod:`repro.telemetry`) that lets the chaos suite prove
  each recovery path fires.

Everything here depends only on the standard library and
:mod:`repro.telemetry`, so any layer of the stack may import it without
cycles.
"""

from repro.resilience import faults
from repro.resilience.policy import (FAILURE_KINDS, QuestionFailure,
                                     RetryPolicy, ShardFailure)
from repro.resilience.execution import map_shards_robust

__all__ = [
    "FAILURE_KINDS",
    "QuestionFailure",
    "RetryPolicy",
    "ShardFailure",
    "faults",
    "map_shards_robust",
]
