"""repro.scenarios — declarative scenario catalog and cached runner.

The paper's value is that *one* imprecise-mean-field toolkit answers
many different model questions; this package makes that literal.  A
:class:`ScenarioSpec` declares a model family, its parameter-uncertainty
set (through the factory's bounds kwargs), an initial condition, a
horizon and a list of :class:`Question`\\ s; :func:`run_scenario` routes
each question to the right backend —

- ``envelope``   → :func:`repro.bounds.uncertain_envelope`
- ``pontryagin`` → :func:`repro.bounds.pontryagin_transient_bounds`
- ``hull``       → :func:`repro.bounds.differential_hull_bounds`
- ``template``   → :func:`repro.bounds.template_reachable_bounds`
- ``steadystate``→ :func:`repro.steadystate.hull_steady_rectangle` and
  the 2-D Birkhoff construction
- ``ensemble``   → :func:`repro.engine.sweep_constant_ensembles`
  (vectorized finite-``N`` SSA)
- ``dtmc_reward``→ :class:`repro.ctmc.IntervalDTMC` (uniformized
  finite chain, batched credal operators)

— fans independent questions over the engine's process-pool primitive,
and memoizes the assembled :class:`~repro.reporting.ExperimentResult`
in a content-hash disk cache, so a repeated run is served in
milliseconds.  The built-in catalog registers the paper's five case
studies plus the extension models; ``python -m repro`` exposes
``list`` / ``describe`` / ``run`` on the command line.

Typical usage::

    from repro.scenarios import get_scenario, run_scenario

    run = run_scenario("sir-transient")
    print(run.result.render())
    print(run.report.render())        # cache_hit=true on the second call

    # A derived variant (content-hashed separately):
    spec = get_scenario("sir-transient").with_overrides(
        name="sir-wide", model_kwargs={"theta_max": 12.0})
    run = run_scenario(spec)
"""

from repro.resilience import QuestionFailure, RetryPolicy
from repro.scenarios.cache import (
    CACHE_SCHEMA_VERSION,
    cache_dir,
    cache_path,
    clear_cache,
)
from repro.scenarios.registry import (
    get_scenario,
    list_scenarios,
    register_scenario,
)
from repro.scenarios.runner import (
    AnalysisPlan,
    RunReport,
    ScenarioRun,
    envelope_integrator_options,
    run_question,
    run_scenario,
    spec_envelope_options,
)
from repro.scenarios.spec import QUESTION_KINDS, Question, ScenarioSpec

__all__ = [
    "Question",
    "ScenarioSpec",
    "QUESTION_KINDS",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "AnalysisPlan",
    "QuestionFailure",
    "RetryPolicy",
    "RunReport",
    "ScenarioRun",
    "run_scenario",
    "run_question",
    "envelope_integrator_options",
    "spec_envelope_options",
    "cache_dir",
    "cache_path",
    "clear_cache",
    "CACHE_SCHEMA_VERSION",
]
