"""Declarative scenario specifications.

A :class:`ScenarioSpec` declares *what* to analyse — a model family
(a module-level factory plus keyword arguments), an initial condition,
a horizon and a list of :class:`Question`\\ s — and nothing about *how*:
the runner (:mod:`repro.scenarios.runner`) routes each question to the
right backend.  Specs are value objects: hashable by content
(:meth:`ScenarioSpec.spec_hash`), which is what keys the disk cache, and
derivable (:meth:`ScenarioSpec.with_overrides`) so benchmarks and design
loops can declare one base scenario and sweep variants of it.
"""

from __future__ import annotations

import hashlib
import inspect
import json
from dataclasses import dataclass, replace
from typing import Callable, Dict, Tuple

import numpy as np

__all__ = ["Question", "ScenarioSpec", "QUESTION_KINDS",
           "HASH_INCLUDED_FIELDS", "HASH_EXCLUDED_FIELDS"]

#: The :class:`ScenarioSpec` fields whose content feeds
#: :meth:`ScenarioSpec.payload` and therefore the disk-cache key.
#: Every dataclass field MUST be listed here or in
#: :data:`HASH_EXCLUDED_FIELDS` — the registry audit
#: (``python -m repro lint``) fails on an unclassified field, so adding
#: a field can neither silently change every cache key nor silently
#: *not* change keys it should.
HASH_INCLUDED_FIELDS = (
    "model_factory",
    "model_kwargs",
    "x0",
    "horizon",
    "observables",
    "questions",
)

#: Fields deliberately excluded from the content hash: identity and
#: documentation (renames must not invalidate artifacts) and
#: conformance-test metadata (declaring checks must not either).
HASH_EXCLUDED_FIELDS = (
    "name",
    "title",
    "description",
    "tags",
    "validity",
    "golden",
)

#: The analysis questions the runner knows how to dispatch.
QUESTION_KINDS = (
    "envelope",     # uncertain (constant-theta) transient envelope
    "pontryagin",   # exact imprecise transient bounds (Fig. 1 / Fig. 7)
    "hull",         # differential-hull over-approximation (Fig. 4)
    "template",     # convex template polytope at the horizon
    "steadystate",  # hull rectangle + (2-D) Birkhoff centre (Fig. 3 / 5)
    "ensemble",     # finite-N vectorized SSA sweep over constant thetas
    "dtmc_reward",  # finite-N interval-DTMC (Škulj) reward bounds
)


def _canonical(value):
    """Coerce a value into a JSON-stable canonical form for hashing."""
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):
        return [_canonical(v) for v in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"value {value!r} of type {type(value).__name__} is not "
        "canonicalisable; use plain scalars, sequences or dicts"
    )


def _freeze(mapping) -> Tuple[Tuple[str, object], ...]:
    """Canonicalise a mapping (or pre-frozen item tuple) into sorted items."""
    if mapping is None:
        return ()
    if isinstance(mapping, tuple):
        mapping = dict(mapping)
    return tuple(
        (str(k), _json_frozen(_canonical(v))) for k, v in sorted(mapping.items())
    )


#: Tag distinguishing a frozen dict from a frozen list inside the
#: hashable representation, so :func:`_thaw` restores the right type.
_DICT_TAG = "__frozen_dict__"


def _json_frozen(value):
    """Make a canonical value hashable (lists become tuples, recursively)."""
    if isinstance(value, list):
        return tuple(_json_frozen(v) for v in value)
    if isinstance(value, dict):
        return (_DICT_TAG,
                tuple((k, _json_frozen(v)) for k, v in sorted(value.items())))
    return value


def _thaw(value):
    """Inverse of :func:`_json_frozen`: tuples back to lists/dicts."""
    if isinstance(value, tuple):
        if len(value) == 2 and value[0] == _DICT_TAG:
            return {k: _thaw(v) for k, v in value[1]}
        return [_thaw(v) for v in value]
    return value


@dataclass(frozen=True)
class Question:
    """One analysis to run on a scenario's model.

    Parameters
    ----------
    kind:
        One of :data:`QUESTION_KINDS`.
    options:
        Backend options (horizon grids, sweep resolutions, template
        families, ensemble sizes ...), given as a mapping; stored in a
        canonical sorted-tuple form so questions are hashable.
    label:
        Optional prefix for the series/findings this question emits;
        required when a scenario asks the same kind twice.
    """

    kind: str
    options: Tuple[Tuple[str, object], ...] = ()
    label: str = ""

    def __post_init__(self):
        if self.kind not in QUESTION_KINDS:
            raise ValueError(
                f"unknown question kind {self.kind!r}; expected one of "
                f"{QUESTION_KINDS}"
            )
        object.__setattr__(self, "options", _freeze(self.options))
        object.__setattr__(self, "label", str(self.label))

    @property
    def opts(self) -> Dict[str, object]:
        """The options as a plain dict (tuple values thawed to lists)."""
        return {k: _thaw(v) for k, v in self.options}

    def prefixed(self, name: str) -> str:
        """Apply the question label (if any) to a series/finding name."""
        return f"{self.label}_{name}" if self.label else name

    def payload(self) -> dict:
        """JSON-stable content used in the scenario hash."""
        return {"kind": self.kind, "label": self.label,
                "options": _canonical(self.opts)}


@dataclass(frozen=True)
class ScenarioSpec:
    """A declarative model/question bundle.

    Parameters
    ----------
    name:
        Registry key and cache namespace (kebab-case by convention).
    title:
        Human-readable one-liner.
    model_factory:
        *Module-level* model constructor (e.g. ``make_sir_model``) —
        module-level so specs shard across processes and hash by
        qualified name.
    model_kwargs:
        Keyword arguments for the factory (the scenario's parameter
        point, including its uncertainty set bounds).
    x0:
        Initial state of the mean-field analyses (and the density the
        finite-``N`` ensembles start from).
    horizon:
        Default transient horizon; individual questions may override it
        through their options.
    questions:
        The :class:`Question` list the runner executes.
    observables:
        Names of the model observables the transient questions target;
        empty means "all declared observables".
    description:
        Longer free text for ``python -m repro describe``.
    tags:
        Free-form labels (``"paper"``, ``"extension"``, ``"fig1"`` ...)
        used by ``list --tag``.
    validity:
        Optional mapping ``kwarg -> (low, high)`` declaring the range
        over which a *scalar* factory kwarg may be perturbed while the
        model stays well-defined.  This is test metadata consumed by
        the conformance harness (:mod:`repro.testing`), which draws
        perturbed variants inside the declared ranges; it is excluded
        from :meth:`payload` so declaring it never invalidates cached
        results.  Keys are validated against the factory signature like
        ``model_kwargs``.
    golden:
        Optional mapping ``finding -> value`` (or ``finding ->
        (value, rtol)``) pinning numeric findings to the figures of the
        source paper.  Like ``validity`` this is conformance-test
        metadata — the harness's ``check_golden`` re-runs the questions
        and compares — and is excluded from :meth:`payload`, so
        declaring pins never invalidates cached results.
    """

    name: str
    title: str
    model_factory: Callable
    x0: Tuple[float, ...]
    horizon: float
    questions: Tuple[Question, ...]
    model_kwargs: Tuple[Tuple[str, object], ...] = ()
    observables: Tuple[str, ...] = ()
    description: str = ""
    tags: Tuple[str, ...] = ()
    validity: Tuple[Tuple[str, object], ...] = ()
    golden: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self):
        if not self.name:
            raise ValueError("scenario needs a non-empty name")
        if not callable(self.model_factory):
            raise TypeError("model_factory must be callable")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        object.__setattr__(
            self, "x0", tuple(float(v) for v in np.asarray(self.x0, float))
        )
        object.__setattr__(self, "horizon", float(self.horizon))
        questions = tuple(self.questions)
        if not questions:
            raise ValueError(f"scenario {self.name!r} declares no questions")
        labels = [(q.kind, q.label) for q in questions]
        if len(set(labels)) != len(labels):
            raise ValueError(
                f"scenario {self.name!r}: duplicate question kinds need "
                "distinct labels"
            )
        object.__setattr__(self, "questions", questions)
        object.__setattr__(self, "model_kwargs", _freeze(self.model_kwargs))
        object.__setattr__(
            self, "observables", tuple(str(o) for o in self.observables)
        )
        object.__setattr__(self, "tags", tuple(str(t) for t in self.tags))
        object.__setattr__(self, "validity", _freeze(self.validity))
        object.__setattr__(self, "golden", _freeze(self.golden))
        self._validate_factory_kwargs()
        self._validate_validity()
        self._validate_golden()

    def _validate_factory_kwargs(self):
        """Reject kwargs the factory does not accept, at construction.

        A typo'd kwarg (``theta_maxx=...``) used to surface only when a
        question first *ran* the factory — possibly minutes into a
        sweep, or never in CI if the spec was only listed.  Specs are
        built at registration (import) time, so checking the signature
        here turns the typo into an immediate, attributable failure.
        Factories whose signature cannot be introspected, or that take
        ``**kwargs``, accept anything.
        """
        try:
            signature = inspect.signature(self.model_factory)
        except (TypeError, ValueError):
            return
        params = list(signature.parameters.values())
        if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in params):
            return
        accepted = {
            p.name for p in params
            if p.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD,
                          inspect.Parameter.KEYWORD_ONLY)
        }
        unknown = sorted(set(self.kwargs) - accepted)
        if unknown:
            raise TypeError(
                f"scenario {self.name!r}: model factory {self.factory_ref} "
                f"does not accept keyword argument(s) {unknown}; accepted "
                f"keywords: {sorted(accepted)}"
            )

    def _validate_validity(self):
        """Check declared validity ranges: known kwargs, ordered bounds."""
        try:
            signature = inspect.signature(self.model_factory)
            params = list(signature.parameters.values())
            accepted = None
            if not any(p.kind is inspect.Parameter.VAR_KEYWORD
                       for p in params):
                accepted = {
                    p.name for p in params
                    if p.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD,
                                  inspect.Parameter.KEYWORD_ONLY)
                }
        except (TypeError, ValueError):
            accepted = None
        for key, bounds in self.validity_ranges.items():
            if accepted is not None and key not in accepted:
                raise TypeError(
                    f"scenario {self.name!r}: validity range declared for "
                    f"{key!r}, which is not a keyword of {self.factory_ref}"
                )
            try:
                low, high = (float(bounds[0]), float(bounds[1]))
            except (TypeError, ValueError, IndexError):
                raise ValueError(
                    f"scenario {self.name!r}: validity range for {key!r} "
                    f"must be a (low, high) pair, got {bounds!r}"
                ) from None
            if not (np.isfinite(low) and np.isfinite(high)) or low > high:
                raise ValueError(
                    f"scenario {self.name!r}: validity range for {key!r} "
                    f"must satisfy low <= high with finite bounds, got "
                    f"({low}, {high})"
                )

    def _validate_golden(self):
        """Check golden pins: finite values, optional positive rtol."""
        for key, pin in self.golden_values.items():
            value, rtol = pin if isinstance(pin, (tuple, list)) else (pin, None)
            try:
                value = float(value)
            except (TypeError, ValueError):
                raise ValueError(
                    f"scenario {self.name!r}: golden pin for {key!r} must "
                    f"be a number or a (value, rtol) pair, got {pin!r}"
                ) from None
            if not np.isfinite(value):
                raise ValueError(
                    f"scenario {self.name!r}: golden pin for {key!r} must "
                    f"be finite, got {value}"
                )
            if rtol is not None and not (float(rtol) > 0.0):
                raise ValueError(
                    f"scenario {self.name!r}: golden rtol for {key!r} must "
                    f"be positive, got {rtol!r}"
                )

    # ------------------------------------------------------------------
    # Model access
    # ------------------------------------------------------------------

    @property
    def factory_ref(self) -> str:
        """Qualified ``module:callable`` name of the model factory."""
        return f"{self.model_factory.__module__}:{self.model_factory.__qualname__}"

    @property
    def kwargs(self) -> Dict[str, object]:
        """The factory keyword arguments as a plain dict."""
        return {k: _thaw(v) for k, v in self.model_kwargs}

    @property
    def validity_ranges(self) -> Dict[str, object]:
        """Declared kwarg perturbation ranges as a plain dict."""
        return {k: _thaw(v) for k, v in self.validity}

    @property
    def golden_values(self) -> Dict[str, object]:
        """Declared golden finding pins as a plain dict."""
        return {k: _thaw(v) for k, v in self.golden}

    def build_model(self):
        """Instantiate the population model this scenario declares."""
        return self.model_factory(**self.kwargs)

    # ------------------------------------------------------------------
    # Content hashing (the disk-cache key)
    # ------------------------------------------------------------------

    def payload(self) -> dict:
        """JSON-stable content identifying the scenario's computation.

        The *name* is deliberately excluded: two differently-named specs
        declaring the same computation share a cache entry, and renaming
        a scenario does not invalidate its artifacts.  ``validity`` and
        ``golden`` are excluded too — they are conformance-test
        metadata, not part of the computation, so declaring ranges or
        pins never invalidates caches.
        """
        return {
            "factory": self.factory_ref,
            "model_kwargs": _canonical(self.kwargs),
            "x0": list(self.x0),
            "horizon": self.horizon,
            "observables": list(self.observables),
            "questions": [q.payload() for q in self.questions],
        }

    def spec_hash(self) -> str:
        """Hex content hash of the spec (the disk-cache key)."""
        text = json.dumps(self.payload(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode()).hexdigest()[:16]

    # ------------------------------------------------------------------
    # Derivation & description
    # ------------------------------------------------------------------

    def with_overrides(self, **changes) -> "ScenarioSpec":
        """A derived spec with some fields replaced.

        ``model_kwargs`` overrides are *merged* into the base kwargs
        (pass an explicit value of ``None`` to drop a key); every other
        field replaces wholesale.  Give the variant its own ``name`` to
        keep reports distinguishable — the cache is content-addressed
        either way.
        """
        if "model_kwargs" in changes:
            merged = self.kwargs
            for key, value in dict(changes["model_kwargs"]).items():
                if value is None:
                    merged.pop(key, None)
                else:
                    merged[key] = value
            changes["model_kwargs"] = _freeze(merged)
        return replace(self, **changes)

    def describe(self) -> str:
        """Multi-line human-readable description of the spec."""
        lines = [
            f"{self.name}: {self.title}",
            f"  model:       {self.factory_ref}"
            + (f" {self.kwargs}" if self.kwargs else ""),
            f"  x0:          {self.x0}",
            f"  horizon:     {self.horizon:g}",
            f"  observables: {', '.join(self.observables) or '(all declared)'}",
            f"  tags:        {', '.join(self.tags) or '(none)'}",
            f"  spec hash:   {self.spec_hash()}",
        ]
        if self.validity:
            ranges = ", ".join(
                f"{k} in [{v[0]:g}, {v[1]:g}]"
                for k, v in self.validity_ranges.items()
            )
            lines.append(f"  validity:    {ranges}")
        if self.golden:
            pins = ", ".join(
                f"{k}={v[0]:g} (rtol={v[1]:g})"
                if isinstance(v, (tuple, list)) else f"{k}={v:g}"
                for k, v in self.golden_values.items()
            )
            lines.append(f"  golden:      {pins}")
        lines.append("  questions:")
        for q in self.questions:
            opts = f" {q.opts}" if q.opts else ""
            label = f" [{q.label}]" if q.label else ""
            lines.append(f"    - {q.kind}{label}{opts}")
        if self.description:
            lines.append("  " + self.description.strip().replace("\n", "\n  "))
        return "\n".join(lines)
