"""The scenario registry.

A plain name → :class:`~repro.scenarios.ScenarioSpec` mapping with
lazy catalog loading: the built-in catalog
(:mod:`repro.scenarios.catalog`) self-registers on first lookup, so
importing :mod:`repro` stays cheap and user code can register its own
scenarios before or after the built-ins land.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.scenarios.spec import ScenarioSpec

__all__ = ["register_scenario", "get_scenario", "list_scenarios"]

_REGISTRY: Dict[str, ScenarioSpec] = {}
_CATALOG_LOADED = False


def register_scenario(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    """Add a spec to the registry; returns it for chaining.

    Re-registering an existing name raises unless ``replace=True`` —
    silent shadowing of a catalog entry is almost always a bug.
    """
    if not isinstance(spec, ScenarioSpec):
        raise TypeError("register_scenario expects a ScenarioSpec")
    existing = _REGISTRY.get(spec.name)
    if existing is not None and not replace:
        if existing == spec:
            return spec  # identical re-registration is a harmless no-op
        raise ValueError(
            f"scenario {spec.name!r} is already registered; "
            "pass replace=True to override"
        )
    _REGISTRY[spec.name] = spec
    return spec


def _ensure_catalog():
    global _CATALOG_LOADED
    if not _CATALOG_LOADED:
        # Importing the module runs its register_scenario() calls.  The
        # flag is only set on success: a failed import (e.g. a user spec
        # shadowing a built-in name) propagates its real cause here and
        # the next lookup retries instead of serving a poisoned,
        # partially-loaded catalog forever.
        import repro.scenarios.catalog  # noqa: F401
        _CATALOG_LOADED = True


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario by name."""
    _ensure_catalog()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise KeyError(
            f"unknown scenario {name!r}; registered scenarios: {known}"
        ) from None


def list_scenarios(tag: Optional[str] = None) -> List[ScenarioSpec]:
    """All registered scenarios (optionally filtered by tag), sorted by name."""
    _ensure_catalog()
    specs = sorted(_REGISTRY.values(), key=lambda s: s.name)
    if tag is not None:
        specs = [s for s in specs if tag in s.tags]
    return specs
