"""Content-hash disk cache for scenario runs.

Every completed :func:`~repro.scenarios.run_scenario` serialises its
:class:`~repro.reporting.ExperimentResult` to JSON under a file named by
the spec's content hash.  A spec whose model kwargs, initial condition,
horizon, observables or question list change gets a new hash — stale
artifacts are never served — while a mere rename keeps its cache (the
hash covers the computation, not the label).

Location: ``$REPRO_CACHE_DIR`` when set, else
``~/.cache/repro-scenarios``.  Entries are self-contained JSON (the
result payload wrapped with the scenario name, schema version and the
full spec payload) so they survive library upgrades gracefully: an
entry with an unknown schema — or a stored spec payload that does not
match the requesting spec exactly — is ignored, not an error.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import tempfile
from typing import Optional, Tuple, Union

import repro
from repro import telemetry
from repro.reporting import ExperimentResult
from repro.resilience import faults
from repro.scenarios.spec import ScenarioSpec

__all__ = ["cache_dir", "cache_path", "load_cached", "load_cached_detail",
           "store_result", "clear_cache", "CACHE_SCHEMA_VERSION",
           "CACHE_HIT", "MISS_REASONS"]

#: Bump when the cached payload layout (not the spec hash) changes.
CACHE_SCHEMA_VERSION = 2

#: ``load_cached_detail`` outcome labels.  ``CACHE_HIT`` means a result
#: was served; every other label is a distinguishable miss reason, each
#: mirrored onto the telemetry registry as
#: ``scenarios.cache.miss.<reason>``.
CACHE_HIT = "hit"
MISS_ABSENT = "absent"
MISS_CORRUPT = "corrupt"
MISS_SCHEMA = "schema"
MISS_LIBRARY = "library-version"
MISS_PAYLOAD = "payload-mismatch"
MISS_REASONS = (MISS_ABSENT, MISS_CORRUPT, MISS_SCHEMA, MISS_LIBRARY,
                MISS_PAYLOAD)

_ENV_VAR = "REPRO_CACHE_DIR"

#: Cache entries are named ``<16-hex-digit spec hash>.json``.
_HASH_NAME = re.compile(r"[0-9a-f]{16}\.json")
_TMP_NAME = re.compile(r"[0-9a-f]{16}-.*\.tmp")


def cache_dir(override: Union[str, pathlib.Path, None] = None) -> pathlib.Path:
    """Resolve the cache directory (override > env var > default)."""
    if override is not None:
        return pathlib.Path(override)
    env = os.environ.get(_ENV_VAR)
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro-scenarios"


def cache_path(spec: ScenarioSpec,
               directory: Union[str, pathlib.Path, None] = None) -> pathlib.Path:
    """The cache file a spec maps to (may not exist yet)."""
    return cache_dir(directory) / f"{spec.spec_hash()}.json"


def _classify_entry(spec: ScenarioSpec, path: pathlib.Path,
                    ) -> Tuple[Optional[ExperimentResult], str]:
    if not path.exists():
        return None, MISS_ABSENT
    try:
        wrapper = json.loads(path.read_text())
    except OSError:
        # Raced deletion between the exists() probe and the read still
        # means the entry is gone, not broken.
        return None, MISS_ABSENT if not path.exists() else MISS_CORRUPT
    except ValueError:
        return None, MISS_CORRUPT
    if not isinstance(wrapper, dict):
        return None, MISS_CORRUPT
    if wrapper.get("schema") != CACHE_SCHEMA_VERSION:
        return None, MISS_SCHEMA
    # Entries computed by a different library version are stale even
    # when the spec is unchanged — a backend fix must not keep serving
    # pre-fix numbers out of ~/.cache forever.
    if wrapper.get("library") != repro.__version__:
        return None, MISS_LIBRARY
    # The filename is already the (truncated) spec hash; comparing the
    # *full* stored payload detects the residual collision case and any
    # hash-scheme drift across library versions.
    if wrapper.get("spec_payload") != spec.payload():
        return None, MISS_PAYLOAD
    if faults._armed:
        # Chaos seam: a corrupt-cache fault makes every entry classify
        # as corrupt, proving the miss-and-recompute path end to end.
        plan = faults.active_plan()
        if plan is not None and plan.corrupt_cache:
            faults.count_injection("corrupt-cache")
            return None, MISS_CORRUPT
    try:
        return ExperimentResult.from_json(wrapper["result"]), CACHE_HIT
    except (KeyError, TypeError, ValueError):
        return None, MISS_CORRUPT


def load_cached_detail(spec: ScenarioSpec,
                       directory: Union[str, pathlib.Path, None] = None,
                       ) -> Tuple[Optional[ExperimentResult], str]:
    """Like :func:`load_cached`, but also says *why* a lookup missed.

    Returns ``(result, CACHE_HIT)`` on a hit, else ``(None, reason)``
    with ``reason`` one of :data:`MISS_REASONS`.  The outcome is also
    recorded on the telemetry registry (``scenarios.cache.hit`` /
    ``scenarios.cache.miss.<reason>``) when telemetry is enabled.
    """
    result, reason = _classify_entry(spec, cache_path(spec, directory))
    if reason == CACHE_HIT:
        telemetry.inc("scenarios.cache.hit")
    else:
        telemetry.inc("scenarios.cache.miss")
        telemetry.inc(f"scenarios.cache.miss.{reason}")
    return result, reason


def load_cached(spec: ScenarioSpec,
                directory: Union[str, pathlib.Path, None] = None,
                ) -> Optional[ExperimentResult]:
    """Load the cached result of a spec, or ``None`` on any miss.

    Corrupt or schema-incompatible entries count as misses (the runner
    recomputes and overwrites them) — the cache must never be able to
    fail a run.  :func:`load_cached_detail` distinguishes the reasons.
    """
    return load_cached_detail(spec, directory)[0]


def store_result(spec: ScenarioSpec, result: ExperimentResult,
                 directory: Union[str, pathlib.Path, None] = None,
                 ) -> pathlib.Path:
    """Write a run's result to the cache; returns the file path.

    The write is atomic (unique temp file + rename), so neither a
    crashed run nor concurrent runs of the same spec can publish a
    half-written entry.  A *transient* ``OSError`` during publication
    (anti-virus scanners, overlay filesystems, a concurrent
    ``clear_cache`` sweeping the temp file) gets one retry with a fresh
    temp file — stamped on ``resilience.cache.store_retries`` — before
    the error propagates to the caller's degrade-to-uncached handling.
    """
    path = cache_path(spec, directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    wrapper = {
        "schema": CACHE_SCHEMA_VERSION,
        "library": repro.__version__,
        "scenario": spec.name,
        "spec_payload": spec.payload(),
        "result": json.loads(result.to_json()),
    }
    payload = json.dumps(wrapper, indent=1)
    retries_c = telemetry.live_counter("resilience.cache.store_retries")
    plan = faults.active_plan()
    last_error: Optional[OSError] = None
    for attempt in range(2):
        # The temp file is recreated per attempt: the previous one may
        # have been unlinked by the finally below or swept by a racing
        # clear_cache, so it cannot be reused.
        fd, tmp_name = tempfile.mkstemp(
            prefix=f"{spec.spec_hash()}-", suffix=".tmp", dir=path.parent
        )
        tmp = pathlib.Path(tmp_name)
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            if plan is not None and attempt < plan.cache_store_errors:
                faults.count_injection("cache-store-error")
                raise OSError("injected transient cache store failure")
            tmp.replace(path)
            return path
        except OSError as exc:
            last_error = exc
            if attempt == 0 and retries_c is not None:
                retries_c.inc()
        finally:
            tmp.unlink(missing_ok=True)
    raise last_error


def clear_cache(directory: Union[str, pathlib.Path, None] = None,
                scenario: Optional[str] = None) -> int:
    """Delete cached entries; returns the number removed.

    ``scenario`` restricts deletion to entries recorded under that
    scenario name (as stamped at store time).  Safe against concurrent
    writers and other clearers: entries deleted underneath the glob are
    tolerated (the raced ``read_text`` classifies as unreadable, the
    ``unlink`` ignores already-missing files) rather than raised.
    """
    root = cache_dir(directory)
    if not root.is_dir():
        return 0
    # Sweep crashed writers' debris — but only files matching our own
    # mkstemp pattern ("<16-hex-hash>-*.tmp"); an arbitrary *.tmp in a
    # user-supplied directory is not ours to delete.
    for leftover in root.glob("*.tmp"):
        if _TMP_NAME.match(leftover.name):
            leftover.unlink(missing_ok=True)
    removed = 0
    for path in root.glob("*.json"):
        try:
            wrapper = json.loads(path.read_text())
        except (OSError, ValueError):
            wrapper = None
        # Ours = carries our full wrapper shape ("schema" alone is too
        # weak — JSON-schema'd user configs have that key too).
        ours = (isinstance(wrapper, dict)
                and isinstance(wrapper.get("schema"), int)
                and "spec_payload" in wrapper)
        # Hash-named files are ours even when corrupt (exactly the
        # entries most worth clearing); anything else unrecognised is a
        # user file — never delete it.
        if not ours and not _HASH_NAME.fullmatch(path.name):
            continue
        if scenario is not None and ours and wrapper.get("scenario") != scenario:
            continue
        path.unlink(missing_ok=True)
        removed += 1
    return removed
