"""The scenario runner: question dispatch, fan-out and caching.

``run_scenario`` is the one entry point behind which every analysis of
the library is reachable declaratively:

========== ==========================================================
question   backend
========== ==========================================================
envelope   :func:`repro.bounds.uncertain_envelope`
pontryagin :func:`repro.bounds.pontryagin_transient_bounds`
hull       :func:`repro.bounds.differential_hull_bounds`
template   :func:`repro.bounds.template_reachable_bounds`
steadystate :func:`repro.steadystate.hull_steady_rectangle` (+ the 2-D
            Birkhoff construction and uncertain fixed points)
ensemble   :func:`repro.engine.sweep_constant_ensembles` (vectorized
           finite-``N`` SSA, sharded)
dtmc_reward :class:`repro.ctmc.IntervalDTMC` (uniformized finite chain,
            batched credal operators) pinned against
            :func:`repro.ctmc.imprecise_reward_bounds`
========== ==========================================================

Questions are independent, so with ``processes > 1`` they fan out over
the same :func:`repro.engine.map_shards` pool primitive the ensemble
sweep uses.  Payloads carry the :class:`ScenarioSpec` itself — specs
hold a *module-level* factory plus plain data, so they pickle under any
start method and ad-hoc (unregistered) specs shard just as well as
catalog entries.

Results are memoized in a content-hash disk cache
(:mod:`repro.scenarios.cache`): the spec hash keys a serialized
:class:`~repro.reporting.ExperimentResult`, so a repeated ``run`` is
served in milliseconds and the :class:`RunReport` says so via its
cache-hit counter.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro import telemetry
from repro.bounds import (
    box_directions,
    differential_hull_bounds,
    octagon_directions,
    pontryagin_transient_bounds,
    template_reachable_bounds,
    uncertain_envelope,
)
from repro.bounds.sweep import _resolve_weights
from repro.ctmc import ImpreciseCTMC, IntervalDTMC, imprecise_reward_bounds
from repro.engine import map_shards, sweep_constant_ensembles
from repro.reporting import ExperimentResult
from repro.resilience import QuestionFailure, RetryPolicy, ShardFailure
from repro.resilience import execution as _resilient
from repro.scenarios import cache as _cache
from repro.scenarios.spec import Question, ScenarioSpec
from repro.steadystate import (
    birkhoff_centre_2d,
    hull_steady_rectangle,
    uncertain_fixed_points,
)

__all__ = ["AnalysisPlan", "RunReport", "ScenarioRun", "run_scenario",
           "run_question", "envelope_integrator_options",
           "spec_envelope_options", "ENVELOPE_INTEGRATOR_KEYS"]

#: The question options :func:`repro.bounds.uncertain_envelope` accepts
#: as integrator configuration.  Single source of truth shared by the
#: envelope backend below and by the conformance harness
#: (:mod:`repro.testing`), so "how does this scenario integrate its
#: envelope" has exactly one answer everywhere.
ENVELOPE_INTEGRATOR_KEYS = ("integrator", "rk4_steps", "rtol", "atol",
                            "batch")


def envelope_integrator_options(opts: Dict[str, object]) -> Dict[str, object]:
    """Filter a question's options down to envelope integrator kwargs."""
    return {k: opts[k] for k in ENVELOPE_INTEGRATOR_KEYS if k in opts}


def spec_envelope_options(spec: ScenarioSpec) -> Dict[str, object]:
    """The integrator kwargs a spec's (first) envelope question declares.

    Scenarios whose model needs a specific envelope integrator declare
    it on their envelope question (e.g. the bike model needs fixed-step
    RK4 on its sliding boundary); any analysis re-integrating that
    scenario's envelope — the conformance harness above all — must
    honour the declaration or the bounds it checks are not the
    scenario's bounds.  Returns ``{}`` for specs without an envelope
    question.
    """
    for q in spec.questions:
        if q.kind == "envelope":
            return envelope_integrator_options(q.opts)
    return {}


# ----------------------------------------------------------------------
# Question outcomes
# ----------------------------------------------------------------------

@dataclass
class QuestionOutcome:
    """Series/findings/notes one question contributes to the result."""

    series: Dict[str, Tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)
    findings: Dict[str, float] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)


def _resolve_observables(model, spec: ScenarioSpec) -> Dict[str, np.ndarray]:
    """``name -> weight`` map of the observables transient questions target.

    Delegates to the same resolver the envelope backend uses, so every
    question kind agrees on what a spec's observable names mean.
    """
    return _resolve_weights(model, list(spec.observables) or None)


def _run_envelope(model, spec: ScenarioSpec, q: Question,
                  backend=None) -> QuestionOutcome:
    opts = q.opts
    times = opts.get("times")
    if times is None:
        times = np.linspace(0.0, spec.horizon, int(opts.get("n_times", 9)))
    times = np.asarray(times, dtype=float)
    observables = list(spec.observables) or None
    kwargs = envelope_integrator_options(opts)
    env = uncertain_envelope(
        model, spec.x0, times,
        resolution=int(opts.get("resolution", 7)),
        observables=observables,
        backend=backend,
        **kwargs,
    )
    out = QuestionOutcome()
    for name in env.observable_names:
        out.series[q.prefixed(f"{name}_uncertain_lower")] = (times, env.lower[name])
        out.series[q.prefixed(f"{name}_uncertain_upper")] = (times, env.upper[name])
        lo, hi = env.final_bounds(name)
        out.findings[q.prefixed(f"{name}_uncertain_min_final")] = lo
        out.findings[q.prefixed(f"{name}_uncertain_max_final")] = hi
    return out


def _run_pontryagin(model, spec: ScenarioSpec, q: Question,
                    backend=None) -> QuestionOutcome:
    opts = q.opts
    horizons = opts.get("horizons")
    if horizons is None:
        n = int(opts.get("n_horizons", 8))
        horizons = np.linspace(spec.horizon / n, spec.horizon, n)
    horizons = np.asarray(horizons, dtype=float)
    kwargs = {}
    for key in ("steps_per_unit", "min_steps", "max_iter", "tol", "batch",
                "lanes", "deadline_seconds"):
        if key in opts:
            kwargs[key] = opts[key]
    if "sides" in opts:
        kwargs["sides"] = tuple(opts["sides"])
    observables = list(spec.observables) or None
    bounds = pontryagin_transient_bounds(
        model, spec.x0, horizons, observables=observables, backend=backend,
        **kwargs
    )
    out = QuestionOutcome()
    for name in bounds.observable_names:
        lower, upper = bounds.lower[name], bounds.upper[name]
        if np.isfinite(lower).any():
            out.series[q.prefixed(f"{name}_imprecise_lower")] = (horizons, lower)
            out.findings[q.prefixed(f"{name}_imprecise_min_final")] = lower[-1]
        if np.isfinite(upper).any():
            out.series[q.prefixed(f"{name}_imprecise_upper")] = (horizons, upper)
            out.findings[q.prefixed(f"{name}_imprecise_max_final")] = upper[-1]
    if "deadline_seconds" in opts:
        # Only stamped when a deadline was requested, so pre-existing
        # golden pins and cached results keep their exact finding set.
        out.findings[q.prefixed("pontryagin_converged")] = float(bounds.converged)
    return out


def _run_hull(model, spec: ScenarioSpec, q: Question,
              backend=None) -> QuestionOutcome:
    opts = q.opts
    times = opts.get("times")
    if times is None:
        times = np.linspace(0.0, spec.horizon, int(opts.get("n_times", 13)))
    times = np.asarray(times, dtype=float)
    kwargs = {}
    for key in ("x_samples_per_axis", "blowup_threshold", "rtol", "atol",
                "theta_method", "batch"):
        if key in opts:
            kwargs[key] = opts[key]
    hull = differential_hull_bounds(model, spec.x0, times, backend=backend,
                                    **kwargs)
    out = QuestionOutcome()
    for i, name in enumerate(model.state_names):
        out.series[q.prefixed(f"hull_{name}_lower")] = (times, hull.lower[:, i])
        out.series[q.prefixed(f"hull_{name}_upper")] = (times, hull.upper[:, i])
        out.findings[q.prefixed(f"hull_{name}_width_final")] = hull.width(i)[-1]
        if model.state_lower is not None:
            out.findings[q.prefixed(f"hull_{name}_trivial")] = float(
                hull.is_trivial(i, model.state_lower[i], model.state_upper[i])
            )
    return out


def _run_template(model, spec: ScenarioSpec, q: Question,
                  backend=None) -> QuestionOutcome:
    opts = q.opts
    family = str(opts.get("family", "box"))
    if family == "box":
        directions = box_directions(model.dim)
    elif family == "octagon":
        directions = octagon_directions(model.dim)
    else:
        raise ValueError(f"unknown template family {family!r}")
    kwargs = {}
    for key in ("n_steps", "max_iter"):
        if key in opts:
            kwargs[key] = int(opts[key])
    if "batch" in opts:
        kwargs["batch"] = bool(opts["batch"])
    polytope = template_reachable_bounds(
        model, spec.x0, float(opts.get("horizon", spec.horizon)),
        directions=directions, backend=backend, **kwargs
    )
    out = QuestionOutcome()
    box = polytope.bounding_box()
    if box is not None:
        lower, upper = box
        for i, name in enumerate(model.state_names):
            out.findings[q.prefixed(f"template_{name}_lower")] = lower[i]
            out.findings[q.prefixed(f"template_{name}_upper")] = upper[i]
    out.findings[q.prefixed("template_halfspaces")] = polytope.n_halfspaces
    return out


def _run_steadystate(model, spec: ScenarioSpec, q: Question,
                     backend=None) -> QuestionOutcome:
    opts = q.opts
    out = QuestionOutcome()
    batch = bool(opts.get("batch", True))
    rect = hull_steady_rectangle(
        model, spec.x0,
        horizon=float(opts.get("horizon", max(spec.horizon, 50.0))),
        batch=batch,
        settle=bool(opts.get("settle", True)),
        backend=backend,
    )
    out.findings[q.prefixed("steady_hull_converged")] = float(rect.converged)
    for i, name in enumerate(model.state_names):
        out.findings[q.prefixed(f"steady_hull_{name}_lower")] = rect.lower[i]
        out.findings[q.prefixed(f"steady_hull_{name}_upper")] = rect.upper[i]
    if not rect.converged:
        out.notes.append(
            "stationary hull rectangle did not converge (the 'trivial "
            "hull' regime of Fig. 5); Birkhoff region remains informative"
        )
    if model.dim == 2 and bool(opts.get("birkhoff", True)):
        region = birkhoff_centre_2d(
            model,
            x0_guess=opts.get("x0_guess"),
            max_rounds=int(opts.get("max_rounds", 120)),
        )
        area = 0.0 if region.polygon is None else float(region.polygon.area)
        out.findings[q.prefixed("birkhoff_area")] = area
        out.findings[q.prefixed("birkhoff_certified")] = float(region.certified)
        out.findings[q.prefixed("birkhoff_rounds")] = float(region.rounds)
        curve = uncertain_fixed_points(
            model, resolution=int(opts.get("fp_resolution", 11)),
            x0_guess=opts.get("x0_guess"),
            batch=batch,
        )
        inside = sum(region.contains(fp, tol=1e-3) for fp in curve)
        out.findings[q.prefixed("uncertain_fp_inside_region")] = float(inside)
        out.findings[q.prefixed("uncertain_fp_total")] = float(curve.shape[0])
        vertices = (np.empty((0, model.dim)) if region.polygon is None
                    else region.polygon.vertices)
        rect_tol = float(opts.get("rect_tol", 1e-2))
        out.findings[q.prefixed("birkhoff_inside_steady_rect")] = float(
            all(rect.contains(v, tol=rect_tol) for v in vertices)
        )
    return out


def _run_ensemble(model, spec: ScenarioSpec, q: Question,
                  backend=None) -> QuestionOutcome:
    opts = q.opts
    resolution = opts.get("resolution")
    if resolution is None:
        thetas = model.theta_set.corners()
    else:
        thetas = model.theta_set.grid(int(resolution))
    population_size = int(opts.get("population_size", 200))
    n_samples = int(opts.get("n_samples", 50))
    results = sweep_constant_ensembles(
        spec.model_factory,
        spec.x0,
        population_size,
        thetas,
        t_final=float(opts.get("horizon", spec.horizon)),
        n_runs=int(opts.get("n_runs", 16)),
        seed=int(opts.get("seed", 2016)),
        n_samples=n_samples,
        model_kwargs=spec.kwargs,
        backend=backend,
    )
    weights = _resolve_observables(model, spec)
    out = QuestionOutcome()
    for name, w in weights.items():
        paths = [batch.observable(w) for batch in results]
        finals = np.array([float(p[:, -1].mean()) for p in paths])
        worst = int(np.argmax(finals))
        best = int(np.argmin(finals))
        out.findings[q.prefixed(f"ensemble_{name}_final_mean_min")] = finals[best]
        out.findings[q.prefixed(f"ensemble_{name}_final_mean_max")] = finals[worst]
        out.series[q.prefixed(f"ensemble_{name}_mean_worst_theta")] = (
            results[worst].times, paths[worst].mean(axis=0)
        )
    out.findings[q.prefixed("ensemble_population_size")] = float(population_size)
    out.findings[q.prefixed("ensemble_theta_points")] = float(thetas.shape[0] if thetas.ndim == 2 else len(thetas))
    out.findings[q.prefixed("ensemble_total_events")] = float(
        sum(batch.n_events for batch in results)
    )
    return out


def _run_dtmc_reward(model, spec: ScenarioSpec, q: Question,
                     backend=None) -> QuestionOutcome:
    """Finite-``N`` interval-DTMC reward bounds through uniformization.

    Enumerates the chain at ``population_size``, uniformizes it into a
    Škulj interval DTMC and iterates the batched credal operators; by
    default the entry-wise bounds are pinned against the exact imprecise
    Kolmogorov bounds (``compare_exact``), whose conservativeness gap is
    the quantity the interval-DTMC scenarios exist to expose.
    """
    opts = q.opts
    population_size = int(opts.get("population_size", 10))
    chain = ImpreciseCTMC(
        model.instantiate(population_size, spec.x0),
        max_states=int(opts.get("max_states", 20_000)),
    )
    dtmc, rate = IntervalDTMC.from_imprecise_ctmc(
        chain, safety=float(opts.get("safety", 1.05))
    )
    horizon = float(opts.get("horizon", spec.horizon))
    steps = int(opts["steps"]) if "steps" in opts else int(np.ceil(horizon * rate))
    weights = _resolve_observables(model, spec)
    names = list(weights)
    n_obs = len(names)
    rewards = np.stack([chain.densities() @ weights[name] for name in names])

    # One batched value iteration covers every observable and both bound
    # directions (the lower iteration is the negated upper iteration of
    # the negated reward); row 0 of the enumeration is the start state.
    value = np.concatenate([rewards, -rewards], axis=0)
    start_state = np.empty((steps + 1, value.shape[0]))
    start_state[0] = value[:, 0]
    for k in range(steps):
        value = dtmc.upper_operator_batch(value, backend=backend)
        start_state[k + 1] = value[:, 0]
    times = np.arange(steps + 1) / rate

    out = QuestionOutcome()
    out.findings[q.prefixed("dtmc_states")] = float(chain.n_states)
    out.findings[q.prefixed("dtmc_steps")] = float(steps)
    out.findings[q.prefixed("dtmc_uniformization_rate")] = float(rate)
    for j, name in enumerate(names):
        upper_series = start_state[:, j]
        lower_series = -start_state[:, n_obs + j]
        out.series[q.prefixed(f"dtmc_{name}_lower")] = (times, lower_series)
        out.series[q.prefixed(f"dtmc_{name}_upper")] = (times, upper_series)
        out.findings[q.prefixed(f"dtmc_{name}_lower_final")] = lower_series[-1]
        out.findings[q.prefixed(f"dtmc_{name}_upper_final")] = upper_series[-1]
    if bool(opts.get("stationary", False)):
        for j, name in enumerate(names):
            lo, hi = dtmc.stationary_expectation_bounds(
                rewards[j],
                max_iter=int(opts.get("stationary_max_iter", 50_000)),
                backend=backend,
            )
            out.findings[q.prefixed(f"dtmc_{name}_stationary_lower")] = lo
            out.findings[q.prefixed(f"dtmc_{name}_stationary_upper")] = hi
    if bool(opts.get("compare_exact", True)):
        n_steps = int(opts.get("n_steps", 150))
        tol = float(opts.get("soundness_tol", 1e-6))
        # The raw k-step power carries an O(1/rate) time-discretization
        # bias, so soundness is pinned on the Poisson-mixed bounds,
        # which enclose by construction; one stacked call mixes every
        # observable and both directions in a single value iteration.
        mixed_lo, mixed_hi = dtmc.uniformized_bounds(rewards, horizon, rate,
                                                     backend=backend)
        for j, name in enumerate(names):
            exact_hi = imprecise_reward_bounds(
                chain, rewards[j], horizon, maximize=True, n_steps=n_steps
            ).value
            exact_lo = imprecise_reward_bounds(
                chain, rewards[j], horizon, maximize=False, n_steps=n_steps
            ).value
            out.findings[q.prefixed(f"dtmc_{name}_exact_lower")] = exact_lo
            out.findings[q.prefixed(f"dtmc_{name}_exact_upper")] = exact_hi
            out.findings[q.prefixed(f"dtmc_{name}_time_lower")] = mixed_lo[j, 0]
            out.findings[q.prefixed(f"dtmc_{name}_time_upper")] = mixed_hi[j, 0]
            out.findings[q.prefixed(f"dtmc_{name}_conservative")] = float(
                mixed_hi[j, 0] >= exact_hi - tol
                and mixed_lo[j, 0] <= exact_lo + tol
            )
        covered = steps / rate
        out.notes.append(
            f"{steps} uniformized steps at rate {rate:.4g} cover horizon "
            f"{covered:.4g} {'>=' if covered >= horizon else '<'} "
            f"{horizon:g}; the Poisson-mixed interval-DTMC bounds enclose "
            "the exact imprecise Kolmogorov bounds (the raw step power "
            "may not — its time-discretization bias is O(1/rate))"
        )
    return out


_BACKENDS = {
    "envelope": _run_envelope,
    "pontryagin": _run_pontryagin,
    "hull": _run_hull,
    "template": _run_template,
    "steadystate": _run_steadystate,
    "ensemble": _run_ensemble,
    "dtmc_reward": _run_dtmc_reward,
}


def run_question(spec: ScenarioSpec, question: Question,
                 model=None, backend=None) -> QuestionOutcome:
    """Run one question of a spec (building the model when not supplied).

    ``backend`` selects the compiled-array backend (a
    :mod:`repro.backend` name) the question's batch kernels dispatch
    through; ``None`` keeps the process default.
    """
    if model is None:
        model = spec.build_model()
    attrs = {"scenario": spec.name, "kind": question.kind}
    if question.label:
        attrs["label"] = question.label
    if backend is not None:
        attrs["backend"] = str(backend)
    with telemetry.span("scenario.question", **attrs):
        return _BACKENDS[question.kind](model, spec, question,
                                        backend=backend)


def _run_question_payload(payload) -> QuestionOutcome:
    """Pool worker: run one question of a (pickled) spec.

    The backend crosses the pool boundary as its *name* (a picklable
    string); the worker re-resolves it, falling back with the standard
    warning if the substrate is missing in the worker environment.
    """
    spec, index, backend = payload
    return run_question(spec, spec.questions[index], backend=backend)


# ----------------------------------------------------------------------
# Plans, reports and the entry point
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class AnalysisPlan:
    """How to execute a spec: caching, fan-out, selection, resilience.

    ``on_error="partial"`` isolates question failures: a raising
    backend becomes a :class:`~repro.resilience.QuestionFailure` on the
    :class:`ScenarioRun` while the surviving questions' outcomes are
    merged as usual (and the partial result is never cached).  ``retry``
    adds per-question bounded retries with the policy's deterministic
    backoff; the default (``on_error="raise"``, no retry) is the legacy
    fail-fast path, bit-identical to previous behaviour.
    """

    use_cache: bool = True
    cache_dir: Optional[str] = None
    processes: Optional[int] = None
    kinds: Optional[Tuple[str, ...]] = None  # run only these question kinds
    backend: Optional[str] = None  # compiled-array backend name (repro.backend)
    on_error: str = "raise"
    retry: Optional[RetryPolicy] = None

    def __post_init__(self):
        if self.on_error not in ("raise", "partial"):
            raise ValueError(
                f"on_error must be 'raise' or 'partial', "
                f"got {self.on_error!r}"
            )
        if self.retry is not None and not isinstance(self.retry,
                                                     RetryPolicy):
            raise TypeError(
                f"retry must be a RetryPolicy or None, got "
                f"{type(self.retry).__name__}"
            )

    def select(self, spec: ScenarioSpec) -> ScenarioSpec:
        """The spec this plan actually runs (possibly fewer questions)."""
        if self.kinds is None:
            return spec
        kept = tuple(q for q in spec.questions if q.kind in self.kinds)
        if not kept:
            raise ValueError(
                f"scenario {spec.name!r} has no questions of kinds "
                f"{self.kinds}"
            )
        if len(kept) == len(spec.questions):
            return spec
        return spec.with_overrides(questions=kept)


@dataclass
class RunReport:
    """Provenance and cache accounting of one ``run_scenario`` call.

    The accounting itself lives in ``metrics`` — a per-run metrics dict
    using the same key names the telemetry registry uses
    (``scenarios.cache.hits``, ``scenarios.run.seconds``, ...) — and the
    historical ``cache_hit``/``cache_hits``/``cache_misses``/
    ``elapsed_seconds`` fields are preserved as read-only views over it.
    The dict is always populated, telemetry enabled or not; when
    telemetry *is* enabled the same counts also land on the global
    registry (the cache ones via :mod:`repro.scenarios.cache`).
    """

    scenario: str
    spec_hash: str
    questions_run: int
    metrics: Dict[str, float] = field(default_factory=dict)
    cache_path: Optional[str] = None

    @property
    def cache_hits(self) -> int:
        return int(self.metrics.get("scenarios.cache.hits", 0))

    @property
    def cache_misses(self) -> int:
        return int(self.metrics.get("scenarios.cache.misses", 0))

    @property
    def cache_hit(self) -> bool:
        return self.cache_hits > 0

    @property
    def elapsed_seconds(self) -> float:
        return float(self.metrics.get("scenarios.run.seconds", 0.0))

    @property
    def cache_miss_reason(self) -> Optional[str]:
        """Why the cache lookup missed (``None`` on hits)."""
        prefix = "scenarios.cache.miss."
        for key in self.metrics:
            if key.startswith(prefix):
                return key[len(prefix):]
        return None

    @property
    def questions_failed(self) -> int:
        """Questions that exhausted their attempts (``on_error="partial"``)."""
        return int(self.metrics.get("scenarios.questions.failed", 0))

    def render(self) -> str:
        miss = self.cache_miss_reason
        suffix = f"; miss={miss}" if miss else ""
        failed = (f" failed={self.questions_failed}"
                  if self.questions_failed else "")
        lines = [
            f"run report: scenario={self.scenario} spec={self.spec_hash}",
            f"  cache_hit={'true' if self.cache_hit else 'false'} "
            f"(hits={self.cache_hits}, misses={self.cache_misses}{suffix})",
            f"  questions_run={self.questions_run}{failed} "
            f"elapsed={self.elapsed_seconds:.3f}s",
        ]
        if self.cache_path:
            lines.append(f"  cache_path={self.cache_path}")
        return "\n".join(lines)


@dataclass
class ScenarioRun:
    """A completed scenario: the result plus its run report.

    Under ``on_error="partial"``, ``failures`` lists the questions that
    exhausted their attempts (empty on a fully successful run); the
    ``result`` then holds only the surviving questions' findings and is
    never cached.
    """

    spec: ScenarioSpec
    result: ExperimentResult
    report: RunReport
    failures: List[QuestionFailure] = field(default_factory=list)


def run_scenario(
    spec_or_name: Union[str, ScenarioSpec],
    plan: Optional[AnalysisPlan] = None,
    *,
    use_cache: Optional[bool] = None,
    cache_dir: Optional[str] = None,
    processes: Optional[int] = None,
    backend: Optional[str] = None,
    on_error: Optional[str] = None,
    retry: Optional[RetryPolicy] = None,
) -> ScenarioRun:
    """Run (or recall) every question of a scenario.

    Parameters
    ----------
    spec_or_name:
        A registered scenario name or an ad-hoc :class:`ScenarioSpec`.
    plan:
        Execution policy; the keyword arguments below override its
        fields (and default to ``AnalysisPlan()`` when omitted).
    use_cache:
        Serve/store the content-hash disk cache (default ``True``).
    cache_dir:
        Cache directory override (default: ``$REPRO_CACHE_DIR`` or
        ``~/.cache/repro-scenarios``).
    processes:
        Fan independent questions over a process pool (the spec itself
        is shipped to the workers; ad-hoc specs shard like catalog
        entries).
    backend:
        Compiled-array backend name (see :mod:`repro.backend`) every
        question's batch kernels dispatch through; ``None`` keeps the
        process default (``set_backend`` / ``$REPRO_BACKEND`` / numpy).
    on_error:
        ``"partial"`` isolates per-question failures into
        :class:`~repro.resilience.QuestionFailure` records on the
        returned run instead of aborting (``"raise"``, the default,
        keeps fail-fast semantics).
    retry:
        Optional :class:`~repro.resilience.RetryPolicy` giving each
        question bounded retries with deterministic backoff.

    Returns
    -------
    A :class:`ScenarioRun` whose ``result`` is the assembled
    :class:`~repro.reporting.ExperimentResult` and whose ``report``
    carries the cache-hit counters.
    """
    if plan is None:
        plan = AnalysisPlan()
    overrides = {
        key: value
        for key, value in (("use_cache", use_cache), ("cache_dir", cache_dir),
                           ("processes", processes), ("backend", backend),
                           ("on_error", on_error), ("retry", retry))
        if value is not None
    }
    if overrides:
        plan = dataclasses.replace(plan, **overrides)

    if isinstance(spec_or_name, str):
        from repro.scenarios.registry import get_scenario

        spec = get_scenario(spec_or_name)
    else:
        spec = spec_or_name
    spec = plan.select(spec)

    with telemetry.span("scenario.run", scenario=spec.name,
                        spec=spec.spec_hash()):
        return _execute_plan(spec, plan)


def _run_questions_serial_robust(spec: ScenarioSpec, plan: AnalysisPlan,
                                 model):
    """In-process question loop with the plan's retry/isolation semantics.

    The serial twin of the robust pool path: each question gets
    ``retry.max_attempts`` tries with the policy's deterministic
    backoff, and under ``on_error="partial"`` an exhausted question
    becomes a :class:`~repro.resilience.QuestionFailure` instead of
    aborting the scenario.
    """
    policy = plan.retry or RetryPolicy(max_attempts=1)
    retries_c = telemetry.live_counter("resilience.question.retries")
    errors_c = telemetry.live_counter("resilience.question.errors")
    outcomes = []
    failures: List[QuestionFailure] = []
    for question in spec.questions:
        started = time.monotonic()
        last_exc: Optional[BaseException] = None
        for attempt in range(1, policy.max_attempts + 1):
            try:
                outcome = run_question(spec, question, model=model,
                                       backend=plan.backend)
            except Exception as exc:
                last_exc = exc
                if errors_c is not None:
                    errors_c.inc()
                if attempt < policy.max_attempts:
                    if retries_c is not None:
                        retries_c.inc()
                    _resilient._sleep(policy.backoff_delay(attempt))
                continue
            outcomes.append(outcome)
            break
        else:
            if plan.on_error == "raise":
                raise last_exc
            failures.append(QuestionFailure(
                scenario=spec.name, kind=question.kind,
                label=question.label,
                error_type=type(last_exc).__name__,
                message=str(last_exc), attempts=policy.max_attempts,
                elapsed_seconds=time.monotonic() - started,
            ))
    return outcomes, failures


def _execute_plan(spec: ScenarioSpec, plan: AnalysisPlan) -> ScenarioRun:
    start = time.perf_counter()
    metrics: Dict[str, float] = {
        "scenarios.cache.hits": 0,
        "scenarios.cache.misses": 0,
    }
    if plan.use_cache:
        cached, reason = _cache.load_cached_detail(spec, plan.cache_dir)
        if cached is not None:
            # The cache is content-addressed, so a differently-*named*
            # variant can hit an entry stored under another label;
            # restamp the identity fields from the requesting spec.
            cached.experiment_id = spec.name
            cached.title = spec.title
            metrics["scenarios.cache.hits"] = 1
            metrics["scenarios.run.seconds"] = time.perf_counter() - start
            report = RunReport(
                scenario=spec.name,
                spec_hash=spec.spec_hash(),
                questions_run=0,
                metrics=metrics,
                cache_path=str(_cache.cache_path(spec, plan.cache_dir)),
            )
            return ScenarioRun(spec=spec, result=cached, report=report)
    else:
        # Caching disabled: the run is a (deliberate) miss, counted
        # per-run only — no disk lookup happened, so no global counter.
        reason = "bypassed"
    metrics["scenarios.cache.misses"] = 1
    metrics[f"scenarios.cache.miss.{reason}"] = 1

    result = ExperimentResult(
        experiment_id=spec.name,
        title=spec.title,
        parameters={
            "model": spec.factory_ref,
            **{f"model.{k}": v for k, v in spec.kwargs.items()},
            "x0": list(spec.x0),
            "horizon": spec.horizon,
            "spec_hash": spec.spec_hash(),
        },
    )

    parallel_ok = (
        plan.processes is not None and plan.processes > 1
        and len(spec.questions) > 1
    )
    # The robust paths only engage when the plan asks for resilience;
    # the default plan takes the legacy fan-out below, bit-identical to
    # previous behaviour (no executor machinery, no retry loop).
    robust = plan.on_error == "partial" or plan.retry is not None
    failures: List[QuestionFailure] = []
    if parallel_ok:
        payloads = [(spec, i, plan.backend)
                    for i in range(len(spec.questions))]
        if robust:
            policy = dataclasses.replace(
                plan.retry or RetryPolicy(max_attempts=1),
                on_error=plan.on_error,
            )
            slots = map_shards(_run_question_payload, payloads,
                               plan.processes, policy=policy)
            outcomes = []
            for index, slot in enumerate(slots):
                if isinstance(slot, ShardFailure):
                    question = spec.questions[index]
                    failures.append(QuestionFailure(
                        scenario=spec.name, kind=question.kind,
                        label=question.label,
                        error_type=slot.error_type, message=slot.message,
                        attempts=slot.attempts,
                        elapsed_seconds=slot.elapsed_seconds,
                    ))
                else:
                    outcomes.append(slot)
        else:
            outcomes = map_shards(_run_question_payload, payloads,
                                  plan.processes)
    elif robust:
        model = spec.build_model()
        outcomes, failures = _run_questions_serial_robust(spec, plan, model)
    else:
        model = spec.build_model()
        outcomes = [run_question(spec, q, model=model, backend=plan.backend)
                    for q in spec.questions]

    for outcome in outcomes:
        for name, (times, values) in outcome.series.items():
            result.add_series(name, times, values)
        for name, value in outcome.findings.items():
            result.add_finding(name, value)
        for note in outcome.notes:
            result.add_note(note)

    if failures:
        # A partial result is marked as such everywhere it can be
        # inspected: the failure taxonomy in the report metrics, the
        # human-readable notes, and a parameters flag on the result.
        result.parameters["partial"] = True
        metrics["scenarios.questions.failed"] = len(failures)
        telemetry.inc("resilience.question_failures", len(failures))
        for failure in failures:
            key = f"resilience.question_failure.{failure.error_type}"
            metrics[key] = metrics.get(key, 0) + 1
            result.add_note(failure.describe())

    elapsed = time.perf_counter() - start
    path: Optional[str] = None
    if plan.use_cache and not failures:
        # Partial results are never cached: a later run must get the
        # chance to compute the missing questions, and a cache hit must
        # always mean "the complete answer".
        try:
            path = str(_cache.store_result(spec, result, plan.cache_dir))
        except OSError:
            # An unwritable cache (read-only home, missing $HOME, full
            # disk) must not discard a computation that already
            # succeeded — the run degrades to uncached.
            path = None
    metrics["scenarios.run.seconds"] = elapsed
    metrics["scenarios.questions.run"] = len(spec.questions)
    telemetry.inc("scenarios.questions.run", len(spec.questions))
    telemetry.set_gauge("scenarios.run.seconds", elapsed)
    report = RunReport(
        scenario=spec.name,
        spec_hash=spec.spec_hash(),
        questions_run=len(spec.questions),
        metrics=metrics,
        cache_path=path,
    )
    return ScenarioRun(spec=spec, result=result, report=report,
                       failures=failures)
