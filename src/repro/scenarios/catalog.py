"""The built-in scenario catalog.

One declarative entry per model/question bundle the library answers out
of the box: the paper's five case studies (SIR transient / hull /
steady state, GPS Poisson and MAP) plus the extension workloads
(SEIR, power-of-``d`` load balancing, finite-``N`` SIR ensembles, the
three scenario-catalog models — gossip spread, a repairable M/M/C
pool, CDN content placement — the finite-chain interval-DTMC
scenarios that pin Škulj-style bounds against the exact imprecise
Kolmogorov machinery, and the cloud-workload trio — autoscaling
microservice pool, TTL cache fleet, CSMA contention cell — whose only
test code is the registration below: the conformance harness
(:mod:`repro.testing`) derives their whole soundness suite from the
spec).

Importing this module registers everything; the registry triggers the
import lazily on first lookup.  Question options are tuned so that a
``python -m repro run <name>`` completes in seconds — benchmarks that
need paper-resolution grids derive denser variants with
:meth:`~repro.scenarios.ScenarioSpec.with_overrides`.
"""

from __future__ import annotations

from repro.models import (
    gps_initial_state_map,
    gps_initial_state_poisson,
    make_autoscaler_model,
    make_bike_station_model,
    make_cdn_cache_model,
    make_csma_model,
    make_gossip_model,
    make_gps_map_model,
    make_gps_poisson_model,
    make_power_of_d_model,
    make_repairable_queue_model,
    make_seir_model,
    make_sir_full_model,
    make_sir_model,
    make_ttl_cache_model,
)
from repro.scenarios.registry import register_scenario
from repro.scenarios.spec import Question, ScenarioSpec

__all__ = []  # purely side-effectful: registers the catalog


register_scenario(ScenarioSpec(
    name="sir-transient",
    title="SIR: transient bounds on the infected fraction "
          "(uncertain vs imprecise, Fig. 1)",
    model_factory=make_sir_model,
    x0=(0.7, 0.3),
    horizon=3.0,
    observables=("I",),
    questions=(
        Question("envelope",
                 options={"times": [0.0, 0.5, 1.0, 2.0, 3.0],
                          "resolution": 21}),
        Question("pontryagin", options={"horizons": [0.5, 1.0, 2.0, 3.0]}),
    ),
    description="The headline comparison of the paper: the exact "
                "imprecise bounds (theta varying in time) strictly "
                "contain the envelope over constant parameters.  The "
                "pontryagin question reproduces the golden-pinned "
                "Fig. 1 values of tests/test_golden_figures.py.",
    tags=("paper", "sir", "fig1"),
    validity={"a": (0.05, 0.3), "theta_max": (5.0, 12.0)},
    golden={
        "I_imprecise_min_final": 0.016318777671,
        "I_imprecise_max_final": 0.170538327409,
        "I_uncertain_min_final": 0.020774775237,
        "I_uncertain_max_final": 0.095434365290,
    },
))

register_scenario(ScenarioSpec(
    name="sir-hull",
    title="SIR: differential hull vs exact imprecise bounds (Fig. 4)",
    model_factory=make_sir_model,
    x0=(0.7, 0.3),
    horizon=1.5,
    observables=("S", "I"),
    questions=(
        Question("hull", options={"n_times": 7}),
        Question("pontryagin",
                 options={"horizons": [0.5, 1.0, 1.5],
                          "steps_per_unit": 60}),
    ),
    description="The hull pair of ODEs is sound but can leave the "
                "state space (its I upper bound exceeds 1 well before "
                "t = 1.5 at theta in [1, 10]) while the Pontryagin "
                "bounds stay tight.",
    tags=("paper", "sir", "fig4"),
    validity={"a": (0.05, 0.3), "theta_max": (5.0, 12.0)},
    golden={
        # The hull I-width blowing past 1 *is* the Fig. 4 message, so
        # it gets a looser per-pin rtol (adaptive-step sensitive).
        "hull_I_trivial": 1.0,
        "hull_S_trivial": 0.0,
        "hull_I_width_final": (15.706917450194, 5e-3),
        "hull_S_width_final": (1.692484607474, 5e-3),
        "I_imprecise_min_final": 0.015440028826,
        "I_imprecise_max_final": 0.145223876071,
        "S_imprecise_min_final": 0.398709581450,
        "S_imprecise_max_final": 0.817557610317,
    },
))

register_scenario(ScenarioSpec(
    name="sir-steadystate",
    title="SIR: Birkhoff centre vs stationary hull rectangle (Fig. 5)",
    model_factory=make_sir_model,
    x0=(0.7, 0.3),
    horizon=40.0,
    model_kwargs={"theta_max": 4.0},
    questions=(
        Question("steadystate",
                 options={"x0_guess": [0.7, 0.05], "fp_resolution": 21}),
    ),
    description="Stationary measures concentrate on the Birkhoff "
                "centre; the hull rectangle over-approximates it "
                "(theta_max = 4 keeps the rectangle convergent).",
    tags=("paper", "sir", "fig5"),
))

register_scenario(ScenarioSpec(
    name="sir-ensemble",
    title="SIR: finite-N ensembles across constant thetas "
          "(vectorized SSA engine)",
    model_factory=make_sir_model,
    x0=(0.7, 0.3),
    horizon=2.0,
    observables=("I",),
    questions=(
        Question("envelope", options={"n_times": 9, "resolution": 5}),
        Question("ensemble",
                 options={"population_size": 500, "n_runs": 24,
                          "resolution": 3, "seed": 2016}),
    ),
    description="Finite-N sanity of the mean-field envelope: ensemble "
                "means at N = 500 stay inside the uncertain envelope "
                "up to CLT noise.",
    tags=("paper", "sir", "ensemble"),
))

register_scenario(ScenarioSpec(
    name="seir-transient",
    title="SEIR: transient bounds with a latent compartment",
    model_factory=make_seir_model,
    x0=(0.7, 0.0, 0.3),
    horizon=3.0,
    observables=("I",),
    questions=(
        Question("envelope", options={"n_times": 7, "resolution": 9}),
        Question("pontryagin",
                 options={"horizons": [1.0, 2.0, 3.0],
                          "steps_per_unit": 60}),
        Question("hull", options={"times": [0.0, 0.25, 0.5, 0.75, 1.0]}),
    ),
    description="Three-dimensional extension: the machinery is not "
                "tied to the paper's 2-D examples.",
    tags=("extension", "epidemic"),
))

register_scenario(ScenarioSpec(
    name="gps-poisson",
    title="GPS network, Poisson arrivals: per-class queue bounds "
          "(Section VI)",
    model_factory=make_gps_poisson_model,
    x0=tuple(gps_initial_state_poisson()),
    horizon=5.0,
    observables=("Q1", "Q2"),
    questions=(
        Question("envelope", options={"n_times": 6, "resolution": 5}),
        Question("pontryagin",
                 options={"horizons": [1.0, 3.0, 5.0],
                          "steps_per_unit": 40}),
        Question("template", options={"family": "box", "n_steps": 150}),
    ),
    description="Under Poisson job creation the imprecise worst case "
                "essentially coincides with the worst constant rate "
                "(the gap of Fig. 7 needs the MAP variant).",
    tags=("paper", "gps"),
))

register_scenario(ScenarioSpec(
    name="gps-map",
    title="GPS network, MAP arrivals: bursty demand beats every "
          "constant rate (Fig. 7)",
    model_factory=make_gps_map_model,
    x0=tuple(gps_initial_state_map()),
    horizon=5.0,
    observables=("Q1", "Q2"),
    questions=(
        Question("pontryagin",
                 options={"horizons": [1.0, 3.0, 5.0],
                          "steps_per_unit": 40}),
        Question("template", options={"family": "box", "n_steps": 120}),
    ),
    description="The 4-D MAP model: an activation stage lets "
                "time-varying sending rates exceed every constant-rate "
                "envelope.",
    tags=("paper", "gps", "fig7"),
))

register_scenario(ScenarioSpec(
    name="bike-station",
    title="Bike-sharing station: occupancy bounds and finite-N "
          "ensembles (Sections II-III)",
    model_factory=make_bike_station_model,
    x0=(0.6,),
    horizon=6.0,
    observables=("occupied",),
    questions=(
        Question("envelope", options={"n_times": 7, "resolution": 3,
                                      "integrator": "rk4",
                                      "rk4_steps": 600}),
        # The drift slides on the occupancy boundary, so both bound
        # families carry O(dt) chatter; the Pontryagin grid must be at
        # least as fine as the envelope's RK4 grid or the "exact" bounds
        # visibly fall inside the envelope.
        Question("pontryagin",
                 options={"horizons": [2.0, 4.0, 6.0],
                          "steps_per_unit": 200}),
        Question("ensemble",
                 options={"population_size": 30, "n_runs": 24,
                          "seed": 7}),
    ),
    description="The paper's running example; at one station the "
                "chain is small enough that repro.ctmc offers exact "
                "finite-N bounds too (examples/bike_sharing.py).  The "
                "envelope integrates with fixed-step RK4: the drift "
                "slides on the occupancy boundary, which defeats "
                "adaptive step control.",
    tags=("paper", "bike"),
))

register_scenario(ScenarioSpec(
    name="load-balancing",
    title="Power-of-two-choices: worst-case backlog under imprecise "
          "arrivals",
    model_factory=make_power_of_d_model,
    x0=(0.5, 0.0, 0.0, 0.0, 0.0, 0.0),
    horizon=4.0,
    model_kwargs={"buffer_depth": 6},
    observables=("mean_queue_length", "busy_fraction"),
    questions=(
        Question("envelope", options={"n_times": 5, "resolution": 5}),
        Question("pontryagin",
                 options={"horizons": [1.0, 2.0, 4.0],
                          "steps_per_unit": 40}),
    ),
    description="The supermarket model as a scalability probe: the "
                "state dimension is a free knob (buffer_depth).",
    tags=("extension", "queueing"),
))

register_scenario(ScenarioSpec(
    name="gossip-spread",
    title="Push-pull gossip / malware spread with an imprecise push rate",
    model_factory=make_gossip_model,
    x0=(0.9, 0.1),
    horizon=5.0,
    observables=("spreaders", "ignorant"),
    questions=(
        Question("envelope", options={"n_times": 11, "resolution": 9}),
        Question("pontryagin",
                 options={"horizons": [1.0, 2.0, 3.5, 5.0],
                          "steps_per_unit": 60}),
        Question("hull", options={"times": [0.0, 0.5, 1.0, 1.5, 2.0]}),
        Question("steadystate", options={"horizon": 40.0,
                                         "fp_resolution": 11}),
    ),
    description="Maki-Thompson rumour dynamics with re-susceptibility; "
                "the stifling nonlinearity Y(1-X) drives the hull "
                "rectangle divergent (a 'trivial hull' regime) while "
                "the Birkhoff region stays informative.",
    tags=("extension", "epidemic", "new-model"),
))

register_scenario(ScenarioSpec(
    name="repairable-queue",
    title="M/M/C service pool with breakdowns: imprecise demand and "
          "fault rates",
    model_factory=make_repairable_queue_model,
    x0=(0.2, 0.1),
    horizon=8.0,
    observables=("queue", "broken"),
    questions=(
        Question("envelope", options={"n_times": 9, "resolution": 5}),
        Question("pontryagin",
                 options={"horizons": [2.0, 5.0, 8.0],
                          "steps_per_unit": 40}),
        Question("steadystate", options={"horizon": 40.0,
                                         "fp_resolution": 9}),
    ),
    description="A 2-parameter box Theta = [lambda] x [gamma] like the "
                "paper's GPS example: certified queue bounds when both "
                "the load and the failure process are adversarial.",
    tags=("extension", "queueing", "new-model"),
    validity={"mu": (2.0, 6.0), "rho": (1.0, 3.0)},
))

register_scenario(ScenarioSpec(
    name="sir-dtmc-reward",
    title="SIR at N = 6: interval-DTMC reward bounds vs the exact "
          "imprecise Kolmogorov bounds",
    model_factory=make_sir_full_model,
    x0=(0.7, 0.3, 0.0),
    horizon=1.5,
    observables=("I",),
    questions=(
        Question("dtmc_reward",
                 options={"population_size": 6, "n_steps": 120}),
    ),
    description="Uniformizes the enumerated finite-N SIR chain into a "
                "Škulj interval DTMC (batched credal operators).  The "
                "entry-wise relaxation forgets that one shared theta "
                "drives every generator entry, so its bounds must "
                "enclose — and visibly exceed — the exact Pontryagin "
                "bounds on the master equation.",
    tags=("extension", "sir", "ctmc", "dtmc"),
))

register_scenario(ScenarioSpec(
    name="load-balancing-dtmc",
    title="Power-of-two-choices at N = 6: finite-chain interval-DTMC "
          "backlog bounds",
    model_factory=make_power_of_d_model,
    x0=(0.5, 0.0, 0.0),
    horizon=2.0,
    model_kwargs={"buffer_depth": 3},
    observables=("mean_queue_length",),
    questions=(
        Question("dtmc_reward",
                 options={"population_size": 6, "n_steps": 100}),
    ),
    description="The supermarket model small enough to enumerate "
                "(monotone tail-count lattice): certified worst-case "
                "backlog at finite N through the uniformized interval "
                "chain, pinned conservative against the exact "
                "imprecise-CTMC bounds.",
    tags=("extension", "queueing", "ctmc", "dtmc"),
))

register_scenario(ScenarioSpec(
    name="bike-dtmc-reward",
    title="Bike station at N = 8: interval-DTMC occupancy bounds, "
          "transient and stationary",
    model_factory=make_bike_station_model,
    x0=(0.5,),
    horizon=3.0,
    observables=("occupied",),
    questions=(
        Question("dtmc_reward",
                 options={"population_size": 8, "stationary": True,
                          "n_steps": 120}),
    ),
    description="The paper's running example as an interval DTMC: the "
                "birth-death chain is regular, so Škulj's stationary "
                "iteration flattens and yields long-run occupancy "
                "bounds on top of the transient ones.",
    tags=("paper", "bike", "ctmc", "dtmc"),
))

register_scenario(ScenarioSpec(
    name="cdn-cache",
    title="CDN content placement: hit-rate bounds under imprecise "
          "request intensity",
    model_factory=make_cdn_cache_model,
    x0=(0.1, 0.1),
    horizon=6.0,
    observables=("hit_rate", "warm"),
    questions=(
        Question("envelope", options={"n_times": 9, "resolution": 9}),
        Question("pontryagin",
                 options={"horizons": [1.5, 3.0, 6.0],
                          "steps_per_unit": 40}),
        Question("template", options={"family": "octagon", "n_steps": 120,
                                      "horizon": 3.0}),
    ),
    description="Miss-driven cache fill with popularity churn: how low "
                "can the edge hit rate be pushed by adversarial "
                "request patterns inside the interval?",
    tags=("extension", "cdn", "new-model"),
    validity={"gamma": (0.5, 2.0), "mu": (1.0, 4.0)},
))

register_scenario(ScenarioSpec(
    name="autoscaler",
    title="Autoscaling microservice pool: backlog and pool-size bounds "
          "under uncertain arrivals with scale hysteresis",
    model_factory=make_autoscaler_model,
    x0=(0.3, 0.2),
    horizon=4.0,
    observables=("backlog", "pool"),
    questions=(
        Question("envelope", options={"n_times": 9, "resolution": 7}),
        Question("pontryagin",
                 options={"horizons": [1.0, 2.0, 4.0],
                          "steps_per_unit": 40}),
        Question("hull", options={"times": [0.0, 0.5, 1.0]}),
        Question("ensemble",
                 options={"population_size": 200, "n_runs": 12,
                          "seed": 11}),
        Question("dtmc_reward",
                 options={"population_size": 6, "horizon": 1.5,
                          "n_steps": 100}),
    ),
    description="Reactive capacity control: replicas spawn at rate "
                "alpha q (cap - s) when backlog is high and retire at "
                "beta s (1 - q) when it drains, giving scale-up/down "
                "hysteresis; the arrival rate is only known to an "
                "interval.  How far can an adversarial (time-varying) "
                "demand pattern push the backlog before the pool "
                "catches up?  The 2-D state also enumerates at small "
                "N, so the interval-DTMC question pins finite-chain "
                "conservativeness.",
    tags=("extension", "cloud", "new-model"),
    validity={"mu": (1.0, 6.0), "alpha": (0.5, 4.0), "beta": (0.5, 2.0),
              "arrival_max": (1.0, 3.0)},
))

register_scenario(ScenarioSpec(
    name="ttl-cache-fleet",
    title="TTL/LRU cache fleet: hit-rate bounds under uncertain "
          "content popularity",
    model_factory=make_ttl_cache_model,
    x0=(0.2, 0.1),
    horizon=5.0,
    observables=("hit_rate", "stale"),
    questions=(
        Question("envelope", options={"n_times": 9, "resolution": 7}),
        Question("pontryagin",
                 options={"horizons": [1.0, 2.5, 5.0],
                          "steps_per_unit": 40}),
        Question("template", options={"family": "box", "n_steps": 120,
                                      "horizon": 2.5}),
        Question("ensemble",
                 options={"population_size": 200, "n_runs": 12,
                          "seed": 13}),
    ),
    description="The CDN model generalised with a staleness "
                "compartment: entries age out (TTL), stale entries are "
                "refreshed in place by request traffic or evicted "
                "(LRU), and the request intensity — a proxy for "
                "popularity — is an interval.  Certified floor on the "
                "fresh-hit rate under adversarial popularity churn.",
    tags=("extension", "cloud", "cdn", "new-model"),
    validity={"omega": (0.2, 2.0), "mu": (0.5, 3.0), "rho": (0.0, 1.0)},
))

register_scenario(ScenarioSpec(
    name="csma-contention",
    title="CSMA wireless cell: throughput bounds under imprecise "
          "traffic and backoff aggressiveness",
    model_factory=make_csma_model,
    x0=(0.4, 0.0),
    horizon=4.0,
    observables=("backlogged", "throughput"),
    questions=(
        Question("envelope", options={"n_times": 9, "resolution": 5}),
        Question("pontryagin",
                 options={"horizons": [1.0, 2.0, 4.0],
                          "steps_per_unit": 40}),
        Question("hull", options={"times": [0.0, 0.5, 1.0]}),
        Question("ensemble",
                 options={"population_size": 200, "n_runs": 12,
                          "seed": 17}),
    ),
    description="Carrier-sense multiple access as a mean-field "
                "contention game: stations wake with traffic in "
                "[lambda] and grab the medium at a backoff-controlled "
                "rate in [beta], attenuated by the busy fraction.  A "
                "2-D box Theta like the paper's GPS example; the "
                "question is the certified worst-case air-time.",
    tags=("extension", "cloud", "wireless", "new-model"),
    validity={"mu": (1.0, 4.0)},
))
