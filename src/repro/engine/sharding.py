"""Multiprocessing sharding for ensemble parameter sweeps.

The vectorized engine removes the per-event Python overhead *within*
one ensemble; parameter sweeps (one ensemble per ``theta`` grid point,
the uncertain-scenario workload of Definition 2) are embarrassingly
parallel *across* ensembles.  :func:`sweep_constant_ensembles` shards a
sweep one-grid-point-per-task over a :mod:`multiprocessing` pool.

Because population models carry closures (rate lambdas) they do not
pickle; each shard therefore rebuilds its model in the worker from a
*module-level factory* (``make_sir_model`` et al.) plus keyword
arguments, which is also what keeps the sharding compatible with spawn
start methods.  Shard seeds are spawned from one
:class:`numpy.random.SeedSequence`, so streams are independent and the
sweep is reproducible for a fixed ``seed`` regardless of process count.
"""

from __future__ import annotations

import multiprocessing
import operator
import pickle
import time
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro import telemetry
from repro.engine.vectorized import simulate_ensemble
from repro.simulation.batch import BatchResult

__all__ = ["map_shards", "sweep_constant_ensembles"]


class _TimedCall:
    """Picklable wrapper returning ``(seconds, fn(payload))``.

    The telemetry registry is process-local, so counters a worker bumps
    never reach the parent; wall time measured *inside* the worker and
    shipped back with the result is the one per-shard signal that
    survives the pool boundary.  ``fn`` must be a module-level callable
    (which :func:`map_shards` already requires for pool use).
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable) -> None:
        self.fn = fn

    def __call__(self, payload):
        start = time.perf_counter()
        result = self.fn(payload)
        return time.perf_counter() - start, result


def map_shards(fn: Callable, payloads: Sequence,
               processes: Optional[int] = None) -> List:
    """Map ``fn`` over picklable payloads, optionally across a process pool.

    The shared fan-out primitive of the engine layer: results come back
    in input order, and ``processes`` of ``None`` / ``1`` (or a single
    payload) short-circuits to an in-process loop with zero pool
    overhead.  Both the ensemble parameter sweep below and the scenario
    runner (:func:`repro.scenarios.run_scenario`) shard through here, so
    worker-count invariance is tested once for all of them: ``fn`` must
    be deterministic per payload (any randomness derived from a seed
    carried *inside* the payload).

    With telemetry enabled, per-shard wall time and pickled payload
    size land on the registry as the ``engine.shard.seconds`` /
    ``engine.shard.payload_bytes`` histograms.
    """
    payloads = list(payloads)
    serial = processes is None or processes <= 1 or len(payloads) <= 1
    if not telemetry.enabled():
        if serial:
            return [fn(p) for p in payloads]
        with multiprocessing.Pool(
            processes=min(processes, len(payloads))
        ) as pool:
            return pool.map(fn, payloads)

    with telemetry.span("engine.map_shards", shards=len(payloads),
                        processes=1 if serial else processes):
        payload_hist = telemetry.live_histogram("engine.shard.payload_bytes")
        unpicklable = telemetry.live_counter(
            "engine.shard.unpicklable_payloads"
        )
        for p in payloads:
            try:
                size = len(pickle.dumps(p))
            except Exception:
                # The serial path never required picklable payloads;
                # observability must not start requiring it either — the
                # skip is stamped on a counter and size metering stops.
                if unpicklable is not None:
                    unpicklable.inc()
                break
            if payload_hist is not None:
                payload_hist.observe(size)
        timed = _TimedCall(fn)
        if serial:
            pairs = [timed(p) for p in payloads]
        else:
            with multiprocessing.Pool(
                processes=min(processes, len(payloads))
            ) as pool:
                pairs = pool.map(timed, payloads)
        telemetry.inc("engine.shard.calls", len(pairs))
        telemetry.observe_many("engine.shard.seconds",
                               [seconds for seconds, _ in pairs])
        return [result for _, result in pairs]


def _run_shard(payload) -> BatchResult:
    (model_factory, model_kwargs, x0, population_size, theta, t_final,
     n_runs, seed_seq, n_samples, t_start, max_events) = payload
    from repro.simulation.policies import ConstantPolicy

    model = model_factory(**model_kwargs)
    population = model.instantiate(population_size, x0)
    return simulate_ensemble(
        population,
        lambda: ConstantPolicy(theta),
        t_final,
        n_runs=n_runs,
        rng=np.random.default_rng(seed_seq),
        n_samples=n_samples,
        t_start=t_start,
        max_events=max_events,
    )


def sweep_constant_ensembles(
    model_factory: Callable,
    x0,
    population_size: int,
    thetas,
    t_final: float,
    n_runs: int,
    seed: Union[int, np.random.SeedSequence] = 0,
    n_samples: int = 200,
    t_start: float = 0.0,
    max_events: int = 50_000_000,
    processes: Optional[int] = None,
    model_kwargs: Optional[dict] = None,
) -> List[BatchResult]:
    """Run one vectorized ensemble per ``theta`` grid point.

    Parameters
    ----------
    model_factory:
        Module-level model constructor (e.g. ``make_sir_model``); called
        as ``model_factory(**model_kwargs)`` inside each worker.
    x0, population_size:
        Initial density and chain size shared by all shards.
    thetas:
        Grid of frozen parameters, shape ``(n_points, p)`` — typically
        ``model.theta_set.grid(resolution)``.  A 1-D sequence is
        interpreted as ``n_points`` *scalar* grid points (shape
        ``(n_points, 1)``); multi-dimensional parameter sets must pass
        the 2-D form.
    t_final, n_runs, n_samples, t_start, max_events:
        Forwarded to :func:`~repro.engine.simulate_ensemble` per shard.
    seed:
        Root seed (or a pre-built :class:`numpy.random.SeedSequence`);
        shard ``i`` draws from the ``i``-th spawn of the root sequence,
        so for a fixed seed the per-shard streams — and therefore the
        results — are identical regardless of ``processes``.
    processes:
        ``None`` or ``1`` runs the shards serially in-process (no pool
        overhead — the right choice on single-core boxes and inside
        tests); larger values fan the shards out over a pool.

    Returns
    -------
    One :class:`~repro.simulation.BatchResult` per grid point, in input
    order.
    """
    theta_grid = np.asarray(thetas, dtype=float)
    if theta_grid.ndim == 1:
        # A flat sequence is a list of scalar grid points, one shard
        # each — not a single multi-dimensional point.
        theta_grid = theta_grid[:, None]
    if theta_grid.ndim != 2:
        raise ValueError(
            f"thetas must be (n_points, p) or a 1-D sequence of scalars, "
            f"got shape {theta_grid.shape}"
        )
    if theta_grid.shape[0] == 0:
        raise ValueError("thetas must contain at least one grid point")
    if not callable(model_factory):
        raise TypeError("model_factory must be callable")
    n_runs = operator.index(n_runs)  # reject silent float truncation
    root = (seed if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed))
    seed_seqs = root.spawn(theta_grid.shape[0])
    payloads = [
        (model_factory, dict(model_kwargs or {}), np.asarray(x0, dtype=float),
         int(population_size), theta_grid[i], float(t_final), n_runs,
         seed_seqs[i], int(n_samples), float(t_start), int(max_events))
        for i in range(theta_grid.shape[0])
    ]
    return map_shards(_run_shard, payloads, processes)
