"""Multiprocessing sharding for ensemble parameter sweeps.

The vectorized engine removes the per-event Python overhead *within*
one ensemble; parameter sweeps (one ensemble per ``theta`` grid point,
the uncertain-scenario workload of Definition 2) are embarrassingly
parallel *across* ensembles.  :func:`sweep_constant_ensembles` shards a
sweep one-grid-point-per-task over a :mod:`multiprocessing` pool.

Because population models carry closures (rate lambdas) they do not
pickle; each shard therefore rebuilds its model in the worker from a
*module-level factory* (``make_sir_model`` et al.) plus keyword
arguments, which is also what keeps the sharding compatible with spawn
start methods.  Shard seeds are spawned from one
:class:`numpy.random.SeedSequence`, so streams are independent and the
sweep is reproducible for a fixed ``seed`` regardless of process count.
"""

from __future__ import annotations

import multiprocessing
import operator
import pickle
import time
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro import telemetry
from repro.backend import resolve_backend
from repro.engine.vectorized import simulate_ensemble
from repro.simulation.batch import BatchResult

__all__ = ["map_shards", "sweep_constant_ensembles"]


class _TimedCall:
    """Picklable wrapper returning ``(seconds, fn(payload))``.

    The telemetry registry is process-local, so counters a worker bumps
    never reach the parent; wall time measured *inside* the worker and
    shipped back with the result is the one per-shard signal that
    survives the pool boundary.  ``fn`` must be a module-level callable
    (which :func:`map_shards` already requires for pool use).
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable) -> None:
        self.fn = fn

    def __call__(self, payload):
        start = time.perf_counter()
        result = self.fn(payload)
        return time.perf_counter() - start, result


def _pool_map(fn: Callable, payloads: Sequence, processes: int,
              initializer: Optional[Callable], initargs: tuple) -> List:
    """Legacy ``Pool.map`` with the two environmental guards.

    Pool *creation* failure (sandboxed env without semaphores or
    ``/dev/shm``) degrades to the serial path — warn once, stamp
    ``engine.shard.pool_unavailable`` — instead of crashing the sweep.
    Teardown goes through ``terminate`` in a ``finally`` so a
    ``KeyboardInterrupt`` mid-``map`` kills the workers immediately
    rather than leaking them (``close``/``join`` would wait out
    whatever the interrupt was trying to stop).
    """
    try:
        pool = multiprocessing.Pool(
            processes=min(processes, len(payloads)),
            initializer=initializer, initargs=initargs,
        )
    except (OSError, ImportError) as exc:
        from repro.resilience.execution import warn_pool_unavailable

        warn_pool_unavailable(exc)
        if initializer is not None:
            initializer(*initargs)
        return [fn(p) for p in payloads]
    try:
        return pool.map(fn, payloads)
    finally:
        pool.terminate()
        pool.join()


def map_shards(fn: Callable, payloads: Sequence,
               processes: Optional[int] = None,
               initializer: Optional[Callable] = None,
               initargs: tuple = (),
               policy=None) -> List:
    """Map ``fn`` over picklable payloads, optionally across a process pool.

    The shared fan-out primitive of the engine layer: results come back
    in input order, and ``processes`` of ``None`` / ``1`` (or a single
    payload) short-circuits to an in-process loop with zero pool
    overhead.  Both the ensemble parameter sweep below and the scenario
    runner (:func:`repro.scenarios.run_scenario`) shard through here, so
    worker-count invariance is tested once for all of them: ``fn`` must
    be deterministic per payload (any randomness derived from a seed
    carried *inside* the payload).

    ``initializer`` / ``initargs`` follow the :class:`multiprocessing.Pool`
    contract: shard-invariant context (a model factory, a frozen sweep
    configuration) is pickled **once per worker** instead of once per
    payload, which is what keeps per-shard payloads small on wide
    sweeps.  The serial path calls the initializer once in-process, so
    ``fn`` sees the same worker-context protocol either way.

    With telemetry enabled, per-shard wall time and pickled payload
    size land on the registry as the ``engine.shard.seconds`` /
    ``engine.shard.payload_bytes`` histograms, and the one-time worker
    context size on the ``engine.shard.shared_bytes`` histogram.

    ``policy`` (a :class:`repro.resilience.RetryPolicy`) switches to
    the fault-tolerant executor — bounded retries with deterministic
    backoff, per-shard timeouts, worker-death recovery, and (under
    ``on_error="partial"``) typed :class:`~repro.resilience.ShardFailure`
    records in the failed slots instead of an aborted sweep.  With no
    policy the legacy path below runs unchanged (bit-identical results,
    no executor machinery).
    """
    payloads = list(payloads)
    if policy is not None:
        from repro.resilience.execution import map_shards_robust

        return map_shards_robust(fn, payloads, processes, policy,
                                 initializer=initializer,
                                 initargs=initargs)
    serial = processes is None or processes <= 1 or len(payloads) <= 1
    if not telemetry.enabled():
        if serial:
            if initializer is not None:
                initializer(*initargs)
            return [fn(p) for p in payloads]
        return _pool_map(fn, payloads, processes, initializer, initargs)

    with telemetry.span("engine.map_shards", shards=len(payloads),
                        processes=1 if serial else processes):
        payload_hist = telemetry.live_histogram("engine.shard.payload_bytes")
        shared_hist = telemetry.live_histogram("engine.shard.shared_bytes")
        unpicklable = telemetry.live_counter(
            "engine.shard.unpicklable_payloads"
        )
        if initializer is not None and shared_hist is not None:
            try:
                shared_hist.observe(len(pickle.dumps(initargs)))
            except Exception:
                if unpicklable is not None:
                    unpicklable.inc()
        for p in payloads:
            try:
                size = len(pickle.dumps(p))
            except Exception:
                # The serial path never required picklable payloads;
                # observability must not start requiring it either — the
                # skip is stamped on a counter and size metering stops.
                if unpicklable is not None:
                    unpicklable.inc()
                break
            if payload_hist is not None:
                payload_hist.observe(size)
        timed = _TimedCall(fn)
        if serial:
            if initializer is not None:
                initializer(*initargs)
            pairs = [timed(p) for p in payloads]
        else:
            pairs = _pool_map(timed, payloads, processes,
                              initializer, initargs)
        telemetry.inc("engine.shard.calls", len(pairs))
        telemetry.observe_many("engine.shard.seconds",
                               [seconds for seconds, _ in pairs])
        return [result for _, result in pairs]


#: Per-worker sweep context installed by :func:`_init_sweep_worker`:
#: ``(population, backend, sweep_config)``.  Module-global by necessity —
#: a pool worker has no other channel from the initializer to the task
#: function — and rebuilt wholesale by the next sweep's initializer.
_SWEEP_CONTEXT = None


def _init_sweep_worker(shared) -> None:
    """Build the shard-invariant sweep state once per worker process.

    ``shared`` carries the model factory and every shard-invariant
    sweep argument.  The factory runs *here*, so each worker constructs
    (and each pool pickles) the model exactly once, no matter how many
    ``theta`` grid points it processes; per-shard payloads shrink to
    ``(theta, seed_seq)``.
    """
    global _SWEEP_CONTEXT
    (model_factory, model_kwargs, x0, population_size, t_final, n_runs,
     n_samples, t_start, max_events, backend) = shared
    model = model_factory(**model_kwargs)
    population = model.instantiate(population_size, x0)
    _SWEEP_CONTEXT = (population, backend, shared)


def _run_shard(payload) -> BatchResult:
    theta, seed_seq = payload
    from repro.simulation.policies import ConstantPolicy

    population, backend, shared = _SWEEP_CONTEXT
    (_, _, _, _, t_final, n_runs, n_samples, t_start, max_events,
     _) = shared
    return simulate_ensemble(
        population,
        lambda: ConstantPolicy(theta),
        t_final,
        n_runs=n_runs,
        rng=np.random.default_rng(seed_seq),
        n_samples=n_samples,
        t_start=t_start,
        max_events=max_events,
        backend=backend,
    )


def sweep_constant_ensembles(
    model_factory: Callable,
    x0,
    population_size: int,
    thetas,
    t_final: float,
    n_runs: int,
    seed: Union[int, np.random.SeedSequence] = 0,
    n_samples: int = 200,
    t_start: float = 0.0,
    max_events: int = 50_000_000,
    processes: Optional[int] = None,
    model_kwargs: Optional[dict] = None,
    backend=None,
    policy=None,
) -> List[BatchResult]:
    """Run one vectorized ensemble per ``theta`` grid point.

    Parameters
    ----------
    model_factory:
        Module-level model constructor (e.g. ``make_sir_model``); called
        as ``model_factory(**model_kwargs)`` inside each worker.
    x0, population_size:
        Initial density and chain size shared by all shards.
    thetas:
        Grid of frozen parameters, shape ``(n_points, p)`` — typically
        ``model.theta_set.grid(resolution)``.  A 1-D sequence is
        interpreted as ``n_points`` *scalar* grid points (shape
        ``(n_points, 1)``); multi-dimensional parameter sets must pass
        the 2-D form.
    t_final, n_runs, n_samples, t_start, max_events:
        Forwarded to :func:`~repro.engine.simulate_ensemble` per shard.
    seed:
        Root seed (or a pre-built :class:`numpy.random.SeedSequence`);
        shard ``i`` draws from the ``i``-th spawn of the root sequence,
        so for a fixed seed the per-shard streams — and therefore the
        results — are identical regardless of ``processes``.
    processes:
        ``None`` or ``1`` runs the shards serially in-process (no pool
        overhead — the right choice on single-core boxes and inside
        tests); larger values fan the shards out over a pool.
    policy:
        Optional :class:`repro.resilience.RetryPolicy`; the sweep then
        inherits :func:`map_shards`' fault-tolerant semantics, and with
        ``on_error="partial"`` failed grid points come back as
        :class:`~repro.resilience.ShardFailure` records in their slots.

    Returns
    -------
    One :class:`~repro.simulation.BatchResult` per grid point, in input
    order.
    """
    theta_grid = np.asarray(thetas, dtype=float)
    if theta_grid.ndim == 1:
        # A flat sequence is a list of scalar grid points, one shard
        # each — not a single multi-dimensional point.
        theta_grid = theta_grid[:, None]
    if theta_grid.ndim != 2:
        raise ValueError(
            f"thetas must be (n_points, p) or a 1-D sequence of scalars, "
            f"got shape {theta_grid.shape}"
        )
    if theta_grid.shape[0] == 0:
        raise ValueError("thetas must contain at least one grid point")
    if not callable(model_factory):
        raise TypeError("model_factory must be callable")
    n_runs = operator.index(n_runs)  # reject silent float truncation
    root = (seed if isinstance(seed, np.random.SeedSequence)
            else np.random.SeedSequence(seed))
    seed_seqs = root.spawn(theta_grid.shape[0])
    # Backends do not cross the pool boundary as instances; ship the
    # resolved *name* and let each worker re-resolve it (with the usual
    # warn-and-fallback if the substrate is missing over there).
    backend_name = resolve_backend(backend).name if backend is not None else None
    shared = (model_factory, dict(model_kwargs or {}),
              np.asarray(x0, dtype=float), int(population_size),
              float(t_final), n_runs, int(n_samples), float(t_start),
              int(max_events), backend_name)
    payloads = [
        (theta_grid[i], seed_seqs[i]) for i in range(theta_grid.shape[0])
    ]
    return map_shards(_run_shard, payloads, processes,
                      initializer=_init_sweep_worker, initargs=(shared,),
                      policy=policy)
