"""High-throughput ensemble simulation of finite-``N`` imprecise chains.

``repro.engine`` is the scale layer above the scalar SSA kernel of
:mod:`repro.simulation`:

- :func:`simulate_ensemble` — the vectorized multi-trajectory engine:
  all ``n_runs`` trajectories step together as ``(n_runs, d)`` arrays,
  with batched rate evaluation, batched exponential clocks/event
  selection from a single generator, and per-row policy state held in
  vectorized :mod:`~repro.engine.lanes`.
- :func:`sweep_constant_ensembles` — multiprocessing sharding of
  parameter sweeps, one vectorized ensemble per ``theta`` grid point.

:func:`~repro.simulation.batch_simulate` delegates here by default
(``engine="vectorized"``); the legacy per-run scalar loop survives
behind ``engine="scalar"`` for differential testing.
"""

from repro.engine.lanes import PolicyLane, build_lane
from repro.engine.sharding import map_shards, sweep_constant_ensembles
from repro.engine.vectorized import simulate_ensemble

__all__ = [
    "simulate_ensemble",
    "sweep_constant_ensembles",
    "map_shards",
    "PolicyLane",
    "build_lane",
]
