"""Vectorized multi-trajectory SSA: step a whole ensemble per iteration.

The scalar :func:`~repro.simulation.simulate` spends nearly all of its
time in per-event Python overhead — three rate-lambda calls, a handful
of tiny-array NumPy ops and an RNG draw *per event per trajectory*.  For
the paper's Figure 6 workload (``N = 10^4`` chains, ensembles of
hundreds of runs) that overhead dominates by orders of magnitude.

:func:`simulate_ensemble` removes it by simulating all ``n_runs``
trajectories simultaneously as ``(n_runs, d)`` arrays:

- **batched rates** — one call to
  :meth:`~repro.population.FinitePopulation.aggregate_rates_batch`
  evaluates every transition for every row (each rate lambda is invoked
  once per *step*, not once per row);
- **batched clocks** — the per-row exponential holding times and the
  event-selection uniforms are drawn from a single
  :class:`numpy.random.Generator` with one vectorized call each;
- **per-row policies** — a :class:`~repro.engine.lanes.PolicyLane`
  answers ``theta`` / ``jump_rate`` / ``next_switch_after`` for all rows
  at once, keeping per-row internal state (hysteresis modes, current
  random-jump parameters) as arrays.

Exactness
---------
Each row runs the *same* direct-method race as the scalar kernel, just
asynchronously in its own clock:

1. draw the row's holding time ``~ Exp(total rate)``;
2. if the draw crosses the row's next deterministic policy switch,
   advance that row to the switch and re-draw — the exponential
   distribution is memoryless, so restarting the race at the switch
   leaves the law of the trajectory unchanged (the same argument the
   scalar kernel uses);
3. otherwise pick the row's event proportionally to its rates — either
   a model transition or an autonomous policy re-draw.

Rows hit their horizons at different step counts; finished rows leave
the active set, so late finishers never pay for early ones.  The engine
is *statistically* equivalent to ``n_runs`` scalar calls but consumes
the RNG stream in a different order, so trajectories differ path-by-path
for the same seed; the equivalence tests pin the two engines together
through ensemble statistics (CLT bands on mean/std, two-sample KS on
final-state clouds).
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Union

import numpy as np

from repro import telemetry
from repro.engine.lanes import build_lane
from repro.population import FinitePopulation
from repro.simulation.batch import BatchResult, validate_ensemble_args

__all__ = ["simulate_ensemble"]


def simulate_ensemble(
    population: FinitePopulation,
    policy_factory: Callable,
    t_final: float,
    n_runs: int,
    seed: Union[int, np.random.SeedSequence] = 0,
    rng: Optional[np.random.Generator] = None,
    n_samples: int = 200,
    t_start: float = 0.0,
    max_events: int = 50_000_000,
    backend=None,
) -> BatchResult:
    with telemetry.span("engine.ensemble", runs=n_runs) as sp:
        t0 = time.perf_counter()
        batch = _simulate_ensemble_impl(
            population, policy_factory, t_final, n_runs,
            seed=seed, rng=rng, n_samples=n_samples, t_start=t_start,
            max_events=max_events, backend=backend,
        )
        if telemetry.enabled():
            elapsed = time.perf_counter() - t0
            events = batch.n_events + batch.n_policy_jumps
            telemetry.inc("engine.ssa.runs", batch.states.shape[0])
            telemetry.inc("engine.ssa.events", batch.n_events)
            telemetry.inc("engine.ssa.policy_jumps", batch.n_policy_jumps)
            if elapsed > 0.0:
                telemetry.set_gauge("engine.ssa.events_per_sec",
                                    events / elapsed)
            sp.set("events", events)
    return batch


def _simulate_ensemble_impl(
    population: FinitePopulation,
    policy_factory: Callable,
    t_final: float,
    n_runs: int,
    seed: Union[int, np.random.SeedSequence] = 0,
    rng: Optional[np.random.Generator] = None,
    n_samples: int = 200,
    t_start: float = 0.0,
    max_events: int = 50_000_000,
    backend=None,
) -> BatchResult:
    """Run ``n_runs`` independent SSA trajectories, vectorized across rows.

    Parameters
    ----------
    population:
        The instantiated finite-``N`` chain (all rows start from its
        initial state).
    policy_factory:
        Zero-argument callable producing a fresh
        :class:`~repro.simulation.ControlPolicy`; known policy classes
        are vectorized into a single lane, unknown ones fall back to one
        instance per row.
    t_final:
        Simulation horizon.
    n_runs:
        Ensemble size.
    seed:
        Seed (or :class:`numpy.random.SeedSequence`) for the single
        generator driving every row; ignored when ``rng`` is given.
    rng:
        Explicit generator, for callers composing streams.
    n_samples:
        Equally spaced output samples on ``[t_start, t_final]``.
    max_events:
        Safety cap on the events of any single row.

    Returns
    -------
    A :class:`~repro.simulation.BatchResult` with ``states`` of shape
    ``(n_runs, n_samples, d)``.
    """
    n_runs = validate_ensemble_args(n_runs, t_final, t_start, n_samples)
    rng = rng if rng is not None else np.random.default_rng(seed)

    model = population.model
    dim = model.dim
    n_transitions = len(model.transitions)
    size = population.population_size
    changes = population.change_matrix

    lane = build_lane(policy_factory, n_runs)
    lane.reset(rng, population.initial_density)
    kernels = model.backend_kernels(backend)

    counts = np.tile(population.initial_counts, (n_runs, 1))
    t = np.full(n_runs, float(t_start))
    sample_times = np.linspace(t_start, t_final, n_samples)
    states = np.empty((n_runs, n_samples, dim))
    next_sample = np.zeros(n_runs, dtype=np.int64)
    n_events = np.zeros(n_runs, dtype=np.int64)
    n_policy_jumps = np.zeros(n_runs, dtype=np.int64)

    # Hoisted once: None when telemetry is disabled, so the loop body
    # pays a single identity check per iteration.
    chunk_hist = telemetry.live_histogram("engine.ssa.chunk_rows")

    active = np.arange(n_runs)
    while active.size:
        rows = active
        if chunk_hist is not None:
            chunk_hist.observe(rows.shape[0])
        if np.any(n_events[rows] + n_policy_jumps[rows] >= max_events):
            worst = rows[
                np.argmax(n_events[rows] + n_policy_jumps[rows])
            ]
            raise RuntimeError(
                f"SSA row {worst} exceeded max_events={max_events} before "
                f"t_final (reached t={t[worst]:.4g}); raise the cap or "
                f"shorten the horizon"
            )
        x = counts[rows] / size
        theta = model.theta_set.project_batch(lane.theta(rows, t[rows], x))
        rates = population.aggregate_rates_batch(counts[rows], theta,
                                                 kernels=kernels)
        policy_rate = lane.jump_rate(rows, t[rows], x)
        total = rates.sum(axis=1) + policy_rate
        switch_at = lane.next_switch_after(rows, t[rows])

        # Per-row holding times; absorbed rows (no enabled event) get an
        # infinite draw, which routes them to their next policy switch
        # or to the horizon, exactly as the scalar kernel does.
        t_next = np.full(rows.shape[0], np.inf)
        racing = total > 0.0
        if racing.any():
            t_next[racing] = t[rows[racing]] + rng.exponential(
                1.0 / total[racing]
            )

        crosses_switch = t_next > switch_at
        finishes = ~crosses_switch & (t_next > t_final)
        fires = ~crosses_switch & ~finishes

        # Record the pre-jump state on each row's slice of the shared
        # output grid.  Only rows that actually crossed a grid point do
        # per-row work; with event resolution much finer than the grid
        # this loop is touched rarely.
        record_to = np.where(
            crosses_switch,
            np.minimum(switch_at, t_final),
            np.minimum(t_next, t_final),
        )
        new_next = np.searchsorted(sample_times, record_to, side="right")
        advanced = np.nonzero(new_next > next_sample[rows])[0]
        for i in advanced:
            g = rows[i]
            states[g, next_sample[g]:new_next[i]] = x[i]
        next_sample[rows] = np.maximum(next_sample[rows], new_next)

        if fires.any():
            firing = np.nonzero(fires)[0]
            u = rng.uniform(0.0, total[firing])
            is_policy = u < policy_rate[firing]
            jumping = firing[is_policy]
            if jumping.size:
                lane.on_jump(rows[jumping], t_next[jumping], x[jumping], rng)
                n_policy_jumps[rows[jumping]] += 1
            transitioning = firing[~is_policy]
            if transitioning.size:
                residual = u[~is_policy] - policy_rate[transitioning]
                cumulative = np.cumsum(rates[transitioning], axis=1)
                event = np.minimum(
                    (cumulative <= residual[:, None]).sum(axis=1),
                    n_transitions - 1,
                )
                counts[rows[transitioning]] += changes[event]
                n_events[rows[transitioning]] += 1
            t[rows[firing]] = t_next[firing]

        if crosses_switch.any():
            switching = np.nonzero(crosses_switch)[0]
            t[rows[switching]] = switch_at[switching]
        if finishes.any():
            t[rows[np.nonzero(finishes)[0]]] = t_final

        active = rows[t[rows] < t_final]

    return BatchResult(
        times=sample_times,
        states=states,
        population_size=size,
        n_events=int(n_events.sum()),
        n_policy_jumps=int(n_policy_jumps.sum()),
    )


simulate_ensemble.__doc__ = _simulate_ensemble_impl.__doc__
