"""Vectorized policy lanes: per-row policy state for ensemble SSA.

The scalar SSA queries one :class:`~repro.simulation.ControlPolicy` per
trajectory.  The vectorized engine steps ``n_runs`` trajectories at
once, so it needs the same four hooks (``theta``, ``jump_rate``,
``on_jump``, ``next_switch_after``) answered for *vectors of rows* in a
single call.  A :class:`PolicyLane` is that batched view: it owns the
internal state of all rows (e.g. the hysteresis mode bits, or the
current parameter of every random-jump row) as arrays.

Known policy classes get hand-vectorized lanes; anything else —
including *subclasses* of the known classes, whose overridden behaviour
a vectorized lane could silently miss — falls back to
:class:`GenericLane`, which keeps one policy instance per row and loops.
The fallback is semantically identical to the scalar engine, just
without the batching speedup.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.population.calculus import validated_batch_eval
from repro.simulation.policies import (
    ConstantPolicy,
    ControlPolicy,
    HysteresisPolicy,
    PiecewiseConstantPolicy,
    RandomJumpPolicy,
)

__all__ = [
    "PolicyLane",
    "ConstantLane",
    "PiecewiseConstantLane",
    "HysteresisLane",
    "RandomJumpLane",
    "GenericLane",
    "build_lane",
]


class PolicyLane:
    """Batched policy interface over an ensemble of ``n_runs`` rows.

    ``rows`` arguments are integer arrays of global row indices; ``t``
    and ``x`` are the corresponding per-row times ``(len(rows),)`` and
    states ``(len(rows), d)``.
    """

    def __init__(self, n_runs: int):
        self.n_runs = int(n_runs)

    def reset(self, rng: np.random.Generator, x0: np.ndarray) -> None:
        """Prepare the internal state of every row for a fresh ensemble."""

    def theta(self, rows: np.ndarray, t: np.ndarray,
              x: np.ndarray) -> np.ndarray:
        """Parameters in force on ``rows``, shape ``(len(rows), p)``."""
        raise NotImplementedError

    def jump_rate(self, rows: np.ndarray, t: np.ndarray,
                  x: np.ndarray) -> np.ndarray:
        """Autonomous policy-event rates on ``rows``, shape ``(len(rows),)``."""
        return np.zeros(rows.shape[0])

    def on_jump(self, rows: np.ndarray, t: np.ndarray, x: np.ndarray,
                rng: np.random.Generator) -> None:
        """React to one autonomous policy event on each of ``rows``."""

    def next_switch_after(self, rows: np.ndarray,
                          t: np.ndarray) -> np.ndarray:
        """Next deterministic theta discontinuity per row (``inf`` if none)."""
        return np.full(rows.shape[0], np.inf)


class ConstantLane(PolicyLane):
    """All rows frozen at the same parameter vector."""

    def __init__(self, n_runs: int, theta):
        super().__init__(n_runs)
        self._theta = np.atleast_1d(np.asarray(theta, dtype=float))

    def theta(self, rows, t, x):
        return np.broadcast_to(
            self._theta, (rows.shape[0], self._theta.shape[0])
        )


class PiecewiseConstantLane(PolicyLane):
    """A shared deterministic ``(start_time, theta)`` schedule."""

    def __init__(self, n_runs: int, starts: np.ndarray,
                 thetas: Sequence[np.ndarray]):
        super().__init__(n_runs)
        self._starts = np.asarray(starts, dtype=float)
        self._thetas = np.stack([np.atleast_1d(th) for th in thetas])

    def theta(self, rows, t, x):
        index = np.searchsorted(self._starts, t, side="right") - 1
        return self._thetas[np.maximum(index, 0)]

    def next_switch_after(self, rows, t):
        index = np.searchsorted(self._starts, t + 1e-15, side="right")
        out = np.full(rows.shape[0], np.inf)
        has_next = index < self._starts.shape[0]
        out[has_next] = self._starts[index[has_next]]
        return out


class HysteresisLane(PolicyLane):
    """Per-row threshold switching with a vectorized mode register."""

    def __init__(self, n_runs: int, theta_low, theta_high, coordinate: int,
                 low_threshold: float, high_threshold: float,
                 start_high: bool):
        super().__init__(n_runs)
        self._theta_low = np.atleast_1d(np.asarray(theta_low, dtype=float))
        self._theta_high = np.atleast_1d(np.asarray(theta_high, dtype=float))
        self._coordinate = int(coordinate)
        self._low = float(low_threshold)
        self._high = float(high_threshold)
        self._start_high = bool(start_high)
        self._mode = np.full(self.n_runs, self._start_high)

    def reset(self, rng, x0):
        self._mode[:] = self._start_high

    def theta(self, rows, t, x):
        value = x[:, self._coordinate]
        mode = self._mode[rows]
        # Same two-branch update as the scalar policy: high rows falling
        # below the low threshold drop out of high mode, low rows rising
        # above the high threshold re-enter it.
        new_mode = mode.copy()
        new_mode[mode & (value < self._low)] = False
        new_mode[~mode & (value > self._high)] = True
        self._mode[rows] = new_mode
        return np.where(
            new_mode[:, None], self._theta_high, self._theta_low
        )


class RandomJumpLane(PolicyLane):
    """Per-row current parameter with batched uniform re-draws."""

    def __init__(self, n_runs: int, theta_set, rate_fn: Callable, initial):
        super().__init__(n_runs)
        self._theta_set = theta_set
        self._rate_fn = rate_fn
        self._initial = np.atleast_1d(np.asarray(initial, dtype=float))
        self._current = np.tile(self._initial, (self.n_runs, 1))
        self._rate_fn_vectorizes = None  # unknown until the first call

    def reset(self, rng, x0):
        self._current = np.tile(self._initial, (self.n_runs, 1))

    def theta(self, rows, t, x):
        return self._current[rows]

    def _scalar_jump_rates(self, t, x, n):
        values = np.array(
            [float(self._rate_fn(t[i], x[i])) for i in range(n)]
        )
        return np.maximum(values, 0.0)

    def jump_rate(self, rows, t, x):
        # Same coordinate-major convention and lazy validation as
        # PopulationModel.transition_rates_batch, via the shared
        # validated_batch_eval heuristic (only a batch of distinct
        # rows can expose row-pooling mistakes).
        n = rows.shape[0]
        can_validate = n >= 2 and (
            bool(np.any(x != x[0])) or bool(np.any(t != t[0]))
        )
        values, status = validated_batch_eval(
            lambda: self._rate_fn(t, x.T),
            lambda: self._scalar_jump_rates(t, x, n),
            n,
            self._rate_fn_vectorizes,
            can_validate,
        )
        if status is not None:
            self._rate_fn_vectorizes = status
        return values

    def on_jump(self, rows, t, x, rng):
        self._current[rows] = self._theta_set.sample(rng, rows.shape[0])


class GenericLane(PolicyLane):
    """Fallback: one scalar policy instance per row, looped."""

    def __init__(self, policies: Sequence[ControlPolicy]):
        super().__init__(len(policies))
        self._policies = list(policies)

    def reset(self, rng, x0):
        for policy in self._policies:
            policy.reset(rng, x0)

    def theta(self, rows, t, x):
        return np.stack([
            np.atleast_1d(self._policies[g].theta(float(t[i]), x[i]))
            for i, g in enumerate(rows)
        ])

    def jump_rate(self, rows, t, x):
        return np.array([
            max(float(self._policies[g].jump_rate(float(t[i]), x[i])), 0.0)
            for i, g in enumerate(rows)
        ])

    def on_jump(self, rows, t, x, rng):
        for i, g in enumerate(rows):
            self._policies[g].on_jump(float(t[i]), x[i], rng)

    def next_switch_after(self, rows, t):
        return np.array([
            float(self._policies[g].next_switch_after(float(t[i])))
            for i, g in enumerate(rows)
        ])


def _constant_lane(policy: ConstantPolicy, n_runs: int) -> PolicyLane:
    return ConstantLane(n_runs, policy.theta(0.0, None))


def _piecewise_lane(policy: PiecewiseConstantPolicy,
                    n_runs: int) -> PolicyLane:
    return PiecewiseConstantLane(n_runs, policy._starts, policy._thetas)


def _hysteresis_lane(policy: HysteresisPolicy, n_runs: int) -> PolicyLane:
    return HysteresisLane(
        n_runs,
        policy._theta_low,
        policy._theta_high,
        policy._coordinate,
        policy._low_threshold,
        policy._high_threshold,
        policy._start_high,
    )


def _random_jump_lane(policy: RandomJumpPolicy, n_runs: int) -> PolicyLane:
    return RandomJumpLane(
        n_runs, policy._theta_set, policy._rate_fn, policy._initial
    )


#: Exact-type dispatch table; subclasses intentionally miss and use the
#: GenericLane so overridden behaviour is never silently dropped.
_VECTOR_LANES = {
    ConstantPolicy: _constant_lane,
    PiecewiseConstantPolicy: _piecewise_lane,
    HysteresisPolicy: _hysteresis_lane,
    RandomJumpPolicy: _random_jump_lane,
}


def build_lane(policy_factory: Callable[[], ControlPolicy],
               n_runs: int) -> PolicyLane:
    """Build the fastest available lane for ``n_runs`` fresh policies.

    ``policy_factory`` is the same zero-argument factory
    :func:`~repro.simulation.batch_simulate` takes.  One prototype
    policy is instantiated to select the lane; the generic fallback
    instantiates one policy per row.
    """
    prototype = policy_factory()
    if not isinstance(prototype, ControlPolicy):
        raise TypeError(
            f"policy_factory must produce ControlPolicy instances, "
            f"got {type(prototype).__name__}"
        )
    maker = _VECTOR_LANES.get(type(prototype))
    if maker is not None:
        return maker(prototype, n_runs)
    policies = [prototype] + [policy_factory() for _ in range(n_runs - 1)]
    return GenericLane(policies)
