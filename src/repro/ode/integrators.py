"""Fixed-grid RK4 and adaptive ODE integrators, plus fixed-point location."""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np
from scipy.integrate import solve_ivp
from scipy.optimize import fsolve

__all__ = [
    "Trajectory",
    "rk4_step",
    "rk4_integrate",
    "rk4_integrate_controlled",
    "solve_ode",
    "find_fixed_point",
]

#: Residual level below which an unconverged settle is still *usable* —
#: the iterate is near an equilibrium but the requested tolerance was
#: missed.  Above it the settle is considered to have found nothing.
_SETTLE_ACCEPT_RESIDUAL = 1e-5


@dataclass
class Trajectory:
    """A time-indexed solution of an ODE (or one solution of an inclusion).

    Attributes
    ----------
    times:
        Monotone 1-D array of time points, shape ``(n,)``.
    states:
        State at each time point, shape ``(n, d)``.
    """

    times: np.ndarray
    states: np.ndarray

    def __post_init__(self):
        self.times = np.asarray(self.times, dtype=float)
        self.states = np.asarray(self.states, dtype=float)
        if self.states.ndim == 1:
            self.states = self.states[:, None]
        if self.times.ndim != 1:
            raise ValueError("times must be 1-D")
        if self.states.shape[0] != self.times.shape[0]:
            raise ValueError(
                f"states has {self.states.shape[0]} rows for "
                f"{self.times.shape[0]} time points"
            )

    @property
    def dim(self) -> int:
        """State dimension."""
        return self.states.shape[1]

    @property
    def t0(self) -> float:
        return float(self.times[0])

    @property
    def t_final(self) -> float:
        return float(self.times[-1])

    @property
    def final_state(self) -> np.ndarray:
        return self.states[-1].copy()

    def __len__(self) -> int:
        return self.times.shape[0]

    def __call__(self, t) -> np.ndarray:
        """Linear interpolation of the state at time(s) ``t``.

        Works for decreasing-time trajectories too (backward costate
        solves produce them): the interpolation runs on the reversed
        view, so queries are answered in the trajectory's own time
        coordinates.  All dimensions are gathered in one vectorized
        ``searchsorted`` pass (out-of-range queries clamp to the
        endpoint states, matching ``np.interp``).
        """
        t_arr = np.atleast_1d(np.asarray(t, dtype=float))
        times, states = self.times, self.states
        if times.shape[0] > 1 and times[0] > times[-1]:
            # np.interp-style gathers need increasing abscissae; a
            # backward solve's trajectory is interpolated on its
            # reversed view (same polyline, same values).
            times = times[::-1]
            states = states[::-1]
        if times.shape[0] == 1:
            out = np.broadcast_to(states[0], (t_arr.shape[0], self.dim)).copy()
        else:
            t_clip = np.clip(t_arr, times[0], times[-1])
            idx = np.clip(np.searchsorted(times, t_clip, side="right") - 1,
                          0, times.shape[0] - 2)
            t0 = times[idx]
            span = times[idx + 1] - t0
            # Duplicate consecutive times (a zero-span lane's [t0, t0]
            # grid) must not divide to NaN; np.interp resolves such ties
            # to the right-hand sample, so weight 1 matches it.
            w = np.ones_like(span)
            np.divide(t_clip - t0, span, out=w, where=span != 0.0)
            out = states[idx] + w[:, None] * (states[idx + 1] - states[idx])
        if np.isscalar(t) or np.asarray(t).ndim == 0:
            return out[0]
        return out

    def component(self, index: int) -> np.ndarray:
        """The time series of one coordinate, shape ``(n,)``."""
        return self.states[:, index].copy()

    def restricted(self, t_start: float, t_end: float) -> "Trajectory":
        """Sub-trajectory with ``t_start <= t <= t_end`` (inclusive)."""
        mask = (self.times >= t_start) & (self.times <= t_end)
        if not mask.any():
            raise ValueError("no samples in the requested window")
        return Trajectory(self.times[mask], self.states[mask])

    def reversed_time(self) -> "Trajectory":
        """Reverse the trajectory so times increase (for backward solves)."""
        return Trajectory(self.times[::-1].copy(), self.states[::-1].copy())


def rk4_step(f: Callable, t: float, x: np.ndarray, dt: float) -> np.ndarray:
    """One classical Runge–Kutta 4 step for ``x' = f(t, x)``."""
    k1 = f(t, x)
    k2 = f(t + 0.5 * dt, x + 0.5 * dt * k1)
    k3 = f(t + 0.5 * dt, x + 0.5 * dt * k2)
    k4 = f(t + dt, x + dt * k3)
    return x + (dt / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)


def _rk4_step_controlled(f: Callable, t: float, x: np.ndarray, dt: float,
                         u: np.ndarray) -> np.ndarray:
    """One RK4 step of ``x' = f(t, x, u)`` with the control held constant.

    The control is threaded straight into the stage evaluations instead
    of freezing it in a per-interval closure, so the grid loop in
    :func:`rk4_integrate_controlled` pays no per-step lambda
    construction.  The stage arithmetic is identical to
    :func:`rk4_step` applied to ``lambda t, y: f(t, y, u)``.
    """
    k1 = f(t, x, u)
    k2 = f(t + 0.5 * dt, x + 0.5 * dt * k1, u)
    k3 = f(t + 0.5 * dt, x + 0.5 * dt * k2, u)
    k4 = f(t + dt, x + dt * k3, u)
    return x + (dt / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)


def _validate_grid(t_grid: np.ndarray) -> np.ndarray:
    t_grid = np.asarray(t_grid, dtype=float)
    if t_grid.ndim != 1 or t_grid.shape[0] < 2:
        raise ValueError("t_grid must be a 1-D array with at least 2 points")
    steps = np.diff(t_grid)
    if not (np.all(steps > 0) or np.all(steps < 0)):
        raise ValueError("t_grid must be strictly monotone")
    return t_grid


def rk4_integrate(f: Callable, x0, t_grid) -> Trajectory:
    """Integrate ``x' = f(t, x)`` on a fixed grid with RK4.

    The grid may be decreasing, in which case the integration runs
    backward in time — this is how the Pontryagin costate equation is
    solved.
    """
    t_grid = _validate_grid(t_grid)
    x = np.asarray(x0, dtype=float).copy()
    states = np.empty((t_grid.shape[0], x.shape[0]))
    states[0] = x
    for i in range(t_grid.shape[0] - 1):
        dt = t_grid[i + 1] - t_grid[i]
        x = rk4_step(f, t_grid[i], x, dt)
        states[i + 1] = x
    return Trajectory(t_grid.copy(), states)


def rk4_integrate_controlled(
    f: Callable, x0, t_grid, controls
) -> Trajectory:
    """Integrate ``x' = f(t, x, u)`` with a piecewise-constant control.

    ``controls`` holds one control vector per grid *interval*
    (shape ``(len(t_grid) - 1, m)`` or ``(len(t_grid) - 1,)``); the control
    is held constant across each RK4 step, which matches the bang-bang
    controls produced by the Pontryagin maximiser.
    """
    t_grid = _validate_grid(t_grid)
    ctrl = np.asarray(controls, dtype=float)
    if ctrl.ndim == 1:
        ctrl = ctrl[:, None]
    if ctrl.shape[0] != t_grid.shape[0] - 1:
        raise ValueError(
            f"need {t_grid.shape[0] - 1} control intervals, got {ctrl.shape[0]}"
        )
    x = np.asarray(x0, dtype=float).copy()
    states = np.empty((t_grid.shape[0], x.shape[0]))
    states[0] = x
    for i in range(t_grid.shape[0] - 1):
        dt = t_grid[i + 1] - t_grid[i]
        x = _rk4_step_controlled(f, t_grid[i], x, dt, ctrl[i])
        states[i + 1] = x
    return Trajectory(t_grid.copy(), states)


def solve_ode(
    f: Callable,
    x0,
    t_span,
    t_eval=None,
    rtol: float = 1e-8,
    atol: float = 1e-10,
    method: str = "RK45",
    max_step: float = np.inf,
) -> Trajectory:
    """Adaptive integration of ``x' = f(t, x)`` via scipy ``solve_ivp``.

    Returns a :class:`Trajectory` sampled at ``t_eval`` when given,
    otherwise at the solver's own accepted steps.
    """
    x0 = np.asarray(x0, dtype=float)
    sol = solve_ivp(
        f,
        tuple(t_span),
        x0,
        t_eval=None if t_eval is None else np.asarray(t_eval, dtype=float),
        rtol=rtol,
        atol=atol,
        method=method,
        max_step=max_step,
    )
    if not sol.success:
        raise RuntimeError(f"ODE integration failed: {sol.message}")
    return Trajectory(sol.t, sol.y.T)


def find_fixed_point(
    f: Callable,
    x0,
    settle_time: float = 200.0,
    tol: float = 1e-10,
    max_rounds: int = 6,
    polish: bool = True,
    jac: Optional[Callable] = None,
) -> np.ndarray:
    """Locate a stable equilibrium of ``x' = f(x)`` reachable from ``x0``.

    Integrates for ``settle_time`` repeatedly until ``|f(x)|`` is below
    ``tol`` (or ``max_rounds`` is exhausted), then optionally polishes the
    result with a Newton solve of ``f(x) = 0``.  The drift ``f`` here takes
    only the state (time-autonomous), matching the uncertain mean-field
    ODEs ``x' = f(x, theta)`` for a frozen ``theta``.

    Raises ``RuntimeError`` when no equilibrium is approached, which is the
    signal used by callers to fall back to limit-cycle handling.  A settle
    that exhausts its rounds with a residual *above* ``tol`` but below the
    acceptance level ``1e-5`` is returned (it is near an equilibrium) with
    a ``RuntimeWarning`` reporting the achieved residual, so callers are
    never handed a silently-degraded fixed point.
    """
    x = np.asarray(x0, dtype=float).copy()
    wrapped = lambda t, y: f(y)  # noqa: E731 - tiny adapter
    for _ in range(max_rounds):
        traj = solve_ode(wrapped, x, (0.0, settle_time), rtol=1e-10, atol=1e-12)
        x = traj.final_state
        residual = float(np.linalg.norm(f(x)))
        if residual < tol:
            break
    else:
        # Recomputed here so max_rounds=0 (skip straight to the Newton
        # polish) judges the *actual* residual at x0, not a sentinel.
        residual = float(np.linalg.norm(f(x)))
        if residual > _SETTLE_ACCEPT_RESIDUAL:
            raise RuntimeError(
                "no fixed point approached after "
                f"{max_rounds * settle_time:.0f} time units "
                f"(|f| = {residual:.2e}); "
                "the dynamics may have a limit cycle"
            )
        if residual >= tol:
            warnings.warn(
                f"find_fixed_point stopped with residual |f| = "
                f"{residual:.2e} > tol = {tol:.2e} after {max_rounds} "
                "rounds; the returned point is near an equilibrium but "
                "did not reach the requested tolerance",
                RuntimeWarning,
                stacklevel=2,
            )
    if polish:
        solution, info, ier, _ = fsolve(f, x, fprime=jac, full_output=True)
        if ier == 1 and np.linalg.norm(solution - x) < 0.1 * (1.0 + np.linalg.norm(x)):
            x = solution
    return x
