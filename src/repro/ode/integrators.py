"""Fixed-grid RK4 and adaptive ODE integrators, plus fixed-point location."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np
from scipy.integrate import solve_ivp
from scipy.optimize import fsolve

__all__ = [
    "Trajectory",
    "rk4_step",
    "rk4_integrate",
    "rk4_integrate_controlled",
    "solve_ode",
    "find_fixed_point",
]


@dataclass
class Trajectory:
    """A time-indexed solution of an ODE (or one solution of an inclusion).

    Attributes
    ----------
    times:
        Monotone 1-D array of time points, shape ``(n,)``.
    states:
        State at each time point, shape ``(n, d)``.
    """

    times: np.ndarray
    states: np.ndarray

    def __post_init__(self):
        self.times = np.asarray(self.times, dtype=float)
        self.states = np.asarray(self.states, dtype=float)
        if self.states.ndim == 1:
            self.states = self.states[:, None]
        if self.times.ndim != 1:
            raise ValueError("times must be 1-D")
        if self.states.shape[0] != self.times.shape[0]:
            raise ValueError(
                f"states has {self.states.shape[0]} rows for "
                f"{self.times.shape[0]} time points"
            )

    @property
    def dim(self) -> int:
        """State dimension."""
        return self.states.shape[1]

    @property
    def t0(self) -> float:
        return float(self.times[0])

    @property
    def t_final(self) -> float:
        return float(self.times[-1])

    @property
    def final_state(self) -> np.ndarray:
        return self.states[-1].copy()

    def __len__(self) -> int:
        return self.times.shape[0]

    def __call__(self, t) -> np.ndarray:
        """Linear interpolation of the state at time(s) ``t``."""
        t_arr = np.atleast_1d(np.asarray(t, dtype=float))
        out = np.empty((t_arr.shape[0], self.dim))
        for j in range(self.dim):
            out[:, j] = np.interp(t_arr, self.times, self.states[:, j])
        if np.isscalar(t) or np.asarray(t).ndim == 0:
            return out[0]
        return out

    def component(self, index: int) -> np.ndarray:
        """The time series of one coordinate, shape ``(n,)``."""
        return self.states[:, index].copy()

    def restricted(self, t_start: float, t_end: float) -> "Trajectory":
        """Sub-trajectory with ``t_start <= t <= t_end`` (inclusive)."""
        mask = (self.times >= t_start) & (self.times <= t_end)
        if not mask.any():
            raise ValueError("no samples in the requested window")
        return Trajectory(self.times[mask], self.states[mask])

    def reversed_time(self) -> "Trajectory":
        """Reverse the trajectory so times increase (for backward solves)."""
        return Trajectory(self.times[::-1].copy(), self.states[::-1].copy())


def rk4_step(f: Callable, t: float, x: np.ndarray, dt: float) -> np.ndarray:
    """One classical Runge–Kutta 4 step for ``x' = f(t, x)``."""
    k1 = f(t, x)
    k2 = f(t + 0.5 * dt, x + 0.5 * dt * k1)
    k3 = f(t + 0.5 * dt, x + 0.5 * dt * k2)
    k4 = f(t + dt, x + dt * k3)
    return x + (dt / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)


def _validate_grid(t_grid: np.ndarray) -> np.ndarray:
    t_grid = np.asarray(t_grid, dtype=float)
    if t_grid.ndim != 1 or t_grid.shape[0] < 2:
        raise ValueError("t_grid must be a 1-D array with at least 2 points")
    steps = np.diff(t_grid)
    if not (np.all(steps > 0) or np.all(steps < 0)):
        raise ValueError("t_grid must be strictly monotone")
    return t_grid


def rk4_integrate(f: Callable, x0, t_grid) -> Trajectory:
    """Integrate ``x' = f(t, x)`` on a fixed grid with RK4.

    The grid may be decreasing, in which case the integration runs
    backward in time — this is how the Pontryagin costate equation is
    solved.
    """
    t_grid = _validate_grid(t_grid)
    x = np.asarray(x0, dtype=float).copy()
    states = np.empty((t_grid.shape[0], x.shape[0]))
    states[0] = x
    for i in range(t_grid.shape[0] - 1):
        dt = t_grid[i + 1] - t_grid[i]
        x = rk4_step(f, t_grid[i], x, dt)
        states[i + 1] = x
    return Trajectory(t_grid.copy(), states)


def rk4_integrate_controlled(
    f: Callable, x0, t_grid, controls
) -> Trajectory:
    """Integrate ``x' = f(t, x, u)`` with a piecewise-constant control.

    ``controls`` holds one control vector per grid *interval*
    (shape ``(len(t_grid) - 1, m)`` or ``(len(t_grid) - 1,)``); the control
    is held constant across each RK4 step, which matches the bang-bang
    controls produced by the Pontryagin maximiser.
    """
    t_grid = _validate_grid(t_grid)
    ctrl = np.asarray(controls, dtype=float)
    if ctrl.ndim == 1:
        ctrl = ctrl[:, None]
    if ctrl.shape[0] != t_grid.shape[0] - 1:
        raise ValueError(
            f"need {t_grid.shape[0] - 1} control intervals, got {ctrl.shape[0]}"
        )
    x = np.asarray(x0, dtype=float).copy()
    states = np.empty((t_grid.shape[0], x.shape[0]))
    states[0] = x
    for i in range(t_grid.shape[0] - 1):
        dt = t_grid[i + 1] - t_grid[i]
        u = ctrl[i]
        x = rk4_step(lambda t, y: f(t, y, u), t_grid[i], x, dt)
        states[i + 1] = x
    return Trajectory(t_grid.copy(), states)


def solve_ode(
    f: Callable,
    x0,
    t_span,
    t_eval=None,
    rtol: float = 1e-8,
    atol: float = 1e-10,
    method: str = "RK45",
    max_step: float = np.inf,
) -> Trajectory:
    """Adaptive integration of ``x' = f(t, x)`` via scipy ``solve_ivp``.

    Returns a :class:`Trajectory` sampled at ``t_eval`` when given,
    otherwise at the solver's own accepted steps.
    """
    x0 = np.asarray(x0, dtype=float)
    sol = solve_ivp(
        f,
        tuple(t_span),
        x0,
        t_eval=None if t_eval is None else np.asarray(t_eval, dtype=float),
        rtol=rtol,
        atol=atol,
        method=method,
        max_step=max_step,
    )
    if not sol.success:
        raise RuntimeError(f"ODE integration failed: {sol.message}")
    return Trajectory(sol.t, sol.y.T)


def find_fixed_point(
    f: Callable,
    x0,
    settle_time: float = 200.0,
    tol: float = 1e-10,
    max_rounds: int = 6,
    polish: bool = True,
    jac: Optional[Callable] = None,
) -> np.ndarray:
    """Locate a stable equilibrium of ``x' = f(x)`` reachable from ``x0``.

    Integrates for ``settle_time`` repeatedly until ``|f(x)|`` is below
    ``tol`` (or ``max_rounds`` is exhausted), then optionally polishes the
    result with a Newton solve of ``f(x) = 0``.  The drift ``f`` here takes
    only the state (time-autonomous), matching the uncertain mean-field
    ODEs ``x' = f(x, theta)`` for a frozen ``theta``.

    Raises ``RuntimeError`` when no equilibrium is approached, which is the
    signal used by callers to fall back to limit-cycle handling.
    """
    x = np.asarray(x0, dtype=float).copy()
    wrapped = lambda t, y: f(y)  # noqa: E731 - tiny adapter
    for _ in range(max_rounds):
        traj = solve_ode(wrapped, x, (0.0, settle_time), rtol=1e-10, atol=1e-12)
        x = traj.final_state
        residual = float(np.linalg.norm(f(x)))
        if residual < tol:
            break
    else:
        if float(np.linalg.norm(f(x))) > 1e-5:
            raise RuntimeError(
                "no fixed point approached after "
                f"{max_rounds * settle_time:.0f} time units "
                f"(|f| = {np.linalg.norm(f(x)):.2e}); "
                "the dynamics may have a limit cycle"
            )
    if polish:
        solution, info, ier, _ = fsolve(f, x, fprime=jac, full_output=True)
        if ier == 1 and np.linalg.norm(solution - x) < 0.1 * (1.0 + np.linalg.norm(x)):
            x = solution
    return x
