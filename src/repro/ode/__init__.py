"""ODE integration substrate shared by every continuous-state method.

The mean-field objects of the paper are solved with two integrator
families:

- a fixed-grid classical Runge–Kutta 4 integrator
  (:func:`rk4_integrate`, :func:`rk4_integrate_controlled`), used by the
  Pontryagin forward–backward sweep which needs the state, costate and
  control to live on one shared time grid, and
- an adaptive integrator (:func:`solve_ode`) wrapping
  :func:`scipy.integrate.solve_ivp`, used where accuracy per cost matters
  (uncertain sweeps, fixed-point location, differential hulls).

Both produce :class:`Trajectory` objects with linear-interpolation
evaluation, and :func:`find_fixed_point` locates equilibria by integrating
to stationarity and polishing with a Newton solve.
"""

from repro.ode.integrators import (
    Trajectory,
    find_fixed_point,
    rk4_integrate,
    rk4_integrate_controlled,
    rk4_step,
    solve_ode,
)

__all__ = [
    "Trajectory",
    "rk4_step",
    "rk4_integrate",
    "rk4_integrate_controlled",
    "solve_ode",
    "find_fixed_point",
]
