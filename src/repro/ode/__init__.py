"""ODE integration substrate shared by every continuous-state method.

The mean-field objects of the paper are solved with two integrator
families:

- a fixed-grid classical Runge–Kutta 4 integrator
  (:func:`rk4_integrate`, :func:`rk4_integrate_controlled`), used by the
  Pontryagin forward–backward sweep which needs the state, costate and
  control to live on one shared time grid, and
- an adaptive integrator (:func:`solve_ode`) wrapping
  :func:`scipy.integrate.solve_ivp`, used where accuracy per cost matters
  (uncertain sweeps, fixed-point location, differential hulls).

Both produce :class:`Trajectory` objects with linear-interpolation
evaluation, and :func:`find_fixed_point` locates equilibria by integrating
to stationarity and polishing with a Newton solve.

Each family also has a *batched* form in :mod:`repro.ode.batch` that
advances an ``(n_lanes, d)`` stack of IVPs as one array program:
:func:`rk4_integrate_batch` / :func:`rk4_integrate_controlled_batch`
(lockstep, bit-identical to the scalar loop lane by lane),
:func:`dopri_batch` (adaptive Dormand–Prince 5(4) with per-lane error
control and lane retirement) and :func:`find_fixed_point_batch`.
"""

from repro.ode.batch import (
    FixedPointBatch,
    TrajectoryBatch,
    dopri_batch,
    find_fixed_point_batch,
    pad_grids,
    rk4_integrate_batch,
    rk4_integrate_controlled_batch,
)
from repro.ode.integrators import (
    Trajectory,
    find_fixed_point,
    rk4_integrate,
    rk4_integrate_controlled,
    rk4_step,
    solve_ode,
)

__all__ = [
    "Trajectory",
    "TrajectoryBatch",
    "FixedPointBatch",
    "pad_grids",
    "rk4_step",
    "rk4_integrate",
    "rk4_integrate_controlled",
    "rk4_integrate_batch",
    "rk4_integrate_controlled_batch",
    "dopri_batch",
    "solve_ode",
    "find_fixed_point",
    "find_fixed_point_batch",
]
