"""Batched ODE kernels: lockstep RK4, adaptive Dormand–Prince, fixed points.

Every bound in the paper is produced by integrating small-dimension ODEs
*many* times: one forward/backward RK4 pair per Pontryagin sweep lane,
one adaptive solve per constant ``theta`` of an uncertain envelope, one
settle per parameter of a steady-state scan.  The scalar integrators in
:mod:`repro.ode.integrators` advance one IVP at a time through a Python
loop, so those workloads pay the interpreter once per lane per step.
This module advances an entire *stack* of trajectories as a single array
program:

- :func:`rk4_integrate_batch` / :func:`rk4_integrate_controlled_batch` —
  lockstep fixed-grid RK4 over an ``(n_lanes, d)`` state stack with
  per-lane (optionally padded) grids and per-lane piecewise-constant
  controls.  The per-lane arithmetic is the *same expression* as the
  scalar kernels, so each lane is bit-identical to a scalar
  :func:`~repro.ode.rk4_integrate` run with the matching row field.
- :func:`dopri_batch` — an adaptive Dormand–Prince 5(4) integrator with
  per-lane error norms, PI step-size control, lane retirement at
  per-lane end times and cubic-Hermite dense output.  It replaces ``m``
  scipy ``solve_ivp`` dispatches with one vectorized solver loop.
- :func:`find_fixed_point_batch` — settles a stack of initial points (or
  one point under a stack of parameters) to equilibria at once,
  mirroring the round/polish structure of
  :func:`~repro.ode.find_fixed_point`.

Lane retirement semantics: a lane whose grid (or end time) is exhausted
stops updating — its state is frozen at its own final value while the
remaining lanes keep stepping, so heterogeneous horizons batch into one
call without perturbing each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np
from scipy.optimize import fsolve

from repro import telemetry
from repro.backend import resolve_backend
from repro.ode.integrators import _SETTLE_ACCEPT_RESIDUAL, Trajectory
from repro.resilience import faults

__all__ = [
    "TrajectoryBatch",
    "FixedPointBatch",
    "pad_grids",
    "rk4_integrate_batch",
    "rk4_integrate_controlled_batch",
    "dopri_batch",
    "find_fixed_point_batch",
]


# ----------------------------------------------------------------------
# Containers
# ----------------------------------------------------------------------

@dataclass
class TrajectoryBatch:
    """A stack of time-indexed ODE solutions advanced in lockstep.

    Attributes
    ----------
    times:
        Per-lane time grids, shape ``(n_lanes, n_points)``.  Rows may be
        padded past a lane's own end by repeating its final time.
    states:
        State stacks, shape ``(n_lanes, n_points, d)``.  Padded columns
        hold the lane's frozen final state.
    lane_steps:
        Number of *steps* each lane actually took, shape ``(n_lanes,)``;
        lane ``l`` has ``lane_steps[l] + 1`` valid points.
    stats:
        Optional integrator diagnostics (adaptive runs record function
        evaluations and per-lane accepted/rejected step counts).
    """

    times: np.ndarray
    states: np.ndarray
    lane_steps: np.ndarray
    stats: Optional[dict] = field(default=None, repr=False)

    def __post_init__(self):
        self.times = np.asarray(self.times, dtype=float)
        self.states = np.asarray(self.states, dtype=float)
        self.lane_steps = np.asarray(self.lane_steps, dtype=int)
        if self.times.ndim != 2 or self.states.ndim != 3:
            raise ValueError("times must be (L, n) and states (L, n, d)")
        if self.states.shape[:2] != self.times.shape:
            raise ValueError(
                f"states leading shape {self.states.shape[:2]} must match "
                f"times shape {self.times.shape}"
            )
        if self.lane_steps.shape != (self.times.shape[0],):
            raise ValueError("lane_steps must have one entry per lane")

    @property
    def n_lanes(self) -> int:
        return self.times.shape[0]

    @property
    def dim(self) -> int:
        return self.states.shape[2]

    def __len__(self) -> int:
        return self.n_lanes

    @property
    def final_times(self) -> np.ndarray:
        """Each lane's own end time, shape ``(n_lanes,)``."""
        return self.times[np.arange(self.n_lanes), self.lane_steps]

    @property
    def final_states(self) -> np.ndarray:
        """Each lane's state at its own end time, shape ``(n_lanes, d)``."""
        return self.states[np.arange(self.n_lanes), self.lane_steps].copy()

    def lane(self, index: int) -> Trajectory:
        """One lane as a scalar :class:`Trajectory` (padding trimmed)."""
        stop = int(self.lane_steps[index]) + 1
        return Trajectory(
            self.times[index, :stop].copy(), self.states[index, :stop].copy()
        )


@dataclass
class FixedPointBatch:
    """Equilibria of a stack of settles, with per-lane diagnostics.

    Attributes
    ----------
    points:
        The located equilibria, shape ``(n_lanes, d)``.
    residuals:
        Achieved ``|f(x*)|`` per lane (after polishing).
    converged:
        Whether each lane's residual met the requested tolerance.
    rounds:
        Settle rounds executed (shared; lanes retire as they converge).
    """

    points: np.ndarray
    residuals: np.ndarray
    converged: np.ndarray
    rounds: int

    def __len__(self) -> int:
        return self.points.shape[0]


# ----------------------------------------------------------------------
# Fixed-grid lockstep RK4
# ----------------------------------------------------------------------

def pad_grids(grids: Sequence[np.ndarray]):
    """Stack ragged per-lane grids into a padded ``(L, n_max)`` array.

    Each grid is padded by repeating its final time, which is exactly
    the frozen-lane convention of the batch kernels.  Returns
    ``(t_grid, lane_steps)`` ready for :func:`rk4_integrate_batch`.
    """
    arrays = [np.asarray(g, dtype=float) for g in grids]
    if not arrays:
        raise ValueError("need at least one grid")
    n_max = max(a.shape[0] for a in arrays)
    t_grid = np.empty((len(arrays), n_max))
    lane_steps = np.empty(len(arrays), dtype=int)
    for l, a in enumerate(arrays):
        if a.ndim != 1 or a.shape[0] < 2:
            raise ValueError("each grid must be 1-D with at least 2 points")
        t_grid[l, : a.shape[0]] = a
        t_grid[l, a.shape[0]:] = a[-1]
        lane_steps[l] = a.shape[0] - 1
    return t_grid, lane_steps


def _prepare_batch_grid(x0, t_grid, lane_steps):
    """Normalise ``(x0, t_grid, lane_steps)`` for the lockstep kernels."""
    x0 = np.asarray(x0, dtype=float)
    if x0.ndim == 1:
        x0 = x0[None, :]
    if x0.ndim != 2:
        raise ValueError("x0 must be an (n_lanes, d) stack")
    t_grid = np.asarray(t_grid, dtype=float)
    shared = t_grid.ndim == 1
    if shared:
        if t_grid.shape[0] < 2:
            raise ValueError("t_grid must have at least 2 points")
        n_points = t_grid.shape[0]
    else:
        if t_grid.ndim != 2 or t_grid.shape[0] != x0.shape[0]:
            raise ValueError(
                "per-lane t_grid must be (n_lanes, n_points) with one row "
                "per lane"
            )
        n_points = t_grid.shape[1]
        if n_points < 2:
            raise ValueError("t_grid must have at least 2 points")
    if lane_steps is None:
        lane_steps = np.full(x0.shape[0], n_points - 1, dtype=int)
    else:
        lane_steps = np.asarray(lane_steps, dtype=int)
        if lane_steps.shape != (x0.shape[0],):
            raise ValueError("lane_steps must have one entry per lane")
        if np.any(lane_steps < 1) or np.any(lane_steps > n_points - 1):
            raise ValueError(
                f"lane_steps must lie in [1, {n_points - 1}]"
            )
    # Validate per-lane monotonicity over the live region, one
    # vectorized pass (these kernels sit in iteration loops, so a
    # per-lane Python loop here would tax every sweep).
    rows = t_grid[None, :] if shared else t_grid
    live = (np.arange(n_points - 1)[None, :]
            < (lane_steps.max() if shared else lane_steps)[..., None])
    diffs = np.diff(rows, axis=1)
    ascending = np.all((diffs > 0) | ~live, axis=1)
    descending = np.all((diffs < 0) | ~live, axis=1)
    if not np.all(ascending | descending):
        raise ValueError("each lane's grid must be strictly monotone")
    return x0, t_grid, shared, lane_steps, n_points


def _stage_state(x, c, k):
    """One RK stage state ``x + c * k`` (``c`` a scalar or per-lane column).

    On the numpy backend this *is* the historical inline expression
    (``x + 0.5 * dt * k1`` parses as ``x + (0.5 * dt) * k1``), so
    routing stages through the backend seam stays bit-identical.
    """
    return x + c * k


def _rk4_combine(x, c, k1, k2, k3, k4):
    """The RK4 update ``x + c * (k1 + 2 k2 + 2 k3 + k4)``, ``c = dt/6``."""
    return x + c * (k1 + 2.0 * k2 + 2.0 * k3 + k4)


def _rk4_integrate_batch_impl(f: Callable, x0, t_grid,
                              lane_steps=None, backend=None) -> TrajectoryBatch:
    """Lockstep fixed-grid RK4 over a stack of IVPs.

    Parameters
    ----------
    f:
        Batched field ``f(t, X) -> (n_lanes, d)``.  With a shared grid
        ``t`` is a scalar; with per-lane grids it is an ``(n_lanes,)``
        vector of per-lane stage times.
    x0:
        Initial state stack ``(n_lanes, d)``.
    t_grid:
        Shared grid ``(n,)`` or per-lane grids ``(n_lanes, n)`` (padded
        rows repeat the lane's final time; see :func:`pad_grids`).
        Grids may be decreasing (backward costate solves).
    lane_steps:
        Optional per-lane live step counts; lanes freeze at their own
        final state once exhausted.

    Each lane's update is the exact :func:`~repro.ode.rk4_step`
    expression, so lane ``l`` reproduces the scalar integrator run on
    row ``l`` bit for bit.
    """
    x0, t_grid, shared, lane_steps, n_points = _prepare_batch_grid(
        x0, t_grid, lane_steps
    )
    be = resolve_backend(backend)
    stage = be.compile_kernel(_stage_state, key="ode.stage_state")
    combine = be.compile_kernel(_rk4_combine, key="ode.rk4_combine")
    L, d = x0.shape
    x = x0.copy()
    states = np.empty((L, n_points, d))
    states[:, 0] = x
    all_live = bool(np.all(lane_steps == n_points - 1))
    for i in range(n_points - 1):
        if shared:
            t = t_grid[i]
            dt = t_grid[i + 1] - t_grid[i]
            k1 = f(t, x)
            k2 = f(t + 0.5 * dt, stage(x, 0.5 * dt, k1))
            k3 = f(t + 0.5 * dt, stage(x, 0.5 * dt, k2))
            k4 = f(t + dt, stage(x, dt, k3))
            stepped = combine(x, dt / 6.0, k1, k2, k3, k4)
        else:
            t = t_grid[:, i]
            dt = t_grid[:, i + 1] - t
            dtc = dt[:, None]
            k1 = f(t, x)
            k2 = f(t + 0.5 * dt, stage(x, 0.5 * dtc, k1))
            k3 = f(t + 0.5 * dt, stage(x, 0.5 * dtc, k2))
            k4 = f(t + dt, stage(x, dtc, k3))
            stepped = combine(x, dtc / 6.0, k1, k2, k3, k4)
        if all_live:
            x = stepped
        else:
            live = lane_steps > i
            x = np.where(live[:, None], stepped, x)
        states[:, i + 1] = x
    times = np.broadcast_to(t_grid, (L, n_points)).copy() if shared else t_grid.copy()
    return TrajectoryBatch(times=times, states=states, lane_steps=lane_steps)


def _rk4_integrate_controlled_batch_impl(f: Callable, x0, t_grid, controls,
                                         lane_steps=None,
                                         backend=None) -> TrajectoryBatch:
    """Lockstep controlled RK4: ``x' = f(t, x, u)`` per lane.

    ``controls`` holds one control row per lane per grid *interval*,
    shape ``(n_lanes, n_points - 1, p)``; the control is held constant
    across each step, matching
    :func:`~repro.ode.rk4_integrate_controlled` lane by lane (bit
    identical, same stage arithmetic).  ``f(t, X, U)`` receives the
    per-lane state and control stacks.
    """
    x0, t_grid, shared, lane_steps, n_points = _prepare_batch_grid(
        x0, t_grid, lane_steps
    )
    L, d = x0.shape
    ctrl = np.asarray(controls, dtype=float)
    if ctrl.ndim == 2:
        ctrl = ctrl[:, :, None]
    if ctrl.shape[:2] != (L, n_points - 1):
        raise ValueError(
            f"controls must be (n_lanes, {n_points - 1}, p); "
            f"got {ctrl.shape}"
        )
    be = resolve_backend(backend)
    stage = be.compile_kernel(_stage_state, key="ode.stage_state")
    combine = be.compile_kernel(_rk4_combine, key="ode.rk4_combine")
    x = x0.copy()
    states = np.empty((L, n_points, d))
    states[:, 0] = x
    all_live = bool(np.all(lane_steps == n_points - 1))
    for i in range(n_points - 1):
        u = ctrl[:, i]
        if shared:
            t = t_grid[i]
            dt = t_grid[i + 1] - t_grid[i]
            k1 = f(t, x, u)
            k2 = f(t + 0.5 * dt, stage(x, 0.5 * dt, k1), u)
            k3 = f(t + 0.5 * dt, stage(x, 0.5 * dt, k2), u)
            k4 = f(t + dt, stage(x, dt, k3), u)
            stepped = combine(x, dt / 6.0, k1, k2, k3, k4)
        else:
            t = t_grid[:, i]
            dt = t_grid[:, i + 1] - t
            dtc = dt[:, None]
            k1 = f(t, x, u)
            k2 = f(t + 0.5 * dt, stage(x, 0.5 * dtc, k1), u)
            k3 = f(t + 0.5 * dt, stage(x, 0.5 * dtc, k2), u)
            k4 = f(t + dt, stage(x, dtc, k3), u)
            stepped = combine(x, dtc / 6.0, k1, k2, k3, k4)
        if all_live:
            x = stepped
        else:
            live = lane_steps > i
            x = np.where(live[:, None], stepped, x)
        states[:, i + 1] = x
    times = np.broadcast_to(t_grid, (L, n_points)).copy() if shared else t_grid.copy()
    return TrajectoryBatch(times=times, states=states, lane_steps=lane_steps)


def _record_lockstep(kind: str, batch: TrajectoryBatch) -> TrajectoryBatch:
    """Promote a lockstep kernel's work onto the telemetry registry."""
    if telemetry.enabled():
        n_points = batch.times.shape[1]
        telemetry.inc(f"ode.{kind}.lanes", batch.n_lanes)
        telemetry.inc(f"ode.{kind}.steps", int(batch.lane_steps.sum()))
        # Lockstep kernels evaluate all four stages on the full stack
        # every grid interval, retired lanes included.
        telemetry.inc(f"ode.{kind}.rhs_evals", 4 * (n_points - 1))
        retired = int(np.count_nonzero(batch.lane_steps < n_points - 1))
        if retired:
            telemetry.inc(f"ode.{kind}.lane_retirements", retired)
    return batch


def rk4_integrate_batch(f: Callable, x0, t_grid,
                        lane_steps=None, backend=None) -> TrajectoryBatch:
    with telemetry.span("ode.rk4_batch"):
        batch = _rk4_integrate_batch_impl(f, x0, t_grid, lane_steps, backend)
    return _record_lockstep("rk4", batch)


rk4_integrate_batch.__doc__ = _rk4_integrate_batch_impl.__doc__


def rk4_integrate_controlled_batch(f: Callable, x0, t_grid, controls,
                                   lane_steps=None,
                                   backend=None) -> TrajectoryBatch:
    with telemetry.span("ode.rk4_controlled_batch"):
        batch = _rk4_integrate_controlled_batch_impl(
            f, x0, t_grid, controls, lane_steps, backend
        )
    return _record_lockstep("rk4", batch)


rk4_integrate_controlled_batch.__doc__ = \
    _rk4_integrate_controlled_batch_impl.__doc__


# ----------------------------------------------------------------------
# Adaptive Dormand–Prince 5(4) with lane-parallel step control
# ----------------------------------------------------------------------

#: Dormand–Prince 5(4) tableau (identical to scipy's RK45).
_DP_C = np.array([0.0, 1 / 5, 3 / 10, 4 / 5, 8 / 9, 1.0])
_DP_A = [
    np.array([1 / 5]),
    np.array([3 / 40, 9 / 40]),
    np.array([44 / 45, -56 / 15, 32 / 9]),
    np.array([19372 / 6561, -25360 / 2187, 64448 / 6561, -212 / 729]),
    np.array([9017 / 3168, -355 / 33, 46732 / 5247, 49 / 176, -5103 / 18656]),
]
_DP_B = np.array([35 / 384, 0.0, 500 / 1113, 125 / 192, -2187 / 6784, 11 / 84])
#: Fifth-minus-fourth-order weights (the embedded error estimate); the
#: seventh entry weights the FSAL stage.
_DP_E = np.array([71 / 57600, 0.0, -71 / 16695, 71 / 1920,
                  -17253 / 339200, 22 / 525, -1 / 40])

#: PI step controller exponents (Hairer–Nørsett–Wanner II.4 for DOPRI5).
_PI_BETA = 0.04
_PI_ALPHA = 0.2 - 0.75 * _PI_BETA


def _rms_norm(v: np.ndarray) -> np.ndarray:
    """Row-wise RMS norm, shape ``(n,)`` for ``(n, d)`` input."""
    return np.sqrt(np.mean(v * v, axis=1))


def _dp_stage_sum(coeffs: np.ndarray, stages: np.ndarray) -> np.ndarray:
    """Tableau-weighted stage sum ``sum_j coeffs[j] * stages[j]``.

    The backend seam's handle on the Dormand–Prince inner products;
    accelerated backends substitute a loop form (``np.tensordot`` is
    numpy-only idiom), the numpy path is this exact expression.
    """
    return np.tensordot(coeffs, stages, axes=(0, 0))


def _subset_args(lane_args, idx):
    """Row-subset per-lane auxiliary data (array or tuple of arrays)."""
    if lane_args is None:
        return None
    if isinstance(lane_args, tuple):
        return tuple(a[idx] for a in lane_args)
    return lane_args[idx]


def _initial_steps(f, t0, y0, f0, direction, rtol, atol, h_abs_max):
    """Vectorized analogue of scipy's ``_select_initial_step`` per lane."""
    scale = atol + rtol * np.abs(y0)
    d0 = _rms_norm(y0 / scale)
    d1 = _rms_norm(f0 / scale)
    h0 = np.where((d0 < 1e-5) | (d1 < 1e-5), 1e-6, 0.01 * d0 / np.maximum(d1, 1e-300))
    y1 = y0 + (h0 * direction)[:, None] * f0
    f1 = f(t0 + h0 * direction, y1)
    d2 = _rms_norm((f1 - f0) / scale) / h0
    dmax = np.maximum(d1, d2)
    h1 = np.where(
        dmax <= 1e-15,
        np.maximum(1e-6, h0 * 1e-3),
        (0.01 / np.maximum(dmax, 1e-300)) ** 0.2,
    )
    return np.minimum(np.minimum(100.0 * h0, h1), h_abs_max)


def _hermite_fill(out, lane_ids, i0, i1, s_eval, s_old, s_new, y_old, y_new,
                  f_old, f_new, dt):
    """Cubic-Hermite dense output over one batch of accepted steps.

    Fills ``out[lane, j]`` for every evaluation index ``j`` with
    ``s_old < s_eval[j] <= s_new`` of each accepted lane, all lanes and
    points in one flat vectorized pass.
    """
    counts = i1 - i0
    total = int(counts.sum())
    if total == 0:
        return
    rep = np.repeat(np.arange(lane_ids.shape[0]), counts)
    pos = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    idx = i0[rep] + pos
    theta = (s_eval[idx] - s_old[rep]) / (s_new - s_old)[rep]
    th = theta[:, None]
    y0r, y1r = y_old[rep], y_new[rep]
    dtr = dt[rep][:, None]
    diff = y1r - y0r
    out[lane_ids[rep], idx] = (
        (1.0 - th) * y0r
        + th * y1r
        + th * (th - 1.0) * (
            (1.0 - 2.0 * th) * diff
            + (th - 1.0) * dtr * f_old[rep]
            + th * dtr * f_new[rep]
        )
    )


def _dopri_batch_impl(
    f: Callable,
    x0,
    t_span,
    t_eval=None,
    rtol: float = 1e-8,
    atol: float = 1e-10,
    max_step: float = np.inf,
    max_steps: int = 1_000_000,
    safety: float = 0.9,
    min_factor: float = 0.2,
    max_factor: float = 10.0,
    lane_args=None,
    backend=None,
    retire_failed_lanes: bool = False,
) -> TrajectoryBatch:
    """Adaptive Dormand–Prince 5(4) integration of a stack of IVPs.

    Parameters
    ----------
    f:
        Batched field ``f(t, X) -> (n_active, d)`` where ``t`` is an
        ``(n_active,)`` vector of per-lane times (lanes run at their own
        adaptive step sizes) and ``X`` the matching state stack.  Lanes
        *retire* as they finish, so ``f`` sees shrinking sub-stacks —
        per-lane constants (a frozen ``theta`` per lane) belong in
        ``lane_args``, not in a closure over the full stack.
    x0:
        Initial state stack ``(n_lanes, d)`` (a single state integrates
        as one lane).
    lane_args:
        Optional per-lane auxiliary data — an array with leading
        dimension ``n_lanes``, or a tuple of such arrays.  The matching
        row subset for the currently-active lanes is passed as a third
        argument: ``f(t, X, A)``.
    t_span:
        ``(t0, t1)`` with a shared ``t0``; ``t1`` may be an
        ``(n_lanes,)`` array of per-lane end times (all on the same side
        of ``t0``).  Lanes *retire* — stop consuming steps and function
        evaluations — as they reach their own end time.
    t_eval:
        Optional shared output grid (monotone, between ``t0`` and the
        farthest end time).  Samples are produced by cubic-Hermite dense
        output from the accepted steps, so accuracy does not depend on
        where the solver happened to step.  Evaluation points beyond a
        lane's own end time hold that lane's final state.  When omitted,
        the result records only the initial and final states.
    rtol, atol:
        Per-lane error control: a step is accepted when the RMS of the
        scaled 5(4) error estimate is below one.  Step sizes follow a
        PI controller (Hairer's DOPRI5 coefficients), clamped to
        ``[min_factor, max_factor]`` growth with ``safety``.
    max_step, max_steps:
        Step magnitude cap and a global iteration guard.
    retire_failed_lanes:
        Opt-in graceful degradation: a lane whose step size collapses
        below round-off or whose error estimate goes non-finite (NaN /
        overflowing state) is *retired* with a diagnostic record in
        ``stats["lane_failures"]`` — frozen at its last accepted state
        — instead of aborting the whole batch with ``RuntimeError``.
        Surviving lanes keep their own step sequences (retirement works
        exactly like reaching an end time; only the usual sub-ULP
        BLAS reduction-order sensitivity to the active-stack shape
        remains), and with no failures the flag is bit-identical to the
        default path.  The ``max_steps`` guard still raises regardless.

    Returns
    -------
    A :class:`TrajectoryBatch`.  With ``t_eval`` the batch records the
    *sampled* trajectory — its ``final_times`` / ``final_states`` refer
    to the last sample, which precedes a lane's end time when ``t_eval``
    stops short of it; the integration endpoints are always available
    as ``stats["final_states"]``.  ``stats`` also records ``nfev`` plus
    per-lane accepted/rejected step counts, and (with
    ``retire_failed_lanes``) the ``lane_failures`` diagnostics — one
    ``{"lane", "reason", "t", "accepted", "rejected"}`` dict per
    retired lane.
    """
    be = resolve_backend(backend)
    stage_sum = be.compile_kernel(_dp_stage_sum, key="ode.dp_stage_sum")
    rms = be.compile_kernel(_rms_norm, key="ode.rms_norm")
    x0 = np.asarray(x0, dtype=float)
    if x0.ndim == 1:
        x0 = x0[None, :]
    L, d = x0.shape
    t0 = float(t_span[0])
    t_end = np.broadcast_to(np.asarray(t_span[1], dtype=float), (L,)).astype(float)
    spans = t_end - t0
    nonzero = spans[spans != 0.0]
    if nonzero.size and not (np.all(nonzero > 0) or np.all(nonzero < 0)):
        raise ValueError("all lane end times must lie on the same side of t0")
    direction = 1.0 if (nonzero.size == 0 or nonzero[0] > 0) else -1.0

    if t_eval is not None:
        t_eval = np.asarray(t_eval, dtype=float)
        if t_eval.ndim != 1 or t_eval.shape[0] < 1:
            raise ValueError("t_eval must be a non-empty 1-D array")
        s_eval = direction * t_eval
        if np.any(np.diff(s_eval) <= 0) and t_eval.shape[0] > 1:
            raise ValueError("t_eval must be strictly monotone in the "
                             "integration direction")
        n_out = t_eval.shape[0]
        out = np.empty((L, n_out, d))
        # Points at or before t0 clamp to the initial state.
        n_init = int(np.searchsorted(s_eval, direction * t0, side="right"))
        if n_init:
            out[:, :n_init] = x0[:, None, :]
    else:
        out = None

    t = np.full(L, t0)
    y = x0.copy()
    n_accepted = np.zeros(L, dtype=int)
    n_rejected = np.zeros(L, dtype=int)
    filled = np.full(L, 0 if out is None else n_init, dtype=int)

    if lane_args is None:
        fx = lambda tt, Y, idx: f(tt, Y)  # noqa: E731
    else:
        fx = lambda tt, Y, idx: f(tt, Y, _subset_args(lane_args, idx))  # noqa: E731

    act = np.nonzero(spans != 0.0)[0]
    final_y = x0.copy()
    if out is not None and act.size < L:
        # Zero-span lanes never step: their whole output row is x0.
        idle = np.setdiff1d(np.arange(L), act)
        out[idle] = x0[idle, None, :]
        filled[idle] = n_out
    nfev = 0
    if act.size:
        f0 = fx(t[act], y[act], act)
        nfev += 2 * act.size  # f0 plus the Euler probe in _initial_steps
        h = np.zeros(L)
        h[act] = _initial_steps(
            lambda tt, Y: fx(tt, Y, act), t[act], y[act], f0,
            np.full(act.size, direction), rtol, atol,
            min(max_step, float(np.max(np.abs(spans)))),
        )
        fcur = np.zeros((L, d))
        fcur[act] = f0
    err_prev = np.ones(L)

    lane_failures: list = []

    def retire(dead, reason):
        """Freeze failed lanes at their last accepted state + diagnose."""
        for lane in dead:
            final_y[lane] = y[lane]
            if out is not None and filled[lane] < n_out:
                out[lane, filled[lane]:] = y[lane]
                filled[lane] = n_out
            lane_failures.append({
                "lane": int(lane),
                "reason": reason,
                "t": float(t[lane]),
                "accepted": int(n_accepted[lane]),
                "rejected": int(n_rejected[lane]),
            })

    # Chaos seam (off by default at one global load): poison one lane's
    # state with NaN after it has accepted a set number of steps, which
    # must drive the non-finite retirement path below.
    plan = faults.active_plan()
    poison = plan.poison_nan if plan is not None else None
    if poison is not None and not 0 <= poison[0] < L:
        poison = None
    poison_counted = False

    iterations = 0
    while act.size:
        iterations += 1
        if iterations > max_steps:
            raise RuntimeError(
                f"dopri_batch exceeded {max_steps} iterations; the step "
                "size may have collapsed on a discontinuity (use the "
                "fixed-grid rk4 kernels for sliding-boundary models)"
            )
        if poison is not None and n_accepted[poison[0]] >= poison[1]:
            y[poison[0], 0] = np.nan
            if not poison_counted:
                poison_counted = True
                faults.count_injection("poison-nan")
        ta, ya, ka = t[act], y[act], fcur[act]
        remaining = np.abs(t_end[act] - ta)
        h_act = np.minimum(np.minimum(h[act], max_step), remaining)
        last = h_act >= remaining * (1.0 - 1e-12)
        tiny = 1e-14 * np.maximum(1.0, np.abs(ta))
        # A finishing lane may legitimately take a sub-round-off step to
        # land exactly on its end time; only a *non-final* step this
        # small means the controller has collapsed on a discontinuity.
        underflow = (h_act < tiny) & ~last
        if np.any(underflow):
            if not retire_failed_lanes:
                raise RuntimeError(
                    "dopri_batch step size collapsed below round-off; the "
                    "right-hand side is likely discontinuous at the current "
                    "state (use the fixed-grid rk4 kernels instead)"
                )
            dead = act[underflow]
            retire(dead, "step-underflow")
            act = act[~np.isin(act, dead)]
            continue
        h_signed = direction * h_act

        K = np.empty((7, act.size, d))
        K[0] = ka
        for i, (a_row, c_i) in enumerate(zip(_DP_A, _DP_C[1:]), start=1):
            incr = stage_sum(a_row, K[:i])
            K[i] = fx(ta + c_i * h_signed, ya + h_signed[:, None] * incr, act)
        y_new = ya + h_signed[:, None] * stage_sum(_DP_B, K[:6])
        t_new = np.where(last, t_end[act], ta + h_signed)
        K[6] = fx(t_new, y_new, act)
        nfev += 6 * act.size

        err_vec = h_signed[:, None] * stage_sum(_DP_E, K)
        scale = atol + rtol * np.maximum(np.abs(ya), np.abs(y_new))
        err = rms(err_vec / scale)
        bad = ~np.isfinite(err)
        err = np.where(bad, np.inf, err)
        accept = err <= 1.0
        # Lane *values* of the non-finite lanes, captured before the
        # done-removal below mutates ``act`` — they are removed (and
        # retired) only at the end of the iteration.
        failed = act[bad] if (retire_failed_lanes and np.any(bad)) else None

        # PI controller: accepted lanes grow by the error history pair,
        # rejected lanes shrink on the current error alone.
        with np.errstate(divide="ignore", over="ignore"):
            grow = safety * err ** (-_PI_ALPHA) * err_prev[act] ** _PI_BETA
            shrink = safety * err ** (-_PI_ALPHA)
        grow = np.where(err == 0.0, max_factor, grow)
        grow = np.clip(np.where(np.isfinite(grow), grow, min_factor),
                       min_factor, max_factor)
        shrink = np.clip(np.where(np.isfinite(shrink), shrink, min_factor),
                         min_factor, 1.0)

        acc_idx = act[accept]
        rej_idx = act[~accept]
        h[rej_idx] = h_act[~accept] * shrink[~accept]
        n_rejected[rej_idx] += 1

        if acc_idx.size:
            if out is not None:
                s_old = direction * ta[accept]
                s_new = direction * t_new[accept]
                i0 = np.searchsorted(s_eval, s_old, side="right")
                i1 = np.searchsorted(s_eval, s_new, side="right")
                _hermite_fill(
                    out, acc_idx, i0, i1, s_eval, s_old, s_new,
                    ya[accept], y_new[accept],
                    K[0][accept], K[6][accept],
                    t_new[accept] - ta[accept],
                )
                filled[acc_idx] = i1
            t[acc_idx] = t_new[accept]
            y[acc_idx] = y_new[accept]
            fcur[acc_idx] = K[6][accept]
            err_prev[acc_idx] = np.maximum(err[accept], 1e-10)
            h[acc_idx] = h_act[accept] * grow[accept]
            n_accepted[acc_idx] += 1

            done = acc_idx[last[accept]]
            if done.size:
                final_y[done] = y[done]
                if out is not None:
                    # Remaining evaluation points clamp to the final state.
                    for l in done:
                        if filled[l] < n_out:
                            out[l, filled[l]:] = y[l]
                            filled[l] = n_out
                keep = np.ones(act.size, dtype=bool)
                keep[np.isin(act, done)] = False
                act = act[keep]

        if failed is not None:
            # A non-finite error estimate cannot recover by shrinking
            # the step (the state itself is NaN/inf): retire the lane
            # at its last accepted state instead of spinning it down to
            # the underflow guard.
            retire(failed, "non-finite-state")
            act = act[~np.isin(act, failed)]

    if out is not None:
        times = np.broadcast_to(t_eval, (L, t_eval.shape[0])).copy()
        states = out
        lane_steps = np.full(L, t_eval.shape[0] - 1, dtype=int)
    else:
        times = np.stack([np.full(L, t0), t_end], axis=1)
        states = np.stack([x0, final_y], axis=1)
        lane_steps = np.full(L, 1, dtype=int)
    return TrajectoryBatch(
        times=times,
        states=states,
        lane_steps=lane_steps,
        stats={
            "nfev": int(nfev),
            "n_accepted": n_accepted,
            "n_rejected": n_rejected,
            "final_states": final_y,
            "lane_failures": lane_failures,
        },
    )


def dopri_batch(
    f: Callable,
    x0,
    t_span,
    t_eval=None,
    rtol: float = 1e-8,
    atol: float = 1e-10,
    max_step: float = np.inf,
    max_steps: int = 1_000_000,
    safety: float = 0.9,
    min_factor: float = 0.2,
    max_factor: float = 10.0,
    lane_args=None,
    backend=None,
    retire_failed_lanes: bool = False,
) -> TrajectoryBatch:
    with telemetry.span("ode.dopri_batch") as sp:
        batch = _dopri_batch_impl(
            f, x0, t_span, t_eval,
            rtol=rtol, atol=atol, max_step=max_step, max_steps=max_steps,
            safety=safety, min_factor=min_factor, max_factor=max_factor,
            lane_args=lane_args, backend=backend,
            retire_failed_lanes=retire_failed_lanes,
        )
        sp.set("lanes", batch.n_lanes)
    if telemetry.enabled():
        stats = batch.stats
        telemetry.inc("ode.dopri.lanes", batch.n_lanes)
        telemetry.inc("ode.dopri.rhs_evals", stats["nfev"])
        telemetry.inc("ode.dopri.steps_accepted",
                      int(np.sum(stats["n_accepted"])))
        telemetry.inc("ode.dopri.steps_rejected",
                      int(np.sum(stats["n_rejected"])))
        # Lanes that reached their end time while others were still
        # stepping (heterogeneous horizons / stiffness): the retirement
        # machinery actually saved work on these.
        accepted = np.asarray(stats["n_accepted"])
        if accepted.size:
            retired = int(np.count_nonzero(accepted < accepted.max()))
            if retired:
                telemetry.inc("ode.dopri.lane_retirements", retired)
        if stats["lane_failures"]:
            telemetry.inc("resilience.ode.lane_failures",
                          len(stats["lane_failures"]))
    return batch


dopri_batch.__doc__ = _dopri_batch_impl.__doc__


# ----------------------------------------------------------------------
# Batched fixed-point location
# ----------------------------------------------------------------------

def find_fixed_point_batch(
    f: Callable,
    x0,
    settle_time: float = 200.0,
    tol: float = 1e-10,
    max_rounds: int = 6,
    polish: bool = True,
    jac: Optional[Callable] = None,
    lane_args=None,
    backend=None,
) -> FixedPointBatch:
    """Settle a stack of initial points to stable equilibria at once.

    The batched analogue of :func:`~repro.ode.find_fixed_point`: every
    lane integrates the autonomous field for ``settle_time`` through
    :func:`dopri_batch` (one solver loop for the whole stack), lanes
    whose residual ``|f(x)|`` drops below ``tol`` retire, and the rest
    repeat for up to ``max_rounds``.  Lanes are then polished with a
    per-lane Newton solve under the same acceptance rule as the scalar
    routine.

    Parameters
    ----------
    f:
        Batched autonomous drift ``X -> (n_lanes, d)``; with
        ``lane_args`` the signature is ``f(X, A)`` where ``A`` is the
        matching row subset (lanes retire as they converge, so ``f``
        sees shrinking sub-stacks — per-lane constants belong in
        ``lane_args``).  E.g. settle one initial point under a stack of
        frozen parameters with ``f = lambda X, th:
        model.drift_batch(X, th)`` and ``lane_args=thetas``.
    x0:
        Initial stack ``(n_lanes, d)``.
    jac:
        Optional scalar Jacobian ``x -> (d, d)`` handed to the per-lane
        polish.
    lane_args:
        Optional per-lane auxiliary data (array with leading dimension
        ``n_lanes``, or a tuple of such arrays).

    Raises
    ------
    RuntimeError
        When any lane fails to approach an equilibrium (residual above
        ``1e-5`` after all rounds) — the same limit-cycle signal the
        scalar routine raises.  Lanes that end between ``tol`` and the
        acceptance level are reported via their ``residuals`` /
        ``converged`` diagnostics instead of a warning per lane.
    """
    x = np.atleast_2d(np.asarray(x0, dtype=float)).copy()
    L = x.shape[0]
    if lane_args is None:
        f_at = lambda Y, idx: np.asarray(f(Y), dtype=float)  # noqa: E731
    else:
        f_at = lambda Y, idx: np.asarray(  # noqa: E731
            f(Y, _subset_args(lane_args, idx)), dtype=float
        )

    act = np.arange(L)
    residuals = np.linalg.norm(f_at(x, act), axis=1)
    rounds = 0
    for rounds in range(1, max_rounds + 1):
        sol = dopri_batch(
            lambda t, Y, A=None: f_at(Y, A), x[act], (0.0, settle_time),
            rtol=1e-10, atol=1e-12, lane_args=act, backend=backend,
        )
        x[act] = sol.final_states
        residuals[act] = np.linalg.norm(f_at(x[act], act), axis=1)
        act = act[residuals[act] >= tol]
        if act.size == 0:
            break
    if act.size and np.any(residuals[act] > _SETTLE_ACCEPT_RESIDUAL):
        worst = float(np.max(residuals[act]))
        raise RuntimeError(
            f"{int(np.sum(residuals > _SETTLE_ACCEPT_RESIDUAL))} of {L} "
            f"lanes approached no fixed point after "
            f"{max_rounds * settle_time:.0f} time units "
            f"(worst |f| = {worst:.2e}); the dynamics may have a limit cycle"
        )
    if polish:
        for l in range(L):
            idx = np.array([l])
            row = lambda v: f_at(v[None, :], idx)[0]  # noqa: E731
            solution, _, ier, _ = fsolve(row, x[l], fprime=jac,
                                         full_output=True)
            if ier == 1 and np.linalg.norm(solution - x[l]) < 0.1 * (
                1.0 + np.linalg.norm(x[l])
            ):
                x[l] = solution
        residuals = np.linalg.norm(f_at(x, np.arange(L)), axis=1)
    return FixedPointBatch(
        points=x,
        residuals=residuals,
        converged=residuals < tol,
        rounds=rounds,
    )
