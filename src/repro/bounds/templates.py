"""Convex template bounds in arbitrary dimension.

The remark closing Section IV-C: the Pontryagin iteration extends from
coordinate bounds to any **convex template polyhedron** — pick a set of
directions ``c_k``, compute ``h_k = max c_k . x(T)`` with one sweep per
direction, and intersect the halfspaces ``c_k . x <= h_k``.  This module
provides that machinery for models of any dimension (the 2-D
vertex-enumeration convenience lives in
:func:`repro.bounds.reachable_polytope_2d`):

- :class:`TemplatePolytope` — a halfspace intersection with membership,
  support and box-projection queries;
- :func:`template_reachable_bounds` — the polytope enclosing the
  reachable set of the mean-field inclusion at a horizon;
- :func:`box_directions` / :func:`octagon_directions` — standard
  template families (axis-aligned box; box + pairwise diagonals).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.bounds.pontryagin import extremal_trajectory
from repro.inclusion import DriftExtremizer

__all__ = [
    "TemplatePolytope",
    "box_directions",
    "octagon_directions",
    "template_reachable_bounds",
]


def box_directions(dim: int) -> np.ndarray:
    """The ``2 d`` axis-aligned template directions ``±e_i``."""
    if dim < 1:
        raise ValueError("dim must be positive")
    eye = np.eye(dim)
    return np.vstack([eye, -eye])


def octagon_directions(dim: int) -> np.ndarray:
    """Box directions plus all pairwise diagonals ``(±e_i ± e_j) / sqrt(2)``.

    In 2-D this is the classical octagon template (8 directions); in
    ``d`` dimensions it has ``2 d + 4 C(d, 2)`` directions and captures
    the pairwise correlations the box misses.
    """
    directions = [box_directions(dim)]
    for i in range(dim):
        for j in range(i + 1, dim):
            for si in (1.0, -1.0):
                for sj in (1.0, -1.0):
                    v = np.zeros(dim)
                    v[i], v[j] = si, sj
                    directions.append((v / np.sqrt(2.0))[None, :])
    return np.vstack(directions)


@dataclass
class TemplatePolytope:
    """A polytope ``{x : directions @ x <= offsets}``.

    Attributes
    ----------
    directions:
        Template directions, shape ``(m, d)`` (need not be normalised).
    offsets:
        Support values in each direction, shape ``(m,)``.
    """

    directions: np.ndarray
    offsets: np.ndarray

    def __post_init__(self):
        self.directions = np.asarray(self.directions, dtype=float)
        self.offsets = np.asarray(self.offsets, dtype=float)
        if self.directions.ndim != 2:
            raise ValueError("directions must be a (m, d) array")
        if self.offsets.shape != (self.directions.shape[0],):
            raise ValueError("one offset per direction is required")

    @property
    def dim(self) -> int:
        return self.directions.shape[1]

    @property
    def n_halfspaces(self) -> int:
        return self.directions.shape[0]

    def contains(self, x, tol: float = 1e-9) -> bool:
        """Whether ``x`` satisfies every halfspace (up to ``tol``)."""
        x = np.asarray(x, dtype=float)
        return bool(np.all(self.directions @ x <= self.offsets + tol))

    def margin(self, x) -> float:
        """Largest constraint violation (negative inside)."""
        x = np.asarray(x, dtype=float)
        return float(np.max(self.directions @ x - self.offsets))

    def support(self, direction) -> float:
        """Support value for a template direction (must match one row).

        A direction may appear on several rows — :meth:`intersect`
        stacks the halfspaces of both operands verbatim — and the
        polytope satisfies *all* of them, so the support value is the
        tightest (minimum) matching offset, not the first one found.
        """
        direction = np.asarray(direction, dtype=float)
        matches = np.all(np.isclose(self.directions, direction), axis=1)
        if not matches.any():
            raise KeyError("direction is not part of the template")
        return float(np.min(self.offsets[matches]))

    def bounding_box(self) -> Optional[tuple]:
        """The axis-aligned box implied by the ``±e_i`` rows, if present.

        Returns ``(lower, upper)`` arrays or ``None`` when the template
        does not contain the full box family.
        """
        lower = np.full(self.dim, np.nan)
        upper = np.full(self.dim, np.nan)
        for i in range(self.dim):
            e = np.zeros(self.dim)
            e[i] = 1.0
            try:
                upper[i] = self.support(e)
                lower[i] = -self.support(-e)
            except KeyError:
                return None
        return lower, upper

    def intersect(self, other: "TemplatePolytope") -> "TemplatePolytope":
        """Conjunction of two templates (stacked halfspaces)."""
        if other.dim != self.dim:
            raise ValueError("dimension mismatch")
        return TemplatePolytope(
            np.vstack([self.directions, other.directions]),
            np.concatenate([self.offsets, other.offsets]),
        )


def template_reachable_bounds(
    model,
    x0,
    horizon: float,
    directions=None,
    n_steps: int = 300,
    max_iter: int = 100,
    extremizer: Optional[DriftExtremizer] = None,
    batch: bool = True,
    backend=None,
) -> TemplatePolytope:
    """Template polytope enclosing the reachable set at ``horizon``.

    One Pontryagin sweep per template direction, each re-maximising its
    Hamiltonian through the batched extremiser (``batch=False`` routes
    the sweeps through the legacy scalar loop).  Works in any dimension
    (used for the 4-D GPS MAP model); defaults to the octagon template.
    Soundness: every solution of the imprecise inclusion satisfies
    ``c_k . x(T) <= h_k`` for all ``k``, so the polytope contains the
    exact reachable set (it is *not* tight in non-template directions).
    """
    if directions is None:
        directions = octagon_directions(model.dim)
    directions = np.asarray(directions, dtype=float)
    if directions.ndim != 2 or directions.shape[1] != model.dim:
        raise ValueError(
            f"directions must be (m, {model.dim}); got {directions.shape}"
        )
    extremizer = extremizer or DriftExtremizer(model, batch=batch,
                                               backend=backend)
    offsets = np.empty(directions.shape[0])
    for k, c in enumerate(directions):
        result = extremal_trajectory(
            model, x0, horizon, c, maximize=True, n_steps=n_steps,
            max_iter=max_iter, extremizer=extremizer,
        )
        offsets[k] = result.value
    return TemplatePolytope(directions.copy(), offsets)
