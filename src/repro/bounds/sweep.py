"""Uncertain-scenario envelopes by parameter sweeps.

In the *uncertain* scenario the parameter is constant in time, so by
Corollary 1 the limiting behaviours are exactly the solutions of the ODE
family ``x' = f(x, theta)`` for ``theta in Theta``.  The envelope

.. math::
    x^{uncertain}_i(t) = \\max_{\\theta} x^{\\theta}_i(t)

is computed here by "numerical exploration of all the parameters theta"
(Section V-B of the paper): integrate the ODE on a grid of ``Theta`` and
take pointwise extrema.  The returned :class:`UncertainEnvelope` records
which constant parameter attains each bound at each time, which is what
lets Figure 1 say *the imprecise maximum exceeds the uncertain maximum
attained by any constant parameter*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro import telemetry
from repro.ode import dopri_batch, rk4_integrate, rk4_step, solve_ode

__all__ = ["UncertainEnvelope", "uncertain_envelope"]


@dataclass
class UncertainEnvelope:
    """Pointwise extrema of linear observables over constant parameters.

    Attributes
    ----------
    times:
        Shared time grid, shape ``(n,)``.
    lower, upper:
        Per-observable bound series, each shape ``(n,)``.
    argmin_theta, argmax_theta:
        The constant parameter attaining each bound at each time,
        shape ``(n, theta_dim)``.
    thetas:
        The swept parameter grid, shape ``(m, theta_dim)``.
    """

    times: np.ndarray
    lower: Dict[str, np.ndarray] = field(default_factory=dict)
    upper: Dict[str, np.ndarray] = field(default_factory=dict)
    argmin_theta: Dict[str, np.ndarray] = field(default_factory=dict)
    argmax_theta: Dict[str, np.ndarray] = field(default_factory=dict)
    thetas: Optional[np.ndarray] = None

    @property
    def observable_names(self):
        return sorted(self.lower)

    def width(self, name: str) -> np.ndarray:
        """Envelope width ``upper - lower`` of one observable."""
        return self.upper[name] - self.lower[name]

    def final_bounds(self, name: str):
        """``(lower, upper)`` of one observable at the last time point."""
        return float(self.lower[name][-1]), float(self.upper[name][-1])


def _resolve_weights(model, observables) -> Dict[str, np.ndarray]:
    """Build the ``name -> weight-vector`` map for the requested observables."""
    if observables is None:
        if model.observables:
            return {k: np.asarray(v, float) for k, v in model.observables.items()}
        return {
            name: np.eye(model.dim)[i] for i, name in enumerate(model.state_names)
        }
    weights = {}
    for entry in observables:
        if isinstance(entry, str):
            if entry in model.observables:
                weights[entry] = np.asarray(model.observables[entry], float)
            elif entry in model.state_names:
                weights[entry] = np.eye(model.dim)[model.state_names.index(entry)]
            else:
                raise KeyError(
                    f"unknown observable {entry!r}; model offers "
                    f"{sorted(model.observables) + list(model.state_names)}"
                )
        else:
            name, vector = entry
            vector = np.asarray(vector, dtype=float)
            if vector.shape != (model.dim,):
                raise ValueError(f"observable {name!r}: weight shape {vector.shape}")
            weights[str(name)] = vector
    return weights


def _rk4_sweep_batch(model, x0, rk4_grid, thetas, backend=None) -> np.ndarray:
    """Advance every constant-theta lane through one shared RK4 grid.

    Returns the state stack of shape ``(m, n_grid, d)``.  Each RK4 step
    is a single :meth:`drift_batch` evaluation over the ``(m, d)`` state
    matrix — the per-lane arithmetic is element-wise identical to the
    scalar path, so lanes match one-theta-at-a-time integration bit for
    bit.
    """
    thetas = np.asarray(thetas, dtype=float)
    m = thetas.shape[0]
    x = np.broadcast_to(np.asarray(x0, dtype=float), (m, model.dim)).copy()
    states = np.empty((m, rk4_grid.shape[0], model.dim))
    states[:, 0, :] = x
    kernels = model.backend_kernels(backend)

    def field(t, state_stack):
        return kernels.drift(state_stack, thetas)

    for i in range(rk4_grid.shape[0] - 1):
        dt = rk4_grid[i + 1] - rk4_grid[i]
        x = rk4_step(field, rk4_grid[i], x, dt)
        states[:, i + 1, :] = x
    return states


def uncertain_envelope(
    model,
    x0,
    t_eval,
    resolution: int = 15,
    observables: Optional[Sequence] = None,
    rtol: float = 1e-8,
    atol: float = 1e-10,
    integrator: str = "adaptive",
    rk4_steps: int = 400,
    batch: bool = True,
    backend=None,
) -> UncertainEnvelope:
    with telemetry.span("envelope.sweep", integrator=integrator,
                        resolution=resolution, batch=batch) as sp:
        env = _uncertain_envelope_impl(
            model, x0, t_eval, resolution=resolution,
            observables=observables, rtol=rtol, atol=atol,
            integrator=integrator, rk4_steps=rk4_steps, batch=batch,
            backend=backend,
        )
        sp.set("thetas", env.thetas.shape[0])
    telemetry.inc("envelope.theta_solves", env.thetas.shape[0])
    return env


def _uncertain_envelope_impl(
    model,
    x0,
    t_eval,
    resolution: int = 15,
    observables: Optional[Sequence] = None,
    rtol: float = 1e-8,
    atol: float = 1e-10,
    integrator: str = "adaptive",
    rk4_steps: int = 400,
    batch: bool = True,
    backend=None,
) -> UncertainEnvelope:
    """Sweep constant parameters and envelope the observables.

    Parameters
    ----------
    model:
        The population model (provides drift and ``Theta``).
    x0:
        Initial state of the mean-field ODEs.
    t_eval:
        Time grid for the envelope.
    resolution:
        Grid points per parameter axis; the sweep also always includes
        the corners of ``Theta``.  Cost grows as ``resolution ** dim``.
    observables:
        Which linear observables to envelope: names of model observables
        or state coordinates, or ``(name, weights)`` pairs.  Defaults to
        the model's declared observables (or raw coordinates).
    integrator:
        ``"adaptive"`` (scipy ``solve_ivp``, the accurate default) or
        ``"rk4"`` (fixed-grid classical RK4 with ``rk4_steps`` steps).
        Models with *discontinuous* boundary rates — the bike-sharing
        station, whose drift slides on the occupancy boundary — defeat
        adaptive error control (the step size collapses on the sliding
        surface and the solve never returns); the fixed-step integrator
        crosses the discontinuity with bounded chatter instead, exactly
        as the Pontryagin forward sweeps do.
    batch:
        Advance all thetas simultaneously.  With the ``rk4`` integrator
        this is one :meth:`drift_batch` call per RK4 stage instead of
        one Python callback per theta per stage — bit-identical to the
        scalar loop (kept behind ``batch=False`` for differential
        testing).  With the ``adaptive`` integrator the whole theta grid
        goes through :func:`~repro.ode.dopri_batch`: every lane keeps
        its *own* adaptive step size and error control inside one
        vectorized solver loop, eliminating the per-theta scipy
        ``solve_ivp`` dispatch; lanes match the scalar scipy path to
        integration tolerance (same Dormand–Prince 5(4) pair).
    """
    t_eval = np.asarray(t_eval, dtype=float)
    if t_eval.ndim != 1 or t_eval.shape[0] < 1:
        raise ValueError("t_eval must be a non-empty 1-D array")
    if resolution < 2:
        raise ValueError("resolution must be >= 2")
    weights = _resolve_weights(model, observables)

    thetas = np.vstack([model.theta_set.grid(resolution), model.theta_set.corners()])
    # De-duplicate rows (corners usually coincide with grid extremes).
    thetas = np.unique(thetas, axis=0)

    n_t = t_eval.shape[0]
    values = {name: np.empty((thetas.shape[0], n_t)) for name in weights}
    t_span = (float(t_eval[0]), float(t_eval[-1]))
    if integrator not in ("adaptive", "rk4"):
        raise ValueError(f"unknown integrator {integrator!r}")
    descending = t_span[0] > t_span[1]
    rk4_grid = None
    if integrator == "rk4" and t_span[0] != t_span[1]:
        rk4_grid = np.union1d(
            np.linspace(t_span[0], t_span[1], int(rk4_steps) + 1), t_eval
        )
        if descending:
            # union1d re-sorts ascending; restore the caller's direction
            # so the fixed grid integrates backward from x0 at
            # t_eval[0], exactly as the adaptive path does.
            rk4_grid = rk4_grid[::-1]
    if rk4_grid is not None and batch:
        # t_eval points are grid members by construction, so selecting
        # them exactly reproduces what np.interp returns at grid nodes.
        ascending = rk4_grid[::-1] if descending else rk4_grid
        pick = np.searchsorted(ascending, t_eval)
        if descending:
            pick = rk4_grid.shape[0] - 1 - pick
        states_stack = _rk4_sweep_batch(model, x0, rk4_grid, thetas,
                                        backend=backend)[:, pick, :]
        for name, w in weights.items():
            values[name] = states_stack @ w
    elif integrator == "adaptive" and batch and t_span[0] != t_span[1]:
        m = thetas.shape[0]
        x0_stack = np.broadcast_to(np.asarray(x0, dtype=float),
                                   (m, model.dim))

        kernels = model.backend_kernels(backend)

        def field(t, state_stack, theta_stack):
            return kernels.drift(state_stack, theta_stack)

        sol = dopri_batch(field, x0_stack, t_span, t_eval=t_eval,
                          rtol=rtol, atol=atol, lane_args=thetas,
                          backend=backend)
        for name, w in weights.items():
            values[name] = sol.states @ w
    else:
        for k, theta in enumerate(thetas):
            if t_span[0] == t_span[1]:
                states = np.asarray(x0, float)[None, :].repeat(n_t, axis=0)
            elif rk4_grid is not None:
                traj = rk4_integrate(model.vector_field(theta), x0, rk4_grid)
                if descending:
                    # Trajectory interpolation needs ascending times.
                    traj = traj.reversed_time()
                states = traj(t_eval)
            else:
                traj = solve_ode(model.vector_field(theta), x0, t_span,
                                 t_eval=t_eval, rtol=rtol, atol=atol)
                states = traj.states
            for name, w in weights.items():
                values[name][k] = states @ w

    result = UncertainEnvelope(times=t_eval.copy(), thetas=thetas)
    for name in weights:
        arr = values[name]
        k_min = np.argmin(arr, axis=0)
        k_max = np.argmax(arr, axis=0)
        result.lower[name] = arr[k_min, np.arange(n_t)]
        result.upper[name] = arr[k_max, np.arange(n_t)]
        result.argmin_theta[name] = thetas[k_min]
        result.argmax_theta[name] = thetas[k_max]
    return result


uncertain_envelope.__doc__ = _uncertain_envelope_impl.__doc__
