"""Reachability bounds via Pontryagin's maximum principle (Section IV-C).

The extreme value of a linear functional ``c . x(T)`` over the solutions
of the mean-field inclusion is an optimal-control problem: choose the
measurable signal ``theta(t) in Theta`` maximising ``c . x(T)`` subject to
``x' = f(x, theta)``.  Pontryagin's principle gives necessary conditions
(Eqs. 7–9 of the paper): along an optimal trajectory there is a costate
``p`` with

.. math::
    \\dot x = f(x, \\theta), \\qquad
    \\theta(t) \\in \\arg\\max_\\theta \\; p \\cdot f(x, \\theta), \\qquad
    \\dot p = -\\Big(\\frac{\\partial f}{\\partial x}\\Big)^T p,
    \\qquad p(T) = c.

(The paper states the terminal condition as ``p_i(T) = -1`` with the same
argmax; that sign convention pairs with a minimum-principle reading — we
use the standard maximum-principle convention above, and obtain minima by
negating ``c``.)

:func:`extremal_trajectory` solves these conditions with the fixed-point
(forward–backward sweep) iteration the paper describes: integrate the
state forward under the current control, the costate backward along the
stored state, re-maximise the Hamiltonian pointwise, repeat until the
control stabilises.  For the affine-in-theta models the Hamiltonian
maximiser is bang-bang, so the iteration converges in a handful of
sweeps; the convergence test combines control stability with objective
stability to tolerate chattering on the measure-zero switching set.

:func:`pontryagin_transient_bounds` evaluates the bounds over a grid of
horizons (the curves of Figures 1 and 7), warm-starting each horizon with
the previous control signal.  :func:`reachable_polytope_2d` assembles the
convex template polyhedron of the remark in Section IV-C.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.inclusion import DriftExtremizer
from repro.ode import (
    Trajectory,
    pad_grids,
    rk4_integrate,
    rk4_integrate_controlled,
    rk4_integrate_controlled_batch,
)

__all__ = [
    "PontryaginResult",
    "TransientBounds",
    "extremal_trajectory",
    "extremal_trajectories_batch",
    "pontryagin_transient_bounds",
    "switching_times",
    "reachable_polytope_2d",
]


@dataclass
class PontryaginResult:
    """An extremal trajectory produced by the forward–backward sweep.

    Attributes
    ----------
    times:
        The shared time grid, shape ``(n,)``.
    states, costates:
        State and costate along the grid, shape ``(n, d)``.
    controls:
        Piecewise-constant parameter signal, one row per grid *interval*,
        shape ``(n - 1, p)``.
    direction:
        The template direction ``c`` of the objective ``c . x(T)``.
    maximize:
        Whether the objective was maximised (else minimised).
    value:
        The achieved objective ``c . x(T)``.
    converged, iterations:
        Sweep diagnostics.
    """

    times: np.ndarray
    states: np.ndarray
    costates: np.ndarray
    controls: np.ndarray
    direction: np.ndarray
    maximize: bool
    value: float
    converged: bool
    iterations: int

    @property
    def trajectory(self) -> Trajectory:
        """The extremal state trajectory."""
        return Trajectory(self.times, self.states)

    def control_at(self, t: float) -> np.ndarray:
        """The parameter applied at time ``t`` (left-continuous lookup).

        ``controls[i]`` is in force on the grid interval
        ``(times[i], times[i + 1]]``, so querying exactly at a grid
        point returns the control that *was driving the state into it*
        — the left limit, matching the piecewise-constant-control
        convention documented here.  (Interior queries are unaffected;
        queries at or before ``times[0]`` clamp to the first interval.)
        """
        index = int(np.searchsorted(self.times, t, side="left") - 1)
        index = min(max(index, 0), self.controls.shape[0] - 1)
        return self.controls[index].copy()


def _control_index(times: np.ndarray, t: float, n_controls: int) -> int:
    index = int(np.searchsorted(times, t, side="right") - 1)
    return min(max(index, 0), n_controls - 1)


def extremal_trajectory(
    model,
    x0,
    horizon: float,
    direction,
    maximize: bool = True,
    n_steps: int = 400,
    max_iter: int = 100,
    tol: float = 1e-7,
    value_tol: float = 1e-6,
    value_patience: int = 3,
    chatter_intervals: int = 2,
    extremizer: Optional[DriftExtremizer] = None,
    initial_controls: Optional[np.ndarray] = None,
    batch: bool = True,
) -> PontryaginResult:
    """Compute the trajectory extremising ``direction . x(T)``.

    Parameters
    ----------
    model:
        Population model (drift, Jacobian, ``Theta``).
    x0:
        Initial state.
    horizon:
        Terminal time ``T > 0``.
    direction:
        Template direction ``c`` (e.g. a coordinate axis for the
        ``x_I^max`` curves of Figure 1, or an observable weight vector).
    maximize:
        Maximise when ``True``, minimise when ``False``.
    n_steps:
        RK4 grid intervals shared by state, costate and control.
    max_iter, tol, value_patience, chatter_intervals:
        Sweep termination: stop when the control signal changed on at
        most ``chatter_intervals`` grid intervals (a bang-bang switch
        boundary hopping between neighbouring cells is a discretisation
        artefact, not non-convergence), or when the objective moved by
        less than ``tol`` (relative) for ``value_patience`` consecutive
        sweeps.
    extremizer:
        Optional pre-built Hamiltonian maximiser.
    initial_controls:
        Warm-start control signal, shape ``(n_steps, p)``; defaults to
        the centre of ``Theta`` on every interval.
    batch:
        Whether the default extremiser uses the vectorized batch
        kernels; the Hamiltonian re-maximisation of step (8) always
        goes through one
        :meth:`~repro.inclusion.DriftExtremizer.maximize_direction_batch`
        call per sweep (all ``n_steps`` grid intervals at once), so
        ``batch=False`` — or a pre-built ``batch=False`` extremiser —
        reduces it to the legacy one-interval-at-a-time loop for
        differential testing.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if n_steps < 2:
        raise ValueError("n_steps must be >= 2")
    x0 = np.asarray(x0, dtype=float)
    direction = np.asarray(direction, dtype=float)
    if direction.shape != (model.dim,):
        raise ValueError(
            f"direction has shape {direction.shape}, expected ({model.dim},)"
        )
    if not np.any(direction != 0.0):
        raise ValueError("direction must be non-zero")
    extremizer = extremizer or DriftExtremizer(model, batch=batch)
    # Internally we always maximise c . x(T).
    c = direction if maximize else -direction
    grid = np.linspace(0.0, float(horizon), n_steps + 1)

    if initial_controls is None:
        controls = np.tile(model.theta_set.center(), (n_steps, 1))
    else:
        controls = np.array(initial_controls, dtype=float)
        if controls.ndim == 1:
            controls = controls[:, None]
        if controls.shape != (n_steps, model.theta_dim):
            raise ValueError(
                f"initial_controls has shape {controls.shape}, expected "
                f"({n_steps}, {model.theta_dim})"
            )

    def dynamics(t, x, u):
        return model.drift(x, u)

    best: Optional[Tuple[float, np.ndarray, np.ndarray, np.ndarray]] = None
    value_prev = None
    stable_count = 0
    converged = False
    iterations = 0
    costate_states = np.tile(c, (n_steps + 1, 1))
    # Full-replacement updates can 2-cycle around a bang-bang switch; the
    # parameter set is convex, so relaxed (blended) controls are
    # admissible and the step shrinks whenever the objective regresses.
    relaxation = 1.0

    # Hoisted live handles: one registry lookup before the sweep, plain
    # attribute ops per iteration (None when telemetry is disabled).
    iter_counter = telemetry.live_counter("pontryagin.iterations")
    relax_counter = telemetry.live_counter("pontryagin.relaxation_events")
    residual_hist = telemetry.live_histogram("pontryagin.value_residual")

    for iterations in range(1, max_iter + 1):
        if iter_counter is not None:
            iter_counter.inc()
        # (7) forward state sweep under the current control.
        x_traj = rk4_integrate_controlled(dynamics, x0, grid, controls)
        value = float(c @ x_traj.final_state)
        if best is None or value > best[0]:
            best = (value, x_traj.states.copy(), costate_states.copy(),
                    controls.copy())

        # (9) backward costate sweep along the stored state.
        def costate_field(t, p):
            x = x_traj(t)
            u = controls[_control_index(grid, t, n_steps)]
            return -model.jacobian_x(x, u).T @ p

        p_rev = rk4_integrate(costate_field, c, grid[::-1])
        costate_states = p_rev.states[::-1].copy()

        # (8) pointwise Hamiltonian maximisation -> target control signal:
        # all n_steps grid intervals in one batched call.
        target_controls, _ = extremizer.maximize_direction_batch(
            x_traj.states[:-1], costate_states[:-1]
        )

        changed = np.any(np.abs(target_controls - controls) > tol, axis=1)
        n_changed = int(np.count_nonzero(changed))
        if n_changed <= chatter_intervals:
            converged = True
            # One final forward pass under the fixed-point control.
            controls = target_controls
            x_traj = rk4_integrate_controlled(dynamics, x0, grid, controls)
            value = float(c @ x_traj.final_state)
            if value >= best[0]:
                best = (value, x_traj.states.copy(), costate_states.copy(),
                        controls.copy())
            break
        if value_prev is not None and residual_hist is not None:
            residual_hist.observe(abs(value - value_prev))
        if value_prev is not None and value < value_prev - value_tol:
            relaxation = max(0.5 * relaxation, 0.05)
            if relax_counter is not None:
                relax_counter.inc()
        if value_prev is not None and abs(value - value_prev) <= value_tol * max(
            1.0, abs(value)
        ):
            stable_count += 1
            if stable_count >= value_patience:
                converged = True
                break
        else:
            stable_count = 0
        value_prev = value
        controls = controls + relaxation * (target_controls - controls)

    value, states, costates, controls = best
    # Relaxed iterations can leave blended (interior) controls; project
    # back to the pointwise Hamiltonian maximiser — the PMP-consistent
    # bang-bang signal — and keep it when it does not lose value.
    projected, _ = extremizer.maximize_direction_batch(
        states[:-1], costates[:-1]
    )
    x_proj = rk4_integrate_controlled(dynamics, x0, grid, projected)
    value_proj = float(c @ x_proj.final_state)
    if value_proj >= value - value_tol * max(1.0, abs(value)):
        value = max(value, value_proj)
        states = x_proj.states.copy()
        controls = projected

    return PontryaginResult(
        times=grid,
        states=states,
        costates=costates,
        controls=controls,
        direction=direction.copy(),
        maximize=maximize,
        value=value if maximize else -value,
        converged=converged,
        iterations=iterations,
    )


def _costate_sweep_batch(model, T, steps, states, controls, C, w_mid,
                         idx_right, kernels=None):
    """Backward costate integration for a whole lane set at once.

    During one backward sweep the state trajectory and control signal
    are *frozen*, so every Jacobian the RK4 stages will request is known
    in advance: per interval ``j`` the stages evaluate
    ``J(x(T[j+1]), u)`` (the node entered backward), ``J(x_mid, u_j)``
    (the half step, twice) and ``J(x(T[j]), u_j)``.  All three stacks
    are produced by a single batched
    :meth:`~repro.population.PopulationModel.jacobian_x_batch` call
    over every lane and interval; the recursion itself is then pure
    matrix–vector arithmetic per lockstep step, mirroring the scalar
    RK4 stage expressions (lanes whose grid is exhausted freeze).
    Returns the costate stack in forward orientation, ``(L, n+1, d)``.
    """
    L, n_plus_1, d = states.shape
    n_max = n_plus_1 - 1
    lanes = np.arange(L)
    x_left = states[:, :-1]
    x_right = states[:, 1:]
    x_mid = x_left + w_mid[:, :, None] * (x_right - x_left)
    u_right = controls[lanes[:, None], idx_right]
    flat = lambda arr: arr.reshape(L * n_max, -1)  # noqa: E731
    jacobian = kernels.jacobian if kernels is not None else model.jacobian_x_batch
    jacs = jacobian(
        np.concatenate([flat(x_right), flat(x_mid), flat(x_left)]),
        np.concatenate([flat(u_right), flat(controls), flat(controls)]),
    ).reshape(3, L, n_max, d, d)
    j_right, j_mid, j_left = jacs[0], jacs[1], jacs[2]

    p = C.copy()
    costates = np.tile(C[:, None, :], (1, n_plus_1, 1))
    for i in range(int(steps.max())):
        j = steps - 1 - i
        live = j >= 0
        jc = np.where(live, j, 0)
        dt = T[lanes, jc] - T[lanes, jc + 1]  # negative: backward in time
        dtc = dt[:, None]
        jr = j_right[lanes, jc]
        jm = j_mid[lanes, jc]
        jl = j_left[lanes, jc]
        k1 = -np.einsum("lkj,lk->lj", jr, p)
        k2 = -np.einsum("lkj,lk->lj", jm, p + 0.5 * dtc * k1)
        k3 = -np.einsum("lkj,lk->lj", jm, p + 0.5 * dtc * k2)
        k4 = -np.einsum("lkj,lk->lj", jl, p + dtc * k3)
        p_new = p + (dtc / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
        p = np.where(live[:, None], p_new, p)
        costates[lanes[live], j[live]] = p[live]
    return costates


def extremal_trajectories_batch(
    model,
    x0,
    specs: Sequence,
    max_iter: int = 100,
    tol: float = 1e-7,
    value_tol: float = 1e-6,
    value_patience: int = 3,
    chatter_intervals: int = 2,
    extremizer: Optional[DriftExtremizer] = None,
    backend=None,
    deadline_seconds: Optional[float] = None,
) -> List[PontryaginResult]:
    with telemetry.span("pontryagin.sweep", lanes=len(specs)):
        return _extremal_trajectories_batch_impl(
            model, x0, specs,
            max_iter=max_iter, tol=tol, value_tol=value_tol,
            value_patience=value_patience,
            chatter_intervals=chatter_intervals, extremizer=extremizer,
            backend=backend, deadline_seconds=deadline_seconds,
        )


def _extremal_trajectories_batch_impl(
    model,
    x0,
    specs: Sequence,
    max_iter: int = 100,
    tol: float = 1e-7,
    value_tol: float = 1e-6,
    value_patience: int = 3,
    chatter_intervals: int = 2,
    extremizer: Optional[DriftExtremizer] = None,
    backend=None,
    deadline_seconds: Optional[float] = None,
) -> List[PontryaginResult]:
    """Run many forward–backward sweeps as one lane-parallel batch.

    Each spec is a ``(direction, maximize, horizon, n_steps)`` tuple
    describing one extremal-trajectory problem; all of them advance in
    lockstep through the batched RK4 kernels: per iteration the forward
    state sweep is *one* :func:`~repro.ode.rk4_integrate_controlled_batch`
    call, the backward costate sweep one :func:`~repro.ode.rk4_integrate_batch`
    call (batched analytic Jacobians through
    :meth:`~repro.population.PopulationModel.jacobian_x_batch`), and the
    Hamiltonian re-maximisation one extremiser call over every lane's
    every grid interval.  Per-lane convergence masks let converged lanes
    retire — they stop consuming forward/backward work — while the rest
    keep sweeping.

    Lane iteration logic (relaxation schedule, best-iterate tracking,
    chatter-tolerant convergence, bang-bang projection) mirrors
    :func:`extremal_trajectory` lane by lane from a cold start, so each
    returned :class:`PontryaginResult` matches the scalar sweep of the
    same problem to integrator round-off.

    ``deadline_seconds`` is a wall-clock budget for graceful
    degradation: when the sweep loop exceeds it, iteration stops and
    every still-active lane reports its best-so-far value with
    ``converged=False`` (the first iteration always completes, so a
    best iterate exists, and the final bang-bang projection pass still
    runs).  Deadline hits stamp
    ``resilience.pontryagin.deadline_hits``.
    """
    if not specs:
        return []
    x0 = np.asarray(x0, dtype=float)
    extremizer = extremizer or DriftExtremizer(model, backend=backend)
    kernels = model.backend_kernels(backend)
    L = len(specs)
    d, p = model.dim, model.theta_dim

    directions = np.empty((L, d))
    maximize = np.empty(L, dtype=bool)
    grids = []
    for l, (direction, is_max, horizon, n_steps) in enumerate(specs):
        direction = np.asarray(direction, dtype=float)
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if n_steps < 2:
            raise ValueError("n_steps must be >= 2")
        if direction.shape != (d,):
            raise ValueError(
                f"direction has shape {direction.shape}, expected ({d},)"
            )
        if not np.any(direction != 0.0):
            raise ValueError("direction must be non-zero")
        directions[l] = direction
        maximize[l] = bool(is_max)
        grids.append(np.linspace(0.0, float(horizon), int(n_steps) + 1))
    # Internally every lane maximises c . x(T).
    C = np.where(maximize[:, None], directions, -directions)
    T, steps = pad_grids(grids)
    n_max = T.shape[1] - 1
    lanes_all = np.arange(L)
    interval_live = np.arange(n_max)[None, :] < steps[:, None]
    # Stage geometry of the backward sweeps (fixed across iterations):
    # the mid-stage interpolation weight per interval, and the control
    # interval the node-entry stage reads (the piecewise-constant lookup
    # clips at the terminal interval, exactly as the scalar sweep does).
    span = T[:, 1:] - T[:, :-1]
    t_mid = T[:, 1:] + 0.5 * (T[:, :-1] - T[:, 1:])
    with np.errstate(invalid="ignore", divide="ignore"):
        w_mid = np.where(span != 0.0, (t_mid - T[:, :-1]) / span, 0.5)
    idx_right = np.minimum(np.arange(1, n_max + 1)[None, :],
                           (steps - 1)[:, None])

    controls = np.tile(model.theta_set.center(), (L, n_max, 1))
    x0_stack = np.broadcast_to(x0, (L, d)).copy()

    def dynamics(t, X, U):
        return kernels.drift(X, U)

    # Per-lane sweep state (mirrors the scalar loop variable for variable).
    best_value = np.full(L, -np.inf)
    best_states = np.zeros((L, n_max + 1, d))
    best_costates = np.tile(C[:, None, :], (1, n_max + 1, 1))
    best_controls = controls.copy()
    value_prev = np.zeros(L)
    has_prev = np.zeros(L, dtype=bool)
    stable = np.zeros(L, dtype=int)
    relaxation = np.ones(L)
    converged = np.zeros(L, dtype=bool)
    iterations = np.zeros(L, dtype=int)
    costates = np.tile(C[:, None, :], (1, n_max + 1, 1))

    # Hoisted live handles (None when disabled): the lane sweep stamps
    # metrics per iteration, so the registry lookup happens once here.
    iter_counter = telemetry.live_counter("pontryagin.iterations")
    relax_counter = telemetry.live_counter("pontryagin.relaxation_events")
    residual_hist = telemetry.live_histogram("pontryagin.value_residual")
    deadline_counter = telemetry.live_counter(
        "resilience.pontryagin.deadline_hits"
    )

    sweep_start = time.perf_counter()
    active = lanes_all.copy()
    for it in range(1, max_iter + 1):
        if active.size == 0:
            break
        # Graceful degradation under a wall-clock budget: guarded by
        # ``it > 1`` so every lane completes at least one full sweep
        # (best_value starts at -inf and is only finite afterwards).
        if (deadline_seconds is not None and it > 1
                and time.perf_counter() - sweep_start > deadline_seconds):
            if deadline_counter is not None:
                deadline_counter.inc()
            break
        iterations[active] = it
        a = active
        if iter_counter is not None:
            iter_counter.inc(int(a.size))
        # (7) forward state sweep under the current controls.
        fwd = rk4_integrate_controlled_batch(
            dynamics, x0_stack[a], T[a], controls[a], lane_steps=steps[a],
            backend=backend,
        )
        finals = fwd.final_states
        value = np.einsum("ld,ld->l", C[a], finals)
        improved = value > best_value[a]
        upd = a[improved]
        best_value[upd] = value[improved]
        best_states[upd] = fwd.states[improved]
        best_costates[upd] = costates[upd]
        best_controls[upd] = controls[upd]

        # (9) backward costate sweep along the stored states.
        costates_a = _costate_sweep_batch(
            model, T[a], steps[a], fwd.states, controls[a], C[a],
            w_mid[a], idx_right[a], kernels=kernels,
        )
        costates[a] = costates_a

        # (8) pointwise Hamiltonian maximisation, all lanes and intervals
        # in one batched call.
        thetas_flat, _ = extremizer.maximize_direction_batch(
            fwd.states[:, :-1].reshape(-1, d),
            costates_a[:, :-1].reshape(-1, d),
        )
        target = thetas_flat.reshape(a.size, n_max, p)

        changed = (
            np.any(np.abs(target - controls[a]) > tol, axis=2)
            & interval_live[a]
        )
        n_changed = np.count_nonzero(changed, axis=1)
        fixed_point = n_changed <= chatter_intervals

        if np.any(fixed_point):
            # One final forward pass under the fixed-point controls.
            fin = a[fixed_point]
            controls[fin] = target[fixed_point]
            final_fwd = rk4_integrate_controlled_batch(
                dynamics, x0_stack[fin], T[fin], controls[fin],
                lane_steps=steps[fin], backend=backend,
            )
            fin_value = np.einsum("ld,ld->l", C[fin], final_fwd.final_states)
            better = fin_value >= best_value[fin]
            upd = fin[better]
            best_value[upd] = fin_value[better]
            best_states[upd] = final_fwd.states[better]
            best_costates[upd] = costates[upd]
            best_controls[upd] = controls[upd]
            converged[fin] = True

        cont = ~fixed_point
        if np.any(cont):
            ac = a[cont]
            v = value[cont]
            regressed = has_prev[ac] & (v < value_prev[ac] - value_tol)
            relaxation[ac[regressed]] = np.maximum(
                0.5 * relaxation[ac[regressed]], 0.05
            )
            if relax_counter is not None:
                n_regressed = int(np.count_nonzero(regressed))
                if n_regressed:
                    relax_counter.inc(n_regressed)
            if residual_hist is not None:
                residual_hist.observe_many(
                    np.abs(v - value_prev[ac])[has_prev[ac]]
                )
            settled = has_prev[ac] & (
                np.abs(v - value_prev[ac])
                <= value_tol * np.maximum(1.0, np.abs(v))
            )
            stable[ac[settled]] += 1
            stable[ac[~settled]] = 0
            patience_hit = stable[ac] >= value_patience
            converged[ac[patience_hit]] = True
            value_prev[ac] = v
            has_prev[ac] = True
            step_lanes = ~patience_hit
            upd = ac[step_lanes]
            controls[upd] = controls[upd] + relaxation[upd][:, None, None] * (
                target[cont][step_lanes] - controls[upd]
            )
            active = upd
        else:
            active = a[~fixed_point]

    # Projection back to the pointwise Hamiltonian maximiser — one remax
    # plus one forward pass for every lane at once.
    values = best_value.copy()
    thetas_flat, _ = extremizer.maximize_direction_batch(
        best_states[:, :-1].reshape(-1, d),
        best_costates[:, :-1].reshape(-1, d),
    )
    projected = thetas_flat.reshape(L, n_max, p)
    proj_fwd = rk4_integrate_controlled_batch(
        dynamics, x0_stack, T, projected, lane_steps=steps, backend=backend,
    )
    proj_value = np.einsum("ld,ld->l", C, proj_fwd.final_states)
    keep = proj_value >= values - value_tol * np.maximum(1.0, np.abs(values))
    final_states = np.where(keep[:, None, None], proj_fwd.states, best_states)
    final_controls = np.where(keep[:, None, None], projected, best_controls)
    values = np.where(keep, np.maximum(values, proj_value), values)

    results = []
    for l in range(L):
        stop = int(steps[l]) + 1
        results.append(
            PontryaginResult(
                times=T[l, :stop].copy(),
                states=final_states[l, :stop].copy(),
                costates=best_costates[l, :stop].copy(),
                controls=final_controls[l, : stop - 1].copy(),
                direction=directions[l].copy(),
                maximize=bool(maximize[l]),
                value=float(values[l] if maximize[l] else -values[l]),
                converged=bool(converged[l]),
                iterations=int(iterations[l]),
            )
        )
    return results


extremal_trajectories_batch.__doc__ = _extremal_trajectories_batch_impl.__doc__


@dataclass
class TransientBounds:
    """Min/max of observables at a grid of horizons (Figures 1 and 7).

    ``lower[name][k]`` and ``upper[name][k]`` bound the observable at
    ``horizons[k]`` over all solutions of the imprecise inclusion.

    ``converged`` is ``False`` when a ``deadline_seconds`` budget
    stopped the computation early: the recorded bounds are then the
    best iterates so far (still conservative directions of search, but
    not fixed points), and horizons the scalar path never reached stay
    NaN.
    """

    horizons: np.ndarray
    lower: Dict[str, np.ndarray] = field(default_factory=dict)
    upper: Dict[str, np.ndarray] = field(default_factory=dict)
    lower_results: Dict[str, List[PontryaginResult]] = field(default_factory=dict)
    upper_results: Dict[str, List[PontryaginResult]] = field(default_factory=dict)
    converged: bool = True

    @property
    def observable_names(self):
        return sorted(self.lower)

    def width(self, name: str) -> np.ndarray:
        return self.upper[name] - self.lower[name]

    def final_bounds(self, name: str) -> Tuple[float, float]:
        return float(self.lower[name][-1]), float(self.upper[name][-1])


def _resolve_directions(model, observables) -> Dict[str, np.ndarray]:
    if observables is None:
        if model.observables:
            return {k: np.asarray(v, float) for k, v in model.observables.items()}
        return {
            name: np.eye(model.dim)[i] for i, name in enumerate(model.state_names)
        }
    directions = {}
    for entry in observables:
        if isinstance(entry, str):
            if entry in model.observables:
                directions[entry] = np.asarray(model.observables[entry], float)
            elif entry in model.state_names:
                directions[entry] = np.eye(model.dim)[model.state_names.index(entry)]
            else:
                raise KeyError(f"unknown observable {entry!r}")
        else:
            name, vector = entry
            directions[str(name)] = np.asarray(vector, dtype=float)
    return directions


def _resample_controls(old_grid: np.ndarray, old_controls: np.ndarray,
                       new_grid: np.ndarray) -> np.ndarray:
    """Warm start: carry a control signal onto a new (longer) grid."""
    n_new = new_grid.shape[0] - 1
    out = np.empty((n_new, old_controls.shape[1]))
    for i in range(n_new):
        t_mid = 0.5 * (new_grid[i] + new_grid[i + 1])
        out[i] = old_controls[_control_index(old_grid, t_mid, old_controls.shape[0])]
    return out


def pontryagin_transient_bounds(
    model,
    x0,
    horizons,
    observables: Optional[Sequence] = None,
    steps_per_unit: float = 100.0,
    min_steps: int = 60,
    max_iter: int = 100,
    tol: float = 1e-7,
    extremizer: Optional[DriftExtremizer] = None,
    keep_results: bool = False,
    sides: Sequence[str] = ("lower", "upper"),
    batch: bool = True,
    lanes: Optional[bool] = None,
    backend=None,
    deadline_seconds: Optional[float] = None,
) -> TransientBounds:
    with telemetry.span("pontryagin.bounds",
                        horizons=np.asarray(horizons).size,
                        lanes=batch if lanes is None else lanes):
        return _pontryagin_transient_bounds_impl(
            model, x0, horizons, observables=observables,
            steps_per_unit=steps_per_unit, min_steps=min_steps,
            max_iter=max_iter, tol=tol, extremizer=extremizer,
            keep_results=keep_results, sides=sides, batch=batch,
            lanes=lanes, backend=backend,
            deadline_seconds=deadline_seconds,
        )


def _pontryagin_transient_bounds_impl(
    model,
    x0,
    horizons,
    observables: Optional[Sequence] = None,
    steps_per_unit: float = 100.0,
    min_steps: int = 60,
    max_iter: int = 100,
    tol: float = 1e-7,
    extremizer: Optional[DriftExtremizer] = None,
    keep_results: bool = False,
    sides: Sequence[str] = ("lower", "upper"),
    batch: bool = True,
    lanes: Optional[bool] = None,
    backend=None,
    deadline_seconds: Optional[float] = None,
) -> TransientBounds:
    """Exact imprecise-model bounds at each horizon, per observable.

    One Pontryagin sweep per (horizon, observable, side).  This
    regenerates the ``x^{imprecise}`` curves of Figure 1 and the
    queue-length curves of Figure 7.

    ``sides`` selects which bounds to compute (``"lower"``, ``"upper"``
    or both); robust-design loops that only consume the worst case pass
    ``sides=("upper",)`` and halve the cost.  Unselected sides are left
    as NaN in the result.

    With ``lanes`` enabled (the default, following ``batch``) *all*
    (observable, side, horizon) sweeps advance simultaneously through
    :func:`extremal_trajectories_batch`: each iteration issues one
    batched forward RK4 call, one batched costate call and one
    Hamiltonian re-maximisation for the whole lane set, and converged
    lanes retire early.  Every lane cold-starts from the centre of
    ``Theta``.  The scalar path (``lanes=False``) runs the legacy
    sequential loop, warm-starting each horizon from the previous
    horizon's optimal control; both converge to the same bang-bang
    optima (the warm start saves sweeps, not accuracy) and are pinned
    against each other in the differential suite.

    ``deadline_seconds`` bounds the wall clock: past it, the lanes path
    stops iterating and reports best-so-far values, the scalar path
    stops launching new per-horizon sweeps (at least one sweep always
    completes; unreached horizons stay NaN), and the returned
    :class:`TransientBounds` carries ``converged=False``.
    """
    horizons = np.asarray(horizons, dtype=float)
    if np.any(horizons <= 0):
        raise ValueError("all horizons must be positive (t = 0 is the initial state)")
    if np.any(np.diff(horizons) <= 0):
        raise ValueError("horizons must be strictly increasing")
    invalid_sides = set(sides) - {"lower", "upper"}
    if invalid_sides or not sides:
        raise ValueError(
            f"sides must be a non-empty subset of ('lower', 'upper'); "
            f"got {tuple(sides)}"
        )
    if lanes is None:
        lanes = batch
    directions = _resolve_directions(model, observables)
    extremizer = extremizer or DriftExtremizer(model, batch=batch,
                                               backend=backend)
    bounds = TransientBounds(horizons=horizons.copy())
    requested = tuple(
        is_max for is_max in (False, True)
        if ("upper" if is_max else "lower") in sides
    )
    step_counts = [
        max(min_steps, int(np.ceil(horizon * steps_per_unit)))
        for horizon in horizons
    ]
    if keep_results:
        for name in directions:
            bounds.lower_results[name] = []
            bounds.upper_results[name] = []

    if lanes:
        specs = []
        keys = []
        for name, c in directions.items():
            bounds.lower[name] = np.full(horizons.shape[0], np.nan)
            bounds.upper[name] = np.full(horizons.shape[0], np.nan)
            for is_max in requested:
                for k, horizon in enumerate(horizons):
                    specs.append((c, is_max, float(horizon), step_counts[k]))
                    keys.append((name, is_max, k))
        results = extremal_trajectories_batch(
            model, x0, specs,
            max_iter=max_iter, tol=tol, extremizer=extremizer,
            backend=backend, deadline_seconds=deadline_seconds,
        )
        for (name, is_max, k), result in zip(keys, results):
            target = bounds.upper if is_max else bounds.lower
            target[name][k] = result.value
            if keep_results:
                store = bounds.upper_results if is_max else bounds.lower_results
                store[name].append(result)
        if deadline_seconds is not None:
            bounds.converged = all(r.converged for r in results)
        return bounds

    sweeps_start = time.perf_counter()
    sweeps_done = 0
    deadline_counter = telemetry.live_counter(
        "resilience.pontryagin.deadline_hits"
    )
    for name, c in directions.items():
        bounds.lower[name] = np.full(horizons.shape[0], np.nan)
        bounds.upper[name] = np.full(horizons.shape[0], np.nan)
        for is_max in requested:
            warm: Optional[Tuple[np.ndarray, np.ndarray]] = None
            for k, horizon in enumerate(horizons):
                # Deadline between sweeps (a running sweep is never
                # preempted, and at least one always completes);
                # horizons never launched stay NaN.
                if (deadline_seconds is not None and sweeps_done >= 1
                        and time.perf_counter() - sweeps_start
                        > deadline_seconds):
                    if bounds.converged:
                        bounds.converged = False
                        if deadline_counter is not None:
                            deadline_counter.inc()
                    break
                n_steps = step_counts[k]
                initial = None
                if warm is not None:
                    old_grid, old_controls = warm
                    initial = _resample_controls(
                        old_grid, old_controls, np.linspace(0, horizon, n_steps + 1)
                    )
                result = extremal_trajectory(
                    model, x0, horizon, c,
                    maximize=is_max,
                    n_steps=n_steps,
                    max_iter=max_iter,
                    tol=tol,
                    extremizer=extremizer,
                    initial_controls=initial,
                )
                warm = (result.times, result.controls)
                sweeps_done += 1
                target = bounds.upper if is_max else bounds.lower
                target[name][k] = result.value
                if keep_results:
                    store = bounds.upper_results if is_max else bounds.lower_results
                    store[name].append(result)
    return bounds


pontryagin_transient_bounds.__doc__ = _pontryagin_transient_bounds_impl.__doc__


def switching_times(result: PontryaginResult, param_index: int = 0,
                    atol: float = 1e-9, min_dwell: float = 0.0) -> List[float]:
    """Times where the extremal control switches value (bang-bang knots).

    Returns the left grid times of the intervals where parameter
    coordinate ``param_index`` changes; Figure 2's commentary (switch at
    ``t ~ 2.25`` for the maximising control) is recovered this way.

    ``min_dwell`` consolidates numerical chattering: near a switching
    time the Hamiltonian's switching function is close to zero and the
    discrete control can flip back and forth across a few cells without
    affecting the objective.  Segments shorter than ``min_dwell`` are
    merged into their predecessor before switches are read off, so only
    the macroscopic bang-bang structure is reported.
    """
    signal = result.controls[:, param_index]
    times = result.times
    if min_dwell <= 0.0:
        jumps = np.nonzero(np.abs(np.diff(signal)) > atol)[0]
        return [float(times[j + 1]) for j in jumps]
    # Build (value, t_start, t_end) segments of the piecewise signal.
    segments: List[List[float]] = []
    for i, value in enumerate(signal):
        if segments and abs(value - segments[-1][0]) <= atol:
            segments[-1][2] = times[i + 1]
        else:
            segments.append([float(value), float(times[i]), float(times[i + 1])])
    # Merge short segments into their predecessor until all dwell times
    # are macroscopic (the first segment merges forward instead).
    changed = True
    while changed and len(segments) > 1:
        changed = False
        for k, seg in enumerate(segments):
            if seg[2] - seg[1] >= min_dwell:
                continue
            if k == 0:
                segments[1][1] = seg[1]
            else:
                segments[k - 1][2] = seg[2]
            del segments[k]
            changed = True
            break
    # Re-merge neighbours that ended up with equal values.
    merged: List[List[float]] = []
    for seg in segments:
        if merged and abs(seg[0] - merged[-1][0]) <= atol:
            merged[-1][2] = seg[2]
        else:
            merged.append(seg)
    return [float(seg[1]) for seg in merged[1:]]


def switching_function(result: PontryaginResult, model,
                       param_index: int = 0) -> np.ndarray:
    """The Hamiltonian switching function ``sigma_k(t) = p(t) . G(x(t))_k``.

    For an affine-in-theta model the Hamiltonian is
    ``p . g0(x) + sum_k theta_k sigma_k`` — the optimal ``theta_k`` sits
    at its upper bound where ``sigma_k > 0`` and its lower bound where
    ``sigma_k < 0``, and switches exactly at the zeros of ``sigma_k``.
    """
    if not model.is_affine:
        raise ValueError("switching functions require an affine-in-theta model")
    values = np.empty(result.times.shape[0])
    for i, (x, p) in enumerate(zip(result.states, result.costates)):
        _, big_g = model.affine_parts(x)
        values[i] = float(p @ big_g[:, param_index])
    return values


def switching_times_from_costate(result: PontryaginResult, model,
                                 param_index: int = 0) -> List[float]:
    """Switching times as zeros of the costate switching function.

    More robust than reading the discrete control signal: near a switch
    the control can chatter across grid cells or retain relaxation
    blending, while the switching function crosses zero once per genuine
    structural switch.  Zeros are located by linear interpolation
    between grid points.
    """
    sigma = switching_function(result, model, param_index=param_index)
    times = result.times
    roots: List[float] = []
    for i in range(sigma.shape[0] - 1):
        a, b = sigma[i], sigma[i + 1]
        if a == 0.0:
            continue
        if a * b < 0.0:
            t_root = times[i] + (times[i + 1] - times[i]) * a / (a - b)
            roots.append(float(t_root))
    return roots


def reachable_polytope_2d(
    model,
    x0,
    horizon: float,
    n_directions: int = 16,
    n_steps: int = 300,
    max_iter: int = 100,
    extremizer: Optional[DriftExtremizer] = None,
    batch: bool = True,
) -> np.ndarray:
    """Convex template over-approximation of the reachable set at ``T``.

    Runs one Pontryagin sweep per template direction ``c_k`` on the unit
    circle and intersects the halfspaces ``c_k . x <= h_k`` — the
    "convex template polyhedron" refinement noted at the end of
    Section IV-C.  Returns the polygon vertices (CCW).  Only implemented
    for 2-D models.
    """
    if model.dim != 2:
        raise ValueError("template polytopes are implemented for 2-D models")
    if n_directions < 3:
        raise ValueError("need at least 3 template directions")
    extremizer = extremizer or DriftExtremizer(model, batch=batch)
    angles = np.linspace(0.0, 2.0 * np.pi, n_directions, endpoint=False)
    normals = np.stack([np.cos(angles), np.sin(angles)], axis=1)
    offsets = np.empty(n_directions)
    for k, c in enumerate(normals):
        result = extremal_trajectory(
            model, x0, horizon, c, maximize=True, n_steps=n_steps,
            max_iter=max_iter, extremizer=extremizer,
        )
        offsets[k] = result.value
    # Vertices of the halfspace intersection: adjacent constraint pairs.
    vertices = []
    for k in range(n_directions):
        a1, b1 = normals[k], offsets[k]
        a2, b2 = normals[(k + 1) % n_directions], offsets[(k + 1) % n_directions]
        matrix = np.array([a1, a2])
        det = np.linalg.det(matrix)
        if abs(det) < 1e-12:
            continue
        vertex = np.linalg.solve(matrix, np.array([b1, b2]))
        # Keep only vertices satisfying all constraints (non-redundant).
        if np.all(normals @ vertex <= offsets + 1e-7):
            vertices.append(vertex)
    return np.array(vertices)
