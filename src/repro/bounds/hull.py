"""The differential-hull over-approximation (Section IV-B).

The hull method encloses every solution of ``x' in F(x)`` in a moving
rectangle ``[xlo(t), xhi(t)]`` obtained by integrating a coupled pair of
ODEs:

.. math::
    \\dot{\\underline x}_i = \\underline f_i(\\underline x, \\overline x)
        = \\min \\{ F_i(x) : x \\in [\\underline x, \\overline x],
                               x_i = \\underline x_i \\} \\\\
    \\dot{\\overline x}_i = \\overline f_i(\\underline x, \\overline x)
        = \\max \\{ F_i(x) : x \\in [\\underline x, \\overline x],
                               x_i = \\overline x_i \\}

(Theorem 4 of the paper, after Ramdani et al. / Tschaikowski &
Tribastone).  The inner extremisation over ``theta`` is exact through the
:class:`~repro.inclusion.DriftExtremizer`; the extremisation over the box
slice in ``x`` is performed over the slice corners plus an optional
interior grid, with an optional L-BFGS-B polish.  For rate functions
monotone in each coordinate — all models in the paper — the slice optimum
is attained at a corner, so the default is exact.

The hull is sound but can be arbitrarily loose: the two bounding
trajectories follow *different* velocity selections in each coordinate,
so they may leave the physical state space entirely.  Figure 4 of the
paper shows exactly this (``X_I`` bounds reaching 1.17 for
``theta_max = 5`` and the vacuous ``[0, 1]`` for ``theta_max = 6``); the
raw (unclipped) bounds are what this module returns, with
:meth:`HullBounds.clipped` available for presentation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy.integrate import solve_ivp
from scipy.optimize import minimize

from repro import telemetry
from repro.inclusion import DriftExtremizer

__all__ = ["HullBounds", "differential_hull_bounds", "hull_vector_field"]


@dataclass
class HullBounds:
    """Result of the differential-hull integration.

    ``lower[t, i] <= x_i(t) <= upper[t, i]`` holds for every solution
    ``x`` of the inclusion started inside ``[lower[0], upper[0]]``.
    """

    times: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    state_names: Tuple[str, ...]

    def width(self, index: int) -> np.ndarray:
        """Hull width of one coordinate over time."""
        return self.upper[:, index] - self.lower[:, index]

    def is_trivial(self, index: int, state_lower: float = 0.0,
                   state_upper: float = 1.0, at_index: int = -1) -> bool:
        """Whether the hull gives no information beyond the state space.

        Matches the paper's observation that for ``theta_max = 6`` the
        hull approximation of the SIR model "is trivial for t >= 4":
        the bounds cover the whole physical range of the coordinate.
        """
        return bool(
            self.lower[at_index, index] <= state_lower
            and self.upper[at_index, index] >= state_upper
        )

    def clipped(self, state_lower, state_upper) -> "HullBounds":
        """Intersect the hull with static state bounds (presentation only)."""
        lo = np.asarray(state_lower, dtype=float)
        hi = np.asarray(state_upper, dtype=float)
        return HullBounds(
            times=self.times.copy(),
            lower=np.clip(self.lower, lo, hi),
            upper=np.clip(self.upper, lo, hi),
            state_names=self.state_names,
        )

    def observable_bounds(self, weights) -> Tuple[np.ndarray, np.ndarray]:
        """Interval bounds of a linear observable ``w . x`` over time.

        Uses interval arithmetic: each weight contributes its
        sign-matching hull side.  The matmuls only see the columns whose
        weight actually has the matching sign: a diverged hull carries
        ``±inf`` bounds, and the zero entries of the sign-split weight
        vectors would otherwise poison every diverged row with
        ``inf * 0 = NaN`` (and a ``RuntimeWarning``).  With the masks,
        diverged rows honestly report ``(-inf, +inf)``.
        """
        w = np.asarray(weights, dtype=float)
        positive = w > 0.0
        negative = w < 0.0
        lo = (self.lower[:, positive] @ w[positive]
              + self.upper[:, negative] @ w[negative])
        hi = (self.upper[:, positive] @ w[positive]
              + self.lower[:, negative] @ w[negative])
        return lo, hi


def _slice_candidates(lower: np.ndarray, upper: np.ndarray, pin_index: int,
                      pin_value: float, samples_per_axis: int) -> np.ndarray:
    """Points of the box ``[lower, upper]`` with coordinate ``pin_index`` pinned.

    Enumerates the corners of the (d-1)-dimensional slice, plus an
    interior grid when ``samples_per_axis > 2``.
    """
    d = lower.shape[0]
    axes = []
    for j in range(d):
        if j == pin_index:
            axes.append(np.array([pin_value]))
            continue
        lo, hi = lower[j], upper[j]
        if hi <= lo:
            axes.append(np.array([lo]))
        elif samples_per_axis <= 2:
            axes.append(np.array([lo, hi]))
        else:
            axes.append(np.linspace(lo, hi, samples_per_axis))
    return np.array(list(itertools.product(*axes)))


def _corner_masks(d: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Precomputed slice-corner structure for the batched hull RHS.

    The hull extremises drift coordinate ``i`` over the corners of the
    box slices ``{x_i = lower_i}`` / ``{x_i = upper_i}``; the *union* of
    those slice corners over all ``i`` is exactly the ``2^d`` corners of
    the rectangle, and which bound each corner takes per coordinate is a
    property of the index pattern, not of the current rectangle.  So the
    boolean corner masks are built once; every RHS evaluation then
    materialises all corners with a single ``np.where``, computes their
    velocity envelope in one batched call, and gathers the slice
    extrema by precomputed index.

    Returns ``(masks, lo_sel, hi_sel)``: ``masks`` is ``(2^d, d)`` bool
    ("corner takes the upper bound here"), and ``lo_sel`` / ``hi_sel``
    are ``(d, 2^(d-1))`` integer arrays listing, per coordinate, the
    corners lying on its lower / upper slice.
    """
    masks = np.array(
        list(itertools.product([False, True], repeat=d))
    ).reshape(-1, d)
    lo_sel = np.stack([np.nonzero(~masks[:, i])[0] for i in range(d)])
    hi_sel = np.stack([np.nonzero(masks[:, i])[0] for i in range(d)])
    return masks, lo_sel, hi_sel


def hull_vector_field(
    model,
    x_samples_per_axis: int = 2,
    refine: bool = False,
    theta_method: str = "auto",
    batch: bool = True,
    backend=None,
):
    """The autonomous hull pair field ``(t, z) -> dz`` on ``z = (xlo, xhi)``.

    This is the right-hand side :func:`differential_hull_bounds`
    integrates; it is exposed so steady-state analyses can treat the
    hull pair as a fixed-point problem (the stationary rectangle is a
    zero of this field).  See :func:`differential_hull_bounds` for the
    parameter semantics.
    """
    d = model.dim
    extremizer = DriftExtremizer(model, method=theta_method, batch=batch,
                                 backend=backend)

    use_masks = batch and x_samples_per_axis <= 2
    if use_masks:
        corner_bits, lo_sel, hi_sel = _corner_masks(d)
        columns = np.arange(d)[:, None]

    def hull_field_batched(t, z):
        lower, upper = z[:d], z[d:]
        # Keep the slice box well-ordered under round-off.
        upper = np.maximum(upper, lower)
        if use_masks:
            corners = np.where(corner_bits, upper[None, :], lower[None, :])
            env_lo, env_hi = extremizer.velocity_envelope_batch(corners)
            dlo = env_lo[lo_sel, columns].min(axis=1)
            dhi = env_hi[hi_sel, columns].max(axis=1)
        else:
            blocks = []
            probes = []
            sizes = []
            for i in range(d):
                e = np.zeros(d)
                e[i] = 1.0
                for pin, sign in ((lower[i], -1.0), (upper[i], 1.0)):
                    pts = _slice_candidates(lower, upper, i, pin,
                                            x_samples_per_axis)
                    blocks.append(pts)
                    probes.append(np.tile(sign * e, (pts.shape[0], 1)))
                    sizes.append(pts.shape[0])
            values = extremizer.support_batch(np.vstack(blocks),
                                              np.vstack(probes))
            splits = np.split(values, np.cumsum(sizes)[:-1])
            dlo = np.array([-splits[2 * i].max() for i in range(d)])
            dhi = np.array([splits[2 * i + 1].max() for i in range(d)])
        if refine:
            for i in range(d):
                dlo[i] = min(
                    dlo[i],
                    _refined_extremum(extremizer, lower, upper, i, lower[i],
                                      minimise=True),
                )
                dhi[i] = max(
                    dhi[i],
                    _refined_extremum(extremizer, lower, upper, i, upper[i],
                                      minimise=False),
                )
        return np.concatenate([dlo, dhi])

    def hull_field_scalar(t, z):
        lower, upper = z[:d], z[d:]
        upper = np.maximum(upper, lower)
        dlo = np.empty(d)
        dhi = np.empty(d)
        for i in range(d):
            lo_candidates = _slice_candidates(lower, upper, i, lower[i],
                                              x_samples_per_axis)
            hi_candidates = _slice_candidates(lower, upper, i, upper[i],
                                              x_samples_per_axis)
            lo_best = min(
                extremizer.coordinate_range(x, i)[0] for x in lo_candidates
            )
            hi_best = max(
                extremizer.coordinate_range(x, i)[1] for x in hi_candidates
            )
            if refine:
                lo_best = min(
                    lo_best,
                    _refined_extremum(extremizer, lower, upper, i, lower[i],
                                      minimise=True),
                )
                hi_best = max(
                    hi_best,
                    _refined_extremum(extremizer, lower, upper, i, upper[i],
                                      minimise=False),
                )
            dlo[i] = lo_best
            dhi[i] = hi_best
        return np.concatenate([dlo, dhi])

    return hull_field_batched if batch else hull_field_scalar


def differential_hull_bounds(
    model,
    x0,
    t_eval,
    x_samples_per_axis: int = 2,
    refine: bool = False,
    theta_method: str = "auto",
    rtol: float = 1e-7,
    atol: float = 1e-9,
    blowup_threshold: float = 100.0,
    batch: bool = True,
    backend=None,
) -> HullBounds:
    """Integrate the differential hull of the model's mean-field inclusion.

    Parameters
    ----------
    model:
        Population model; its declared ``state_bounds`` are *not* used to
        clip (the raw hull may leave them, faithfully to the paper).
    x0:
        Initial state; the hull starts from the degenerate rectangle
        ``[x0, x0]``.
    t_eval:
        Output time grid.
    x_samples_per_axis:
        Sampling of each free coordinate of the box slice during the
        inner extremisation (2 = corners only, exact for monotone rates).
    refine:
        Polish each slice extremum with a bounded L-BFGS-B run; only
        useful for rates that are non-monotone in the state.
    theta_method:
        Extremiser strategy over ``Theta`` (see
        :class:`~repro.inclusion.DriftExtremizer`).
    blowup_threshold:
        The hull ODEs can diverge exponentially once the rectangle grows
        past the basin where the bounding fields are contracting (the
        "trivial" regime of Figure 4c).  Integration stops when any bound
        exceeds this magnitude and the remaining samples are filled with
        ``-inf`` / ``+inf``, which is the honest reading of a diverged
        hull.
    batch:
        Evaluate the RHS through the batched extremiser: the slice-corner
        masks are precomputed once and every evaluation issues a *single*
        :meth:`~repro.inclusion.DriftExtremizer.velocity_envelope_batch`
        call over the ``2^d`` rectangle corners, instead of
        ``O(d 2^(d-1))`` Python-level extremisations.  The candidate set
        and per-corner optima are identical, so the field — and hence
        the hull — matches the ``batch=False`` legacy loop (kept for
        differential testing) to integrator round-off.
    """
    t_eval = np.asarray(t_eval, dtype=float)
    x0 = np.asarray(x0, dtype=float)
    d = model.dim
    hull_field = hull_vector_field(
        model,
        x_samples_per_axis=x_samples_per_axis,
        refine=refine,
        theta_method=theta_method,
        batch=batch,
        backend=backend,
    )

    z0 = np.concatenate([x0, x0])

    def blowup_event(t, z):
        return blowup_threshold - float(np.max(np.abs(z)))

    blowup_event.terminal = True
    blowup_event.direction = -1.0

    with telemetry.span("hull.integrate", batch=batch) as sp:
        sol = solve_ivp(
            hull_field,
            (float(t_eval[0]), float(t_eval[-1])),
            z0,
            t_eval=t_eval,
            rtol=rtol,
            atol=atol,
            events=blowup_event,
        )
        sp.set("nfev", int(sol.nfev))
    telemetry.inc("hull.rhs_evals", int(sol.nfev))
    if not sol.success and sol.status != 1:
        raise RuntimeError(f"hull integration failed: {sol.message}")
    n_done = sol.t.shape[0]
    lower = np.full((t_eval.shape[0], d), -np.inf)
    upper = np.full((t_eval.shape[0], d), np.inf)
    lower[:n_done] = sol.y[:d].T
    upper[:n_done] = sol.y[d:].T
    return HullBounds(
        times=t_eval.copy(),
        lower=lower,
        upper=upper,
        state_names=model.state_names,
    )


def _refined_extremum(extremizer: DriftExtremizer, lower, upper, pin_index,
                      pin_value, minimise: bool) -> float:
    """L-BFGS-B polish of the slice extremisation (free coordinates only)."""
    d = lower.shape[0]
    free = [j for j in range(d) if j != pin_index]
    if not free:
        value = extremizer.coordinate_range(
            np.array([pin_value]), pin_index
        )
        return value[0] if minimise else value[1]

    def assemble(free_values):
        x = np.empty(d)
        x[pin_index] = pin_value
        x[free] = free_values
        return x

    def objective(free_values):
        x = assemble(free_values)
        lo, hi = extremizer.coordinate_range(x, pin_index)
        return lo if minimise else -hi

    start = np.array([0.5 * (lower[j] + upper[j]) for j in free])
    bounds = [(lower[j], upper[j]) for j in free]
    result = minimize(objective, start, method="L-BFGS-B", bounds=bounds)
    value = float(result.fun)
    return value if minimise else -value
