"""Transient bounds on the mean-field differential inclusion (Section IV).

Three bound computations, in increasing tightness-per-cost order:

- :mod:`repro.bounds.sweep` — the *uncertain* envelope: integrate the
  mean-field ODE for a grid of constant parameters and take pointwise
  extrema.  Exact for the uncertain scenario (Corollary 1), a strict
  under-approximation of the imprecise reachable set (Eq. 12).
- :mod:`repro.bounds.hull` — the *differential hull* (Section IV-B): a
  coordinate-wise rectangular over-approximation obtained by integrating
  a coupled pair of ODEs.  Cheap, sound, but loose for wide ``Theta``
  (Figures 4–5).
- :mod:`repro.bounds.pontryagin` — the Pontryagin maximum principle
  forward–backward sweep (Section IV-C): computes the exact extreme value
  of any linear functional ``c . x(T)`` over the solutions of the
  inclusion, together with the bang-bang parameter signal attaining it
  (Figures 1–2, 7).
"""

from repro.bounds.hull import (
    HullBounds,
    differential_hull_bounds,
    hull_vector_field,
)
from repro.bounds.pontryagin import (
    PontryaginResult,
    extremal_trajectories_batch,
    extremal_trajectory,
    pontryagin_transient_bounds,
    reachable_polytope_2d,
    switching_function,
    switching_times,
    switching_times_from_costate,
)
from repro.bounds.sweep import UncertainEnvelope, uncertain_envelope
from repro.bounds.templates import (
    TemplatePolytope,
    box_directions,
    octagon_directions,
    template_reachable_bounds,
)

__all__ = [
    "uncertain_envelope",
    "UncertainEnvelope",
    "differential_hull_bounds",
    "hull_vector_field",
    "HullBounds",
    "extremal_trajectory",
    "extremal_trajectories_batch",
    "pontryagin_transient_bounds",
    "reachable_polytope_2d",
    "switching_times",
    "switching_function",
    "switching_times_from_costate",
    "PontryaginResult",
    "TemplatePolytope",
    "box_directions",
    "octagon_directions",
    "template_reachable_bounds",
]
