"""Experiment result containers, JSON round-trips and ASCII rendering."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

__all__ = ["Series", "ExperimentResult", "render_table", "render_series_table"]


@dataclass
class Series:
    """One named numeric curve (e.g. ``x_I^max (imprecise)`` of Fig. 1)."""

    name: str
    times: np.ndarray
    values: np.ndarray

    def __post_init__(self):
        self.times = np.asarray(self.times, dtype=float)
        self.values = np.asarray(self.values, dtype=float)
        if self.times.shape != self.values.shape:
            raise ValueError(
                f"series {self.name!r}: times shape {self.times.shape} != "
                f"values shape {self.values.shape}"
            )

    @property
    def final(self) -> float:
        return float(self.values[-1])

    def at(self, t: float) -> float:
        """Linear interpolation of the series at time ``t``."""
        return float(np.interp(t, self.times, self.values))

    def to_json_dict(self) -> dict:
        """The ``{"times": [...], "values": [...]}`` payload of one curve."""
        return {"times": self.times.tolist(), "values": self.values.tolist()}

    @classmethod
    def from_json(cls, name: str, payload: dict) -> "Series":
        """Rebuild a series from its :meth:`to_json_dict` payload."""
        if not {"times", "values"} <= set(payload):
            raise ValueError(
                f"series {name!r}: payload needs 'times' and 'values' keys, "
                f"got {sorted(payload)}"
            )
        return cls(name=name, times=payload["times"], values=payload["values"])


@dataclass
class ExperimentResult:
    """One reproduced figure/table with its provenance.

    Attributes
    ----------
    experiment_id:
        Identifier matching DESIGN.md (``"fig1"``, ``"fig7"``,
        ``"gps_weights"``).
    title:
        Human-readable description.
    parameters:
        The parameter record used (for EXPERIMENTS.md provenance).
    series:
        The regenerated curves keyed by name.
    findings:
        Scalar results (switch times, optima, inclusion fractions, ...).
    notes:
        Free text: observed vs paper-expected shape.
    """

    experiment_id: str
    title: str
    parameters: Dict[str, object] = field(default_factory=dict)
    series: Dict[str, Series] = field(default_factory=dict)
    findings: Dict[str, float] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add_series(self, name: str, times, values) -> Series:
        series = Series(name=name, times=times, values=values)
        self.series[name] = series
        return series

    def add_finding(self, name: str, value: float) -> None:
        self.findings[name] = float(value)

    def add_note(self, text: str) -> None:
        self.notes.append(str(text))

    def to_json(self) -> str:
        """Serialise (series down-sampled to lists) for archival."""
        payload = {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "parameters": {k: _jsonable(v) for k, v in self.parameters.items()},
            "findings": self.findings,
            "notes": self.notes,
            "series": {
                name: s.to_json_dict() for name, s in self.series.items()
            },
        }
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, payload: Union[str, dict]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_json` output (text or parsed dict).

        The round-trip is lossless for everything :meth:`to_json` keeps:
        series become float arrays again, findings floats, parameters stay
        in their JSON form (arrays/tuples were already listified on the
        way out).  Required by the :mod:`repro.scenarios` disk cache.
        """
        if isinstance(payload, str):
            payload = json.loads(payload)
        if not isinstance(payload, dict):
            raise TypeError("payload must be a JSON object (dict or its text)")
        for key in ("experiment_id", "title"):
            if key not in payload:
                raise ValueError(f"payload is missing the {key!r} field")
        result = cls(
            experiment_id=str(payload["experiment_id"]),
            title=str(payload["title"]),
            parameters=dict(payload.get("parameters", {})),
            findings={k: float(v) for k, v in payload.get("findings", {}).items()},
            notes=[str(n) for n in payload.get("notes", [])],
        )
        for name, series_payload in payload.get("series", {}).items():
            result.series[name] = Series.from_json(name, series_payload)
        return result

    def render(self, time_points: Optional[Sequence[float]] = None) -> str:
        """Fixed-width text block: header, findings, sampled series."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        if self.parameters:
            params = ", ".join(f"{k}={_fmt(v)}" for k, v in self.parameters.items())
            lines.append(f"params: {params}")
        if self.findings:
            for key in sorted(self.findings):
                lines.append(f"  {key} = {self.findings[key]:.6g}")
        if self.series:
            lines.append(render_series_table(self.series, time_points=time_points))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _jsonable(value):
    if isinstance(value, (np.ndarray, tuple)):
        return np.asarray(value).tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    return value


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 float_format: str = "{:.6g}") -> str:
    """Render a fixed-width ASCII table."""
    headers = [str(h) for h in headers]
    text_rows = []
    for row in rows:
        text_rows.append(
            [
                float_format.format(cell) if isinstance(cell, (float, np.floating))
                else str(cell)
                for cell in row
            ]
        )
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        widths = [max(w, len(cell)) for w, cell in zip(widths, row)]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    rule = "-" * len(line)
    body = [
        "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        for row in text_rows
    ]
    return "\n".join([line, rule] + body)


def render_series_table(series: Dict[str, Series],
                        time_points: Optional[Sequence[float]] = None,
                        max_rows: int = 12) -> str:
    """Tabulate several series on a common set of sampling times."""
    if not series:
        return "(no series)"
    names = sorted(series)
    if time_points is None:
        reference = series[names[0]].times
        if reference.shape[0] <= max_rows:
            time_points = reference
        else:
            idx = np.linspace(0, reference.shape[0] - 1, max_rows).astype(int)
            time_points = reference[idx]
    headers = ["t"] + names
    rows = []
    for t in np.asarray(time_points, dtype=float):
        rows.append([float(t)] + [s.at(t) for s in (series[n] for n in names)])
    return render_table(headers, rows, float_format="{:.5g}")
