"""Result containers and plain-text rendering for the benchmark harness.

The paper's evaluation is figures; this library regenerates the
underlying numeric series and prints them.  The reporting layer keeps
that uniform:

- :class:`Series` — one named curve (times + values).
- :class:`ExperimentResult` — a figure/table reproduction: id, title,
  parameter record, series, scalar findings and free-text notes.
- :func:`render_table` / :func:`render_series_table` — fixed-width ASCII
  rendering used by the benches and examples.
"""

from repro.reporting.results import (
    ExperimentResult,
    Series,
    render_series_table,
    render_table,
)

__all__ = [
    "Series",
    "ExperimentResult",
    "render_table",
    "render_series_table",
]
