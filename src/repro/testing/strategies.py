"""Hypothesis strategies for the conformance harness.

Everything in :mod:`repro.testing.conformance` is parameterized by
*unit fractions* — points in ``[0, 1]^k`` mapped onto the admissible
state box, the parameter set, or a spec's declared validity ranges —
precisely so that property-based drivers stay trivial: hypothesis
draws fractions, the harness owns the (model-specific) geometry.

This module is the only place :mod:`repro.testing` touches hypothesis,
and the import is gated so the core harness stays usable (benchmarks,
CI scripts) in environments without it.
"""

from __future__ import annotations

try:
    from hypothesis import strategies as st
except ImportError:  # pragma: no cover - exercised only without hypothesis
    st = None

from repro.scenarios.spec import ScenarioSpec

__all__ = ["HAVE_HYPOTHESIS", "unit_fracs", "validity_fracs"]

HAVE_HYPOTHESIS = st is not None


def _require_hypothesis():
    if st is None:
        raise ImportError(
            "repro.testing.strategies requires hypothesis; install it or "
            "use ScenarioConformance's seeded defaults instead"
        )


def unit_fracs(rows: int, cols: int):
    """Strategy for a ``(rows, cols)`` stack of unit fractions.

    Feed the result to ``ScenarioConformance.states_from_fracs`` /
    ``thetas_from_fracs`` (or the ``*_fracs`` keyword of
    ``check_batch_consistency``).
    """
    _require_hypothesis()
    frac = st.floats(min_value=0.0, max_value=1.0,
                     allow_nan=False, allow_infinity=False)
    return st.lists(
        st.lists(frac, min_size=cols, max_size=cols),
        min_size=rows, max_size=rows,
    )


def validity_fracs(spec: ScenarioSpec):
    """Strategy for ``check_perturbation`` fractions: one unit fraction
    per validity-declared factory kwarg of ``spec``."""
    _require_hypothesis()
    keys = sorted(spec.validity_ranges)
    if not keys:
        raise ValueError(
            f"scenario {spec.name!r} declares no validity ranges"
        )
    frac = st.floats(min_value=0.0, max_value=1.0,
                     allow_nan=False, allow_infinity=False)
    return st.fixed_dictionaries({key: frac for key in keys})
