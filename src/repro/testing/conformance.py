"""The catalog-wide scenario conformance suite.

:class:`ScenarioConformance` derives, for any :class:`ScenarioSpec`,
the structural soundness checks the paper's methods guarantee — no
per-model test code required beyond registration:

``check_ordering``
    The three transient bound families nest per state coordinate at a
    sampled horizon (Section IV soundness)::

        uncertain envelope  ⊆  template box (exact imprecise bounds)
                            ⊆  differential hull

    The template box is computed by fixed-step Pontryagin sweeps, so
    its bounds carry ``O(dt)`` discretisation error and can sit
    slightly *inside* the true reachable extremes; the envelope solves
    the same ODEs adaptively.  :data:`TEMPLATE_TOL` absorbs that
    without masking real ordering violations (which show up at the
    1e-1 scale when a sign or side is wrong).  :data:`HULL_TOL` covers
    the template-vs-hull comparison, where both families are sound and
    only integration accuracy separates them.

``check_ensemble``
    Finite-``N`` grounding: the empirical mean of a vectorized-SSA
    ensemble at each extreme constant ``theta`` stays inside the
    mean-field envelope up to a CLT band plus an ``O(1/N)``
    finite-size allowance (Theorem 1 / Fig. 6 of the paper, as a
    structural property).

``check_dtmc_conservative``
    For every ``dtmc_reward`` question the spec declares, the
    interval-DTMC (Škulj) bounds must enclose the exact imprecise
    Kolmogorov bounds.  The question is executed through the *runner's*
    backend — the same code path ``python -m repro run`` uses — and the
    ``*_conservative`` findings it emits are asserted, so the harness
    can never drift from the production dispatch.

``check_batch_consistency``
    The model's batch declarations (``drift_batch``,
    ``affine_parts_batch``, ``jacobian_x_batch``) agree with their
    scalar counterparts row-by-row on arbitrary admissible states and
    parameters, and the affine decomposition reproduces the drift.

``check_perturbation``
    The structural checks survive perturbing factory kwargs inside the
    spec's declared :attr:`~repro.scenarios.ScenarioSpec.validity`
    ranges, and the drift extremizer still brackets sampled drifts on
    the perturbed model — the property hypothesis drives through
    ``tests/test_conformance.py``.

The checks raise :class:`ConformanceViolation` (an ``AssertionError``,
so pytest renders it natively) with the scenario name and coordinate in
the message.  :meth:`ScenarioConformance.run_all` executes every
applicable check and returns a :class:`ConformanceReport` — that is
what the catalog-sweep benchmark times and what ad-hoc spec authors can
call directly.

This module deliberately depends only on :mod:`numpy` and the library
itself — neither pytest nor hypothesis — so it is importable from
benchmarks, CI scripts and user code alike; the hypothesis strategies
live in :mod:`repro.testing.strategies` behind an import gate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bounds import (
    box_directions,
    differential_hull_bounds,
    template_reachable_bounds,
    uncertain_envelope,
)
from repro.inclusion import DriftExtremizer
from repro.params import DiscreteSet
from repro.scenarios import list_scenarios
from repro.scenarios.runner import run_question, spec_envelope_options
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "TEMPLATE_TOL",
    "HULL_TOL",
    "ConformanceViolation",
    "CheckOutcome",
    "ConformanceReport",
    "ScenarioConformance",
    "unique_model_cases",
    "dtmc_cases",
    "perturbation_cases",
    "golden_cases",
]

#: Slack for envelope-vs-template (Pontryagin time discretisation).
TEMPLATE_TOL = 5e-3
#: Slack for template-vs-hull (both sound; hull integrates adaptively).
HULL_TOL = 1e-6


class ConformanceViolation(AssertionError):
    """A structural soundness invariant failed for a scenario."""


@dataclass
class CheckOutcome:
    """One check's verdict inside a :class:`ConformanceReport`."""

    name: str
    status: str  # "passed" or "not-applicable" (violations raise)
    detail: str = ""
    seconds: float = 0.0


@dataclass
class ConformanceReport:
    """Every check :meth:`ScenarioConformance.run_all` executed."""

    scenario: str
    outcomes: List[CheckOutcome] = field(default_factory=list)

    @property
    def checks_passed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "passed")

    def render(self) -> str:
        lines = [f"conformance: {self.scenario}"]
        for o in self.outcomes:
            detail = f" — {o.detail}" if o.detail else ""
            lines.append(
                f"  {o.name}: {o.status} ({o.seconds:.3f}s){detail}"
            )
        return "\n".join(lines)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConformanceViolation(message)


class ScenarioConformance:
    """The inherited conformance suite of one scenario.

    Parameters
    ----------
    spec:
        Any :class:`~repro.scenarios.ScenarioSpec` — a catalog entry or
        an ad-hoc spec; registration is not required.
    model:
        Optional pre-built model (the spec's factory output), e.g. to
        share one instance across checks in a loop.
    """

    def __init__(self, spec: ScenarioSpec, model=None):
        self.spec = spec
        self.model = spec.build_model() if model is None else model

    # ------------------------------------------------------------------
    # Derivation helpers
    # ------------------------------------------------------------------

    def coordinates(self) -> List[Tuple[str, np.ndarray]]:
        """Per-coordinate observables ``x{i}`` covering the full state."""
        eye = np.eye(self.model.dim)
        return [(f"x{i}", eye[i]) for i in range(self.model.dim)]

    def envelope_options(self) -> Dict[str, object]:
        """The spec's declared envelope integrator options.

        Resolved through :func:`repro.scenarios.spec_envelope_options`
        — the same code path the runner's envelope backend uses — so a
        scenario that needs fixed-step RK4 (e.g. the bike model's
        sliding boundary) is honoured identically in tests and runs.
        """
        return spec_envelope_options(self.spec)

    def _state_box(self) -> Tuple[np.ndarray, np.ndarray]:
        """The admissible state box (unit box when undeclared)."""
        if self.model.state_lower is not None:
            return self.model.state_lower, self.model.state_upper
        return np.zeros(self.model.dim), np.ones(self.model.dim)

    def states_from_fracs(self, fracs) -> np.ndarray:
        """Map ``(n, d)`` unit fractions onto the admissible state box."""
        fracs = np.atleast_2d(np.asarray(fracs, dtype=float))
        lower, upper = self._state_box()
        return lower[None, :] + fracs * (upper - lower)[None, :]

    def thetas_from_fracs(self, fracs) -> np.ndarray:
        """Map ``(n, p)`` unit fractions onto the parameter set.

        Box-like sets interpolate their bounding box; finite sets
        (``DiscreteSet``) select member rows by fraction, so every
        produced parameter is admissible for any ``Theta``.
        """
        fracs = np.atleast_2d(np.asarray(fracs, dtype=float))
        theta_set = self.model.theta_set
        if isinstance(theta_set, DiscreteSet):
            idx = np.minimum(
                (fracs[:, 0] * theta_set.values.shape[0]).astype(int),
                theta_set.values.shape[0] - 1,
            )
            return theta_set.values[idx].copy()
        corners = theta_set.corners()
        lower, upper = corners.min(axis=0), corners.max(axis=0)
        return lower[None, :] + fracs * (upper - lower)[None, :]

    # ------------------------------------------------------------------
    # (a) envelope ⊆ template ⊆ hull ordering
    # ------------------------------------------------------------------

    def check_ordering(
        self,
        horizon: Optional[float] = None,
        resolution: int = 3,
        template_steps: int = 60,
        template_tol: float = TEMPLATE_TOL,
        hull_tol: float = HULL_TOL,
    ) -> Dict[str, np.ndarray]:
        """Pin the per-coordinate bound-family nesting at a horizon.

        Deliberately coarse grids: this is a structural ordering, not
        an accuracy test, so it must hold for *every* registered model.
        Returns the three bound families for the report/debugging.
        """
        spec, model = self.spec, self.model
        name = spec.name
        horizon = min(spec.horizon, 1.0) if horizon is None else horizon
        x0 = np.asarray(spec.x0)

        env = uncertain_envelope(
            model, x0, np.array([0.0, horizon]), resolution=resolution,
            observables=self.coordinates(), **self.envelope_options(),
        )
        polytope = template_reachable_bounds(
            model, x0, horizon, directions=box_directions(model.dim),
            n_steps=template_steps, max_iter=template_steps,
        )
        box_lower, box_upper = polytope.bounding_box()
        hull = differential_hull_bounds(
            model, x0, np.array([0.0, 0.5 * horizon, horizon])
        )

        for i in range(model.dim):
            env_lo = env.lower[f"x{i}"][-1]
            env_hi = env.upper[f"x{i}"][-1]
            # Constant parameters are admissible signals: the envelope
            # sits inside the exact imprecise (template) bounds.
            _require(
                box_lower[i] <= env_lo + template_tol,
                f"{name}: coord {i} envelope lower {env_lo:.6g} escapes "
                f"template lower {box_lower[i]:.6g}",
            )
            _require(
                env_hi <= box_upper[i] + template_tol,
                f"{name}: coord {i} envelope upper {env_hi:.6g} escapes "
                f"template upper {box_upper[i]:.6g}",
            )
            # The hull over-approximates the exact reachable box.
            _require(
                hull.lower[-1, i] <= box_lower[i] + hull_tol,
                f"{name}: coord {i} template lower {box_lower[i]:.6g} "
                f"escapes hull lower {hull.lower[-1, i]:.6g}",
            )
            _require(
                box_upper[i] <= hull.upper[-1, i] + hull_tol,
                f"{name}: coord {i} template upper {box_upper[i]:.6g} "
                f"escapes hull upper {hull.upper[-1, i]:.6g}",
            )
            # And the bounds themselves are ordered.
            _require(env_lo <= env_hi + 1e-12,
                     f"{name}: coord {i} envelope bounds inverted")
            _require(box_lower[i] <= box_upper[i] + template_tol,
                     f"{name}: coord {i} template bounds inverted")
        return {
            "envelope_lower": np.array(
                [env.lower[f"x{i}"][-1] for i in range(model.dim)]
            ),
            "envelope_upper": np.array(
                [env.upper[f"x{i}"][-1] for i in range(model.dim)]
            ),
            "template_lower": box_lower,
            "template_upper": box_upper,
            "hull_lower": hull.lower[-1],
            "hull_upper": hull.upper[-1],
        }

    # ------------------------------------------------------------------
    # (b) finite-N ensemble cross-check
    # ------------------------------------------------------------------

    def check_ensemble(
        self,
        population_size: int = 200,
        n_runs: int = 10,
        horizon: Optional[float] = None,
        seed: int = 2016,
        z: float = 4.0,
    ) -> Dict[str, float]:
        """Empirical ensemble means stay inside the envelope bounds.

        One vectorized-SSA ensemble per extreme constant ``theta``
        (the corners of ``Theta``); the per-coordinate mean at the
        final time must lie in the mean-field envelope widened by a
        ``z``-sigma CLT band plus an ``O(1/N)`` finite-size allowance
        (mean-field bias and initial-state lattice rounding are both
        first order in ``1/N``).
        """
        from repro.engine import sweep_constant_ensembles

        spec, model = self.spec, self.model
        horizon = min(spec.horizon, 1.0) if horizon is None else horizon
        thetas = model.theta_set.corners()
        results = sweep_constant_ensembles(
            spec.model_factory,
            spec.x0,
            population_size,
            thetas,
            t_final=horizon,
            n_runs=n_runs,
            seed=seed,
            n_samples=16,
            model_kwargs=spec.kwargs,
        )
        env = uncertain_envelope(
            model, np.asarray(spec.x0), np.array([0.0, horizon]),
            resolution=3, observables=self.coordinates(),
            **self.envelope_options(),
        )
        slack = 5.0 / population_size + 1e-3
        worst_margin = np.inf
        for i in range(model.dim):
            weight = np.eye(model.dim)[i]
            env_lo = env.lower[f"x{i}"][-1]
            env_hi = env.upper[f"x{i}"][-1]
            for k, batch in enumerate(results):
                finals = batch.observable(weight)[:, -1]
                mean = float(finals.mean())
                sem = float(finals.std(ddof=1)) / np.sqrt(n_runs)
                band = z * sem + slack
                _require(
                    env_lo - band <= mean <= env_hi + band,
                    f"{spec.name}: coord {i} ensemble mean {mean:.6g} at "
                    f"theta={thetas[k].tolist()} (N={population_size}, "
                    f"n_runs={n_runs}) escapes envelope "
                    f"[{env_lo:.6g}, {env_hi:.6g}] by more than the "
                    f"{band:.3g} CLT+finite-size band",
                )
                worst_margin = min(
                    worst_margin,
                    (env_hi + band - mean),
                    (mean - (env_lo - band)),
                )
        return {
            "theta_points": float(thetas.shape[0]),
            "population_size": float(population_size),
            "worst_margin": float(worst_margin),
        }

    # ------------------------------------------------------------------
    # (c) interval-DTMC conservativeness
    # ------------------------------------------------------------------

    def has_dtmc_question(self) -> bool:
        return any(q.kind == "dtmc_reward" for q in self.spec.questions)

    def check_dtmc_conservative(self) -> int:
        """Interval-DTMC bounds enclose the exact imprecise bounds.

        Runs every declared ``dtmc_reward`` question through the
        runner backend (the single shared code path) and asserts the
        conservativeness findings it emits.  Returns the number of
        questions checked; 0 means the spec declares none (the state
        space does not permit an exact finite-chain comparison).
        """
        spec = self.spec
        checked = 0
        for q in spec.questions:
            if q.kind != "dtmc_reward":
                continue
            outcome = run_question(spec, q, model=self.model)
            conservative = {
                k: v for k, v in outcome.findings.items()
                if k.endswith("_conservative")
            }
            _require(
                bool(conservative),
                f"{spec.name}: dtmc_reward question emitted no "
                "conservativeness findings (compare_exact disabled?)",
            )
            for key, value in conservative.items():
                _require(
                    bool(value),
                    f"{spec.name}: {key} = {value} — interval-DTMC bounds "
                    "fail to enclose the exact imprecise Kolmogorov bounds",
                )
            for key, value in outcome.findings.items():
                if key.endswith("_lower_final"):
                    upper = outcome.findings.get(
                        key.replace("_lower_final", "_upper_final")
                    )
                    if upper is not None:
                        _require(
                            value <= upper + 1e-9,
                            f"{spec.name}: {key} {value:.6g} exceeds its "
                            f"upper bound {upper:.6g}",
                        )
            checked += 1
        return checked

    # ------------------------------------------------------------------
    # (d) batch-vs-scalar differential spot checks
    # ------------------------------------------------------------------

    def check_batch_consistency(
        self,
        state_fracs=None,
        theta_fracs=None,
        n: int = 8,
        seed: int = 0,
        rtol: float = 1e-9,
        atol: float = 1e-11,
    ) -> int:
        """Batch kernel declarations agree with the scalar paths.

        ``state_fracs`` / ``theta_fracs`` are unit-fraction stacks
        (hypothesis-drawn in the property suite; a seeded uniform draw
        by default) mapped onto the admissible state box and parameter
        set.  Returns the number of rows checked.
        """
        model = self.model
        if state_fracs is None or theta_fracs is None:
            rng = np.random.default_rng(seed)
            if state_fracs is None:
                state_fracs = rng.uniform(size=(n, model.dim))
            if theta_fracs is None:
                theta_fracs = rng.uniform(size=(n, model.theta_dim))
        return self._check_model_consistency(
            model, self.states_from_fracs(state_fracs),
            self.thetas_from_fracs(theta_fracs), rtol=rtol, atol=atol,
        )

    def _check_model_consistency(self, model, states, thetas,
                                 rtol: float = 1e-9,
                                 atol: float = 1e-11) -> int:
        name = self.spec.name
        states = np.atleast_2d(states)
        thetas = np.atleast_2d(thetas)
        n = min(states.shape[0], thetas.shape[0])
        states, thetas = states[:n], thetas[:n]

        scalar_drift = np.stack(
            [model.drift(states[r], thetas[r]) for r in range(n)]
        )
        batched_drift = model.drift_batch(states, thetas)
        _require(
            np.allclose(batched_drift, scalar_drift, rtol=rtol, atol=atol),
            f"{name}: drift_batch diverges from the scalar drift "
            f"(max |delta| = {np.abs(batched_drift - scalar_drift).max():.3g})",
        )

        scalar_jac = np.stack(
            [model.jacobian_x(states[r], thetas[r]) for r in range(n)]
        )
        batched_jac = model.jacobian_x_batch(states, thetas)
        _require(
            np.allclose(batched_jac, scalar_jac, rtol=rtol, atol=max(atol, 1e-9)),
            f"{name}: jacobian_x_batch diverges from the scalar Jacobian "
            f"(max |delta| = {np.abs(batched_jac - scalar_jac).max():.3g})",
        )

        if model.is_affine:
            g0s, big_gs = model.affine_parts_batch(states)
            for r in range(n):
                g0, big_g = model.affine_parts(states[r])
                _require(
                    np.allclose(g0, g0s[r], rtol=rtol, atol=atol)
                    and np.allclose(big_g, big_gs[r], rtol=rtol, atol=atol),
                    f"{name}: affine_parts_batch row {r} diverges from the "
                    "scalar decomposition",
                )
            affine_drift = g0s + np.einsum("ndp,np->nd", big_gs, thetas)
            _require(
                np.allclose(affine_drift, scalar_drift, rtol=1e-8, atol=1e-9),
                f"{name}: affine decomposition g0 + G theta does not "
                "reproduce the drift (max |delta| = "
                f"{np.abs(affine_drift - scalar_drift).max():.3g})",
            )
        return n

    # ------------------------------------------------------------------
    # (e) kwargs/theta-box perturbation within declared validity
    # ------------------------------------------------------------------

    def perturbed_kwargs(self, fracs: Dict[str, float]) -> Dict[str, object]:
        """Factory kwargs with validity-declared keys moved to fractions.

        ``fracs`` maps a declared validity key to a unit fraction; the
        kwarg is set to ``low + frac * (high - low)``.
        """
        ranges = self.spec.validity_ranges
        unknown = sorted(set(fracs) - set(ranges))
        if unknown:
            raise KeyError(
                f"scenario {self.spec.name!r} declares no validity range "
                f"for {unknown}; declared: {sorted(ranges)}"
            )
        kwargs = self.spec.kwargs
        for key, frac in fracs.items():
            low, high = ranges[key]
            kwargs[key] = float(low) + float(frac) * (float(high) - float(low))
        return kwargs

    def check_perturbation(
        self,
        fracs: Optional[Dict[str, float]] = None,
        state_fracs=None,
        theta_fracs=None,
        n: int = 4,
        seed: int = 1,
    ) -> int:
        """Structural soundness survives in-validity kwarg perturbation.

        Builds the model at perturbed kwargs, re-runs the batch/affine
        consistency checks on it, and verifies the drift extremizer's
        per-coordinate range still brackets the drift at sampled
        admissible parameters — the soundness primitive every bound
        computation rests on.  Returns the number of rows checked.
        """
        spec = self.spec
        ranges = spec.validity_ranges
        if not ranges:
            raise ConformanceViolation(
                f"{spec.name}: no validity ranges declared; nothing to "
                "perturb (declare ScenarioSpec.validity)"
            )
        rng = np.random.default_rng(seed)
        if fracs is None:
            fracs = {key: float(rng.uniform()) for key in ranges}
        model = spec.model_factory(**self.perturbed_kwargs(fracs))
        _require(
            model.dim == self.model.dim
            and model.theta_dim == self.model.theta_dim,
            f"{spec.name}: perturbed kwargs changed the model's shape "
            f"({model.dim} states / {model.theta_dim} parameters vs "
            f"{self.model.dim} / {self.theta_dim_safe()})",
        )
        if state_fracs is None:
            state_fracs = rng.uniform(size=(n, model.dim))
        if theta_fracs is None:
            theta_fracs = rng.uniform(size=(n, model.theta_dim))

        # The state/theta boxes of the *perturbed* model may differ
        # (theta-bound kwargs are legitimate validity targets), so map
        # fractions through a conformance view of the perturbed model.
        perturbed_view = ScenarioConformance.__new__(ScenarioConformance)
        perturbed_view.spec = spec
        perturbed_view.model = model
        states = perturbed_view.states_from_fracs(state_fracs)
        thetas = perturbed_view.thetas_from_fracs(theta_fracs)
        checked = self._check_model_consistency(model, states, thetas)

        extremizer = DriftExtremizer(model)
        for r in range(states.shape[0]):
            drift = model.drift(states[r], thetas[r])
            for i in range(model.dim):
                low, high = extremizer.coordinate_range(states[r], i)
                scale = 1e-7 * (1.0 + abs(drift[i]))
                _require(
                    low - scale <= drift[i] <= high + scale,
                    f"{spec.name}: perturbed model (fracs {fracs}) drift "
                    f"coord {i} = {drift[i]:.6g} escapes the extremizer "
                    f"range [{low:.6g}, {high:.6g}] at "
                    f"x={states[r].tolist()}",
                )
        return checked

    def theta_dim_safe(self) -> int:
        return self.model.theta_dim

    # ------------------------------------------------------------------
    # (f) golden finding pins against the paper's figures
    # ------------------------------------------------------------------

    def check_golden(self, rtol: float = 5e-4) -> int:
        """Recomputed findings match the spec's declared golden pins.

        Re-runs every question through the runner backend (the code
        path ``python -m repro run`` uses, bypassing the disk cache),
        merges the prefixed findings and compares each declared
        :attr:`~repro.scenarios.ScenarioSpec.golden` pin.  A pin is
        either a bare value (checked at ``rtol``) or a ``(value, rtol)``
        pair carrying its own tolerance — e.g. for stochastic findings
        that only reproduce to a few digits.  Returns the number of
        pins checked.
        """
        spec = self.spec
        pins = spec.golden_values
        if not pins:
            raise ConformanceViolation(
                f"{spec.name}: no golden pins declared; nothing to check "
                "(declare ScenarioSpec.golden)"
            )
        findings: Dict[str, float] = {}
        for q in spec.questions:
            # Backends emit findings already label-prefixed.
            outcome = run_question(spec, q, model=self.model)
            findings.update(outcome.findings)
        for key, pin in pins.items():
            expected, tol = (
                (float(pin[0]), float(pin[1]))
                if isinstance(pin, (tuple, list)) else (float(pin), rtol)
            )
            _require(
                key in findings,
                f"{spec.name}: golden pin {key!r} matches no emitted "
                f"finding; available: {sorted(findings)}",
            )
            actual = float(findings[key])
            _require(
                abs(actual - expected) <= tol * max(1.0, abs(expected)),
                f"{spec.name}: golden finding {key} = {actual:.12g} "
                f"deviates from the pinned {expected:.12g} by more than "
                f"rtol={tol:g}",
            )
        return len(pins)

    # ------------------------------------------------------------------
    # The whole suite
    # ------------------------------------------------------------------

    def run_all(
        self,
        ensemble: bool = True,
        population_size: int = 200,
        n_runs: int = 10,
    ) -> ConformanceReport:
        """Execute every applicable check; violations raise."""
        report = ConformanceReport(scenario=self.spec.name)

        def record(name, fn, applicable=True, detail=""):
            if not applicable:
                report.outcomes.append(
                    CheckOutcome(name, "not-applicable", detail)
                )
                return
            start = time.perf_counter()
            result = fn()
            report.outcomes.append(CheckOutcome(
                name, "passed", str(result) if result is not None else "",
                seconds=time.perf_counter() - start,
            ))

        record("ordering", self.check_ordering)
        record("batch-consistency", self.check_batch_consistency)
        record(
            "ensemble",
            lambda: self.check_ensemble(
                population_size=population_size, n_runs=n_runs
            ),
            applicable=ensemble,
            detail="disabled by caller",
        )
        record(
            "dtmc-conservative",
            self.check_dtmc_conservative,
            applicable=self.has_dtmc_question(),
            detail="no dtmc_reward question declared",
        )
        record(
            "perturbation",
            self.check_perturbation,
            applicable=bool(self.spec.validity),
            detail="no validity ranges declared",
        )
        record(
            "golden",
            self.check_golden,
            applicable=bool(self.spec.golden),
            detail="no golden pins declared",
        )
        return report


# ----------------------------------------------------------------------
# Catalog-wide case derivation (shared by tests and benchmarks)
# ----------------------------------------------------------------------

def unique_model_cases(
    specs: Optional[Sequence[ScenarioSpec]] = None,
) -> List[ScenarioSpec]:
    """One spec per distinct ``(factory, kwargs, x0)`` in the catalog.

    Several catalog entries intentionally share a model (e.g. the SIR
    transient/hull/ensemble scenarios); model-level checks need each
    model once.  Defaults to the full registry, so newly registered
    scenarios inherit every parametrized conformance test with no test
    code of their own.
    """
    seen: Dict[tuple, ScenarioSpec] = {}
    for spec in (list_scenarios() if specs is None else specs):
        key = (spec.factory_ref, str(sorted(spec.kwargs.items())), spec.x0)
        if key not in seen:
            seen[key] = spec
    return list(seen.values())


def dtmc_cases(
    specs: Optional[Sequence[ScenarioSpec]] = None,
) -> List[ScenarioSpec]:
    """Specs declaring at least one ``dtmc_reward`` question."""
    return [
        spec for spec in (list_scenarios() if specs is None else specs)
        if any(q.kind == "dtmc_reward" for q in spec.questions)
    ]


def perturbation_cases(
    specs: Optional[Sequence[ScenarioSpec]] = None,
) -> List[ScenarioSpec]:
    """Specs declaring kwarg validity ranges (perturbation targets)."""
    return [
        spec for spec in (list_scenarios() if specs is None else specs)
        if spec.validity
    ]


def golden_cases(
    specs: Optional[Sequence[ScenarioSpec]] = None,
) -> List[ScenarioSpec]:
    """Specs declaring golden finding pins (paper-figure anchors)."""
    return [
        spec for spec in (list_scenarios() if specs is None else specs)
        if spec.golden
    ]
