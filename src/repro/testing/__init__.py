"""repro.testing — the catalog-wide scenario conformance subsystem.

Registering a :class:`~repro.scenarios.ScenarioSpec` is the *entire*
cost of testing a new model: :class:`ScenarioConformance` derives the
structural soundness suite — bound-family ordering (envelope ⊆ template
⊆ hull), finite-``N`` ensemble grounding, interval-DTMC
conservativeness, batch-vs-scalar kernel agreement,
validity-range perturbation, and golden-pin verification against the
paper's figures — from the spec alone, and the test files under
``tests/`` are thin parametrizations over the registry.

The core (:mod:`repro.testing.conformance`) depends only on numpy and
the library itself, so benchmarks and CI scripts can run the same
checks the test suite runs; hypothesis integration is isolated in
:mod:`repro.testing.strategies` behind an import gate.

Typical usage::

    from repro.testing import ScenarioConformance, unique_model_cases

    for spec in unique_model_cases():
        print(ScenarioConformance(spec).run_all().render())
"""

from repro.testing.conformance import (
    HULL_TOL,
    TEMPLATE_TOL,
    CheckOutcome,
    ConformanceReport,
    ConformanceViolation,
    ScenarioConformance,
    dtmc_cases,
    golden_cases,
    perturbation_cases,
    unique_model_cases,
)

__all__ = [
    "TEMPLATE_TOL",
    "HULL_TOL",
    "ConformanceViolation",
    "CheckOutcome",
    "ConformanceReport",
    "ScenarioConformance",
    "unique_model_cases",
    "dtmc_cases",
    "perturbation_cases",
    "golden_cases",
]
