"""Parameter domains for imprecise and uncertain stochastic models.

The paper (Bortolussi & Gast, DSN 2016) models uncertainty through a
parameter vector ``theta`` constrained to a compact set ``Theta``.  This
package provides the concrete representations of such sets:

- :class:`Interval` — a closed interval ``[lo, hi]`` for a scalar parameter.
- :class:`Box` — a product of named intervals (the common case; every model
  in the paper uses a box).
- :class:`DiscreteSet` — a finite list of admissible parameter vectors.
- :class:`Singleton` — a degenerate set with one element (a *precise* model).

All sets share the :class:`ParameterSet` interface: membership tests,
projection onto the set, corner enumeration, uniform grids and random
sampling.  The numerical methods in :mod:`repro.bounds` only interact with
parameters through this interface, which is what makes them generic.
"""

from repro.params.sets import (
    Box,
    DiscreteSet,
    Interval,
    ParameterSet,
    Singleton,
)

__all__ = [
    "ParameterSet",
    "Interval",
    "Box",
    "DiscreteSet",
    "Singleton",
]
