"""Concrete parameter-set implementations.

A parameter set ``Theta`` is the domain in which the imprecise parameter
``theta(t)`` of an imprecise Markov chain is allowed to vary (Definition 1
of the paper), or in which the unknown constant parameter of an uncertain
chain lives (Definition 2).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ParameterSet", "Interval", "Box", "DiscreteSet", "Singleton"]


def _as_vector(theta) -> np.ndarray:
    """Coerce a scalar or sequence into a 1-D float array."""
    arr = np.atleast_1d(np.asarray(theta, dtype=float))
    if arr.ndim != 1:
        raise ValueError(f"parameter must be a scalar or vector, got shape {arr.shape}")
    return arr


class ParameterSet:
    """Abstract interface of a compact parameter domain ``Theta``.

    Subclasses must provide :attr:`dim`, :meth:`contains`,
    :meth:`project`, :meth:`corners`, :meth:`grid` and :meth:`sample`.
    """

    #: Names of the parameter coordinates (informational, used in reports).
    names: Tuple[str, ...]

    @property
    def dim(self) -> int:
        """Number of scalar parameters in the set."""
        raise NotImplementedError

    def contains(self, theta, tol: float = 1e-12) -> bool:
        """Return ``True`` when ``theta`` belongs to the set (up to ``tol``)."""
        raise NotImplementedError

    def project(self, theta) -> np.ndarray:
        """Return the closest point of the set to ``theta`` (Euclidean)."""
        raise NotImplementedError

    def corners(self) -> np.ndarray:
        """Return the extreme points of the set, shape ``(n_corners, dim)``.

        For a box these are the ``2**dim`` vertices.  Extremising an
        affine-in-theta function over the set only requires the corners,
        which is the fast path used throughout :mod:`repro.bounds`.
        """
        raise NotImplementedError

    def grid(self, resolution: int) -> np.ndarray:
        """Return a uniform grid over the set, shape ``(n_points, dim)``."""
        raise NotImplementedError

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Draw ``n`` uniform samples from the set, shape ``(n, dim)``."""
        raise NotImplementedError

    def project_batch(self, thetas) -> np.ndarray:
        """Project a batch of parameter vectors, shape ``(n, dim)``.

        The generic implementation loops over rows; box-like sets
        override it with a single clip so the vectorized SSA engine can
        project whole ensembles per step.
        """
        arr = np.atleast_2d(np.asarray(thetas, dtype=float))
        return np.stack([self.project(row) for row in arr])

    def center(self) -> np.ndarray:
        """Return a canonical interior point (the mean of the corners)."""
        return np.mean(self.corners(), axis=0)

    def __contains__(self, theta) -> bool:
        return self.contains(theta)


class Interval(ParameterSet):
    """A closed interval ``[lower, upper]`` for a single scalar parameter.

    This is the set used for the SIR contact rate ``theta`` in Section V
    (``theta in [1, 10]``).

    >>> theta = Interval(1.0, 10.0, name="contact_rate")
    >>> theta.contains(5.0)
    True
    >>> theta.corners()
    array([[ 1.],
           [10.]])
    """

    def __init__(self, lower: float, upper: float, name: str = "theta"):
        lower, upper = float(lower), float(upper)
        if not np.isfinite(lower) or not np.isfinite(upper):
            raise ValueError("interval bounds must be finite")
        if lower > upper:
            raise ValueError(f"lower bound {lower} exceeds upper bound {upper}")
        self.lower = lower
        self.upper = upper
        self.names = (name,)

    @property
    def dim(self) -> int:
        return 1

    @property
    def width(self) -> float:
        """Length of the interval."""
        return self.upper - self.lower

    def contains(self, theta, tol: float = 1e-12) -> bool:
        value = float(_as_vector(theta)[0])
        return self.lower - tol <= value <= self.upper + tol

    def project(self, theta) -> np.ndarray:
        value = float(_as_vector(theta)[0])
        return np.array([min(max(value, self.lower), self.upper)])

    def project_batch(self, thetas) -> np.ndarray:
        arr = np.atleast_2d(np.asarray(thetas, dtype=float))
        if arr.shape[1] != 1:
            raise ValueError(f"expected (n, 1) parameters, got {arr.shape}")
        return np.clip(arr, self.lower, self.upper)

    def corners(self) -> np.ndarray:
        return np.array([[self.lower], [self.upper]])

    def grid(self, resolution: int) -> np.ndarray:
        if resolution < 1:
            raise ValueError("resolution must be >= 1")
        if resolution == 1:
            return np.array([[0.5 * (self.lower + self.upper)]])
        return np.linspace(self.lower, self.upper, resolution)[:, None]

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        return rng.uniform(self.lower, self.upper, size=(n, 1))

    def __repr__(self) -> str:
        return f"Interval({self.lower}, {self.upper}, name={self.names[0]!r})"


class Box(ParameterSet):
    """A product of named intervals: the standard multi-parameter domain.

    The GPS model of Section VI uses a 2-D box
    ``[lambda1_min, lambda1_max] x [lambda2_min, lambda2_max]``.

    >>> box = Box([("lam1", 1.0, 7.0), ("lam2", 2.0, 3.0)])
    >>> box.dim
    2
    >>> box.corners().shape
    (4, 2)
    """

    def __init__(self, intervals: Iterable):
        lowers, uppers, names = [], [], []
        for entry in intervals:
            if isinstance(entry, Interval):
                names.append(entry.names[0])
                lowers.append(entry.lower)
                uppers.append(entry.upper)
            else:
                name, lo, hi = entry
                lo, hi = float(lo), float(hi)
                if lo > hi:
                    raise ValueError(f"parameter {name!r}: lower {lo} > upper {hi}")
                names.append(str(name))
                lowers.append(lo)
                uppers.append(hi)
        if not names:
            raise ValueError("a Box needs at least one interval")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate parameter names in {names}")
        self.lowers = np.asarray(lowers, dtype=float)
        self.uppers = np.asarray(uppers, dtype=float)
        if not (np.isfinite(self.lowers).all() and np.isfinite(self.uppers).all()):
            raise ValueError("box bounds must be finite")
        self.names = tuple(names)

    @classmethod
    def from_bounds(cls, lowers: Sequence[float], uppers: Sequence[float],
                    names: Optional[Sequence[str]] = None) -> "Box":
        """Build a box from parallel lower/upper bound vectors."""
        lowers = list(lowers)
        uppers = list(uppers)
        if len(lowers) != len(uppers):
            raise ValueError("lowers and uppers must have the same length")
        if names is None:
            names = [f"theta{i}" for i in range(len(lowers))]
        return cls(zip(names, lowers, uppers))

    @property
    def dim(self) -> int:
        return len(self.names)

    def interval(self, index_or_name) -> Interval:
        """Return one coordinate of the box as an :class:`Interval`."""
        if isinstance(index_or_name, str):
            index = self.names.index(index_or_name)
        else:
            index = int(index_or_name)
        return Interval(self.lowers[index], self.uppers[index], name=self.names[index])

    def contains(self, theta, tol: float = 1e-12) -> bool:
        vec = _as_vector(theta)
        if vec.shape[0] != self.dim:
            return False
        return bool(
            np.all(vec >= self.lowers - tol) and np.all(vec <= self.uppers + tol)
        )

    def project(self, theta) -> np.ndarray:
        vec = _as_vector(theta)
        if vec.shape[0] != self.dim:
            raise ValueError(f"expected {self.dim} parameters, got {vec.shape[0]}")
        return np.clip(vec, self.lowers, self.uppers)

    def project_batch(self, thetas) -> np.ndarray:
        arr = np.atleast_2d(np.asarray(thetas, dtype=float))
        if arr.shape[1] != self.dim:
            raise ValueError(f"expected (n, {self.dim}) parameters, got {arr.shape}")
        return np.clip(arr, self.lowers, self.uppers)

    def corners(self) -> np.ndarray:
        choices = [(lo, hi) for lo, hi in zip(self.lowers, self.uppers)]
        return np.array(list(itertools.product(*choices)))

    def grid(self, resolution: int) -> np.ndarray:
        if resolution < 1:
            raise ValueError("resolution must be >= 1")
        axes = []
        for lo, hi in zip(self.lowers, self.uppers):
            if resolution == 1:
                axes.append(np.array([0.5 * (lo + hi)]))
            else:
                axes.append(np.linspace(lo, hi, resolution))
        mesh = np.meshgrid(*axes, indexing="ij")
        return np.stack([m.ravel() for m in mesh], axis=-1)

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        return rng.uniform(self.lowers, self.uppers, size=(n, self.dim))

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}=[{lo}, {hi}]"
            for name, lo, hi in zip(self.names, self.lowers, self.uppers)
        )
        return f"Box({parts})"


class DiscreteSet(ParameterSet):
    """A finite set of admissible parameter vectors.

    Useful when the environment can only switch between a handful of known
    regimes (e.g. "sunny"/"rainy" infection rates in the cholera example of
    the introduction).
    """

    def __init__(self, values, names: Optional[Sequence[str]] = None):
        arr = np.asarray(values, dtype=float)
        if arr.ndim == 1:
            arr = arr[:, None]
        if arr.ndim != 2 or arr.shape[0] == 0:
            raise ValueError("values must be a non-empty (n, dim) array")
        self.values = arr
        if names is None:
            names = [f"theta{i}" for i in range(arr.shape[1])]
        if len(names) != arr.shape[1]:
            raise ValueError("one name per parameter coordinate is required")
        self.names = tuple(names)

    @property
    def dim(self) -> int:
        return self.values.shape[1]

    def contains(self, theta, tol: float = 1e-12) -> bool:
        vec = _as_vector(theta)
        if vec.shape[0] != self.dim:
            return False
        return bool(np.any(np.all(np.abs(self.values - vec) <= tol, axis=1)))

    def project(self, theta) -> np.ndarray:
        vec = _as_vector(theta)
        dists = np.linalg.norm(self.values - vec, axis=1)
        return self.values[int(np.argmin(dists))].copy()

    def project_batch(self, thetas) -> np.ndarray:
        arr = np.atleast_2d(np.asarray(thetas, dtype=float))
        if arr.shape[1] != self.dim:
            raise ValueError(f"expected (n, {self.dim}) parameters, got {arr.shape}")
        dists = np.linalg.norm(self.values[None, :, :] - arr[:, None, :], axis=2)
        return self.values[np.argmin(dists, axis=1)].copy()

    def corners(self) -> np.ndarray:
        return self.values.copy()

    def grid(self, resolution: int) -> np.ndarray:
        return self.values.copy()

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        idx = rng.integers(0, self.values.shape[0], size=n)
        return self.values[idx].copy()

    def __repr__(self) -> str:
        return f"DiscreteSet({self.values.shape[0]} points, dim={self.dim})"


class Singleton(DiscreteSet):
    """A one-element parameter set: the model degenerates to a precise CTMC.

    With a singleton Theta the mean-field inclusion collapses to the
    classical mean-field ODE of Kurtz, which is the consistency check used
    in several tests (`Theta = {theta}` makes Theorem 1 reduce to [17]).
    """

    def __init__(self, value, names: Optional[Sequence[str]] = None):
        vec = _as_vector(value)
        super().__init__(vec[None, :], names=names)

    @property
    def value(self) -> np.ndarray:
        """The single admissible parameter vector."""
        return self.values[0].copy()

    def __repr__(self) -> str:
        return f"Singleton({self.values[0]!r})"
