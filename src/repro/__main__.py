"""``python -m repro`` — the scenario catalog on the command line.

Subcommands:

- ``list [--tag TAG]`` — one line per registered scenario;
- ``describe NAME`` — the full declarative spec (model, questions,
  cache key);
- ``run NAME [--no-cache] [--refresh] [--processes N] [--cache-dir D]
  [--backend B] [--on-error M] [--trace] [--metrics-out F]
  [--trace-out F]`` — execute (or recall) every question and print the
  rendered result plus the run report with its cache-hit counter;
  ``--backend`` selects the compiled-array backend (see
  :mod:`repro.backend`) for the whole run; ``--on-error=partial``
  isolates per-question failures (each failed question is reported and
  the survivors still render) instead of aborting — exit code ``0``
  means every question ran, ``3`` a partial result, ``4`` that every
  question failed; the telemetry flags print the span tree, dump the
  metrics snapshot and export a ``chrome://tracing`` timeline;
- ``clear-cache [NAME] [--cache-dir D]`` — drop cached artifacts;
- ``lint [--strict] [--format=text|json] [--root D] [--no-registry]
  [--rules]`` — the repo's static-analysis gate (AST rules + registry
  contract audit, see :mod:`repro.analysis.lint`).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_list(args) -> int:
    from repro.scenarios import list_scenarios

    specs = list_scenarios(tag=args.tag)
    if not specs:
        print("no scenarios registered"
              + (f" with tag {args.tag!r}" if args.tag else ""))
        return 1
    width = max(len(s.name) for s in specs)
    for spec in specs:
        kinds = ",".join(q.kind for q in spec.questions)
        print(f"{spec.name.ljust(width)}  [{kinds}]  {spec.title}")
    print(f"\n{len(specs)} scenarios; `python -m repro describe <name>` "
          "for details, `run <name>` to execute")
    return 0


def _lookup(name: str):
    """Registry lookup with the CLI's unknown-name error handling.

    Only the lookup's ``KeyError`` is converted to a clean exit —
    errors raised while *running* a scenario propagate with their
    tracebacks intact.
    """
    from repro.scenarios import get_scenario

    try:
        return get_scenario(name)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        raise SystemExit(2) from None


def _cmd_describe(args) -> int:
    print(_lookup(args.name).describe())
    return 0


def _cmd_run(args) -> int:
    from repro.scenarios import cache_path, run_scenario

    spec = _lookup(args.name)
    observing = args.trace or args.metrics_out or args.trace_out
    if observing:
        from repro import telemetry

        telemetry.enable()
        telemetry.clear()
    if args.backend is not None:
        # Make the choice the process default too, so kernels resolved
        # outside the runner's explicit threading (helpers, plotting)
        # agree with the run; unknown/missing names warn and fall back
        # to numpy here, before any work starts.  Resolved after the
        # telemetry switch so the resolve/fallback counters land in the
        # run's snapshot.
        from repro.backend import resolve_backend, set_backend

        set_backend(resolve_backend(args.backend))
    if args.refresh:
        # Unlink by content hash, not by stored name: the lookup is
        # content-addressed, so this is the entry a run would be served.
        cache_path(spec, args.cache_dir).unlink(missing_ok=True)
    run = run_scenario(
        spec,
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        processes=args.processes,
        backend=args.backend,
        on_error=args.on_error,
    )
    print(run.result.render())
    print()
    print(run.report.render())
    if run.failures:
        print()
        print(f"failed questions ({len(run.failures)}):")
        for failure in run.failures:
            print(f"  - {failure.describe()}")
    if observing:
        if args.trace:
            print()
            print("trace:")
            print(telemetry.render_trace())
        if args.metrics_out:
            path = telemetry.save_snapshot(args.metrics_out,
                                           telemetry.snapshot())
            print(f"metrics snapshot written to {path}")
        if args.trace_out:
            path = telemetry.save_chrome_trace(args.trace_out)
            print(f"chrome trace written to {path} "
                  "(load via chrome://tracing or ui.perfetto.dev)")
    if run.failures:
        # Distinct exit codes so scripted callers can tell a partial
        # result (3: some questions survived) from a total loss (4).
        return 4 if len(run.failures) >= len(spec.questions) else 3
    return 0


def _cmd_clear_cache(args) -> int:
    from repro.scenarios import cache_path, clear_cache, get_scenario

    removed = clear_cache(args.cache_dir, scenario=args.name)
    if args.name is not None:
        # Lookup is content-addressed, so the entry serving this
        # scenario may have been stored under a variant's name; unlink
        # the named spec's own hash too (mirrors `run --refresh`).
        try:
            path = cache_path(get_scenario(args.name), args.cache_dir)
        except KeyError:
            path = None
        if path is not None and path.exists():
            path.unlink()
            removed += 1
    print(f"removed {removed} cached entr{'y' if removed == 1 else 'ies'}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Declarative scenario catalog of the imprecise "
                    "mean-field toolkit.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list registered scenarios")
    p_list.add_argument("--tag", default=None,
                        help="only scenarios carrying this tag")
    p_list.set_defaults(fn=_cmd_list)

    p_desc = sub.add_parser("describe", help="show one scenario's spec")
    p_desc.add_argument("name")
    p_desc.set_defaults(fn=_cmd_describe)

    p_run = sub.add_parser("run", help="run (or recall) a scenario")
    p_run.add_argument("name")
    p_run.add_argument("--no-cache", action="store_true",
                       help="neither read nor write the disk cache")
    p_run.add_argument("--refresh", action="store_true",
                       help="drop this scenario's cached entries first")
    p_run.add_argument("--processes", type=int, default=None,
                       help="fan independent questions over N processes")
    p_run.add_argument("--cache-dir", default=None,
                       help="cache directory (default $REPRO_CACHE_DIR "
                            "or ~/.cache/repro-scenarios)")
    p_run.add_argument("--backend", default=None, metavar="NAME",
                       help="compiled-array backend for the run "
                            "(numpy, numba, ...); unknown or missing "
                            "backends warn and fall back to numpy")
    p_run.add_argument("--on-error", choices=("raise", "partial"),
                       default="raise",
                       help="'partial' isolates failing questions and "
                            "renders the survivors (exit 3 on a partial "
                            "result, 4 when every question failed); "
                            "'raise' (default) aborts on the first "
                            "failure")
    p_run.add_argument("--trace", action="store_true",
                       help="enable telemetry and print the span tree")
    p_run.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="enable telemetry and write the metrics "
                            "snapshot (counters/gauges/histograms) as "
                            "JSON")
    p_run.add_argument("--trace-out", default=None, metavar="PATH",
                       help="enable telemetry and write a Chrome-trace "
                            "JSON timeline (chrome://tracing)")
    p_run.set_defaults(fn=_cmd_run)

    p_clear = sub.add_parser("clear-cache", help="drop cached artifacts")
    p_clear.add_argument("name", nargs="?", default=None,
                         help="only entries of this scenario")
    p_clear.add_argument("--cache-dir", default=None)
    p_clear.set_defaults(fn=_cmd_clear_cache)

    p_lint = sub.add_parser(
        "lint", help="run the static-analysis gate (AST + registry audit)"
    )
    from repro.analysis.lint.cli import add_lint_arguments, main as lint_main

    add_lint_arguments(p_lint)
    p_lint.set_defaults(fn=lint_main)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except SystemExit as exc:  # _lookup's clean unknown-name exit
        return int(exc.code or 0)


if __name__ == "__main__":
    sys.exit(main())
