"""Differential inclusions ``x' in F(x)`` and their solution machinery.

The mean-field limit of an imprecise population process (Theorem 1) is a
differential inclusion whose right-hand side is the *parametric* family
``F(x) = {f(x, theta) : theta in Theta}``.  This package provides:

- :class:`DriftExtremizer` — extremises linear functionals of the drift
  over ``Theta`` (the primitive every numerical method reduces to), with
  a closed-form bang-bang fast path for affine-in-theta models and a
  corner/grid/refined fallback otherwise.
- :class:`ParametricInclusion` — the inclusion object: support functions,
  velocity envelopes, solutions under explicit parameter signals
  (constant, piecewise-constant, or state-feedback selections).
- :func:`euler_selection_solve` — a one-step-selection Euler scheme that
  follows an arbitrary measurable selector, used to produce *witness*
  solutions of the inclusion.
"""

from repro.inclusion.extremizers import DriftExtremizer
from repro.inclusion.parametric import (
    ParametricInclusion,
    euler_selection_solve,
)

__all__ = [
    "DriftExtremizer",
    "ParametricInclusion",
    "euler_selection_solve",
]
