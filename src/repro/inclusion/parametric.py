"""The parametric differential inclusion object.

:class:`ParametricInclusion` is the concrete representation of the
mean-field limit of Theorem 1:

.. math::
    \\dot x \\in F(x) = \\{ f(x, \\theta) : \\theta \\in \\Theta \\}

The set ``F(x)`` is never materialised; all queries go through the model
drift and the :class:`~repro.inclusion.extremizers.DriftExtremizer`.
Witness solutions (elements of the solution set ``S_{F, x0}``) are
produced by following explicit parameter signals — constant parameters,
piecewise-constant schedules, or state-feedback selectors — which is
exactly how the paper produces the trajectories of Figures 2 and 6.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.inclusion.extremizers import DriftExtremizer
from repro.ode import Trajectory, rk4_integrate, rk4_step, solve_ode

__all__ = ["ParametricInclusion", "euler_selection_solve"]


class ParametricInclusion:
    """The mean-field differential inclusion of an imprecise model.

    Parameters
    ----------
    model:
        The :class:`~repro.population.PopulationModel` providing
        ``drift(x, theta)`` and ``theta_set``.
    extremizer:
        Optional pre-configured :class:`DriftExtremizer`; built with
        defaults (``method="auto"``) when omitted.
    """

    def __init__(self, model, extremizer: Optional[DriftExtremizer] = None):
        self.model = model
        self.extremizer = extremizer or DriftExtremizer(model)

    @property
    def dim(self) -> int:
        return self.model.dim

    # ------------------------------------------------------------------
    # Set-valued right-hand side queries
    # ------------------------------------------------------------------

    def velocity(self, x, theta) -> np.ndarray:
        """One element of ``F(x)``: the drift at an admissible ``theta``."""
        theta = np.asarray(theta, dtype=float)
        if not self.model.theta_set.contains(theta, tol=1e-9):
            raise ValueError(f"theta {theta.tolist()} is outside Theta")
        return self.model.drift(x, theta)

    def support(self, x, direction) -> float:
        """Support function ``h(x, p) = max_{v in F(x)} p . v``."""
        return self.extremizer.support(x, direction)

    def velocity_envelope(self, x) -> Tuple[np.ndarray, np.ndarray]:
        """Coordinate-wise min/max of ``F(x)``.

        Delegates to the extremiser, which answers all ``2 d``
        extremisations through one batched envelope evaluation.
        """
        return self.extremizer.velocity_envelope(x)

    def velocity_envelope_batch(self, states) -> Tuple[np.ndarray, np.ndarray]:
        """Coordinate-wise min/max of ``F(x_r)`` for an ``(n, d)`` stack."""
        return self.extremizer.velocity_envelope_batch(states)

    def contains_velocity(self, x, v, tol: float = 1e-9) -> bool:
        """Whether ``v`` lies in the *convex hull* of ``F(x)``.

        Checked through support functions along coordinate axes and
        diagonal probe directions — a necessary condition that is also
        sufficient when ``F(x)`` is convex (the mean-field limit takes the
        convex closure of the velocity set, Eq. 4 of the paper).  All
        probe directions are answered by a single batched support call.
        """
        x = np.asarray(x, dtype=float)
        v = np.asarray(v, dtype=float)
        rng = np.random.default_rng(12345)
        extra = rng.normal(size=(4 * self.dim, self.dim))
        extra /= np.linalg.norm(extra, axis=1, keepdims=True)
        directions = np.vstack([np.eye(self.dim), -np.eye(self.dim), extra])
        supports = self.extremizer.support_batch(
            np.tile(x, (directions.shape[0], 1)), directions
        )
        return bool(np.all(directions @ v <= supports + tol))

    # ------------------------------------------------------------------
    # Witness solutions
    # ------------------------------------------------------------------

    def solve_constant(self, theta, x0, t_span, t_eval=None,
                       rtol: float = 1e-8, atol: float = 1e-10) -> Trajectory:
        """Solution with a frozen parameter — the *uncertain* scenario.

        Integrates the ODE ``x' = f(x, theta)`` (Corollary 1 of the
        paper).
        """
        theta = np.asarray(theta, dtype=float)
        if not self.model.theta_set.contains(theta, tol=1e-9):
            raise ValueError(f"theta {theta.tolist()} is outside Theta")
        return solve_ode(self.model.vector_field(theta), x0, t_span,
                         t_eval=t_eval, rtol=rtol, atol=atol)

    def solve_piecewise(self, schedule: Sequence[Tuple[float, np.ndarray]],
                        x0, t_final: float, steps_per_unit: int = 200) -> Trajectory:
        """Solution under a piecewise-constant parameter schedule.

        ``schedule`` is a list of ``(start_time, theta)`` pairs sorted by
        start time; each theta applies from its start time until the next
        entry (the last one until ``t_final``).  This is how the bang-bang
        trajectories of Figure 2 are re-simulated once their switching
        times are known.
        """
        if not schedule:
            raise ValueError("schedule must contain at least one (time, theta) pair")
        starts = [float(s) for s, _ in schedule]
        if starts != sorted(starts):
            raise ValueError("schedule start times must be non-decreasing")
        thetas = [np.asarray(th, dtype=float) for _, th in schedule]
        for th in thetas:
            if not self.model.theta_set.contains(th, tol=1e-9):
                raise ValueError(f"theta {th.tolist()} is outside Theta")

        pieces_t = [np.array([starts[0]])]
        pieces_x = [np.asarray(x0, dtype=float)[None, :]]
        x_current = np.asarray(x0, dtype=float)
        for k, theta in enumerate(thetas):
            t_start = starts[k]
            t_end = starts[k + 1] if k + 1 < len(starts) else float(t_final)
            if t_end <= t_start:
                continue
            n_steps = max(2, int(np.ceil((t_end - t_start) * steps_per_unit)))
            grid = np.linspace(t_start, t_end, n_steps + 1)
            piece = rk4_integrate(self.model.vector_field(theta), x_current, grid)
            pieces_t.append(piece.times[1:])
            pieces_x.append(piece.states[1:])
            x_current = piece.final_state
        return Trajectory(np.concatenate(pieces_t), np.vstack(pieces_x))

    def solve_feedback(self, selector: Callable, x0, t_span,
                       steps_per_unit: int = 400) -> Trajectory:
        """Solution under a state-feedback selector ``theta = g(t, x)``.

        The selector may be discontinuous (e.g. the hysteresis policy of
        Section V-E); the solve therefore uses fixed-step RK4 with the
        selector frozen within each step, which converges to a solution
        of the inclusion as the step size shrinks.
        """
        t0, t1 = float(t_span[0]), float(t_span[1])
        n_steps = max(2, int(np.ceil((t1 - t0) * steps_per_unit)))
        grid = np.linspace(t0, t1, n_steps + 1)
        x = np.asarray(x0, dtype=float).copy()
        states = np.empty((grid.shape[0], x.shape[0]))
        states[0] = x
        for i in range(grid.shape[0] - 1):
            theta = np.asarray(selector(grid[i], x), dtype=float)
            theta = self.model.theta_set.project(theta)
            field = self.model.vector_field(theta)
            x = rk4_step(field, grid[i], x, grid[i + 1] - grid[i])
            states[i + 1] = x
        return Trajectory(grid, states)

    def extreme_velocity_solution(self, direction, x0, t_span,
                                  steps_per_unit: int = 400) -> Trajectory:
        """Greedy selection: always move extremally in a fixed direction.

        At each step the parameter maximising ``direction . f(x, theta)``
        is applied.  This *myopic* strategy is generally not optimal for
        reaching extreme states at a fixed horizon (the Pontryagin sweep
        is), and the gap between the two is one of the ablation benches.
        """
        direction = np.asarray(direction, dtype=float)
        selector = lambda t, x: self.extremizer.maximize_direction(  # noqa: E731
            x, direction
        )[0]
        return self.solve_feedback(selector, x0, t_span, steps_per_unit=steps_per_unit)

    def __repr__(self) -> str:
        return f"ParametricInclusion({self.model.name!r}, dim={self.dim})"


def euler_selection_solve(inclusion: ParametricInclusion, selector: Callable,
                          x0, t_grid) -> Trajectory:
    """Explicit-Euler solution following an arbitrary selection.

    ``selector(t, x) -> theta`` chooses the parameter (and hence the
    velocity ``f(x, theta) in F(x)``) at every grid point.  Euler with
    one-step selections is the classical constructive scheme for
    differential inclusions (Aubin & Cellina); it is first-order accurate
    but places no continuity demands on the selector, so it doubles as
    the reference implementation the RK4-based solvers are tested
    against.
    """
    t_grid = np.asarray(t_grid, dtype=float)
    if t_grid.ndim != 1 or t_grid.shape[0] < 2:
        raise ValueError("t_grid must be 1-D with at least two points")
    x = np.asarray(x0, dtype=float).copy()
    states = np.empty((t_grid.shape[0], x.shape[0]))
    states[0] = x
    for i in range(t_grid.shape[0] - 1):
        theta = np.asarray(selector(t_grid[i], x), dtype=float)
        theta = inclusion.model.theta_set.project(theta)
        velocity = inclusion.model.drift(x, theta)
        x = x + (t_grid[i + 1] - t_grid[i]) * velocity
        states[i + 1] = x
    return Trajectory(t_grid.copy(), states)
