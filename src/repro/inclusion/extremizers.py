"""Extremisation of drift functionals over the parameter domain.

Every numerical method of Section IV reduces to one primitive: given a
state ``x`` and a direction ``p``, find

.. math::
    \\max_{\\theta \\in \\Theta} \\; p \\cdot f(x, \\theta)

(the *support function* of the velocity set ``F(x)`` in direction ``p``,
and the Hamiltonian maximiser of the Pontryagin sweep, Eq. 8).  The
:class:`DriftExtremizer` implements it with three strategies:

- ``"affine"``: for models declaring ``f(x, theta) = g0(x) + G(x) theta``
  with a box domain, the maximiser is bang-bang per coordinate — evaluate
  the sign of ``p^T G`` and pick the matching box bound.  Exact and O(p).
- ``"corners"``: evaluate the corners of ``Theta`` only.  Exact for
  affine models (where the optimum sits at a corner), an approximation
  otherwise.
- ``"grid"``: evaluate a uniform grid (plus corners), optionally followed
  by a local L-BFGS-B refinement (``refine=True``).  The general-purpose
  fallback for non-affine dependence.

``method="auto"`` picks ``"affine"`` when the model declares the
decomposition and ``"grid"`` otherwise.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy.optimize import minimize

from repro.params import Box, DiscreteSet, Interval

__all__ = ["DriftExtremizer"]

_VALID_METHODS = ("auto", "affine", "corners", "grid")


class DriftExtremizer:
    """Extremises linear drift functionals over ``Theta`` for one model.

    Parameters
    ----------
    model:
        A :class:`~repro.population.PopulationModel`.
    method:
        One of ``"auto"``, ``"affine"``, ``"corners"``, ``"grid"``.
    grid_resolution:
        Points per parameter axis for the ``"grid"`` strategy.
    refine:
        Whether the grid strategy polishes its best point with a bounded
        L-BFGS-B run (only meaningful for non-affine models).
    """

    def __init__(self, model, method: str = "auto", grid_resolution: int = 9,
                 refine: bool = False):
        if method not in _VALID_METHODS:
            raise ValueError(f"method must be one of {_VALID_METHODS}, got {method!r}")
        if grid_resolution < 2:
            raise ValueError("grid_resolution must be >= 2")
        self.model = model
        if method == "auto":
            method = "affine" if model.is_affine else "grid"
        if method == "affine" and not model.is_affine:
            raise ValueError(
                f"model {model.name!r} declares no affine decomposition; "
                "use method='grid' or 'corners'"
            )
        if method == "affine" and not isinstance(model.theta_set, (Box, Interval, DiscreteSet)):
            raise ValueError("affine strategy needs a box, interval or discrete Theta")
        self.method = method
        self.grid_resolution = int(grid_resolution)
        self.refine = bool(refine)
        self._cached_grid: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Core primitive: support function / Hamiltonian maximiser
    # ------------------------------------------------------------------

    def maximize_direction(self, x, direction) -> Tuple[np.ndarray, float]:
        """Return ``(theta*, value)`` maximising ``direction . f(x, theta)``.

        This is the support function of the velocity set in ``direction``
        together with its maximiser — the quantity the Pontryagin sweep
        evaluates at every grid point (Eq. 8 of the paper).
        """
        x = np.asarray(x, dtype=float)
        direction = np.asarray(direction, dtype=float)
        if self.method == "affine":
            return self._maximize_affine(x, direction)
        if self.method == "corners":
            return self._maximize_enumerate(x, direction, self.model.theta_set.corners())
        return self._maximize_grid(x, direction)

    def minimize_direction(self, x, direction) -> Tuple[np.ndarray, float]:
        """Return ``(theta*, value)`` minimising ``direction . f(x, theta)``."""
        theta, value = self.maximize_direction(x, -np.asarray(direction, dtype=float))
        return theta, -value

    def support(self, x, direction) -> float:
        """The support function ``h(x, p) = max_theta p . f(x, theta)``."""
        return self.maximize_direction(x, direction)[1]

    # ------------------------------------------------------------------
    # Derived envelopes
    # ------------------------------------------------------------------

    def coordinate_range(self, x, index: int) -> Tuple[float, float]:
        """Range ``[min_theta f_i, max_theta f_i]`` of one drift coordinate."""
        direction = np.zeros(self.model.dim)
        direction[index] = 1.0
        _, upper = self.maximize_direction(x, direction)
        _, lower_neg = self.maximize_direction(x, -direction)
        return -lower_neg, upper

    def velocity_envelope(self, x) -> Tuple[np.ndarray, np.ndarray]:
        """Coordinate-wise bounds of ``F(x)``: arrays ``(f_min, f_max)``.

        This is the tight rectangular enclosure of the velocity set used
        by the differential-hull construction (with the state part of the
        extremisation handled separately by the hull).
        """
        lower = np.empty(self.model.dim)
        upper = np.empty(self.model.dim)
        for i in range(self.model.dim):
            lower[i], upper[i] = self.coordinate_range(x, i)
        return lower, upper

    # ------------------------------------------------------------------
    # Strategies
    # ------------------------------------------------------------------

    def _maximize_affine(self, x, direction) -> Tuple[np.ndarray, float]:
        g0, big_g = self.model.affine_parts(x)
        base = float(direction @ g0)
        coeffs = direction @ big_g  # shape (theta_dim,)
        theta_set = self.model.theta_set
        if isinstance(theta_set, DiscreteSet):
            values = theta_set.values @ coeffs
            best = int(np.argmax(values))
            return theta_set.values[best].copy(), base + float(values[best])
        lowers, uppers = self._box_bounds(theta_set)
        theta = np.where(coeffs > 0.0, uppers, lowers)
        # Zero coefficients leave theta free; pick the lower bound for
        # determinism (any choice attains the same value).
        return theta, base + float(coeffs @ theta)

    @staticmethod
    def _box_bounds(theta_set) -> Tuple[np.ndarray, np.ndarray]:
        if isinstance(theta_set, Interval):
            return np.array([theta_set.lower]), np.array([theta_set.upper])
        return theta_set.lowers.copy(), theta_set.uppers.copy()

    def _maximize_enumerate(self, x, direction, candidates) -> Tuple[np.ndarray, float]:
        values = np.array(
            [float(direction @ self.model.drift(x, theta)) for theta in candidates]
        )
        best = int(np.argmax(values))
        return np.asarray(candidates[best], dtype=float).copy(), float(values[best])

    def _theta_grid(self) -> np.ndarray:
        if self._cached_grid is None:
            grid = self.model.theta_set.grid(self.grid_resolution)
            corners = self.model.theta_set.corners()
            self._cached_grid = np.vstack([grid, corners])
        return self._cached_grid

    def _maximize_grid(self, x, direction) -> Tuple[np.ndarray, float]:
        theta, value = self._maximize_enumerate(x, direction, self._theta_grid())
        if not self.refine:
            return theta, value
        theta_set = self.model.theta_set
        if isinstance(theta_set, DiscreteSet):
            return theta, value
        lowers, uppers = self._box_bounds(theta_set)
        objective = lambda th: -float(  # noqa: E731 - tiny adapter
            direction @ self.model.drift(x, th)
        )
        result = minimize(
            objective,
            theta,
            method="L-BFGS-B",
            bounds=list(zip(lowers, uppers)),
        )
        if result.success and -result.fun > value:
            return np.asarray(result.x, dtype=float), float(-result.fun)
        return theta, value
