"""Extremisation of drift functionals over the parameter domain.

Every numerical method of Section IV reduces to one primitive: given a
state ``x`` and a direction ``p``, find

.. math::
    \\max_{\\theta \\in \\Theta} \\; p \\cdot f(x, \\theta)

(the *support function* of the velocity set ``F(x)`` in direction ``p``,
and the Hamiltonian maximiser of the Pontryagin sweep, Eq. 8).  The
:class:`DriftExtremizer` implements it with three strategies:

- ``"affine"``: for models declaring ``f(x, theta) = g0(x) + G(x) theta``
  with a box domain, the maximiser is bang-bang per coordinate — evaluate
  the sign of ``p^T G`` and pick the matching box bound.  Exact and O(p).
- ``"corners"``: evaluate the corners of ``Theta`` only.  Exact for
  affine models (where the optimum sits at a corner), an approximation
  otherwise.
- ``"grid"``: evaluate a uniform grid (plus corners), optionally followed
  by a local L-BFGS-B refinement (``refine=True``).  The general-purpose
  fallback for non-affine dependence.

``method="auto"`` picks ``"affine"`` when the model declares the
decomposition and ``"grid"`` otherwise.

Batched primitives
------------------

The consumers of this primitive never need *one* extremisation — the
differential hull extremises over every slice corner of every coordinate
per RHS evaluation, and the Pontryagin sweep re-maximises the
Hamiltonian on every grid interval per iteration.  The ``*_batch``
methods therefore operate on ``(n, d)`` stacks of states paired with
``(n, d)`` stacks of directions and answer all ``n`` queries in a
handful of NumPy calls:

- the affine strategy evaluates the decomposition once per stack
  (:meth:`~repro.population.PopulationModel.affine_parts_batch`), takes
  ``p^T G`` by ``einsum`` and resolves the bang-bang choice with one
  ``np.where`` against the box bounds;
- the corner/grid strategies broadcast the candidate set over the stack
  and evaluate all ``n * n_candidates`` drifts through
  :meth:`~repro.population.PopulationModel.drift_batch`.

Batching is *exact*, not approximate: each row's optimiser is the same
corner (or grid point) the scalar code would pick — the per-row optimum
of a monotone/affine functional does not depend on which other rows are
evaluated alongside it.  Scalar calls delegate to the batch kernels with
``n = 1``; the legacy scalar loop is kept behind ``batch=False`` purely
for differential testing.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy.optimize import minimize

from repro.params import Box, DiscreteSet, Interval

__all__ = ["DriftExtremizer"]

_VALID_METHODS = ("auto", "affine", "corners", "grid")


class DriftExtremizer:
    """Extremises linear drift functionals over ``Theta`` for one model.

    Parameters
    ----------
    model:
        A :class:`~repro.population.PopulationModel`.
    method:
        One of ``"auto"``, ``"affine"``, ``"corners"``, ``"grid"``.
    grid_resolution:
        Points per parameter axis for the ``"grid"`` strategy.
    refine:
        Whether the grid strategy polishes its best point with a bounded
        L-BFGS-B run (only meaningful for non-affine models).
    batch:
        When ``True`` (the default) every query — scalar or stacked —
        runs through the vectorized batch kernels.  ``batch=False``
        routes everything through the legacy one-query-at-a-time scalar
        code instead; the two paths are kept equivalent by the
        differential test-suite and ``batch=False`` exists only to
        support it (and honest scalar baselines in benchmarks).
    """

    def __init__(self, model, method: str = "auto", grid_resolution: int = 9,
                 refine: bool = False, batch: bool = True, backend=None):
        if method not in _VALID_METHODS:
            raise ValueError(f"method must be one of {_VALID_METHODS}, got {method!r}")
        if grid_resolution < 2:
            raise ValueError("grid_resolution must be >= 2")
        self.model = model
        # The resolved compiled kernels of the model on the selected
        # array backend (numpy kernels are the model's bound batch
        # methods, so the default path is bit-identical).  Duck-typed
        # models (the Kolmogorov system) lack the ``backend_kernels``
        # helper; resolve through the backend directly for them.
        if hasattr(model, "backend_kernels"):
            self._kernels = model.backend_kernels(backend)
        else:
            from repro.backend import resolve_backend

            self._kernels = resolve_backend(backend).model_kernels(model)
        if method == "auto":
            method = "affine" if model.is_affine else "grid"
        if method == "affine" and not model.is_affine:
            raise ValueError(
                f"model {model.name!r} declares no affine decomposition; "
                "use method='grid' or 'corners'"
            )
        if method == "affine" and not isinstance(model.theta_set, (Box, Interval, DiscreteSet)):
            raise ValueError("affine strategy needs a box, interval or discrete Theta")
        self.method = method
        self.grid_resolution = int(grid_resolution)
        self.refine = bool(refine)
        self.batch = bool(batch)
        self._cached_grid: Optional[np.ndarray] = None
        # The box bounds are immutable per extremizer; materialise them
        # once so the bang-bang kernel does no per-call allocation.
        if method == "affine" and not isinstance(model.theta_set, DiscreteSet):
            self._affine_lowers, self._affine_uppers = self._box_bounds(
                model.theta_set
            )

    # ------------------------------------------------------------------
    # Core primitive: support function / Hamiltonian maximiser
    # ------------------------------------------------------------------

    def maximize_direction(self, x, direction) -> Tuple[np.ndarray, float]:
        """Return ``(theta*, value)`` maximising ``direction . f(x, theta)``.

        This is the support function of the velocity set in ``direction``
        together with its maximiser — the quantity the Pontryagin sweep
        evaluates at every grid point (Eq. 8 of the paper).  Delegates to
        :meth:`maximize_direction_batch` with a one-row stack (or to the
        legacy scalar strategies under ``batch=False``).
        """
        x = np.asarray(x, dtype=float)
        direction = np.asarray(direction, dtype=float)
        if not self.batch:
            return self._maximize_scalar(x, direction)
        thetas, values = self.maximize_direction_batch(x[None, :],
                                                       direction[None, :])
        return thetas[0], float(values[0])

    def minimize_direction(self, x, direction) -> Tuple[np.ndarray, float]:
        """Return ``(theta*, value)`` minimising ``direction . f(x, theta)``."""
        theta, value = self.maximize_direction(x, -np.asarray(direction, dtype=float))
        return theta, -value

    def support(self, x, direction) -> float:
        """The support function ``h(x, p) = max_theta p . f(x, theta)``."""
        return self.maximize_direction(x, direction)[1]

    # ------------------------------------------------------------------
    # Batched primitives (the hot path of every bound computation)
    # ------------------------------------------------------------------

    def maximize_direction_batch(self, states, directions
                                 ) -> Tuple[np.ndarray, np.ndarray]:
        """Row-wise ``argmax_theta  p_r . f(x_r, theta)`` over a stack.

        Parameters
        ----------
        states:
            State stack of shape ``(n, d)``.
        directions:
            Direction stack of shape ``(n, d)`` (one direction per row).

        Returns
        -------
        ``(thetas, values)`` with ``thetas`` of shape ``(n, theta_dim)``
        and ``values`` of shape ``(n,)``; row ``r`` solves the scalar
        problem ``maximize_direction(states[r], directions[r])``.
        """
        states = np.atleast_2d(np.asarray(states, dtype=float))
        directions = np.atleast_2d(np.asarray(directions, dtype=float))
        if directions.shape != states.shape:
            raise ValueError(
                f"directions shape {directions.shape} must match states "
                f"shape {states.shape}"
            )
        if not self.batch:
            n = states.shape[0]
            thetas = np.empty((n, self.model.theta_dim))
            values = np.empty(n)
            for r in range(n):
                theta, value = self._maximize_scalar(states[r], directions[r])
                thetas[r] = theta
                values[r] = value
            return thetas, values
        if self.method == "affine":
            return self._maximize_affine_batch(states, directions)
        if self.method == "corners":
            return self._maximize_enumerate_batch(
                states, directions, self.model.theta_set.corners()
            )
        return self._maximize_grid_batch(states, directions)

    def minimize_direction_batch(self, states, directions
                                 ) -> Tuple[np.ndarray, np.ndarray]:
        """Row-wise minimisers: ``(thetas, values)`` minimising each row."""
        directions = np.atleast_2d(np.asarray(directions, dtype=float))
        thetas, values = self.maximize_direction_batch(states, -directions)
        return thetas, -values

    def support_batch(self, states, directions) -> np.ndarray:
        """Support values ``h(x_r, p_r)`` for a stack, shape ``(n,)``."""
        return self.maximize_direction_batch(states, directions)[1]

    def coordinate_range_batch(self, states, index: int
                               ) -> Tuple[np.ndarray, np.ndarray]:
        """Range of drift coordinate ``index`` per row: ``(lower, upper)``.

        Equivalent to calling :meth:`coordinate_range` on each row;
        both extremisations of the whole stack are answered by a single
        doubled batch call.
        """
        states = np.atleast_2d(np.asarray(states, dtype=float))
        n = states.shape[0]
        e = np.zeros((n, states.shape[1]))
        e[:, index] = 1.0
        values = self.support_batch(
            np.concatenate([states, states]), np.concatenate([e, -e])
        )
        return -values[n:], values[:n]

    def velocity_envelope_batch(self, states
                                ) -> Tuple[np.ndarray, np.ndarray]:
        """Coordinate-wise bounds of ``F(x_r)`` per row.

        Returns ``(lower, upper)`` arrays of shape ``(n, d)``; one
        batched call answers all ``2 n d`` extremisations.  The affine
        strategy has a closed form: with ``f = g0 + G theta`` each
        coordinate's bound sums the sign-matching box endpoint of every
        ``G`` entry (the bang-bang rule applied to all ``2 d``
        directions at once); other strategies stack the ``±e_i`` probes
        through :meth:`support_batch`.  Both agree with the scalar
        per-coordinate loop to the last bit — this is the kernel behind
        the batched differential-hull RHS.
        """
        states = np.asarray(states, dtype=float)
        if states.ndim == 1:
            states = states[None, :]
        if self.batch and self.method == "affine":
            g0s, big_gs = self._kernels.affine(states)
            theta_set = self.model.theta_set
            if isinstance(theta_set, DiscreteSet):
                values = np.einsum("ndp,mp->ndm", big_gs, theta_set.values)
                return g0s + values.min(axis=2), g0s + values.max(axis=2)
            # With u >= l per box axis, max/min of the two endpoint
            # products select exactly the bang-bang sign rule.
            at_upper = big_gs * self._affine_uppers
            at_lower = big_gs * self._affine_lowers
            upper = g0s + np.maximum(at_upper, at_lower).sum(axis=2)
            lower = g0s + np.minimum(at_upper, at_lower).sum(axis=2)
            return lower, upper
        n, d = states.shape
        eye = np.eye(d)
        probe = np.concatenate([np.repeat(eye, n, axis=0),
                                np.repeat(-eye, n, axis=0)])
        stacked = np.tile(states, (2 * d, 1))
        values = self.support_batch(stacked, probe)
        upper = values[: d * n].reshape(d, n).T
        lower = -values[d * n:].reshape(d, n).T
        return lower, upper

    # ------------------------------------------------------------------
    # Derived envelopes
    # ------------------------------------------------------------------

    def coordinate_range(self, x, index: int) -> Tuple[float, float]:
        """Range ``[min_theta f_i, max_theta f_i]`` of one drift coordinate."""
        direction = np.zeros(self.model.dim)
        direction[index] = 1.0
        _, upper = self.maximize_direction(x, direction)
        _, lower_neg = self.maximize_direction(x, -direction)
        return -lower_neg, upper

    def velocity_envelope(self, x) -> Tuple[np.ndarray, np.ndarray]:
        """Coordinate-wise bounds of ``F(x)``: arrays ``(f_min, f_max)``.

        This is the tight rectangular enclosure of the velocity set used
        by the differential-hull construction (with the state part of the
        extremisation handled separately by the hull).  Delegates to
        :meth:`velocity_envelope_batch` with a one-row stack (legacy
        per-coordinate loop under ``batch=False``).
        """
        if self.batch:
            lower, upper = self.velocity_envelope_batch(
                np.asarray(x, dtype=float)[None, :]
            )
            return lower[0], upper[0]
        lower = np.empty(self.model.dim)
        upper = np.empty(self.model.dim)
        for i in range(self.model.dim):
            lower[i], upper[i] = self.coordinate_range(x, i)
        return lower, upper

    # ------------------------------------------------------------------
    # Batched strategies
    # ------------------------------------------------------------------

    def _maximize_affine_batch(self, states, directions
                               ) -> Tuple[np.ndarray, np.ndarray]:
        g0s, big_gs = self._kernels.affine(states)
        base = np.einsum("nd,nd->n", directions, g0s)
        coeffs = np.einsum("nd,ndp->np", directions, big_gs)
        theta_set = self.model.theta_set
        if isinstance(theta_set, DiscreteSet):
            values = coeffs @ theta_set.values.T  # (n, n_points)
            best = np.argmax(values, axis=1)
            thetas = theta_set.values[best].copy()
            return thetas, base + values[np.arange(best.shape[0]), best]
        # Bang-bang per coordinate; zero coefficients take the lower
        # bound for determinism, exactly as the scalar rule.
        thetas = np.where(coeffs > 0.0, self._affine_uppers, self._affine_lowers)
        values = base + np.einsum("np,np->n", coeffs, thetas)
        return thetas, values

    def _maximize_enumerate_batch(self, states, directions, candidates
                                  ) -> Tuple[np.ndarray, np.ndarray]:
        candidates = np.asarray(candidates, dtype=float)
        n, d = states.shape
        m = candidates.shape[0]
        x_rep = np.repeat(states, m, axis=0)
        theta_rep = np.tile(candidates, (n, 1))
        drifts = self._kernels.drift(x_rep, theta_rep).reshape(n, m, d)
        values = np.einsum("nd,nmd->nm", directions, drifts)
        best = np.argmax(values, axis=1)
        thetas = candidates[best].copy()
        return thetas, values[np.arange(n), best]

    def _maximize_grid_batch(self, states, directions
                             ) -> Tuple[np.ndarray, np.ndarray]:
        thetas, values = self._maximize_enumerate_batch(
            states, directions, self._theta_grid()
        )
        if not self.refine or isinstance(self.model.theta_set, DiscreteSet):
            return thetas, values
        for r in range(states.shape[0]):
            thetas[r], values[r] = self._polish(
                states[r], directions[r], thetas[r], values[r]
            )
        return thetas, values

    # ------------------------------------------------------------------
    # Legacy scalar strategies (batch=False differential-testing path)
    # ------------------------------------------------------------------

    def _maximize_scalar(self, x, direction) -> Tuple[np.ndarray, float]:
        if self.method == "affine":
            return self._maximize_affine(x, direction)
        if self.method == "corners":
            return self._maximize_enumerate(x, direction, self.model.theta_set.corners())
        return self._maximize_grid(x, direction)

    def _maximize_affine(self, x, direction) -> Tuple[np.ndarray, float]:
        g0, big_g = self.model.affine_parts(x)
        base = float(direction @ g0)
        coeffs = direction @ big_g  # shape (theta_dim,)
        theta_set = self.model.theta_set
        if isinstance(theta_set, DiscreteSet):
            values = theta_set.values @ coeffs
            best = int(np.argmax(values))
            return theta_set.values[best].copy(), base + float(values[best])
        lowers, uppers = self._box_bounds(theta_set)
        theta = np.where(coeffs > 0.0, uppers, lowers)
        # Zero coefficients leave theta free; pick the lower bound for
        # determinism (any choice attains the same value).
        return theta, base + float(coeffs @ theta)

    @staticmethod
    def _box_bounds(theta_set) -> Tuple[np.ndarray, np.ndarray]:
        if isinstance(theta_set, Interval):
            return np.array([theta_set.lower]), np.array([theta_set.upper])
        return theta_set.lowers.copy(), theta_set.uppers.copy()

    def _maximize_enumerate(self, x, direction, candidates) -> Tuple[np.ndarray, float]:
        values = np.array(
            [float(direction @ self.model.drift(x, theta)) for theta in candidates]
        )
        best = int(np.argmax(values))
        return np.asarray(candidates[best], dtype=float).copy(), float(values[best])

    def _theta_grid(self) -> np.ndarray:
        if self._cached_grid is None:
            grid = self.model.theta_set.grid(self.grid_resolution)
            corners = self.model.theta_set.corners()
            self._cached_grid = np.vstack([grid, corners])
        return self._cached_grid

    def _maximize_grid(self, x, direction) -> Tuple[np.ndarray, float]:
        theta, value = self._maximize_enumerate(x, direction, self._theta_grid())
        if not self.refine or isinstance(self.model.theta_set, DiscreteSet):
            return theta, value
        return self._polish(x, direction, theta, value)

    def _polish(self, x, direction, theta, value) -> Tuple[np.ndarray, float]:
        """Shared L-BFGS-B refinement step of the grid strategy."""
        lowers, uppers = self._box_bounds(self.model.theta_set)
        objective = lambda th: -float(  # noqa: E731 - tiny adapter
            direction @ self.model.drift(x, th)
        )
        result = minimize(
            objective,
            theta,
            method="L-BFGS-B",
            bounds=list(zip(lowers, uppers)),
        )
        if result.success and -result.fun > value:
            return np.asarray(result.x, dtype=float), float(-result.fun)
        return theta, value
