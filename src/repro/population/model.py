"""The :class:`PopulationModel` definition object.

A population model is the *specification* of an imprecise population
process: a list of transition classes plus the parameter domain ``Theta``.
From it everything else in the library is derived — the imprecise drift
(Definition 3), the mean-field differential inclusion (Theorem 1), the
finite-``N`` CTMCs used for simulation (Definition 4), and the analytic
structure (affine decomposition, Jacobians) exploited by the bound
computations of Section IV.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.params import ParameterSet, Singleton
from repro.population.calculus import numeric_jacobian, validated_batch_eval
from repro.population.transitions import Transition

__all__ = ["PopulationModel"]


class PopulationModel:
    """An imprecise population process specified by transition classes.

    Parameters
    ----------
    name:
        Model identifier used in reports.
    state_names:
        Names of the normalised state coordinates, e.g. ``("S", "I")``.
    transitions:
        The event classes; each must have ``change`` of length
        ``len(state_names)``.
    theta_set:
        The parameter domain ``Theta``.  A :class:`~repro.params.Singleton`
        makes the model a *precise* population process.
    affine_drift:
        Optional callable ``x -> (g0, G)`` with ``g0`` of shape ``(d,)``
        and ``G`` of shape ``(d, p)`` such that
        ``drift(x, theta) = g0 + G @ theta`` for every ``theta``.  All
        three paper models are affine in ``theta``; declaring the
        decomposition unlocks closed-form extremisation (bang-bang
        Hamiltonian maximisers, corner-based hulls).
    affine_drift_batch:
        Optional *batched* form of ``affine_drift``: a callable
        ``X -> (g0s, Gs)`` mapping a row-major state stack ``(n, d)``
        to ``g0s`` of shape ``(n, d)`` and ``Gs`` of shape
        ``(n, d, p)``.  Declaring it lets
        :meth:`affine_parts_batch` — the hot path of every batched
        bound computation (differential hull RHS, Pontryagin
        Hamiltonian re-maximisation) — evaluate whole candidate stacks
        in a handful of NumPy calls instead of one Python call per row.
        The first batched call is spot-checked against the scalar
        decomposition; without the declaration ``affine_parts_batch``
        falls back to a per-row loop (correct, not fast).
    drift_jacobian:
        Optional analytic Jacobian ``(x, theta) -> (d, d)`` of the drift
        in ``x``; finite differences are used when absent.
    drift_jacobian_batch:
        Optional *batched* form of ``drift_jacobian``: a callable
        ``(X, Theta) -> (n, d, d)`` mapping row-major state and
        parameter stacks to the stack of Jacobians.  Declaring it lets
        :meth:`jacobian_x_batch` — the inner loop of the batched
        Pontryagin costate sweep — evaluate whole lane stacks in a few
        NumPy calls; the first batched call is spot-checked against the
        scalar Jacobian, and without the declaration the method falls
        back to a per-row loop (correct, not fast).
    state_bounds:
        Optional ``(lower, upper)`` vectors bounding the admissible
        normalised state space (e.g. ``([0, 0], [1, 1])``); used by the
        differential-hull extremiser and by state clipping.
    conservations:
        Optional list of ``(weights, value)`` pairs declaring linear
        invariants ``weights @ x == value`` (e.g. ``S + I + R == 1``);
        checked by the simulator and by the test-suites.
    observables:
        Optional mapping ``name -> weights`` declaring named linear
        observables ``weights @ x`` (e.g. the per-class queue fraction of
        the GPS model, which is a rescaling of the raw state).  Observables
        are what benchmark harnesses report and what the linear-template
        Pontryagin bounds target.
    """

    def __init__(
        self,
        name: str,
        state_names: Sequence[str],
        transitions: Sequence[Transition],
        theta_set: ParameterSet,
        affine_drift: Optional[Callable] = None,
        affine_drift_batch: Optional[Callable] = None,
        drift_jacobian: Optional[Callable] = None,
        drift_jacobian_batch: Optional[Callable] = None,
        state_bounds: Optional[Tuple[Sequence[float], Sequence[float]]] = None,
        conservations: Optional[List[Tuple[Sequence[float], float]]] = None,
        observables: Optional[dict] = None,
    ):
        if not name:
            raise ValueError("model needs a non-empty name")
        if not state_names:
            raise ValueError("model needs at least one state coordinate")
        if not transitions:
            raise ValueError("model needs at least one transition class")
        self.name = str(name)
        self.state_names = tuple(str(s) for s in state_names)
        self.transitions = list(transitions)
        for tr in self.transitions:
            if tr.dim != self.dim:
                raise ValueError(
                    f"transition {tr.name!r} has dimension {tr.dim}, "
                    f"model has {self.dim} states"
                )
        if not isinstance(theta_set, ParameterSet):
            raise TypeError("theta_set must be a ParameterSet")
        self.theta_set = theta_set
        self._affine_drift = affine_drift
        self._affine_drift_batch = affine_drift_batch
        if affine_drift_batch is not None and affine_drift is None:
            raise ValueError(
                "affine_drift_batch requires the scalar affine_drift "
                "(the batched form is validated against it)"
            )
        self._affine_batch_checked = False
        self._drift_jacobian = drift_jacobian
        self._drift_jacobian_batch = drift_jacobian_batch
        if drift_jacobian_batch is not None and drift_jacobian is None:
            raise ValueError(
                "drift_jacobian_batch requires the scalar drift_jacobian "
                "(the batched form is validated against it)"
            )
        self._jacobian_batch_checked = False
        if state_bounds is not None:
            lower, upper = state_bounds
            self.state_lower = np.asarray(lower, dtype=float)
            self.state_upper = np.asarray(upper, dtype=float)
            if self.state_lower.shape != (self.dim,) or self.state_upper.shape != (self.dim,):
                raise ValueError("state_bounds must be two vectors of state dimension")
            if np.any(self.state_lower > self.state_upper):
                raise ValueError("state lower bounds exceed upper bounds")
        else:
            self.state_lower = None
            self.state_upper = None
        self.conservations = []
        for weights, value in (conservations or []):
            w = np.asarray(weights, dtype=float)
            if w.shape != (self.dim,):
                raise ValueError("conservation weights must match state dimension")
            self.conservations.append((w, float(value)))
        self.observables = {}
        for obs_name, weights in (observables or {}).items():
            w = np.asarray(weights, dtype=float)
            if w.shape != (self.dim,):
                raise ValueError(
                    f"observable {obs_name!r} weights must match state dimension"
                )
            self.observables[str(obs_name)] = w
        # Per-transition caches of whether the rate function accepts the
        # batched (coordinate-major) calling convention; populated lazily
        # by transition_rates_batch (clamped) and drift_batch (raw).
        self._batch_rate_ok: dict = {}
        self._batch_drift_ok: dict = {}
        # Set once every transition's raw batched rate is validated: the
        # drift_batch hot path then skips the validation machinery.
        self._drift_batch_fast = False

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------

    @property
    def dim(self) -> int:
        """Dimension of the normalised state space."""
        return len(self.state_names)

    @property
    def theta_dim(self) -> int:
        """Dimension of the parameter vector."""
        return self.theta_set.dim

    @property
    def declares_affine_drift_batch(self) -> bool:
        """Whether the model ships the batched affine-drift kernel.

        Catalog models must: the registry audit (``python -m repro
        lint``) fails on registered models without it, because every
        bounds layer silently degrades to per-row loops otherwise.
        """
        return self._affine_drift_batch is not None

    @property
    def declares_drift_jacobian_batch(self) -> bool:
        """Whether the model ships the batched Jacobian kernel (see
        :attr:`declares_affine_drift_batch` — same audit contract)."""
        return self._drift_jacobian_batch is not None

    @property
    def is_affine(self) -> bool:
        """Whether the model declares an affine-in-theta drift."""
        return self._affine_drift is not None

    @property
    def is_precise(self) -> bool:
        """Whether ``Theta`` is a singleton (a classical precise model)."""
        return isinstance(self.theta_set, Singleton)

    def state_index(self, name: str) -> int:
        """Index of a state coordinate by name."""
        return self.state_names.index(name)

    # ------------------------------------------------------------------
    # Drift (Definition 3 / Eq. 3) and derived analytic structure
    # ------------------------------------------------------------------

    def transition_rates(self, x, theta) -> np.ndarray:
        """Vector of density-scaled rates of all transitions at ``(x, theta)``."""
        x = np.asarray(x, dtype=float)
        theta = np.asarray(theta, dtype=float)
        return np.array([tr.rate_at(x, theta) for tr in self.transitions])

    def total_exit_rate(self, x, theta) -> float:
        """Sum of all density-scaled transition rates (the SSA race total)."""
        return float(np.sum(self.transition_rates(x, theta)))

    def transition_rates_batch(self, x, theta) -> np.ndarray:
        """Density-scaled rates of every transition for a batch of states.

        Parameters
        ----------
        x:
            Batch of normalised states, shape ``(n, d)``.
        theta:
            Batch of parameter vectors, shape ``(n, p)`` (one per row —
            policies can differ across ensemble members).

        Returns
        -------
        Rates of shape ``(n, n_transitions)``, clamped non-negative.

        Notes
        -----
        Rate functions are written against scalar coordinates
        (``x[0]``, ``theta[0]``, ...), so the batch is evaluated
        *coordinate-major*: the function receives ``x.T`` of shape
        ``(d, n)`` and ``theta.T`` of shape ``(p, n)``, making ``x[k]``
        the vector of coordinate ``k`` across the batch.  Purely
        coordinate-wise arithmetic rates (all the paper models)
        vectorize transparently.

        Functions that break the convention fall back to a per-row
        loop, detected per transition by
        :func:`~repro.population.calculus.validated_batch_eval`:

        - hard breaks (``float()`` casts, scalar branches, ``max``)
          raise on array input, as does a 0-d result (a constant, or a
          full reduction like ``np.sum(x)`` that pooled the batch);
        - soft breaks — reductions such as ``x[0] * np.sum(x)`` or
          ``np.mean(x)`` that return the right *shape* with row-pooled
          *values* — are caught by cross-checking the batched result
          against the scalar evaluator row-by-row.

        The cross-check only counts on a batch of *distinct* rows: on
        an all-identical batch (the engine's first step, where every
        ensemble row is the initial state) normalisation-invariant
        pooling coincides with the correct value, so validation is
        deferred until the trajectories diverge; until then the
        always-correct per-row loop is used.  The heuristic remains a
        heuristic — rate functions used with the vectorized engine
        should be written as coordinate-wise arithmetic.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        theta = np.atleast_2d(np.asarray(theta, dtype=float))
        n = x.shape[0]
        out = np.empty((n, len(self.transitions)))
        x_t, theta_t = x.T, theta.T
        can_validate = n >= 2 and (
            bool(np.any(x != x[0])) or bool(np.any(theta != theta[0]))
        )
        for e, tr in enumerate(self.transitions):
            vals, status = validated_batch_eval(
                lambda: tr.rate(x_t, theta_t),
                lambda: np.array(
                    [tr.rate_at(x[r], theta[r]) for r in range(n)]
                ),
                n,
                self._batch_rate_ok.get(e),
                can_validate,
            )
            if status is not None:
                self._batch_rate_ok[e] = status
            if np.isnan(vals).any():
                raise ValueError(
                    f"transition {tr.name!r}: rate is NaN for some batch rows"
                )
            out[:, e] = vals
        return out

    def drift(self, x, theta) -> np.ndarray:
        """The imprecise drift ``f(x, theta) = sum_e change_e * rate_e``.

        This is Equation (3) of the paper specialised to transition-class
        models.  Note the drift uses the *raw* (unclamped) rates so it is
        smooth across the state-space boundary, which the mean-field
        integrators rely on.
        """
        x = np.asarray(x, dtype=float)
        theta = np.asarray(theta, dtype=float)
        out = np.zeros(self.dim)
        for tr in self.transitions:
            out += tr.change * float(tr.rate(x, theta))
        return out

    def drift_batch(self, x, theta) -> np.ndarray:
        """The imprecise drift for a batch of ``(state, parameter)`` rows.

        Parameters
        ----------
        x:
            Batch of normalised states, shape ``(n, d)``.
        theta:
            Batch of parameter vectors, shape ``(n, p)`` (one per row).

        Returns
        -------
        Drift vectors of shape ``(n, d)``.

        Notes
        -----
        Like :meth:`drift` — and unlike :meth:`transition_rates_batch` —
        the rates are used *raw* (unclamped), so the batched drift is
        smooth across the state-space boundary and agrees with the
        scalar drift row-by-row.  Rate functions are evaluated
        coordinate-major (see :meth:`transition_rates_batch`) with the
        same lazy per-transition validation and per-row fallback.  Once
        every transition's batched rate has validated, subsequent calls
        skip the validation machinery entirely (same calls, same
        accumulation order — the fast path is bit-identical): this is
        the innermost call of every batched RK4 stage, so the bookkeeping
        would otherwise dominate small-stack integrations.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        theta = np.atleast_2d(np.asarray(theta, dtype=float))
        n = x.shape[0]
        out = np.zeros((n, self.dim))
        x_t, theta_t = x.T, theta.T
        if self._drift_batch_fast:
            for tr in self.transitions:
                out += np.asarray(tr.rate(x_t, theta_t), dtype=float)[:, None] \
                    * tr.change[None, :]
            return out
        can_validate = n >= 2 and (
            bool(np.any(x != x[0])) or bool(np.any(theta != theta[0]))
        )
        for e, tr in enumerate(self.transitions):
            vals, status = validated_batch_eval(
                lambda: tr.rate(x_t, theta_t),
                lambda: np.array(
                    [float(tr.rate(x[r], theta[r])) for r in range(n)]
                ),
                n,
                self._batch_drift_ok.get(e),
                can_validate,
                clamp=False,
            )
            if status is not None:
                self._batch_drift_ok[e] = status
            out += vals[:, None] * tr.change[None, :]
        if len(self._batch_drift_ok) == len(self.transitions) and all(
            v is True for v in self._batch_drift_ok.values()
        ):
            self._drift_batch_fast = True
        return out

    def drift_fn(self, theta) -> Callable:
        """Freeze ``theta`` and return the autonomous drift ``x -> f(x, theta)``."""
        theta = np.asarray(theta, dtype=float)
        return lambda x: self.drift(x, theta)

    def vector_field(self, theta) -> Callable:
        """Freeze ``theta`` and return ``(t, x) -> f(x, theta)`` for integrators."""
        theta = np.asarray(theta, dtype=float)
        return lambda t, x: self.drift(x, theta)

    def affine_parts(self, x) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(g0, G)`` with ``drift(x, theta) = g0 + G @ theta``.

        Raises ``ValueError`` for models without a declared decomposition;
        callers needing genericity should branch on :attr:`is_affine`.
        """
        if self._affine_drift is None:
            raise ValueError(f"model {self.name!r} declares no affine decomposition")
        g0, big_g = self._affine_drift(np.asarray(x, dtype=float))
        g0 = np.asarray(g0, dtype=float)
        big_g = np.asarray(big_g, dtype=float)
        if g0.shape != (self.dim,):
            raise ValueError(f"affine g0 has shape {g0.shape}, expected ({self.dim},)")
        if big_g.shape != (self.dim, self.theta_dim):
            raise ValueError(
                f"affine G has shape {big_g.shape}, expected ({self.dim}, {self.theta_dim})"
            )
        return g0, big_g

    def affine_parts_batch(self, x) -> Tuple[np.ndarray, np.ndarray]:
        """Batched affine decomposition: ``(g0s, Gs)`` for a state stack.

        Parameters
        ----------
        x:
            Row-major batch of states, shape ``(n, d)``.

        Returns
        -------
        ``g0s`` of shape ``(n, d)`` and ``Gs`` of shape ``(n, d, p)``
        with ``drift(x[r], theta) = g0s[r] + Gs[r] @ theta`` for every
        row and every admissible ``theta``.

        Uses the declared ``affine_drift_batch`` when available (one
        vectorized call; its first use is spot-checked against the
        scalar decomposition, and a mismatch raises — a wrong affine
        decomposition silently corrupts every bound computed from it).
        Falls back to a per-row loop over :meth:`affine_parts`
        otherwise.
        """
        if self._affine_drift is None:
            raise ValueError(f"model {self.name!r} declares no affine decomposition")
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x[None, :]
        n = x.shape[0]
        if self._affine_drift_batch is not None:
            if self._affine_batch_checked:
                return self._affine_drift_batch(x)
            g0s, big_gs = self._affine_drift_batch(x)
            g0s = np.asarray(g0s, dtype=float)
            big_gs = np.asarray(big_gs, dtype=float)
            if g0s.shape != (n, self.dim):
                raise ValueError(
                    f"batched affine g0 has shape {g0s.shape}, "
                    f"expected ({n}, {self.dim})"
                )
            if big_gs.shape != (n, self.dim, self.theta_dim):
                raise ValueError(
                    f"batched affine G has shape {big_gs.shape}, "
                    f"expected ({n}, {self.dim}, {self.theta_dim})"
                )
            if not self._affine_batch_checked and n:
                for r in {0, n - 1}:
                    g0, big_g = self.affine_parts(x[r])
                    if not (
                        np.allclose(g0, g0s[r], rtol=1e-9, atol=1e-12)
                        and np.allclose(big_g, big_gs[r], rtol=1e-9, atol=1e-12)
                    ):
                        raise ValueError(
                            f"model {self.name!r}: affine_drift_batch disagrees "
                            f"with affine_drift at x={x[r].tolist()}"
                        )
                self._affine_batch_checked = True
            return g0s, big_gs
        g0s = np.empty((n, self.dim))
        big_gs = np.empty((n, self.dim, self.theta_dim))
        for r in range(n):
            g0s[r], big_gs[r] = self.affine_parts(x[r])
        return g0s, big_gs

    def jacobian_x(self, x, theta) -> np.ndarray:
        """Jacobian of the drift in ``x`` (analytic when declared)."""
        x = np.asarray(x, dtype=float)
        theta = np.asarray(theta, dtype=float)
        if self._drift_jacobian is not None:
            jac = np.asarray(self._drift_jacobian(x, theta), dtype=float)
            if jac.shape != (self.dim, self.dim):
                raise ValueError(
                    f"declared Jacobian has shape {jac.shape}, "
                    f"expected ({self.dim}, {self.dim})"
                )
            return jac
        return numeric_jacobian(lambda y: self.drift(y, theta), x)

    def jacobian_x_batch(self, x, theta) -> np.ndarray:
        """Batched drift Jacobians in ``x``: shape ``(n, d, d)``.

        Parameters
        ----------
        x:
            Row-major batch of states, shape ``(n, d)``.
        theta:
            Matching batch of parameters, shape ``(n, p)`` (one per
            row — Pontryagin lanes carry different controls).

        Uses the declared ``drift_jacobian_batch`` when available (one
        vectorized call; its first use is spot-checked against the
        scalar Jacobian, and a mismatch raises — a wrong Jacobian
        silently bends every costate integrated with it).  Falls back
        to a per-row loop over :meth:`jacobian_x` otherwise.
        """
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            x = x[None, :]
        theta = np.asarray(theta, dtype=float)
        if theta.ndim == 1:
            theta = theta[None, :]
        n = x.shape[0]
        if theta.shape[0] != n:
            raise ValueError(
                f"theta batch has {theta.shape[0]} rows for {n} states"
            )
        if self._drift_jacobian_batch is not None:
            jacs = np.asarray(self._drift_jacobian_batch(x, theta),
                              dtype=float)
            if jacs.shape != (n, self.dim, self.dim):
                raise ValueError(
                    f"batched Jacobian has shape {jacs.shape}, "
                    f"expected ({n}, {self.dim}, {self.dim})"
                )
            if not self._jacobian_batch_checked and n:
                for r in {0, n - 1}:
                    ref = self.jacobian_x(x[r], theta[r])
                    if not np.allclose(ref, jacs[r], rtol=1e-9, atol=1e-12):
                        raise ValueError(
                            f"model {self.name!r}: drift_jacobian_batch "
                            f"disagrees with drift_jacobian at "
                            f"x={x[r].tolist()}"
                        )
                self._jacobian_batch_checked = True
            return jacs
        out = np.empty((n, self.dim, self.dim))
        for r in range(n):
            out[r] = self.jacobian_x(x[r], theta[r])
        return out

    # ------------------------------------------------------------------
    # Backend seam
    # ------------------------------------------------------------------

    def batch_kernel_declarations(self) -> dict:
        """The raw batch-kernel declarations of this model, by name.

        This is what an accelerated :mod:`repro.backend` backend
        compiles: one ``rate:<name>`` entry per transition (the
        coordinate-major rate function) plus the declared
        ``affine_drift_batch`` / ``drift_jacobian_batch`` kernels when
        present (absent keys are simply not declared).  The REG005
        registry audit holds every entry to the
        :func:`repro.backend.kernel_compilable` contract so registered
        models stay compilable.
        """
        decls = {}
        for tr in self.transitions:
            decls[f"rate:{tr.name}"] = tr.rate
        if self._affine_drift_batch is not None:
            decls["affine_drift_batch"] = self._affine_drift_batch
        if self._drift_jacobian_batch is not None:
            decls["drift_jacobian_batch"] = self._drift_jacobian_batch
        return decls

    def backend_kernels(self, backend=None):
        """This model's batch kernels compiled on an array backend.

        ``backend`` is a name, an
        :class:`~repro.backend.ArrayBackend` instance, or ``None`` for
        the process default (see :func:`repro.backend.resolve_backend`).
        Kernels compile once per ``(model, backend)`` pair and are
        memoized on the backend; on the numpy backend they *are* the
        bound batch methods, so dispatching through the seam is
        bit-identical to calling them directly.
        """
        from repro.backend import resolve_backend

        return resolve_backend(backend).model_kernels(self)

    # ------------------------------------------------------------------
    # State-space housekeeping
    # ------------------------------------------------------------------

    def clip_state(self, x) -> np.ndarray:
        """Clip a state to the declared bounds (identity when unbounded)."""
        x = np.asarray(x, dtype=float)
        if self.state_lower is None:
            return x.copy()
        return np.clip(x, self.state_lower, self.state_upper)

    def observable(self, name: str, x) -> float:
        """Evaluate a named linear observable at state ``x``."""
        if name not in self.observables:
            raise KeyError(
                f"model {self.name!r} has no observable {name!r}; "
                f"available: {sorted(self.observables)}"
            )
        return float(self.observables[name] @ np.asarray(x, dtype=float))

    def check_conservations(self, x, tol: float = 1e-9) -> bool:
        """Whether all declared linear invariants hold at ``x``."""
        x = np.asarray(x, dtype=float)
        return all(
            abs(float(w @ x) - value) <= tol for w, value in self.conservations
        )

    # ------------------------------------------------------------------
    # Finite-N instantiation
    # ------------------------------------------------------------------

    def instantiate(self, population_size: int, initial_density):
        """Build the finite-``N`` CTMC of Definition 4 at this size.

        ``initial_density`` is the normalised initial state; it is rounded
        to the nearest lattice point ``k / N``.
        """
        from repro.population.finite import FinitePopulation

        return FinitePopulation(self, population_size, initial_density)

    def __repr__(self) -> str:
        kind = "uncertain/imprecise" if not self.is_precise else "precise"
        return (
            f"PopulationModel({self.name!r}, states={list(self.state_names)}, "
            f"{len(self.transitions)} transitions, {kind})"
        )
