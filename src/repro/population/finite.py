"""Finite-``N`` instantiation of a population model.

:class:`FinitePopulation` is the concrete member of the sequence
``(X^N)_N`` of Definition 4: a CTMC on the lattice ``{0, 1/N, ...}^d``
whose event ``e`` fires at aggregate rate ``N * rate_e(x, theta)`` and
jumps the normalised state by ``change_e / N``.  It is what the
stochastic simulator (:mod:`repro.simulation`) runs and what the exact
CTMC solvers (:mod:`repro.ctmc`) enumerate when the reachable lattice is
small enough.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["FinitePopulation"]


class FinitePopulation:
    """A population model instantiated at a concrete population size ``N``."""

    def __init__(self, model, population_size: int, initial_density):
        if population_size < 1:
            raise ValueError("population size must be a positive integer")
        self.model = model
        self.population_size = int(population_size)
        x0 = np.asarray(initial_density, dtype=float)
        if x0.shape != (model.dim,):
            raise ValueError(
                f"initial density has shape {x0.shape}, expected ({model.dim},)"
            )
        # Snap the initial density to the N-lattice so all reachable states
        # are exact lattice points (avoids floating-point state drift).
        self.initial_counts = np.rint(x0 * self.population_size).astype(np.int64)
        if np.any(self.initial_counts < 0):
            raise ValueError("initial density has negative coordinates")
        self._change_matrix: Optional[np.ndarray] = None  # built lazily

    @property
    def dim(self) -> int:
        return self.model.dim

    @property
    def initial_density(self) -> np.ndarray:
        """The lattice-snapped normalised initial state."""
        return self.initial_counts / self.population_size

    def density(self, counts) -> np.ndarray:
        """Convert an integer count vector to normalised densities."""
        return np.asarray(counts, dtype=float) / self.population_size

    def aggregate_rates(self, counts, theta) -> np.ndarray:
        """Aggregate (un-normalised) rates of every transition at ``counts``.

        The rate of event ``e`` is ``N * rate_e(counts / N, theta)``, and
        events that would push any count outside ``[0, N]`` are disabled
        (their rate is forced to zero).  The disabling matches the paper's
        population models, whose rate functions vanish on the boundary —
        e.g. the bike-sharing arrival rate applies "if X_B(t) > 0" — and
        protects against rate functions that are only *approximately* zero
        at the boundary under floating point.
        """
        counts = np.asarray(counts, dtype=np.int64)
        x = self.density(counts)
        rates = self.population_size * self.model.transition_rates(x, theta)
        for e, tr in enumerate(self.model.transitions):
            new_counts = counts + tr.change.astype(np.int64)
            if np.any(new_counts < 0) or np.any(new_counts > self.population_size):
                rates[e] = 0.0
        return rates

    @property
    def change_matrix(self) -> np.ndarray:
        """Stacked integer jump vectors, shape ``(n_transitions, d)``.

        Row ``e`` is the count-space jump of transition ``e``; the
        vectorized engine applies a whole batch of selected events with
        one fancy-indexed addition.
        """
        if self._change_matrix is None:
            self._change_matrix = np.stack(
                [tr.change.astype(np.int64) for tr in self.model.transitions]
            )
        return self._change_matrix

    def aggregate_rates_batch(self, counts, thetas, kernels=None) -> np.ndarray:
        """Aggregate rates of every transition for a batch of count vectors.

        Parameters
        ----------
        counts:
            Integer count vectors, shape ``(n, d)``.
        thetas:
            Parameter vectors, shape ``(n, p)`` (one per row).

        Returns
        -------
        Aggregate rates ``N * rate_e(counts / N, theta)`` of shape
        ``(n, n_transitions)``, with boundary-leaving events disabled
        per row exactly as in :meth:`aggregate_rates`.
        """
        counts = np.atleast_2d(np.asarray(counts, dtype=np.int64))
        x = counts / self.population_size
        # ``kernels`` is an optional pre-resolved
        # :class:`repro.backend.ModelKernels`; on the numpy backend its
        # ``rates`` IS the bound ``transition_rates_batch`` method.
        rates_fn = (kernels.rates if kernels is not None
                    else self.model.transition_rates_batch)
        rates = self.population_size * rates_fn(x, thetas)
        # One (n, E, d) broadcast masks every row/event pair at once —
        # this sits in the engine's per-step hot path, where a Python
        # loop over E transitions would dominate for deep models.
        new_counts = counts[:, None, :] + self.change_matrix[None, :, :]
        bad = (
            (new_counts < 0) | (new_counts > self.population_size)
        ).any(axis=2)
        rates[bad] = 0.0
        return rates

    def apply(self, counts, transition_index: int) -> np.ndarray:
        """Apply transition ``transition_index`` to a count vector."""
        counts = np.asarray(counts, dtype=np.int64)
        change = self.model.transitions[transition_index].change.astype(np.int64)
        new_counts = counts + change
        if np.any(new_counts < 0) or np.any(new_counts > self.population_size):
            raise ValueError(
                f"transition {self.model.transitions[transition_index].name!r} "
                f"leaves the lattice at counts={counts.tolist()}"
            )
        return new_counts

    def uniformization_constant(self, theta_corners=None) -> float:
        """An upper bound on the total exit rate over the lattice.

        Scans the parameter corners and a coarse grid of lattice states
        for the largest total aggregate rate, then pads by 10%.  Used by
        uniformization-based exact solvers; condition (i) of Definition 4
        (uniformizability) guarantees this is finite.
        """
        if theta_corners is None:
            theta_corners = self.model.theta_set.corners()
        best = 0.0
        probe_axis = np.linspace(0.0, 1.0, 5)
        lower = self.model.state_lower
        upper = self.model.state_upper
        if lower is None:
            lower = np.zeros(self.dim)
            upper = np.ones(self.dim)
        for theta in theta_corners:
            for frac in probe_axis:
                x = lower + frac * (upper - lower)
                total = self.population_size * self.model.total_exit_rate(x, theta)
                best = max(best, total)
        return 1.1 * best + 1e-9

    def __repr__(self) -> str:
        return (
            f"FinitePopulation({self.model.name!r}, N={self.population_size}, "
            f"x0={self.initial_density.tolist()})"
        )
