"""Numerical calculus helpers for population models."""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["numeric_jacobian", "check_affine_decomposition"]


def numeric_jacobian(f: Callable, x, eps: float = 1e-7) -> np.ndarray:
    """Central finite-difference Jacobian of ``f`` at ``x``.

    ``f`` maps an ``(d,)`` vector to an ``(m,)`` vector; the result has
    shape ``(m, d)``.  Used as the fallback for the Pontryagin costate
    equation when a model does not provide an analytic Jacobian.
    """
    x = np.asarray(x, dtype=float)
    f0 = np.asarray(f(x), dtype=float)
    jac = np.empty((f0.shape[0], x.shape[0]))
    for j in range(x.shape[0]):
        step = eps * max(1.0, abs(float(x[j])))
        xp = x.copy()
        xm = x.copy()
        xp[j] += step
        xm[j] -= step
        jac[:, j] = (np.asarray(f(xp), dtype=float) - np.asarray(f(xm), dtype=float)) / (
            2.0 * step
        )
    return jac


def check_affine_decomposition(model, x, rng=None, n_samples: int = 16,
                               tol: float = 1e-8) -> bool:
    """Verify that a model's declared affine decomposition matches its drift.

    Draws ``n_samples`` parameters from ``model.theta_set`` and checks
    ``drift(x, theta) == g0(x) + G(x) @ theta`` to within ``tol``.
    Raises ``AssertionError`` with a diagnostic on mismatch, returns
    ``True`` otherwise.  Used by the model test-suites — a wrong affine
    decomposition silently corrupts every bound computed from it.
    """
    if not model.is_affine:
        raise ValueError(f"model {model.name!r} declares no affine decomposition")
    if rng is None:
        rng = np.random.default_rng(0)
    x = np.asarray(x, dtype=float)
    g0, big_g = model.affine_parts(x)
    thetas = model.theta_set.sample(rng, n_samples)
    for theta in thetas:
        direct = model.drift(x, theta)
        reconstructed = g0 + big_g @ theta
        err = float(np.max(np.abs(direct - reconstructed)))
        if err > tol:
            raise AssertionError(
                f"model {model.name!r}: affine decomposition mismatch at "
                f"x={x.tolist()}, theta={theta.tolist()}: error {err:.3e}"
            )
    return True
