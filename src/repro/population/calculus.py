"""Numerical calculus helpers for population models."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro import telemetry

__all__ = [
    "numeric_jacobian",
    "check_affine_decomposition",
    "validated_batch_eval",
]


def validated_batch_eval(batch_fn: Callable, scalar_fn: Callable, n: int,
                         status, can_validate: bool, clamp: bool = True):
    """Evaluate a user rate function over a batch with lazy validation.

    Shared heuristic behind
    :meth:`~repro.population.PopulationModel.transition_rates_batch`,
    :meth:`~repro.population.PopulationModel.drift_batch` and the
    random-jump policy lane: user rate functions are written against
    scalar coordinates, so the batched (coordinate-major) call is only
    trusted after it has reproduced the per-row scalar evaluation once.

    Parameters
    ----------
    batch_fn:
        Zero-argument thunk invoking the user function on the
        coordinate-major batch; its result should be ``(n,)``.
    scalar_fn:
        Zero-argument thunk evaluating the same rows one-by-one through
        the scalar path (always correct, already clamped when ``clamp``).
    n:
        Number of batch rows.
    status:
        Tri-state verdict so far: ``True`` (validated), ``False``
        (fall back forever), ``None`` (unknown).
    can_validate:
        Whether this batch can discriminate a broken vectorization —
        callers pass ``True`` only for batches of two or more *distinct*
        rows.  On an all-identical batch, normalisation-invariant
        pooling mistakes (``np.mean`` over all rows) coincide with the
        correct value, so validating there would wrongly bless them.
    clamp:
        Clamp batched values non-negative (the SSA rate convention).
        Drift evaluations pass ``False``: the drift uses the *raw* rates
        so it stays smooth across the state-space boundary, and the
        scalar reference path is then expected to be unclamped too.

    Returns
    -------
    ``(values, new_status)`` — ``values`` of shape ``(n,)`` (clamped
    non-negative when ``clamp``), and the updated tri-state (``None``
    means "still unknown", i.e. validation was deferred).
    """
    if status is False or (status is None and not can_validate):
        return scalar_fn(), status
    try:
        raw = np.asarray(batch_fn(), dtype=float)
        # 0-d results are ambiguous (a constant, or a full reduction
        # such as np.sum pooling every row); both take the fallback.
        if raw.ndim == 0 or raw.shape != (n,):
            raise ValueError("batched rate has wrong shape")
    except Exception:
        # The user function cannot take arrays (or pooled them): fall
        # back to the scalar path forever, stamping the rejection so an
        # unexpectedly slow run is diagnosable from the metrics.
        telemetry.inc("calculus.batch_rejections")
        return scalar_fn(), False
    values = np.maximum(raw, 0.0) if clamp else raw
    if status is None:
        scalar = scalar_fn()
        if not np.allclose(values, scalar, rtol=1e-9, atol=1e-12,
                           equal_nan=True):
            return scalar, False
        return values, True
    return values, True


def numeric_jacobian(f: Callable, x, eps: float = 1e-7) -> np.ndarray:
    """Central finite-difference Jacobian of ``f`` at ``x``.

    ``f`` maps an ``(d,)`` vector to an ``(m,)`` vector; the result has
    shape ``(m, d)``.  Used as the fallback for the Pontryagin costate
    equation when a model does not provide an analytic Jacobian.
    """
    x = np.asarray(x, dtype=float)
    f0 = np.asarray(f(x), dtype=float)
    jac = np.empty((f0.shape[0], x.shape[0]))
    for j in range(x.shape[0]):
        step = eps * max(1.0, abs(float(x[j])))
        xp = x.copy()
        xm = x.copy()
        xp[j] += step
        xm[j] -= step
        jac[:, j] = (np.asarray(f(xp), dtype=float) - np.asarray(f(xm), dtype=float)) / (
            2.0 * step
        )
    return jac


def check_affine_decomposition(model, x, rng=None, n_samples: int = 16,
                               tol: float = 1e-8) -> bool:
    """Verify that a model's declared affine decomposition matches its drift.

    Draws ``n_samples`` parameters from ``model.theta_set`` and checks
    ``drift(x, theta) == g0(x) + G(x) @ theta`` to within ``tol``.
    Raises ``AssertionError`` with a diagnostic on mismatch, returns
    ``True`` otherwise.  Used by the model test-suites — a wrong affine
    decomposition silently corrupts every bound computed from it.
    """
    if not model.is_affine:
        raise ValueError(f"model {model.name!r} declares no affine decomposition")
    if rng is None:
        rng = np.random.default_rng(0)
    x = np.asarray(x, dtype=float)
    g0, big_g = model.affine_parts(x)
    thetas = model.theta_set.sample(rng, n_samples)
    for theta in thetas:
        direct = model.drift(x, theta)
        reconstructed = g0 + big_g @ theta
        err = float(np.max(np.abs(direct - reconstructed)))
        if err > tol:
            raise AssertionError(
                f"model {model.name!r}: affine decomposition mismatch at "
                f"x={x.tolist()}, theta={theta.tolist()}: error {err:.3e}"
            )
    return True
