"""Transition classes: the events of a population process."""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["Transition"]


class Transition:
    """One class of events of a population process.

    Parameters
    ----------
    name:
        Human-readable label (``"infection"``, ``"service_1"``, ...).
    change:
        Jump vector in *population counts*: the event moves the count
        vector from ``K`` to ``K + change``.  In the normalised process of
        size ``N`` the state jumps by ``change / N``.
    rate:
        Density-scaled rate function ``rate(x, theta) -> float`` where
        ``x`` is the normalised state.  The aggregate rate of the event in
        the size-``N`` system is ``N * rate(x, theta)``; this is the
        scaling that makes Definition 4 hold and yields the drift
        ``f(x, theta) = sum_e change_e * rate_e(x, theta)``.

    Examples
    --------
    The SIR infection event of Section V (states ordered ``S, I, R``):

    >>> infection = Transition(
    ...     "infection",
    ...     change=[-1, 1, 0],
    ...     rate=lambda x, theta: 0.1 * x[0] + theta[0] * x[0] * x[1],
    ... )
    >>> infection.change
    array([-1.,  1.,  0.])
    """

    def __init__(self, name: str, change, rate: Callable):
        if not name:
            raise ValueError("a transition needs a non-empty name")
        self.name = str(name)
        self.change = np.asarray(change, dtype=float)
        if self.change.ndim != 1:
            raise ValueError(
                f"transition {name!r}: change must be a vector, "
                f"got shape {self.change.shape}"
            )
        if not np.any(self.change != 0.0):
            raise ValueError(f"transition {name!r}: change vector is all zero")
        if not callable(rate):
            raise TypeError(f"transition {name!r}: rate must be callable")
        self.rate = rate

    @property
    def dim(self) -> int:
        """Dimension of the state space the transition acts on."""
        return self.change.shape[0]

    def rate_at(self, x, theta) -> float:
        """Evaluate the (density-scaled) rate, clamped to be non-negative.

        Rates are mathematically non-negative on the admissible state
        space, but floating-point drift during simulation can push states
        epsilon outside it; clamping keeps the SSA race well-defined.
        """
        value = float(self.rate(np.asarray(x, dtype=float), np.asarray(theta, dtype=float)))
        if np.isnan(value):
            raise ValueError(
                f"transition {self.name!r}: rate is NaN at x={x}, theta={theta}"
            )
        return max(value, 0.0)

    def __repr__(self) -> str:
        return f"Transition({self.name!r}, change={self.change.tolist()})"
