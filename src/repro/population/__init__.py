"""Population processes defined by transition classes.

Section III of the paper defines imprecise population processes as
sequences of imprecise CTMCs indexed by a scaling parameter ``N`` whose
transitions shrink like ``1/N``.  Following the paper's own suggestion
("a simpler definition can be obtained by specifying transition classes"),
a model here is a list of :class:`Transition` objects — each with a jump
vector (in population counts) and a density-scaled rate function
``rate(x, theta)`` — together with a parameter domain ``Theta``.

- :class:`Transition` — one event class (jump vector + rate function).
- :class:`PopulationModel` — the model: drift (Definition 3 / Eq. 3),
  optional affine-in-theta decomposition and analytic Jacobians, state
  bounds and conservation constraints.
- :class:`FinitePopulation` — the concrete finite-``N`` CTMC obtained by
  instantiating the model at a population size, ready for stochastic
  simulation or exact CTMC analysis.
- :func:`numeric_jacobian` — central finite differences, the fallback
  when a model carries no analytic Jacobian.
"""

from repro.population.calculus import check_affine_decomposition, numeric_jacobian
from repro.population.finite import FinitePopulation
from repro.population.model import PopulationModel
from repro.population.transitions import Transition

__all__ = [
    "Transition",
    "PopulationModel",
    "FinitePopulation",
    "numeric_jacobian",
    "check_affine_decomposition",
]
