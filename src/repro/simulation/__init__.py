"""Stochastic simulation of finite-``N`` imprecise population processes.

The imprecise chain of Definition 1 couples the Markovian race of the
population events with an adversarial/environmental parameter signal
``theta_t`` adapted to the process.  The simulator represents that signal
as a :class:`ControlPolicy` — a (possibly stateful, possibly random)
rule producing ``theta`` as a function of time and state, with optional
autonomous jump events that enter the SSA race.

Policies provided (Section V-E of the paper uses the last two):

- :class:`ConstantPolicy` — the uncertain scenario (frozen ``theta``).
- :class:`PiecewiseConstantPolicy` — a deterministic schedule.
- :class:`FeedbackPolicy` — deterministic state feedback
  ``theta = g(t, x)`` (a Markovian control policy).
- :class:`HysteresisPolicy` — the paper's ``theta_1``: oscillates between
  two parameter values with switching thresholds on one coordinate.
- :class:`RandomJumpPolicy` — the paper's ``theta_2``: re-draws ``theta``
  uniformly at state-dependent rate (an autonomous event in the race).

The SSA itself (:func:`simulate`) is an exact Gillespie/first-reaction
scheme on the lattice chain of :class:`~repro.population.FinitePopulation`.

Ensembles and engines
---------------------
:func:`batch_simulate` runs ``n_runs`` independent replications and
aggregates them into a :class:`BatchResult`.  It has two engines:

- ``engine="vectorized"`` (default) — delegates to
  :func:`repro.engine.simulate_ensemble`, which steps the whole
  ensemble as ``(n_runs, d)`` arrays with batched rate evaluation and
  per-row clocks drawn from a single generator;
- ``engine="scalar"`` — the legacy loop over :func:`simulate`, kept for
  differential testing of the vectorized engine.

*Why the vectorized engine is still exact.*  Each ensemble row runs its
own direct-method race, asynchronously in its own clock: the row's
holding time is ``Exp(total rate)`` for *that row's* state and policy,
and its event is selected proportionally to *that row's* rates.  Two
properties carry the scalar kernel's exactness argument over unchanged:

1. **memoryless restart at policy switches** — when a row's exponential
   draw crosses the row's next deterministic ``theta`` discontinuity,
   the engine advances that row to the switch and re-draws; by the
   memoryless property of the exponential distribution the restarted
   race has the same law as the conditional continuation, so
   per-row switch handling is exact, not approximate;
2. **per-row clocks** — rows never share holding times or selection
   draws, only the underlying generator stream, so trajectories remain
   mutually independent and each is distributed exactly as a scalar
   SSA run.

Consequently the two engines are *statistically* indistinguishable
(they consume the random stream in different orders, so paths differ
for a fixed seed); ``tests/test_engine_equivalence.py`` pins them
together through CLT bands and two-sample KS tests.
"""

from repro.simulation.adversarial import (
    policy_from_controls,
    validate_bound_by_simulation,
)
from repro.simulation.batch import BatchResult, batch_simulate
from repro.simulation.policies import (
    ConstantPolicy,
    ControlPolicy,
    FeedbackPolicy,
    HysteresisPolicy,
    PiecewiseConstantPolicy,
    RandomJumpPolicy,
)
from repro.simulation.ssa import SimulationResult, simulate

__all__ = [
    "ControlPolicy",
    "ConstantPolicy",
    "PiecewiseConstantPolicy",
    "FeedbackPolicy",
    "HysteresisPolicy",
    "RandomJumpPolicy",
    "simulate",
    "SimulationResult",
    "batch_simulate",
    "BatchResult",
    "policy_from_controls",
    "validate_bound_by_simulation",
]
