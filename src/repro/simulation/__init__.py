"""Stochastic simulation of finite-``N`` imprecise population processes.

The imprecise chain of Definition 1 couples the Markovian race of the
population events with an adversarial/environmental parameter signal
``theta_t`` adapted to the process.  The simulator represents that signal
as a :class:`ControlPolicy` — a (possibly stateful, possibly random)
rule producing ``theta`` as a function of time and state, with optional
autonomous jump events that enter the SSA race.

Policies provided (Section V-E of the paper uses the last two):

- :class:`ConstantPolicy` — the uncertain scenario (frozen ``theta``).
- :class:`PiecewiseConstantPolicy` — a deterministic schedule.
- :class:`FeedbackPolicy` — deterministic state feedback
  ``theta = g(t, x)`` (a Markovian control policy).
- :class:`HysteresisPolicy` — the paper's ``theta_1``: oscillates between
  two parameter values with switching thresholds on one coordinate.
- :class:`RandomJumpPolicy` — the paper's ``theta_2``: re-draws ``theta``
  uniformly at state-dependent rate (an autonomous event in the race).

The SSA itself (:func:`simulate`) is an exact Gillespie/first-reaction
scheme on the lattice chain of :class:`~repro.population.FinitePopulation`.
"""

from repro.simulation.policies import (
    ConstantPolicy,
    ControlPolicy,
    FeedbackPolicy,
    HysteresisPolicy,
    PiecewiseConstantPolicy,
    RandomJumpPolicy,
)
from repro.simulation.adversarial import (
    policy_from_controls,
    validate_bound_by_simulation,
)
from repro.simulation.batch import BatchResult, batch_simulate
from repro.simulation.ssa import SimulationResult, simulate

__all__ = [
    "ControlPolicy",
    "ConstantPolicy",
    "PiecewiseConstantPolicy",
    "FeedbackPolicy",
    "HysteresisPolicy",
    "RandomJumpPolicy",
    "simulate",
    "SimulationResult",
    "batch_simulate",
    "BatchResult",
    "policy_from_controls",
    "validate_bound_by_simulation",
]
