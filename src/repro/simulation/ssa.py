"""Exact stochastic simulation (Gillespie SSA) of imprecise chains.

The simulated object is the finite-``N`` lattice chain of
:class:`~repro.population.FinitePopulation`, raced against the autonomous
events of a :class:`~repro.simulation.ControlPolicy`.  The scheme is the
direct (first-reaction-equivalent) method:

1. evaluate ``theta`` from the policy, then all aggregate event rates;
2. draw the holding time ``~ Exp(total rate)``; if it crosses the next
   deterministic policy switch, advance to the switch and re-draw
   (the memoryless property makes this exact);
3. pick an event proportionally to its rate — either a model transition
   (jump ``change / N``) or a policy re-draw;
4. repeat until the horizon.

States are recorded on a fixed output grid (piecewise-constant sampling
of the jump process), so memory stays bounded for large ``N`` and long
horizons — the Figure 6 runs use ``N = 10^4`` over hundreds of time
units.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.population import FinitePopulation
from repro.simulation.policies import ControlPolicy

__all__ = ["SimulationResult", "simulate"]


@dataclass
class SimulationResult:
    """A sampled trajectory of the finite-``N`` imprecise chain.

    Attributes
    ----------
    times:
        The output sampling grid, shape ``(n,)``.
    states:
        Normalised (density) state at each grid time, shape ``(n, d)``.
    thetas:
        The policy parameter in force at each grid time, ``(n, p)``.
    n_events:
        Total number of model transitions executed.
    n_policy_jumps:
        Total number of autonomous policy events executed.
    population_size:
        The ``N`` of the simulated chain.
    """

    times: np.ndarray
    states: np.ndarray
    thetas: np.ndarray
    n_events: int
    n_policy_jumps: int
    population_size: int

    @property
    def final_state(self) -> np.ndarray:
        return self.states[-1].copy()

    def after(self, t_burn_in: float) -> "SimulationResult":
        """Drop the samples before ``t_burn_in`` (steady-state windows)."""
        mask = self.times >= t_burn_in
        if not mask.any():
            raise ValueError(f"no samples at or after t={t_burn_in}")
        return SimulationResult(
            times=self.times[mask],
            states=self.states[mask],
            thetas=self.thetas[mask],
            n_events=self.n_events,
            n_policy_jumps=self.n_policy_jumps,
            population_size=self.population_size,
        )

    def observable(self, weights) -> np.ndarray:
        """Time series of a linear observable along the run."""
        return self.states @ np.asarray(weights, dtype=float)


def simulate(
    population: FinitePopulation,
    policy: ControlPolicy,
    t_final: float,
    rng: Optional[np.random.Generator] = None,
    n_samples: int = 1000,
    t_start: float = 0.0,
    max_events: int = 50_000_000,
) -> SimulationResult:
    """Run one exact SSA trajectory up to ``t_final``.

    Parameters
    ----------
    population:
        The instantiated finite-``N`` chain.
    policy:
        The environmental parameter signal (one admissible ``theta_t``).
    t_final:
        Simulation horizon.
    rng:
        Numpy generator; when omitted a *deterministically seeded*
        generator is used, so two argument-less calls replay the same
        trajectory (pass your own generator for independent runs).
    n_samples:
        Number of equally spaced output samples on ``[t_start, t_final]``.
    max_events:
        Safety cap on the total number of executed events.
    """
    if t_final <= t_start:
        raise ValueError("t_final must exceed t_start")
    if n_samples < 2:
        raise ValueError("n_samples must be >= 2")
    if rng is None:
        rng = np.random.default_rng(np.random.SeedSequence(0))
    model = population.model

    counts = population.initial_counts.copy()
    t = float(t_start)
    policy.reset(rng, population.density(counts))

    sample_times = np.linspace(t_start, t_final, n_samples)
    states = np.empty((n_samples, model.dim))
    theta_dim = model.theta_set.dim
    thetas = np.empty((n_samples, theta_dim))
    next_sample = 0

    n_events = 0
    n_policy_jumps = 0

    def record_until(t_now: float, x_now: np.ndarray, theta_now: np.ndarray):
        """Fill output samples with the pre-jump state up to ``t_now``."""
        nonlocal next_sample
        while next_sample < n_samples and sample_times[next_sample] <= t_now:
            states[next_sample] = x_now
            thetas[next_sample] = theta_now
            next_sample += 1

    while t < t_final and n_events + n_policy_jumps < max_events:
        x = population.density(counts)
        theta = model.theta_set.project(policy.theta(t, x))
        rates = population.aggregate_rates(counts, theta)
        policy_rate = policy.jump_rate(t, x)
        total = float(np.sum(rates)) + policy_rate

        switch_at = policy.next_switch_after(t)
        if total <= 0.0:
            # Absorbed (no enabled event): jump to the next deterministic
            # policy switch, or finish.
            record_until(min(switch_at, t_final), x, theta)
            if switch_at >= t_final:
                t = t_final
                break
            t = switch_at
            continue

        dt = rng.exponential(1.0 / total)
        if t + dt > switch_at:
            # The race crosses a deterministic discontinuity of theta:
            # advance to it and restart (exact by memorylessness).
            record_until(min(switch_at, t_final), x, theta)
            t = switch_at
            continue
        if t + dt > t_final:
            record_until(t_final, x, theta)
            t = t_final
            break

        record_until(t + dt, x, theta)
        t = t + dt
        u = rng.uniform(0.0, total)
        if u < policy_rate:
            policy.on_jump(t, x, rng)
            n_policy_jumps += 1
            continue
        u -= policy_rate
        cumulative = np.cumsum(rates)
        event = int(np.searchsorted(cumulative, u, side="right"))
        event = min(event, len(rates) - 1)
        counts = population.apply(counts, event)
        n_events += 1

    if n_events + n_policy_jumps >= max_events:
        raise RuntimeError(
            f"SSA exceeded max_events={max_events} before t_final "
            f"(reached t={t:.4g}); raise the cap or shorten the horizon"
        )

    # Flush any remaining samples with the terminal state.
    x = population.density(counts)
    theta = model.theta_set.project(policy.theta(t, x))
    record_until(t_final + 1e-12, x, theta)

    return SimulationResult(
        times=sample_times,
        states=states,
        thetas=thetas,
        n_events=n_events,
        n_policy_jumps=n_policy_jumps,
        population_size=population.population_size,
    )
