"""Bridging mean-field bounds and finite-``N`` simulation.

The Pontryagin sweep produces the *adversarial environment*: the
parameter signal achieving the extreme of an observable in the
mean-field limit.  :func:`policy_from_controls` turns that signal into a
:class:`~repro.simulation.PiecewiseConstantPolicy`, so the same
adversary can drive the finite-``N`` stochastic chain.  By Theorem 1 the
simulated observable then concentrates, as ``N`` grows, on the
mean-field bound — the standard cross-validation that the bound is
attained and not merely an over-approximation
(:func:`validate_bound_by_simulation` packages the check).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.simulation.batch import batch_simulate
from repro.simulation.policies import PiecewiseConstantPolicy

__all__ = ["policy_from_controls", "validate_bound_by_simulation"]


def policy_from_controls(result) -> PiecewiseConstantPolicy:
    """Convert an extremal control signal into a simulable policy.

    ``result`` is a :class:`~repro.bounds.PontryaginResult`; consecutive
    grid intervals with equal controls are merged into single schedule
    pieces (bang-bang signals collapse to a handful of pieces).

    Convention note: a schedule piece takes effect *at* its start time
    (``PiecewiseConstantPolicy.theta`` is right-continuous — the natural
    semantics for driving a simulation forward), whereas
    ``PontryaginResult.control_at`` reports the left limit at switch
    knots.  The two agree everywhere except exactly at the (measure
    zero) switching times.
    """
    times = result.times
    controls = result.controls
    schedule = [(float(times[0]), controls[0].copy())]
    for i in range(1, controls.shape[0]):
        if not np.allclose(controls[i], schedule[-1][1], atol=1e-12):
            schedule.append((float(times[i]), controls[i].copy()))
    return PiecewiseConstantPolicy(schedule)


def validate_bound_by_simulation(
    model,
    result,
    population_size: int = 10_000,
    n_runs: int = 8,
    seed: int = 0,
    direction: Optional[np.ndarray] = None,
) -> dict:
    """Check that the adversarial policy approaches the bound at finite N.

    Runs ``n_runs`` SSA replications of the size-``population_size``
    chain under the policy recovered from ``result`` and compares the
    ensemble mean of ``direction . x(T)`` with the mean-field bound
    ``result.value``.

    Returns a dict with ``bound``, ``simulated_mean``, ``simulated_std``
    and ``gap`` (bound minus simulated mean; positive and O(1/sqrt(N))
    for a maximisation, negative for a minimisation).
    """
    if population_size < 1 or n_runs < 1:
        raise ValueError("population_size and n_runs must be positive")
    direction = (result.direction if direction is None
                 else np.asarray(direction, dtype=float))
    x0 = result.states[0]
    horizon = float(result.times[-1])
    batch = batch_simulate(
        model.instantiate(population_size, x0),
        lambda: policy_from_controls(result),
        horizon,
        n_runs=n_runs,
        seed=seed,
        n_samples=50,
    )
    finals = batch.final_states() @ direction
    simulated_mean = float(np.mean(finals))
    return {
        "bound": result.value,
        "simulated_mean": simulated_mean,
        "simulated_std": float(np.std(finals)),
        "gap": result.value - simulated_mean,
    }
