"""Control policies: the environmental parameter signal of an imprecise chain.

A policy realises one admissible process ``theta_t`` of Definition 1.
The SSA queries it through four hooks:

- :meth:`ControlPolicy.reset` — (re-)initialise internal state for a run;
- :meth:`ControlPolicy.theta` — the current parameter, given ``(t, x)``;
- :meth:`ControlPolicy.jump_rate` — rate of the policy's own autonomous
  re-draw events (zero for deterministic policies); these events join the
  SSA race exactly like model transitions;
- :meth:`ControlPolicy.on_jump` — executed when a policy event fires;
- :meth:`ControlPolicy.next_switch_after` — the next deterministic
  discontinuity of ``theta(t)`` (``inf`` when none), so the SSA can stop
  the exponential race at schedule boundaries and stay exact.

All policies must keep ``theta`` inside the model's ``Theta``; the SSA
projects defensively.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np

__all__ = [
    "ControlPolicy",
    "ConstantPolicy",
    "PiecewiseConstantPolicy",
    "FeedbackPolicy",
    "HysteresisPolicy",
    "RandomJumpPolicy",
]


class ControlPolicy:
    """Base class: a deterministic, constant-free policy interface."""

    def reset(self, rng: np.random.Generator, x0: np.ndarray) -> None:
        """Prepare internal state for a fresh simulation run."""

    def theta(self, t: float, x: np.ndarray) -> np.ndarray:
        """The parameter in force at time ``t`` in state ``x``."""
        raise NotImplementedError

    def jump_rate(self, t: float, x: np.ndarray) -> float:
        """Rate of autonomous policy events (0 for deterministic policies)."""
        return 0.0

    def on_jump(self, t: float, x: np.ndarray, rng: np.random.Generator) -> None:
        """React to one autonomous policy event."""

    def next_switch_after(self, t: float) -> float:
        """Next deterministic discontinuity of ``theta`` strictly after ``t``."""
        return np.inf


class ConstantPolicy(ControlPolicy):
    """The uncertain scenario: a frozen parameter for the whole run."""

    def __init__(self, theta):
        self._theta = np.atleast_1d(np.asarray(theta, dtype=float))

    def theta(self, t: float, x: np.ndarray) -> np.ndarray:
        return self._theta

    def __repr__(self) -> str:
        return f"ConstantPolicy({self._theta.tolist()})"


class PiecewiseConstantPolicy(ControlPolicy):
    """A deterministic schedule of ``(start_time, theta)`` pieces."""

    def __init__(self, schedule: Sequence[Tuple[float, Sequence[float]]]):
        if not schedule:
            raise ValueError("schedule must be non-empty")
        starts = [float(s) for s, _ in schedule]
        if starts != sorted(starts):
            raise ValueError("schedule start times must be sorted")
        self._starts = np.asarray(starts)
        self._thetas = [np.atleast_1d(np.asarray(th, dtype=float)) for _, th in schedule]

    def theta(self, t: float, x: np.ndarray) -> np.ndarray:
        index = int(np.searchsorted(self._starts, t, side="right") - 1)
        index = max(index, 0)
        return self._thetas[index]

    def next_switch_after(self, t: float) -> float:
        later = self._starts[self._starts > t + 1e-15]
        return float(later[0]) if later.size else np.inf

    def __repr__(self) -> str:
        return f"PiecewiseConstantPolicy({len(self._thetas)} pieces)"


class FeedbackPolicy(ControlPolicy):
    """Deterministic state feedback ``theta = g(t, x)`` (Markovian policy)."""

    def __init__(self, fn: Callable):
        if not callable(fn):
            raise TypeError("fn must be callable")
        self._fn = fn

    def theta(self, t: float, x: np.ndarray) -> np.ndarray:
        return np.atleast_1d(np.asarray(self._fn(t, x), dtype=float))

    def __repr__(self) -> str:
        return "FeedbackPolicy(...)"


class HysteresisPolicy(ControlPolicy):
    """The paper's policy ``theta_1`` (Section V-E): threshold switching.

    Watches one state coordinate and oscillates between two parameter
    vectors: in *high* mode, switch to *low* mode when the coordinate
    drops below ``low_threshold``; in *low* mode, switch back when it
    rises above ``high_threshold``.  For the SIR example the coordinate
    is ``X_S``, the modes are ``theta_max``/``theta_min``, and the
    thresholds are 0.5 / 0.85, inducing the near-periodic oscillation of
    Figure 6(a).

    Parameters
    ----------
    theta_low, theta_high:
        Parameter vectors of the two modes.
    coordinate:
        Index of the watched state coordinate.
    low_threshold, high_threshold:
        Switching thresholds (``low_threshold < high_threshold``).
    start_high:
        Initial mode.
    """

    def __init__(self, theta_low, theta_high, coordinate: int,
                 low_threshold: float, high_threshold: float,
                 start_high: bool = True):
        if low_threshold >= high_threshold:
            raise ValueError("low_threshold must be below high_threshold")
        self._theta_low = np.atleast_1d(np.asarray(theta_low, dtype=float))
        self._theta_high = np.atleast_1d(np.asarray(theta_high, dtype=float))
        self._coordinate = int(coordinate)
        self._low_threshold = float(low_threshold)
        self._high_threshold = float(high_threshold)
        self._start_high = bool(start_high)
        self._high_mode = self._start_high

    def reset(self, rng: np.random.Generator, x0: np.ndarray) -> None:
        self._high_mode = self._start_high

    @property
    def in_high_mode(self) -> bool:
        """Whether the policy currently applies ``theta_high``."""
        return self._high_mode

    def theta(self, t: float, x: np.ndarray) -> np.ndarray:
        value = float(x[self._coordinate])
        if self._high_mode and value < self._low_threshold:
            self._high_mode = False
        elif not self._high_mode and value > self._high_threshold:
            self._high_mode = True
        return self._theta_high if self._high_mode else self._theta_low

    def __repr__(self) -> str:
        return (
            f"HysteresisPolicy(coord={self._coordinate}, "
            f"thresholds=({self._low_threshold}, {self._high_threshold}))"
        )


class RandomJumpPolicy(ControlPolicy):
    """The paper's policy ``theta_2`` (Section V-E): random re-draws.

    The parameter jumps to a fresh value at a state-dependent rate; for
    the SIR example the rate is ``5 * X_I`` and the new value is drawn
    uniformly from ``Theta``.  The jumps are autonomous events competing
    in the SSA race.

    Parameters
    ----------
    theta_set:
        The domain to sample from (usually ``model.theta_set``).
    rate_fn:
        State-dependent jump rate ``r(t, x)`` in *absolute* events per
        unit time (the paper's ``5 X_I`` is such a rate: it does not
        scale with ``N``).  The SSA adds it unscaled to the event race.
    initial:
        Starting parameter; defaults to the centre of the domain.
    """

    def __init__(self, theta_set, rate_fn: Callable, initial=None):
        self._theta_set = theta_set
        if not callable(rate_fn):
            raise TypeError("rate_fn must be callable")
        self._rate_fn = rate_fn
        if initial is None:
            self._initial = theta_set.center()
        else:
            self._initial = np.atleast_1d(np.asarray(initial, dtype=float))
            if not theta_set.contains(self._initial, tol=1e-9):
                raise ValueError("initial theta is outside the domain")
        self._current = self._initial.copy()

    def reset(self, rng: np.random.Generator, x0: np.ndarray) -> None:
        self._current = self._initial.copy()

    def theta(self, t: float, x: np.ndarray) -> np.ndarray:
        return self._current

    def jump_rate(self, t: float, x: np.ndarray) -> float:
        return max(float(self._rate_fn(t, x)), 0.0)

    def on_jump(self, t: float, x: np.ndarray, rng: np.random.Generator) -> None:
        self._current = self._theta_set.sample(rng, 1)[0]

    def __repr__(self) -> str:
        return "RandomJumpPolicy(...)"
