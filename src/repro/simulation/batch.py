"""Batch stochastic simulation with ensemble statistics.

Single SSA paths (Figure 6) show *where* the process lives; ensemble
statistics quantify it.  :func:`batch_simulate` runs many independent
replications of an imprecise chain under a policy factory and aggregates
them on a common time grid: means, standard deviations, quantile bands
and the final-state empirical cloud.  Used by the convergence studies
and by users estimating fluctuation bands around the mean-field bounds
(the CLT-scale ``O(1/sqrt(N))`` band of Theorem 2's ``eps_N``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.population import FinitePopulation
from repro.simulation.ssa import SimulationResult, simulate

__all__ = ["BatchResult", "batch_simulate"]


@dataclass
class BatchResult:
    """Ensemble statistics of independent SSA replications.

    Attributes
    ----------
    times:
        Common sampling grid, shape ``(n,)``.
    states:
        All sampled paths, shape ``(n_runs, n, d)``.
    population_size:
        The ``N`` of the simulated chains.
    """

    times: np.ndarray
    states: np.ndarray
    population_size: int

    @property
    def n_runs(self) -> int:
        return self.states.shape[0]

    @property
    def dim(self) -> int:
        return self.states.shape[2]

    def mean(self) -> np.ndarray:
        """Ensemble mean path, shape ``(n, d)``."""
        return self.states.mean(axis=0)

    def std(self) -> np.ndarray:
        """Ensemble standard deviation path, shape ``(n, d)``."""
        return self.states.std(axis=0, ddof=1 if self.n_runs > 1 else 0)

    def quantile_band(self, lower: float = 0.05,
                      upper: float = 0.95) -> tuple:
        """Pointwise quantile band ``(q_lower, q_upper)``, each ``(n, d)``."""
        if not 0.0 <= lower < upper <= 1.0:
            raise ValueError("need 0 <= lower < upper <= 1")
        return (
            np.quantile(self.states, lower, axis=0),
            np.quantile(self.states, upper, axis=0),
        )

    def final_states(self) -> np.ndarray:
        """Final state of each replication, shape ``(n_runs, d)``."""
        return self.states[:, -1, :].copy()

    def observable(self, weights) -> np.ndarray:
        """Observable paths ``w . x``, shape ``(n_runs, n)``."""
        return self.states @ np.asarray(weights, dtype=float)

    def fraction_satisfying(self, predicate: Callable[[np.ndarray], bool],
                            at_index: int = -1) -> float:
        """Fraction of replications whose state at ``at_index`` satisfies
        ``predicate`` (e.g. threshold exceedance probabilities)."""
        hits = sum(
            bool(predicate(self.states[r, at_index]))
            for r in range(self.n_runs)
        )
        return hits / self.n_runs


def batch_simulate(
    population: FinitePopulation,
    policy_factory: Callable,
    t_final: float,
    n_runs: int,
    seed: int = 0,
    n_samples: int = 200,
    t_start: float = 0.0,
) -> BatchResult:
    """Run ``n_runs`` independent replications and aggregate them.

    Parameters
    ----------
    policy_factory:
        Zero-argument callable producing a *fresh* policy per run
        (policies are stateful; sharing one instance across runs would
        leak mode state even though ``reset`` is called).
    seed:
        Base seed; replication ``r`` uses ``default_rng(seed + r)``.
    """
    if n_runs < 1:
        raise ValueError("n_runs must be positive")
    paths = []
    times: Optional[np.ndarray] = None
    for r in range(n_runs):
        rng = np.random.default_rng(seed + r)
        run: SimulationResult = simulate(
            population, policy_factory(), t_final, rng=rng,
            n_samples=n_samples, t_start=t_start,
        )
        times = run.times if times is None else times
        paths.append(run.states)
    return BatchResult(
        times=times.copy(),
        states=np.stack(paths),
        population_size=population.population_size,
    )
