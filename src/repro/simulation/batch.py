"""Batch stochastic simulation with ensemble statistics.

Single SSA paths (Figure 6) show *where* the process lives; ensemble
statistics quantify it.  :func:`batch_simulate` runs many independent
replications of an imprecise chain under a policy factory and aggregates
them on a common time grid: means, standard deviations, quantile bands
and the final-state empirical cloud.  Used by the convergence studies
and by users estimating fluctuation bands around the mean-field bounds
(the CLT-scale ``O(1/sqrt(N))`` band of Theorem 2's ``eps_N``).

Two execution engines produce the same :class:`BatchResult`:

- ``engine="vectorized"`` (default) delegates to
  :func:`repro.engine.simulate_ensemble`, which steps the whole
  ensemble as ``(n_runs, d)`` arrays — the fast path for the large-``N``
  / many-run workloads of Figure 6;
- ``engine="scalar"`` is the legacy loop over the scalar
  :func:`~repro.simulation.simulate` kernel (replication ``r`` seeded
  ``seed + r``), kept for differential testing of the vectorized engine.

The engines consume randomness differently, so for a fixed seed they
produce different trajectories with the *same* law; the equivalence
tests compare them through ensemble statistics.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.population import FinitePopulation
from repro.simulation.ssa import SimulationResult, simulate

__all__ = ["BatchResult", "batch_simulate"]


def validate_ensemble_args(n_runs, t_final: float, t_start: float,
                           n_samples: int) -> int:
    """Shared up-front validation for the ensemble entry points.

    Used by both :func:`batch_simulate` and
    :func:`repro.engine.simulate_ensemble` so the two public surfaces
    cannot drift apart; returns the index-normalised ``n_runs``.
    """
    try:
        n_runs = operator.index(n_runs)
    except TypeError as exc:
        raise TypeError(
            f"n_runs must be an integer, got {type(n_runs).__name__}"
        ) from exc
    if n_runs < 1:
        raise ValueError(f"n_runs must be positive, got {n_runs}")
    if t_final <= t_start:
        raise ValueError("t_final must exceed t_start")
    if n_samples < 2:
        raise ValueError("n_samples must be >= 2")
    return n_runs


@dataclass
class BatchResult:
    """Ensemble statistics of independent SSA replications.

    Attributes
    ----------
    times:
        Common sampling grid, shape ``(n,)``.
    states:
        All sampled paths, shape ``(n_runs, n, d)``.
    population_size:
        The ``N`` of the simulated chains.
    n_events:
        Total model transitions executed across all runs (0 when the
        producing engine does not track them).
    n_policy_jumps:
        Total autonomous policy events across all runs.
    """

    times: np.ndarray
    states: np.ndarray
    population_size: int
    n_events: int = 0
    n_policy_jumps: int = 0

    @property
    def n_runs(self) -> int:
        return self.states.shape[0]

    @property
    def dim(self) -> int:
        return self.states.shape[2]

    def mean(self) -> np.ndarray:
        """Ensemble mean path, shape ``(n, d)``."""
        return self.states.mean(axis=0)

    def std(self) -> np.ndarray:
        """Ensemble standard deviation path, shape ``(n, d)``."""
        return self.states.std(axis=0, ddof=1 if self.n_runs > 1 else 0)

    def quantile_band(self, lower: float = 0.05,
                      upper: float = 0.95) -> tuple:
        """Pointwise quantile band ``(q_lower, q_upper)``, each ``(n, d)``."""
        if not 0.0 <= lower < upper <= 1.0:
            raise ValueError("need 0 <= lower < upper <= 1")
        return (
            np.quantile(self.states, lower, axis=0),
            np.quantile(self.states, upper, axis=0),
        )

    def final_states(self) -> np.ndarray:
        """Final state of each replication, shape ``(n_runs, d)``."""
        return self.states[:, -1, :].copy()

    def observable(self, weights) -> np.ndarray:
        """Observable paths ``w . x``, shape ``(n_runs, n)``."""
        return self.states @ np.asarray(weights, dtype=float)

    def fraction_satisfying(self, predicate: Callable[[np.ndarray], bool],
                            at_index: int = -1) -> float:
        """Fraction of replications whose state at ``at_index`` satisfies
        ``predicate`` (e.g. threshold exceedance probabilities)."""
        hits = sum(
            bool(predicate(self.states[r, at_index]))
            for r in range(self.n_runs)
        )
        return hits / self.n_runs


def batch_simulate(
    population: FinitePopulation,
    policy_factory: Callable,
    t_final: float,
    n_runs: int,
    seed: int = 0,
    n_samples: int = 200,
    t_start: float = 0.0,
    engine: str = "vectorized",
) -> BatchResult:
    """Run ``n_runs`` independent replications and aggregate them.

    Parameters
    ----------
    policy_factory:
        Zero-argument callable producing a *fresh* policy per run
        (policies are stateful; sharing one instance across runs would
        leak mode state even though ``reset`` is called).
    seed:
        Base seed.  With ``engine="scalar"`` replication ``r`` uses
        ``default_rng(seed + r)``; the vectorized engine drives every
        row from the single ``default_rng(seed)``.
    engine:
        ``"vectorized"`` (default) steps the whole ensemble at once via
        :func:`repro.engine.simulate_ensemble`; ``"scalar"`` is the
        legacy per-replication loop kept for differential testing.
        A single-run ensemble (``n_runs=1``) always uses the scalar
        kernel: with one row there is nothing to amortise the batching
        overhead over, so the scalar loop *is* the fast engine there
        (both engines sample the same law, and replication 0 is seeded
        ``default_rng(seed)`` either way).

    All inputs are validated before any simulation work starts, so a
    bad call fails fast with a specific error instead of surfacing as a
    downstream crash mid-ensemble.
    """
    n_runs = validate_ensemble_args(n_runs, t_final, t_start, n_samples)
    if not callable(policy_factory):
        raise TypeError("policy_factory must be a zero-argument callable")
    if engine not in ("vectorized", "scalar"):
        raise ValueError(
            f"engine must be 'vectorized' or 'scalar', got {engine!r}"
        )

    if engine == "vectorized" and n_runs > 1:
        from repro.engine import simulate_ensemble

        return simulate_ensemble(
            population, policy_factory, t_final, n_runs=n_runs, seed=seed,
            n_samples=n_samples, t_start=t_start,
        )

    paths = []
    times: Optional[np.ndarray] = None
    n_events = 0
    n_policy_jumps = 0
    for r in range(n_runs):
        rng = np.random.default_rng(seed + r)
        try:
            run: SimulationResult = simulate(
                population, policy_factory(), t_final, rng=rng,
                n_samples=n_samples, t_start=t_start,
            )
        except Exception as exc:
            raise RuntimeError(
                f"batch_simulate: replication {r} (seed {seed + r}) "
                f"failed: {exc}"
            ) from exc
        times = run.times if times is None else times
        paths.append(run.states)
        n_events += run.n_events
        n_policy_jumps += run.n_policy_jumps
    return BatchResult(
        times=times.copy(),
        states=np.stack(paths),
        population_size=population.population_size,
        n_events=n_events,
        n_policy_jumps=n_policy_jumps,
    )
