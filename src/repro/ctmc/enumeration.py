"""Reachable-state enumeration of finite population chains."""

from __future__ import annotations

from collections import deque
from typing import Dict, Tuple

import numpy as np

from repro.population import FinitePopulation

__all__ = ["enumerate_lattice"]


def enumerate_lattice(
    population: FinitePopulation,
    max_states: int = 200_000,
) -> Tuple[np.ndarray, Dict[Tuple[int, ...], int]]:
    """Enumerate all count vectors reachable from the initial state.

    Breadth-first search over the transition graph of the lattice chain.
    An event is considered *possible* when its jump keeps every count in
    ``[0, N]``; rate positivity is parameter-dependent and therefore not
    used to prune (the enumeration must cover every ``theta in Theta``).

    Returns
    -------
    states:
        Integer array of shape ``(n_states, d)`` in discovery order
        (the initial state is row 0).
    index:
        Mapping from count tuples to row indices.
    """
    n = population.population_size
    changes = [
        tr.change.astype(np.int64) for tr in population.model.transitions
    ]
    start = tuple(int(v) for v in population.initial_counts)
    index: Dict[Tuple[int, ...], int] = {start: 0}
    order = [start]
    queue = deque([start])
    while queue:
        current = queue.popleft()
        current_arr = np.asarray(current, dtype=np.int64)
        for change in changes:
            nxt = current_arr + change
            if np.any(nxt < 0) or np.any(nxt > n):
                continue
            key = tuple(int(v) for v in nxt)
            if key in index:
                continue
            if len(index) >= max_states:
                raise RuntimeError(
                    f"reachable lattice exceeds max_states={max_states}; "
                    "exact CTMC analysis is not feasible at this size "
                    "(use the mean-field methods instead)"
                )
            index[key] = len(order)
            order.append(key)
            queue.append(key)
    return np.asarray(order, dtype=np.int64), index
