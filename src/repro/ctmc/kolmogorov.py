"""Imprecise Kolmogorov equations (Eq. 2 of the paper).

For an imprecise chain the probability mass satisfies the *linear*
differential inclusion

.. math::
    \\dot P(t) \\in \\{ Q(\\theta)^T P(t) : \\theta \\in \\Theta \\}.

Because this is itself a differential inclusion with affine-in-theta
drift, the whole Section IV toolbox applies verbatim: the
:class:`KolmogorovSystem` adapter exposes the master equation through
the same duck-typed interface as a population model (``drift``,
``jacobian_x``, ``affine_parts`` — plus their batched forms
``drift_batch`` / ``affine_parts_batch``, which reduce to one sparse
matmul per generator part — and ``theta_set``), so

- :func:`imprecise_reward_bounds` runs the Pontryagin sweep on the
  master equation, giving the *exact* extreme of any expected reward
  ``r . P(T)`` over all admissible parameter processes, and
- :func:`uncertain_reward_envelope` sweeps constant parameters for the
  uncertain counterpart.

The gap between the two quantifies, at finite ``N``, the same
imprecise-vs-uncertain phenomenon that Figure 1 shows in the mean-field
limit.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
from scipy import sparse

from repro.bounds.pontryagin import PontryaginResult, extremal_trajectory
from repro.ctmc.chain import ImpreciseCTMC
from repro.ode import solve_ode


def _csr_transpose(matrix) -> sparse.csr_matrix:
    """The CSR transpose of a generator part, dense or sparse."""
    if sparse.issparse(matrix):
        return matrix.T.tocsr()
    return sparse.csr_matrix(np.asarray(matrix, dtype=float).T)

__all__ = [
    "KolmogorovSystem",
    "imprecise_reward_bounds",
    "uncertain_reward_envelope",
]


class KolmogorovSystem:
    """Adapter: the master equation of a finite chain as a drift model.

    Duck-types the subset of the :class:`~repro.population.PopulationModel`
    interface consumed by :class:`~repro.inclusion.DriftExtremizer` and
    :func:`~repro.bounds.extremal_trajectory`:
    the "state" is the probability vector ``P`` and the "drift" is
    ``f(P, theta) = Q(theta)^T P``, affine in ``theta`` through the
    generator decomposition.
    """

    def __init__(self, chain: ImpreciseCTMC):
        self.chain = chain
        self.name = f"kolmogorov({chain.model.name})"
        q0, parts = chain.affine_generator_parts()
        self._q0_t = _csr_transpose(q0)
        self._parts_t = [_csr_transpose(part) for part in parts]
        self.theta_set = chain.model.theta_set
        self.state_names = tuple(
            "p_" + "_".join(str(v) for v in row) for row in chain.states
        )
        self.observables = {}

    @property
    def dim(self) -> int:
        return self.chain.n_states

    @property
    def theta_dim(self) -> int:
        return self.theta_set.dim

    @property
    def is_affine(self) -> bool:
        return True

    def drift(self, p, theta) -> np.ndarray:
        p = np.asarray(p, dtype=float)
        theta = np.asarray(theta, dtype=float)
        out = self._q0_t @ p
        for k, part in enumerate(self._parts_t):
            out = out + theta[k] * (part @ p)
        return out

    def drift_fn(self, theta):
        theta = np.asarray(theta, dtype=float)
        return lambda p: self.drift(p, theta)

    def vector_field(self, theta):
        theta = np.asarray(theta, dtype=float)
        return lambda t, p: self.drift(p, theta)

    def affine_parts(self, p):
        p = np.asarray(p, dtype=float)
        g0 = self._q0_t @ p
        big_g = np.stack([part @ p for part in self._parts_t], axis=1)
        return g0, big_g

    def drift_batch(self, p, theta) -> np.ndarray:
        """Row-wise master-equation drift for ``(n, d)`` / ``(n, p)`` stacks."""
        p = np.atleast_2d(np.asarray(p, dtype=float))
        theta = np.atleast_2d(np.asarray(theta, dtype=float))
        out = (self._q0_t @ p.T).T
        for k, part in enumerate(self._parts_t):
            out = out + theta[:, k, None] * (part @ p.T).T
        return out

    def affine_parts_batch(self, p):
        """Batched decomposition: one sparse matmul per generator part.

        The master equation is linear in ``P``, so the whole stack is a
        single ``Q^T P`` product per part — the batched bound
        computations (Pontryagin re-maximisation over all grid
        intervals) need no per-row Python loop at all.
        """
        p = np.atleast_2d(np.asarray(p, dtype=float))
        g0s = (self._q0_t @ p.T).T
        big_gs = np.stack([(part @ p.T).T for part in self._parts_t], axis=2)
        return g0s, big_gs

    def jacobian_x(self, p, theta) -> np.ndarray:
        theta = np.asarray(theta, dtype=float)
        jac = self._q0_t.toarray()
        for k, part in enumerate(self._parts_t):
            jac = jac + theta[k] * part.toarray()
        return jac


def imprecise_reward_bounds(
    chain: ImpreciseCTMC,
    reward: Sequence[float],
    horizon: float,
    p0: Optional[np.ndarray] = None,
    maximize: bool = True,
    n_steps: int = 300,
    **sweep_kwargs,
) -> PontryaginResult:
    """Extreme expected reward ``r . P(T)`` over all parameter processes.

    ``reward`` assigns a value to every enumerated state (length
    ``chain.n_states``); use ``chain.densities() @ w`` to reward a linear
    state observable ``w``.  Returns the full Pontryagin result — its
    ``controls`` are the adversarial parameter signal achieving the
    bound.
    """
    system = KolmogorovSystem(chain)
    reward = np.asarray(reward, dtype=float)
    if reward.shape != (chain.n_states,):
        raise ValueError(
            f"reward has shape {reward.shape}, expected ({chain.n_states},)"
        )
    p0 = chain.initial_distribution if p0 is None else np.asarray(p0, float)
    return extremal_trajectory(
        system, p0, horizon, reward, maximize=maximize, n_steps=n_steps,
        **sweep_kwargs,
    )


def uncertain_reward_envelope(
    chain: ImpreciseCTMC,
    reward: Sequence[float],
    t_eval,
    p0: Optional[np.ndarray] = None,
    resolution: int = 9,
    batch: bool = True,
):
    """Envelope of ``r . P(t)`` over constant parameters (uncertain case).

    Returns ``(times, lower, upper)`` arrays.  Computed by integrating
    the master equation for each grid parameter — for interval chains
    this is the exact uncertain-CTMC transient envelope at the grid
    resolution.

    The master equation is linear in ``P``, so with ``batch=True`` (the
    default) all grid parameters are stacked into one block ODE over an
    ``(m, n)`` state matrix and integrated in a single ``solve_ode``
    call; ``batch=False`` keeps the legacy one-ODE-per-theta loop for
    differential testing.  A degenerate horizon
    (``t_eval[0] == t_eval[-1]``) returns the constant ``p0 . r``
    envelope, matching :func:`repro.bounds.uncertain_envelope`;
    descending grids are rejected — backward integration of a generator
    is exponentially unstable and used to mis-integrate silently.
    """
    t_eval = np.asarray(t_eval, dtype=float)
    if t_eval.ndim != 1 or t_eval.shape[0] < 1:
        raise ValueError("t_eval must be a non-empty 1-D array")
    if np.any(np.diff(t_eval) < 0):
        raise ValueError(
            "t_eval must be non-decreasing: the master equation is only "
            "integrated forward in time (the backward problem is "
            "exponentially unstable)"
        )
    reward = np.asarray(reward, dtype=float)
    if reward.shape != (chain.n_states,):
        raise ValueError(
            f"reward has shape {reward.shape}, expected ({chain.n_states},)"
        )
    p0 = chain.initial_distribution if p0 is None else np.asarray(p0, float)
    n_t = t_eval.shape[0]
    if t_eval[0] == t_eval[-1]:
        # Degenerate horizon: the mass never moves off p0.
        flat = np.full(n_t, float(p0 @ reward))
        return t_eval.copy(), flat, flat.copy()
    system = KolmogorovSystem(chain)
    thetas = np.vstack(
        [chain.model.theta_set.grid(resolution), chain.model.theta_set.corners()]
    )
    thetas = np.unique(thetas, axis=0)
    m, n = thetas.shape[0], chain.n_states
    if batch:
        # Linearity of the master equation: the whole theta stack is one
        # block ODE, one sparse matmul per generator part per RHS call.
        def field(t, y):
            return system.drift_batch(y.reshape(m, n), thetas).ravel()

        traj = solve_ode(
            field, np.tile(p0, m),
            (float(t_eval[0]), float(t_eval[-1])), t_eval=t_eval,
            rtol=1e-9, atol=1e-11,
        )
        values = (traj.states.reshape(n_t, m, n) @ reward).T
    else:
        values = np.empty((m, n_t))
        for k, theta in enumerate(thetas):
            traj = solve_ode(
                system.vector_field(theta), p0,
                (float(t_eval[0]), float(t_eval[-1])), t_eval=t_eval,
                rtol=1e-9, atol=1e-11,
            )
            values[k] = traj.states @ reward
    return t_eval.copy(), values.min(axis=0), values.max(axis=0)
