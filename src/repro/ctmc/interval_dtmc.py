"""Discrete-time Markov chains with interval probabilities (Škulj [10]).

The paper's imprecise CTMCs build on Škulj's *interval DTMCs*: chains
whose row distributions are only known to lie in per-entry intervals
``lower[i, j] <= P[i, j] <= upper[i, j]``.  The object of interest is the
**upper (lower) expectation** of a reward after ``k`` steps:

.. math::
    \\overline E_k(r) = \\overline T^k r, \\qquad
    (\\overline T r)_i = \\max \\{ p \\cdot r : p \\in \\mathcal P_i \\}

where ``P_i`` is the credal set of row ``i`` (the interval polytope
intersected with the simplex).  The row maximisation is a fractional
knapsack: fill coordinates in decreasing reward order up to their upper
bounds, starting from the mandatory lower bounds.  The operator is
applied iteratively; it is monotone and contracting on reward ranges,
which is what makes the iteration a sound finite-horizon bound.

:meth:`IntervalDTMC.from_imprecise_ctmc` discretises an imprecise CTMC
through uniformization: ``P(theta) = I + Q(theta) / Lambda``, with the
per-entry interval taken over the corners of ``Theta`` (exact per entry
for affine generators).  The entry-wise relaxation forgets the coupling
between entries induced by the shared ``theta``, so the resulting bounds
are conservative with respect to the exact imprecise-CTMC bounds of
:mod:`repro.ctmc.kolmogorov` — a relationship the test-suite checks.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["IntervalDTMC"]


class IntervalDTMC:
    """A finite DTMC with interval transition probabilities.

    Parameters
    ----------
    lower, upper:
        Entry-wise probability bounds, shape ``(n, n)``, with
        ``0 <= lower <= upper <= 1``, ``sum(lower[i]) <= 1`` and
        ``sum(upper[i]) >= 1`` for every row (non-empty credal sets).
    """

    def __init__(self, lower, upper):
        lower = np.asarray(lower, dtype=float)
        upper = np.asarray(upper, dtype=float)
        if lower.ndim != 2 or lower.shape[0] != lower.shape[1]:
            raise ValueError("lower must be a square matrix")
        if lower.shape != upper.shape:
            raise ValueError("lower and upper must have the same shape")
        if np.any(lower < -1e-12) or np.any(upper > 1.0 + 1e-12):
            raise ValueError("probability bounds must lie in [0, 1]")
        if np.any(lower > upper + 1e-12):
            raise ValueError("lower bounds exceed upper bounds")
        row_lo = lower.sum(axis=1)
        row_hi = upper.sum(axis=1)
        if np.any(row_lo > 1.0 + 1e-9) or np.any(row_hi < 1.0 - 1e-9):
            raise ValueError(
                "empty credal set: need sum(lower) <= 1 <= sum(upper) per row"
            )
        self.lower = np.clip(lower, 0.0, 1.0)
        self.upper = np.clip(upper, 0.0, 1.0)

    @property
    def n_states(self) -> int:
        return self.lower.shape[0]

    # ------------------------------------------------------------------
    # Row credal-set optimisation (fractional knapsack)
    # ------------------------------------------------------------------

    def extreme_row(self, row: int, reward, maximize: bool = True) -> np.ndarray:
        """The row distribution extremising ``p . reward`` over the credal set.

        Start from the mandatory lower bounds and distribute the
        remaining mass ``1 - sum(lower)`` greedily to the coordinates
        with the largest (smallest) reward, capped at the upper bounds.
        """
        reward = np.asarray(reward, dtype=float)
        if reward.shape != (self.n_states,):
            raise ValueError(f"reward must have shape ({self.n_states},)")
        p = self.lower[row].copy()
        slack = 1.0 - float(p.sum())
        order = np.argsort(-reward if maximize else reward)
        for j in order:
            if slack <= 0.0:
                break
            room = self.upper[row, j] - p[j]
            take = min(room, slack)
            p[j] += take
            slack -= take
        if slack > 1e-9:
            raise RuntimeError("credal set inconsistency: mass left over")
        return p

    def upper_operator(self, reward) -> np.ndarray:
        """One application of the upper-expectation operator ``T̄ r``."""
        reward = np.asarray(reward, dtype=float)
        return np.array(
            [
                float(self.extreme_row(i, reward, maximize=True) @ reward)
                for i in range(self.n_states)
            ]
        )

    def lower_operator(self, reward) -> np.ndarray:
        """One application of the lower-expectation operator."""
        return -self.upper_operator(-np.asarray(reward, dtype=float))

    # ------------------------------------------------------------------
    # Finite-horizon expectations
    # ------------------------------------------------------------------

    def upper_expectation(self, reward, steps: int) -> np.ndarray:
        """Upper expectation of ``reward`` after ``steps`` transitions.

        Returns the per-starting-state vector ``T̄^k r``.
        """
        if steps < 0:
            raise ValueError("steps must be non-negative")
        value = np.asarray(reward, dtype=float).copy()
        for _ in range(steps):
            value = self.upper_operator(value)
        return value

    def lower_expectation(self, reward, steps: int) -> np.ndarray:
        """Lower expectation of ``reward`` after ``steps`` transitions."""
        return -self.upper_expectation(-np.asarray(reward, dtype=float), steps)

    def expectation_bounds(self, reward, steps: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(lower, upper)`` expectation vectors after ``steps`` steps."""
        return (self.lower_expectation(reward, steps),
                self.upper_expectation(reward, steps))

    def stationary_expectation_bounds(
        self, reward, tol: float = 1e-10, max_iter: int = 100_000,
    ) -> Tuple[float, float]:
        """Long-run bounds on the expected reward (Škulj's limit regime).

        Iterates the upper (lower) expectation operator until the value
        vector flattens to a constant: for a regular interval chain the
        iteration ``T̄^k r`` converges to a constant vector whose value
        is the worst-case (best-case) long-run expected reward over all
        admissible transition selections.  Raises ``RuntimeError`` when
        the iteration fails to flatten (periodic or reducible chains).
        """
        bounds = []
        for maximize in (False, True):
            value = np.asarray(reward, dtype=float).copy()
            if maximize:
                operator = self.upper_operator
            else:
                operator = self.lower_operator
            for _ in range(max_iter):
                new_value = operator(value)
                spread = float(new_value.max() - new_value.min())
                if spread < tol and float(
                    np.max(np.abs(new_value - value))
                ) < tol:
                    break
                value = new_value
            else:
                raise RuntimeError(
                    "stationary iteration did not flatten within "
                    f"{max_iter} steps (spread {spread:.2e}); the chain "
                    "may be periodic or reducible"
                )
            bounds.append(float(new_value.mean()))
        return bounds[0], bounds[1]

    # ------------------------------------------------------------------
    # Construction from imprecise CTMCs
    # ------------------------------------------------------------------

    @classmethod
    def from_imprecise_ctmc(cls, chain, uniformization_rate: Optional[float] = None,
                            safety: float = 1.05) -> Tuple["IntervalDTMC", float]:
        """Uniformize an imprecise CTMC into an interval DTMC.

        ``P(theta) = I + Q(theta) / Lambda`` with ``Lambda`` at least the
        largest total exit rate over the corner parameters (scaled by
        ``safety``).  Entry intervals are taken over the corners of
        ``Theta``, which is exact per entry for affine generators.

        Returns ``(dtmc, Lambda)`` — one DTMC step corresponds to an
        ``Exp(Lambda)`` holding time of the CTMC, so ``k`` steps
        approximate horizon ``k / Lambda``.
        """
        corners = chain.model.theta_set.corners()
        generators = [chain.generator(theta) for theta in corners]
        if uniformization_rate is None:
            max_exit = max(float(-q.diagonal().min()) for q in generators)
            uniformization_rate = safety * max_exit
        if uniformization_rate <= 0:
            raise ValueError("uniformization rate must be positive")
        identity = np.eye(chain.n_states)
        matrices = [
            identity + q.toarray() / uniformization_rate for q in generators
        ]
        stack = np.stack(matrices)
        lower = np.clip(stack.min(axis=0), 0.0, 1.0)
        upper = np.clip(stack.max(axis=0), 0.0, 1.0)
        return cls(lower, upper), float(uniformization_rate)

    def __repr__(self) -> str:
        return f"IntervalDTMC({self.n_states} states)"
