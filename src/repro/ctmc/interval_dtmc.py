"""Discrete-time Markov chains with interval probabilities (Škulj [10]).

The paper's imprecise CTMCs build on Škulj's *interval DTMCs*: chains
whose row distributions are only known to lie in per-entry intervals
``lower[i, j] <= P[i, j] <= upper[i, j]``.  The object of interest is the
**upper (lower) expectation** of a reward after ``k`` steps:

.. math::
    \\overline E_k(r) = \\overline T^k r, \\qquad
    (\\overline T r)_i = \\max \\{ p \\cdot r : p \\in \\mathcal P_i \\}

where ``P_i`` is the credal set of row ``i`` (the interval polytope
intersected with the simplex).  The row maximisation is a fractional
knapsack: fill coordinates in decreasing reward order up to their upper
bounds, starting from the mandatory lower bounds.  The operator is
applied iteratively; it is monotone and contracting on reward ranges,
which is what makes the iteration a sound finite-horizon bound.

The hot path is batched: :meth:`IntervalDTMC.extreme_rows_batch` solves
all ``n`` row knapsacks for a whole stack of reward vectors in one
argsort + cumulative-subtraction pass, and the scalar operators delegate
to it.  The pre-batching per-row Python loop is kept behind
``batch=False`` as the differential-testing reference — both paths share
the final row-times-reward contraction, so the batched kernels are
bit-identical to the legacy ones (a property the test suite pins with
exact equality).

:meth:`IntervalDTMC.from_imprecise_ctmc` discretises an imprecise CTMC
through uniformization: ``P(theta) = I + Q(theta) / Lambda``, with the
per-entry interval taken over the corners of ``Theta`` (exact per entry
for affine generators).  The entry-wise relaxation forgets the coupling
between entries induced by the shared ``theta``, so the resulting bounds
are conservative with respect to the exact imprecise-CTMC bounds of
:mod:`repro.ctmc.kolmogorov` — a relationship the test-suite checks.
Caveat: the conservativeness statement is about *time* ``t``, reached
through the Poisson-weighted mixture of step bounds
(:meth:`IntervalDTMC.uniformized_bounds`); the raw ``k``-step power
carries a time-discretization bias of order ``1 / Lambda`` on top of the
relaxation and can land strictly inside the exact bounds.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro import telemetry
from repro.backend import resolve_backend

__all__ = ["IntervalDTMC", "random_interval_dtmc"]

#: A returned row whose total deviates from 1 by more than this is
#: renormalised.  Rows inside the constructor's 1e-9 feasibility
#: tolerance (``sum(lower)`` marginally above 1, ``sum(upper)``
#: marginally below) would otherwise leak out sub-/super-stochastic.
_ROW_SUM_TOL = 1e-12


def _knapsack_rows(lower, room, slack0, order):
    """The batched fractional-knapsack core: fill rows in reward order.

    Parameters are the per-entry lower bounds ``(n, n)``, the per-entry
    room ``upper - lower`` ``(n, n)``, the initial slack
    ``1 - sum(lower)`` per row ``(n,)`` and the fill order ``(m, n)``
    (one coordinate permutation per reward vector).  Returns the
    ``(m, n, n)`` extremising rows (unnormalised, in original column
    positions) and the ``(m, n)`` final leftover slack the caller
    checks for feasibility.

    ``np.subtract.accumulate`` reproduces the legacy scalar loop's
    sequential slack updates rounding step by rounding step; this is
    the backend seam's reference kernel (key ``ctmc.knapsack_rows``)
    and accelerated backends substitute an explicit-loop form with the
    same subtraction order.
    """
    m, n = order.shape[0], lower.shape[0]
    # Rooms permuted into each reward's fill order: (m, n, n).
    room_perm = np.swapaxes(np.take(room, order, axis=1), 0, 1)
    chain = np.concatenate(
        [np.broadcast_to(slack0[None, :, None], (m, n, 1)), room_perm],
        axis=2,
    )
    # slack_seq[..., j] is the slack left before filling the j-th
    # coordinate in order (sequential subtraction, not a cumsum —
    # same rounding as the scalar loop); the final entry is the
    # slack left after exhausting every room.
    slack_seq = np.subtract.accumulate(chain, axis=2)
    take = np.clip(slack_seq[:, :, :-1], 0.0, room_perm)
    rows_sorted = np.take_along_axis(
        np.broadcast_to(lower[None], (m, n, n)),
        order[:, None, :], axis=2,
    ) + take
    rows = np.empty_like(rows_sorted)
    np.put_along_axis(
        rows, np.broadcast_to(order[:, None, :], rows.shape),
        rows_sorted, axis=2,
    )
    return rows, slack_seq[:, :, -1]


class IntervalDTMC:
    """A finite DTMC with interval transition probabilities.

    Parameters
    ----------
    lower, upper:
        Entry-wise probability bounds, shape ``(n, n)``, with
        ``0 <= lower <= upper <= 1``, ``sum(lower[i]) <= 1`` and
        ``sum(upper[i]) >= 1`` for every row (non-empty credal sets).
    """

    def __init__(self, lower, upper):
        lower = np.asarray(lower, dtype=float)
        upper = np.asarray(upper, dtype=float)
        if lower.ndim != 2 or lower.shape[0] != lower.shape[1]:
            raise ValueError("lower must be a square matrix")
        if lower.shape != upper.shape:
            raise ValueError("lower and upper must have the same shape")
        if np.any(lower < -1e-12) or np.any(upper > 1.0 + 1e-12):
            raise ValueError("probability bounds must lie in [0, 1]")
        if np.any(lower > upper + 1e-12):
            raise ValueError("lower bounds exceed upper bounds")
        row_lo = lower.sum(axis=1)
        row_hi = upper.sum(axis=1)
        if np.any(row_lo > 1.0 + 1e-9) or np.any(row_hi < 1.0 - 1e-9):
            raise ValueError(
                "empty credal set: need sum(lower) <= 1 <= sum(upper) per row"
            )
        self.lower = np.clip(lower, 0.0, 1.0)
        # Clipping can flip a within-tolerance inversion into upper <
        # lower; enforce ordered bounds so every room is non-negative.
        self.upper = np.maximum(np.clip(upper, 0.0, 1.0), self.lower)

    @property
    def n_states(self) -> int:
        return self.lower.shape[0]

    # ------------------------------------------------------------------
    # Row credal-set optimisation (fractional knapsack)
    # ------------------------------------------------------------------

    def extreme_row(self, row: int, reward, maximize: bool = True) -> np.ndarray:
        """The row distribution extremising ``p . reward`` over the credal set.

        Start from the mandatory lower bounds and distribute the
        remaining mass ``1 - sum(lower)`` greedily to the coordinates
        with the largest (smallest) reward, capped at the upper bounds.

        This is the legacy one-row-at-a-time knapsack, kept as the
        differential-testing reference for
        :meth:`extreme_rows_batch`; the operators below use the batched
        kernel by default.
        """
        reward = np.asarray(reward, dtype=float)
        if reward.shape != (self.n_states,):
            raise ValueError(f"reward must have shape ({self.n_states},)")
        p = self.lower[row].copy()
        slack = 1.0 - float(p.sum())
        order = np.argsort(-reward if maximize else reward)
        for j in order:
            if slack <= 0.0:
                break
            room = self.upper[row, j] - p[j]
            take = min(room, slack)
            p[j] += take
            slack -= take
        if slack > 1e-9:
            raise RuntimeError("credal set inconsistency: mass left over")
        total = float(p.sum())
        if abs(total - 1.0) > _ROW_SUM_TOL:
            # Rows admitted under the constructor's 1e-9 tolerance
            # (negative slack, or upper bounds summing just below 1)
            # must still come back stochastic.
            p = p / total
        return p

    def extreme_rows_batch(self, rewards, maximize: bool = True,
                           backend=None) -> np.ndarray:
        """All ``n`` extreme rows for a stack of reward vectors at once.

        Parameters
        ----------
        rewards:
            One reward vector of shape ``(n,)`` or a stack ``(m, n)``.
        maximize:
            Extremise upward (the upper-expectation rows) or downward.
        backend:
            Optional :mod:`repro.backend` selection for the knapsack
            kernel (``None`` uses the process default; the numpy
            backend is the bit-identical reference).

        Returns
        -------
        The extremising row distributions — shape ``(n, n)`` for a
        single reward (entry ``[i]`` is the row-``i`` distribution) or
        ``(m, n, n)`` for a stack.

        All ``m * n`` fractional knapsacks are solved in one argsort +
        cumulative-subtraction pass.  ``np.subtract.accumulate``
        reproduces the legacy loop's sequential slack updates rounding
        step by rounding step, so the rows are bit-identical to
        :meth:`extreme_row`.
        """
        rewards = np.asarray(rewards, dtype=float)
        single = rewards.ndim == 1
        rewards = np.atleast_2d(rewards)
        n = self.n_states
        if rewards.shape[1] != n:
            raise ValueError(f"rewards must have trailing dimension {n}")
        m = rewards.shape[0]
        if telemetry.enabled():
            telemetry.inc("ctmc.credal.operator_calls")
            telemetry.inc("ctmc.credal.knapsack_rows", m * n)
        kernel = resolve_backend(backend).compile_kernel(
            _knapsack_rows, key="ctmc.knapsack_rows"
        )
        order = np.argsort(-rewards if maximize else rewards, axis=1)
        room = self.upper - self.lower                       # (n, n), >= 0
        slack0 = 1.0 - self.lower.sum(axis=1)                # (n,)
        rows, leftover = kernel(self.lower, room, slack0, order)
        if np.any(leftover > 1e-9):
            raise RuntimeError("credal set inconsistency: mass left over")
        totals = rows.sum(axis=2)
        bad = np.abs(totals - 1.0) > _ROW_SUM_TOL
        if np.any(bad):
            rows = np.where(bad[:, :, None], rows / totals[:, :, None], rows)
        return rows[0] if single else rows

    def upper_operator_batch(self, rewards, backend=None) -> np.ndarray:
        """``T̄`` applied to a stack of rewards: ``(m, n) -> (m, n)``.

        Also accepts a single ``(n,)`` vector (returning ``(n,)``).  The
        value contraction is one stacked matrix–vector product, which
        NumPy evaluates slice by slice — bit-identical to the legacy
        path's single ``rows @ reward``.
        """
        rewards = np.asarray(rewards, dtype=float)
        single = rewards.ndim == 1
        stack = np.atleast_2d(rewards)
        rows = self.extreme_rows_batch(stack, maximize=True,
                                       backend=backend)
        values = np.matmul(rows, stack[:, :, None])[:, :, 0]
        return values[0] if single else values

    def expectation_bounds_batch(self, rewards, steps: int, backend=None):
        """``(lower, upper)`` expectations of a reward stack after ``steps``.

        Iterates the upper operator on the ``2m``-lane stack
        ``[rewards, -rewards]`` — the lower iteration is the negated
        upper iteration of the negated reward — so every step is a
        single batched knapsack pass for all observables and both bound
        directions.  Shapes mirror the input: ``(m, n)`` arrays for a
        stack, ``(n,)`` vectors for a single reward.
        """
        if steps < 0:
            raise ValueError("steps must be non-negative")
        rewards = np.asarray(rewards, dtype=float)
        single = rewards.ndim == 1
        stack = np.atleast_2d(rewards)
        m = stack.shape[0]
        value = np.concatenate([stack, -stack], axis=0)
        for _ in range(steps):
            value = self.upper_operator_batch(value, backend=backend)
        upper = value[:m]
        lower = -value[m:]
        return (lower[0], upper[0]) if single else (lower, upper)

    def upper_operator(self, reward, batch: bool = True,
                       backend=None) -> np.ndarray:
        """One application of the upper-expectation operator ``T̄ r``."""
        reward = np.asarray(reward, dtype=float)
        if batch:
            return self.upper_operator_batch(reward, backend=backend)
        # Legacy per-row knapsack loop; the final contraction is the
        # same matrix-vector product the batched kernel issues.
        rows = np.array(
            [self.extreme_row(i, reward, maximize=True)
             for i in range(self.n_states)]
        )
        return rows @ reward

    def lower_operator(self, reward, batch: bool = True,
                       backend=None) -> np.ndarray:
        """One application of the lower-expectation operator."""
        return -self.upper_operator(-np.asarray(reward, dtype=float), batch,
                                    backend=backend)

    # ------------------------------------------------------------------
    # Finite-horizon expectations
    # ------------------------------------------------------------------

    def upper_expectation(self, reward, steps: int, batch: bool = True,
                          backend=None) -> np.ndarray:
        """Upper expectation of ``reward`` after ``steps`` transitions.

        Returns the per-starting-state vector ``T̄^k r``.
        """
        if steps < 0:
            raise ValueError("steps must be non-negative")
        value = np.asarray(reward, dtype=float).copy()
        for _ in range(steps):
            value = self.upper_operator(value, batch=batch, backend=backend)
        return value

    def lower_expectation(self, reward, steps: int, batch: bool = True,
                          backend=None) -> np.ndarray:
        """Lower expectation of ``reward`` after ``steps`` transitions."""
        return -self.upper_expectation(-np.asarray(reward, dtype=float), steps,
                                       batch=batch, backend=backend)

    def expectation_bounds(
        self, reward, steps: int, batch: bool = True, backend=None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(lower, upper)`` expectation vectors after ``steps`` steps."""
        if batch:
            return self.expectation_bounds_batch(
                np.asarray(reward, dtype=float), steps, backend=backend
            )
        return (self.lower_expectation(reward, steps, batch=False),
                self.upper_expectation(reward, steps, batch=False))

    def stationary_expectation_bounds(
        self, reward, tol: float = 1e-10, max_iter: int = 100_000,
        batch: bool = True, backend=None,
    ) -> Tuple[float, float]:
        """Long-run bounds on the expected reward (Škulj's limit regime).

        Iterates the upper (lower) expectation operator until the value
        vector flattens to a constant: for a regular interval chain the
        iteration ``T̄^k r`` converges to a constant vector whose value
        is the worst-case (best-case) long-run expected reward over all
        admissible transition selections.  Raises ``RuntimeError`` when
        the iteration fails to flatten (periodic or reducible chains).
        """
        if max_iter < 1:
            raise ValueError(
                f"max_iter must be a positive iteration budget, got {max_iter}"
            )
        bounds = []
        for maximize in (False, True):
            value = np.asarray(reward, dtype=float).copy()
            converged = False
            for _ in range(max_iter):
                if maximize:
                    new_value = self.upper_operator(value, batch=batch,
                                                    backend=backend)
                else:
                    new_value = self.lower_operator(value, batch=batch,
                                                    backend=backend)
                spread = float(new_value.max() - new_value.min())
                delta = float(np.max(np.abs(new_value - value)))
                value = new_value
                if spread < tol and delta < tol:
                    converged = True
                    break
            if not converged:
                raise RuntimeError(
                    "stationary iteration did not flatten within "
                    f"{max_iter} steps (final spread {spread:.2e}, last "
                    f"step moved {delta:.2e}); the chain may be periodic "
                    "or reducible"
                )
            bounds.append(float(value.mean()))
        return bounds[0], bounds[1]

    def uniformized_bounds(
        self, rewards, horizon: float, rate: float,
        tail_tol: float = 1e-12, batch: bool = True, backend=None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Poisson-mixed reward bounds at CTMC time ``horizon``.

        A chain uniformized at rate ``Lambda`` jumps at ``Poisson(Lambda
        t)`` times regardless of the adversarial parameter signal (the
        self-loops in ``I + Q/Lambda`` absorb the rate variation), and
        conditional on ``k`` jumps the reward lies within the ``k``-step
        interval bounds.  Mixing the step bounds with Poisson weights
        therefore *encloses* the exact imprecise-CTMC bound at time
        ``horizon`` — unlike the raw ``k``-step power
        (:meth:`expectation_bounds` at ``k = ceil(horizon * rate)``),
        whose time-discretization bias of order ``1/rate`` can poke
        inside the exact bounds.  The truncated Poisson tail is
        completed conservatively with the reward range.

        Accepts one reward vector ``(n,)`` or a stack ``(m, n)`` —
        every observable and both directions share one batched value
        iteration.  Returns the ``(lower, upper)`` per-starting-state
        vectors, shaped like the input.
        """
        rewards = np.asarray(rewards, dtype=float)
        if horizon < 0:
            raise ValueError("horizon must be non-negative")
        if rate <= 0:
            raise ValueError("uniformization rate must be positive")
        single = rewards.ndim == 1
        stack = np.atleast_2d(rewards)
        m = stack.shape[0]
        mean = rate * horizon
        # Term count: mean + wide safety band (Poisson tail bound),
        # matching the precise-chain uniformization solver.
        n_terms = int(np.ceil(mean + 10.0 * np.sqrt(mean + 1.0) + 10.0))
        value = np.concatenate([stack, -stack], axis=0)
        weight = np.exp(-mean)
        accumulated = weight
        mixed = weight * value
        for k in range(1, n_terms + 1):
            if batch:
                value = self.upper_operator_batch(value, backend=backend)
            else:
                value = np.stack([
                    self.upper_operator(lane, batch=False) for lane in value
                ])
            weight *= mean / k
            mixed = mixed + weight * value
            accumulated += weight
            if 1.0 - accumulated < tail_tol:
                break
        tail = max(1.0 - accumulated, 0.0)
        # Every iterate stays inside the reward's value range, so the
        # truncated tail is bounded by its extremes.
        upper = mixed[:m] + tail * stack.max(axis=1)[:, None]
        lower = -(mixed[m:] + tail * (-stack).max(axis=1)[:, None])
        return (lower[0], upper[0]) if single else (lower, upper)

    # ------------------------------------------------------------------
    # Construction from imprecise CTMCs
    # ------------------------------------------------------------------

    @classmethod
    def from_imprecise_ctmc(cls, chain, uniformization_rate: Optional[float] = None,
                            safety: float = 1.05) -> Tuple["IntervalDTMC", float]:
        """Uniformize an imprecise CTMC into an interval DTMC.

        ``P(theta) = I + Q(theta) / Lambda`` with ``Lambda`` at least the
        largest total exit rate over the corner parameters (scaled by
        ``safety``).  Entry intervals are taken over the corners of
        ``Theta``, which is exact per entry for affine generators.

        Accepts chains whose ``generator`` returns either a scipy sparse
        matrix or a dense ndarray.

        Returns ``(dtmc, Lambda)`` — one DTMC step corresponds to an
        ``Exp(Lambda)`` holding time of the CTMC, so ``k`` steps
        approximate horizon ``k / Lambda``.
        """
        corners = chain.model.theta_set.corners()
        generators = [_dense(chain.generator(theta)) for theta in corners]
        if uniformization_rate is None:
            max_exit = max(float(-q.diagonal().min()) for q in generators)
            uniformization_rate = safety * max_exit
        if uniformization_rate <= 0:
            raise ValueError("uniformization rate must be positive")
        identity = np.eye(chain.n_states)
        matrices = [identity + q / uniformization_rate for q in generators]
        stack = np.stack(matrices)
        lower = np.clip(stack.min(axis=0), 0.0, 1.0)
        upper = np.clip(stack.max(axis=0), 0.0, 1.0)
        return cls(lower, upper), float(uniformization_rate)

    def __repr__(self) -> str:
        return f"IntervalDTMC({self.n_states} states)"


def _dense(matrix) -> np.ndarray:
    """A dense float array from a sparse matrix or array-like."""
    if hasattr(matrix, "toarray"):
        return matrix.toarray()
    return np.asarray(matrix, dtype=float)


def random_interval_dtmc(n_states: int, rng: np.random.Generator,
                         width: float = 0.08) -> IntervalDTMC:
    """A random non-degenerate interval chain (tests and benchmarks).

    Each row's interval is a band of half-width up to ``width`` around a
    Dirichlet-sampled distribution, clipped to ``[0, 1]`` — the centre
    row is always admissible, so every credal set is non-empty.
    """
    center = rng.dirichlet(np.ones(n_states), size=n_states)
    lower = np.clip(center - width * rng.random((n_states, n_states)), 0.0, 1.0)
    upper = np.clip(center + width * rng.random((n_states, n_states)), 0.0, 1.0)
    return IntervalDTMC(lower, upper)
