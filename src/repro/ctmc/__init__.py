"""Exact analysis of finite imprecise CTMCs (Section II).

For population sizes small enough to enumerate, the chain of
Definition 1 can be analysed exactly:

- :func:`enumerate_lattice` — breadth-first enumeration of the reachable
  count lattice of a :class:`~repro.population.FinitePopulation`.
- :class:`ImpreciseCTMC` — the explicit chain: parametrised generator
  matrices ``Q(theta)`` (with their affine-in-theta decomposition),
  transient distributions by uniformization or matrix exponential, and
  stationary distributions by linear solve.
- :mod:`repro.ctmc.kolmogorov` — the imprecise Kolmogorov equations
  (Eq. 2): the probability mass evolves in the *linear* differential
  inclusion ``P' in {Q(theta)^T P}``, so the same Pontryagin sweep that
  bounds mean-field observables bounds transient probabilities and
  expected rewards exactly.
- :class:`IntervalDTMC` — Škulj-style interval DTMCs obtained by
  uniformization, with batched credal operators (all row knapsacks of
  a reward stack in one argsort + cumulative-subtraction pass) and
  Poisson-mixed time-``t`` bounds that enclose the exact imprecise
  bounds by construction.
"""

from repro.ctmc.chain import ImpreciseCTMC
from repro.ctmc.enumeration import enumerate_lattice
from repro.ctmc.interval_dtmc import IntervalDTMC
from repro.ctmc.kolmogorov import (
    KolmogorovSystem,
    imprecise_reward_bounds,
    uncertain_reward_envelope,
)

__all__ = [
    "enumerate_lattice",
    "ImpreciseCTMC",
    "IntervalDTMC",
    "KolmogorovSystem",
    "imprecise_reward_bounds",
    "uncertain_reward_envelope",
]
