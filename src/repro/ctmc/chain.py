"""Explicit finite imprecise CTMCs.

:class:`ImpreciseCTMC` materialises the chain of Definition 1 for an
enumerable population: generator matrices ``Q(theta)``, transient
distributions (uniformization and matrix-exponential solvers) and
stationary distributions.  The affine-in-theta decomposition
``Q(theta) = Q_0 + sum_k theta_k Q_k`` is extracted automatically when
the underlying rate functions are affine in ``theta`` (verified by
residual check), which is what the imprecise Kolmogorov machinery in
:mod:`repro.ctmc.kolmogorov` builds on.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import expm_multiply

from repro.ctmc.enumeration import enumerate_lattice
from repro.population import FinitePopulation

__all__ = ["ImpreciseCTMC"]


class ImpreciseCTMC:
    """A finite imprecise CTMC built from an enumerable population chain.

    Parameters
    ----------
    population:
        The finite-``N`` instantiation to enumerate.
    max_states:
        Enumeration cap (exact methods scale as ``O(n_states^2)`` at
        worst; keep it modest).
    """

    def __init__(self, population: FinitePopulation, max_states: int = 50_000):
        self.population = population
        self.model = population.model
        self.states, self.index = enumerate_lattice(population, max_states=max_states)
        self._affine_cache: Optional[Tuple[sparse.csr_matrix, list]] = None

    @property
    def n_states(self) -> int:
        return self.states.shape[0]

    @property
    def initial_distribution(self) -> np.ndarray:
        """Point mass on the initial state."""
        p0 = np.zeros(self.n_states)
        p0[0] = 1.0
        return p0

    def state_row(self, counts) -> int:
        """Row index of a count vector."""
        key = tuple(int(v) for v in counts)
        if key not in self.index:
            raise KeyError(f"state {key} is not reachable")
        return self.index[key]

    def densities(self) -> np.ndarray:
        """Normalised states, shape ``(n_states, d)``."""
        return self.states / self.population.population_size

    # ------------------------------------------------------------------
    # Generators
    # ------------------------------------------------------------------

    def generator(self, theta) -> sparse.csr_matrix:
        """The generator ``Q(theta)`` (rows sum to zero), CSR sparse."""
        theta = np.asarray(theta, dtype=float)
        n = self.n_states
        rows, cols, vals = [], [], []
        diagonal = np.zeros(n)
        pop = self.population
        cap = pop.population_size
        for row in range(n):
            counts = self.states[row]
            rates = pop.aggregate_rates(counts, theta)
            for e, tr in enumerate(self.model.transitions):
                rate = float(rates[e])
                if rate <= 0.0:
                    continue
                nxt = counts + tr.change.astype(np.int64)
                if np.any(nxt < 0) or np.any(nxt > cap):
                    continue
                col = self.index[tuple(int(v) for v in nxt)]
                rows.append(row)
                cols.append(col)
                vals.append(rate)
                diagonal[row] -= rate
        rows.extend(range(n))
        cols.extend(range(n))
        vals.extend(diagonal.tolist())
        return sparse.csr_matrix((vals, (rows, cols)), shape=(n, n))

    def affine_generator_parts(self, tol: float = 1e-8):
        """Decompose ``Q(theta) = Q_0 + sum_k theta_k Q_k`` (verified).

        Built by evaluating the generator at the centre and unit
        perturbations; a residual check at a random interior ``theta``
        guards against non-affine rate functions (``ValueError``).
        """
        if self._affine_cache is not None:
            return self._affine_cache
        theta_set = self.model.theta_set
        p = theta_set.dim
        center = theta_set.center()
        q_center = self.generator(center)
        parts = []
        for k in range(p):
            step = 1.0
            theta_plus = center.copy()
            theta_plus[k] += step
            # Generators are affine in each theta coordinate when rates
            # are; the slope is exact from a single finite difference.
            q_plus = self.generator(theta_plus)
            parts.append((q_plus - q_center) / step)
        q0 = q_center.copy()
        for k in range(p):
            q0 = q0 - parts[k] * center[k]
        # Verification at a random interior parameter.
        rng = np.random.default_rng(7)
        theta_probe = theta_set.sample(rng, 1)[0]
        reconstructed = q0.copy()
        for k in range(p):
            reconstructed = reconstructed + parts[k] * theta_probe[k]
        residual = abs(self.generator(theta_probe) - reconstructed).max()
        if residual > tol:
            raise ValueError(
                "generator is not affine in theta "
                f"(residual {residual:.2e}); the imprecise Kolmogorov "
                "bounds require affine rates or a grid extremiser"
            )
        self._affine_cache = (q0, parts)
        return self._affine_cache

    # ------------------------------------------------------------------
    # Transient analysis (precise theta)
    # ------------------------------------------------------------------

    def transient_distribution(self, theta, t: float,
                               p0: Optional[np.ndarray] = None,
                               method: str = "expm") -> np.ndarray:
        """Distribution at time ``t`` under a constant parameter.

        ``method="expm"`` uses scipy's Krylov ``expm_multiply``;
        ``method="uniformization"`` uses the Poisson-weighted power
        series, a second implementation kept as a cross-check.
        """
        if t < 0:
            raise ValueError("t must be non-negative")
        p0 = self.initial_distribution if p0 is None else np.asarray(p0, float)
        if abs(p0.sum() - 1.0) > 1e-9 or np.any(p0 < -1e-12):
            raise ValueError("p0 must be a probability distribution")
        if t == 0:
            return p0.copy()
        q = self.generator(theta)
        if method == "expm":
            return expm_multiply(q.T * t, p0)
        if method == "uniformization":
            return self._uniformization(q, p0, t)
        raise ValueError(f"unknown method {method!r}")

    @staticmethod
    def _uniformization(q: sparse.csr_matrix, p0: np.ndarray, t: float,
                        tol: float = 1e-12) -> np.ndarray:
        """Uniformization: ``P(t) = sum_k Poisson(k; Lt) (I + Q/L)^k p0``."""
        rate = float(-q.diagonal().min())
        if rate <= 0.0:
            return p0.copy()
        lam = 1.05 * rate
        transition = sparse.identity(q.shape[0], format="csr") + q / lam
        # Number of terms: mean + wide safety band (Poisson tail bound).
        mean = lam * t
        n_terms = int(np.ceil(mean + 10.0 * np.sqrt(mean + 1.0) + 10.0))
        weight = np.exp(-mean)
        vec = p0.copy()
        result = weight * vec
        accumulated = weight
        for k in range(1, n_terms + 1):
            vec = transition.T @ vec
            weight *= mean / k
            result += weight * vec
            accumulated += weight
            if 1.0 - accumulated < tol:
                break
        return result

    # ------------------------------------------------------------------
    # Stationary analysis (precise theta)
    # ------------------------------------------------------------------

    def stationary_distribution(self, theta) -> np.ndarray:
        """Stationary distribution ``pi Q = 0`` (dense solve).

        Requires the chain to have a unique stationary distribution on
        the enumerated lattice (irreducibility over the reachable set);
        the normalisation-augmented least-squares solve will surface a
        warning residual otherwise.
        """
        q = self.generator(theta).toarray()
        n = q.shape[0]
        # Solve pi Q = 0 with sum(pi) = 1: replace one balance equation.
        a = np.vstack([q.T, np.ones((1, n))])
        b = np.zeros(n + 1)
        b[-1] = 1.0
        pi, residual, _, _ = np.linalg.lstsq(a, b, rcond=None)
        pi = np.maximum(pi, 0.0)
        total = pi.sum()
        if total <= 0:
            raise RuntimeError("stationary solve produced a zero vector")
        return pi / total

    def expected_observable(self, distribution: np.ndarray, weights) -> float:
        """Expectation of a linear state observable under a distribution."""
        values = self.densities() @ np.asarray(weights, dtype=float)
        return float(distribution @ values)

    def __repr__(self) -> str:
        return (
            f"ImpreciseCTMC({self.model.name!r}, N="
            f"{self.population.population_size}, states={self.n_states})"
        )
