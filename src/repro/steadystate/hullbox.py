"""Stationary rectangle of the differential-hull approximation.

Figure 5 of the paper compares the Birkhoff centre with the rectangle the
differential hull converges to.  The hull ODE pair is autonomous in the
stacked state ``(xlo, xhi)``; when its bounding fields are contracting
the pair approaches a fixed rectangle, which over-approximates every
stationary behaviour of the inclusion.  When the fields are *not*
contracting (wide ``Theta``) the rectangle diverges — the "trivial for
theta_max >= 6" regime the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.bounds.hull import differential_hull_bounds

__all__ = ["HullRectangle", "hull_steady_rectangle"]


@dataclass
class HullRectangle:
    """A stationary hull rectangle ``[lower, upper]`` (or its divergence)."""

    lower: np.ndarray
    upper: np.ndarray
    converged: bool
    residual: float
    state_names: Tuple[str, ...]

    def contains(self, point, tol: float = 1e-9) -> bool:
        p = np.asarray(point, dtype=float)
        return bool(np.all(p >= self.lower - tol) and np.all(p <= self.upper + tol))

    def widths(self) -> np.ndarray:
        return self.upper - self.lower


def hull_steady_rectangle(
    model,
    x0,
    horizon: float = 200.0,
    residual_window: float = 0.05,
    residual_tol: float = 1e-6,
    batch: bool = True,
    **hull_kwargs,
) -> HullRectangle:
    """Integrate the hull pair to stationarity (or detect divergence).

    Parameters
    ----------
    model, x0:
        As for :func:`~repro.bounds.differential_hull_bounds`.
    horizon:
        Integration length used to reach the stationary rectangle.
    residual_window:
        Fraction of the horizon (from the end) over which stationarity
        is assessed.
    residual_tol:
        Maximum bound movement over the window for ``converged=True``.
    batch:
        Integrate the hull through the batched extremiser RHS (the
        default; the long stationarity horizon makes this the most
        extremisation-heavy workload in the library).  ``batch=False``
        selects the legacy per-corner loop.
    hull_kwargs:
        Forwarded to the hull integrator (sampling, refinement, blow-up
        threshold, ...).
    """
    t_eval = np.linspace(0.0, float(horizon), 401)
    bounds = differential_hull_bounds(model, x0, t_eval, batch=batch,
                                      **hull_kwargs)
    window = max(2, int(np.ceil(residual_window * t_eval.shape[0])))
    tail_lower = bounds.lower[-window:]
    tail_upper = bounds.upper[-window:]
    finite = bool(
        np.all(np.isfinite(tail_lower)) and np.all(np.isfinite(tail_upper))
    )
    if finite:
        residual = float(
            max(
                np.max(np.abs(tail_lower - tail_lower[-1])),
                np.max(np.abs(tail_upper - tail_upper[-1])),
            )
        )
    else:
        residual = np.inf
    return HullRectangle(
        lower=bounds.lower[-1].copy(),
        upper=bounds.upper[-1].copy(),
        converged=finite and residual <= residual_tol,
        residual=residual,
        state_names=model.state_names,
    )
