"""Stationary rectangle of the differential-hull approximation.

Figure 5 of the paper compares the Birkhoff centre with the rectangle the
differential hull converges to.  The hull ODE pair is autonomous in the
stacked state ``(xlo, xhi)``; when its bounding fields are contracting
the pair approaches a fixed rectangle, which over-approximates every
stationary behaviour of the inclusion.  When the fields are *not*
contracting (wide ``Theta``) the rectangle diverges — the "trivial for
theta_max >= 6" regime the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.bounds.hull import differential_hull_bounds, hull_vector_field
from repro.ode import find_fixed_point_batch

__all__ = ["HullRectangle", "hull_steady_rectangle"]


@dataclass
class HullRectangle:
    """A stationary hull rectangle ``[lower, upper]`` (or its divergence)."""

    lower: np.ndarray
    upper: np.ndarray
    converged: bool
    residual: float
    state_names: Tuple[str, ...]

    def contains(self, point, tol: float = 1e-9) -> bool:
        p = np.asarray(point, dtype=float)
        return bool(np.all(p >= self.lower - tol) and np.all(p <= self.upper + tol))

    def widths(self) -> np.ndarray:
        return self.upper - self.lower


def hull_steady_rectangle(
    model,
    x0,
    horizon: float = 200.0,
    residual_window: float = 0.05,
    residual_tol: float = 1e-6,
    batch: bool = True,
    settle: bool = True,
    **hull_kwargs,
) -> HullRectangle:
    """Integrate the hull pair to stationarity (or detect divergence).

    Parameters
    ----------
    model, x0:
        As for :func:`~repro.bounds.differential_hull_bounds`.
    horizon:
        Integration length used to reach the stationary rectangle.
    residual_window:
        Fraction of the horizon (from the end) over which stationarity
        is assessed.
    residual_tol:
        Maximum bound movement over the window for ``converged=True``.
    batch:
        Integrate the hull through the batched extremiser RHS (the
        default; the long stationarity horizon makes this the most
        extremisation-heavy workload in the library).  ``batch=False``
        selects the legacy per-corner loop.
    settle:
        After a finite integration, polish the rectangle to the *exact*
        zero of the hull field through
        :func:`~repro.ode.find_fixed_point_batch` (settle + Newton
        polish on the stacked ``(xlo, xhi)`` state).  The hull pair
        approaches its stationary rectangle from the inside, so the
        settled rectangle can only grow — soundness is preserved — and
        the reported ``residual`` becomes the field residual at the
        fixed point.  A settle that finds no equilibrium (slowly
        diverging hull) leaves the integration result untouched.
    hull_kwargs:
        Forwarded to the hull integrator (sampling, refinement, blow-up
        threshold, ...).
    """
    t_eval = np.linspace(0.0, float(horizon), 401)
    bounds = differential_hull_bounds(model, x0, t_eval, batch=batch,
                                      **hull_kwargs)
    window = max(2, int(np.ceil(residual_window * t_eval.shape[0])))
    tail_lower = bounds.lower[-window:]
    tail_upper = bounds.upper[-window:]
    finite = bool(
        np.all(np.isfinite(tail_lower)) and np.all(np.isfinite(tail_upper))
    )
    if finite:
        residual = float(
            max(
                np.max(np.abs(tail_lower - tail_lower[-1])),
                np.max(np.abs(tail_upper - tail_upper[-1])),
            )
        )
    else:
        residual = np.inf
    lower = bounds.lower[-1].copy()
    upper = bounds.upper[-1].copy()
    converged = finite and residual <= residual_tol
    if settle and finite:
        # Forward only the kwargs the field builder owns, so its own
        # defaults stay the single source of truth and the settled field
        # is exactly the field that was integrated.
        field = hull_vector_field(
            model,
            batch=batch,
            **{key: hull_kwargs[key]
               for key in ("x_samples_per_axis", "refine", "theta_method",
                           "backend")
               if key in hull_kwargs},
        )

        def field_batch(Z):
            return np.stack([field(0.0, z) for z in Z])

        try:
            fp = find_fixed_point_batch(
                field_batch,
                np.concatenate([lower, upper])[None, :],
                settle_time=float(horizon) / 4.0,
                max_rounds=2,
            )
        except RuntimeError:
            # No equilibrium within reach: keep the honest integration
            # result (e.g. a hull diverging slower than the blow-up
            # threshold detects).
            pass
        else:
            z = fp.points[0]
            d = model.dim
            # Soundness gate: the hull pair approaches its stationary
            # rectangle from the inside, so a legitimate settle can only
            # *grow* the integrated rectangle (up to solver noise).  A
            # Newton polish that jumped to a different, smaller zero of
            # the field must be discarded, not served as a bound.
            grow_tol = 1e-7 * (1.0 + float(np.max(np.abs(z))))
            sound = (
                np.all(z[d:] >= z[:d] - 1e-12)
                and np.all(z[:d] <= lower + grow_tol)
                and np.all(z[d:] >= upper - grow_tol)
            )
            if sound:
                lower, upper = z[:d].copy(), z[d:].copy()
                residual = float(fp.residuals[0])
                converged = converged or residual <= residual_tol
    return HullRectangle(
        lower=lower,
        upper=upper,
        converged=converged,
        residual=residual,
        state_names=model.state_names,
    )
