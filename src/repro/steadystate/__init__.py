"""Steady-state analysis of the mean-field inclusion (Theorems 2–3).

The stationary measures of an imprecise population process concentrate,
as ``N`` grows, on the Birkhoff centre of the mean-field differential
inclusion (Theorem 3).  This package computes:

- :func:`birkhoff_centre_2d` — the paper's Section V-C region-growing
  construction for two-dimensional systems: seed a region with
  extreme-parameter trajectories between the corner fixed points, then
  grow it until the imprecise drift points inward everywhere on the
  boundary (an invariance certificate).
- :func:`uncertain_fixed_points` — the curve of equilibria of the
  uncertain (constant-parameter) models, the red curves of Figs. 3 and 5.
- :func:`hull_steady_rectangle` — the stationary rectangle of the
  differential-hull over-approximation, the dashed boxes of Fig. 5.
"""

from repro.steadystate.asymptotic import asymptotic_reachable_hull
from repro.steadystate.birkhoff import (
    BirkhoffResult,
    birkhoff_centre_2d,
    uncertain_fixed_points,
)
from repro.steadystate.hullbox import hull_steady_rectangle

__all__ = [
    "birkhoff_centre_2d",
    "BirkhoffResult",
    "uncertain_fixed_points",
    "hull_steady_rectangle",
    "asymptotic_reachable_hull",
]
