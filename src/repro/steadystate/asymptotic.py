"""Convex outer approximation of the asymptotic reachable set ``A_F``.

Section V-C's "first possibility" for steady-state analysis: use the
Pontryagin principle to compute the convex hull of the reachable set at
time ``t`` and let ``t`` grow — the limit encloses the asymptotic set
``A_F`` of Eq. (6), which in turn contains the Birkhoff centre.

For a fixed template direction ``c`` the support value
``h_c(t) = max c . x(t)`` need not be monotone in ``t``, so the sound
outer offset for "all large times" is the supremum over the sampled
horizon ladder *beyond the transient*.  The result complements the
region-growing Birkhoff construction: it works in any dimension (the
grower is 2-D only) at the price of convex outer-ness.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bounds.pontryagin import extremal_trajectory
from repro.bounds.templates import TemplatePolytope, octagon_directions
from repro.inclusion import DriftExtremizer

__all__ = ["asymptotic_reachable_hull"]


def asymptotic_reachable_hull(
    model,
    x0,
    horizons=None,
    directions=None,
    n_steps_per_unit: float = 60.0,
    extremizer: Optional[DriftExtremizer] = None,
) -> TemplatePolytope:
    """Template outer approximation of the asymptotic set ``A_F``.

    Parameters
    ----------
    model, x0:
        The imprecise model and the initial state of the ladder (the
        asymptotic set is initial-state independent for the recurrent
        part; ``x0`` only influences the transient the ladder must
        outlast).
    horizons:
        Increasing horizon ladder; defaults to ``(10, 20, 30)`` time
        units.  The returned offsets are maxima over the ladder's tail
        (all but the first entry), treating the first horizon as
        transient burn-in.
    directions:
        Template directions (octagon by default).
    """
    if horizons is None:
        horizons = np.array([10.0, 20.0, 30.0])
    horizons = np.asarray(horizons, dtype=float)
    if horizons.ndim != 1 or horizons.shape[0] < 2:
        raise ValueError("need at least two horizons (burn-in + tail)")
    if np.any(np.diff(horizons) <= 0):
        raise ValueError("horizons must be strictly increasing")
    if directions is None:
        directions = octagon_directions(model.dim)
    directions = np.asarray(directions, dtype=float)
    extremizer = extremizer or DriftExtremizer(model)

    offsets = np.full(directions.shape[0], -np.inf)
    for k, c in enumerate(directions):
        for horizon in horizons[1:]:
            n_steps = max(60, int(np.ceil(horizon * n_steps_per_unit)))
            result = extremal_trajectory(
                model, x0, float(horizon), c, maximize=True,
                n_steps=n_steps, extremizer=extremizer,
            )
            offsets[k] = max(offsets[k], result.value)
    return TemplatePolytope(directions.copy(), offsets)
