"""Birkhoff-centre computation for two-dimensional inclusions.

The Birkhoff centre ``B_F`` (Eq. 1 of the paper) is the closure of the
recurrent points of the inclusion — the set on which stationary measures
concentrate (Theorem 3).  Section V-C gives a constructive algorithm for
2-D systems, implemented here:

1. integrate ``x' = f(x, theta_max)`` to its stable fixed point ``x0``;
2. integrate ``x' = f(x, theta_min)`` from ``x0`` (trajectory ``x1``) and
   ``x' = f(x, theta_max)`` from ``x1``'s endpoint (trajectory ``x2``);
   the two curves delimit a region inside the Birkhoff centre;
3. *grow*: while some boundary point admits a parameter whose drift
   points outward, integrate a trajectory with that parameter from that
   point and add it to the region (convex hull);
4. terminate when the drift points inward everywhere on the boundary —
   the region is then forward-invariant and no solution can leave it.

Step 1–2 are generalised to multi-parameter ``Theta`` by seeding with
trajectories between the fixed points of *all* corner parameters.

The returned region is a convex *outer* shell of the Birkhoff centre
built from trajectories that are themselves recurrent-set witnesses; the
paper argues (and Figure 3 shows) that for the SIR model the grown convex
region *is* the Birkhoff centre.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.geometry import ConvexPolygon, convex_hull
from repro.inclusion import DriftExtremizer
from repro.ode import find_fixed_point, find_fixed_point_batch, solve_ode

__all__ = ["BirkhoffResult", "birkhoff_centre_2d", "uncertain_fixed_points"]


@dataclass
class BirkhoffResult:
    """Outcome of the Birkhoff-centre construction.

    Attributes
    ----------
    polygon:
        The grown convex region (``None`` when degenerate).
    points:
        All trajectory points the construction accumulated.
    corner_fixed_points:
        The equilibria of the corner parameters used as seeds.
    certified:
        Whether the final boundary scan found no outward drift above the
        drift tolerance (the forward-invariance certificate).
    converged:
        Whether the growth loop terminated because the region stopped
        expanding (spatially stable); implied by ``certified``.
    degenerate:
        ``True`` when the seeds collapse to (numerically) one point —
        e.g. a singleton ``Theta`` whose ODE has a unique attractor; the
        Birkhoff centre is then the point itself.
    rounds:
        Number of growth rounds executed.
    max_outward_drift:
        The largest outward drift component found in the final scan
        (``<= tolerance`` when certified).
    """

    polygon: Optional[ConvexPolygon]
    points: np.ndarray
    corner_fixed_points: np.ndarray
    certified: bool
    degenerate: bool
    rounds: int
    max_outward_drift: float
    converged: bool = False
    history: List[float] = field(default_factory=list)

    def contains(self, point, tol: float = 1e-7) -> bool:
        """Membership in the computed region (point proximity if degenerate)."""
        if self.degenerate or self.polygon is None:
            return bool(
                np.min(np.linalg.norm(self.points - np.asarray(point), axis=1)) <= tol
            )
        return self.polygon.contains(point, tol=tol)

    def distance(self, point) -> float:
        """Distance from a point to the region."""
        if self.degenerate or self.polygon is None:
            return float(
                np.min(np.linalg.norm(self.points - np.asarray(point), axis=1))
            )
        return self.polygon.distance(point)


def birkhoff_centre_2d(
    model,
    x0_guess=None,
    settle_time: float = 60.0,
    loop_time: float = 40.0,
    grow_time: float = 30.0,
    per_edge: int = 2,
    max_rounds: int = 120,
    tolerance: float = 1e-4,
    degenerate_diameter: float = 1e-6,
    extremizer: Optional[DriftExtremizer] = None,
    samples_per_trajectory: int = 200,
    max_escapes_per_round: int = 24,
    simplify_tolerance: float = 5e-6,
    spatial_tolerance: float = 1e-4,
) -> BirkhoffResult:
    """Run the Section V-C construction on a 2-D model.

    Parameters
    ----------
    model:
        A two-dimensional population model.
    x0_guess:
        Starting point for locating the first fixed point; defaults to
        the centre of the declared state bounds.
    settle_time:
        Integration time used to approach fixed points.
    loop_time:
        Length of the seed trajectories between corner fixed points.
    grow_time:
        Length of the escape trajectories integrated during growth.
    per_edge:
        Boundary samples per polygon edge scanned for outward drift.
    max_rounds:
        Cap on growth rounds.
    tolerance:
        Outward-drift threshold (normal component of the support
        function) below which the boundary is considered inward.
    degenerate_diameter:
        Seed clouds with a smaller diameter are reported as degenerate.
    max_escapes_per_round:
        Cap on the escape trajectories integrated per round; when more
        boundary points drift outward, the worst offenders are grown
        first (the rest get their turn next round).
    simplify_tolerance:
        Collinearity tolerance for vertex simplification between rounds;
        keeps the boundary scan linear instead of quadratic in the
        accumulated trajectory points.
    spatial_tolerance:
        Growth stopping rule: a round whose escape trajectories extend
        the region by less than this distance ends the loop with
        ``converged=True`` — the region is stable in Hausdorff distance
        even when a residual boundary drift above ``tolerance`` remains
        (the certificate flag then stays ``False``).
    """
    if model.dim != 2:
        raise ValueError("birkhoff_centre_2d requires a two-dimensional model")
    extremizer = extremizer or DriftExtremizer(model)
    if x0_guess is None:
        if model.state_lower is not None:
            x0_guess = 0.5 * (model.state_lower + model.state_upper)
        else:
            x0_guess = np.full(model.dim, 0.5)
    x0_guess = np.asarray(x0_guess, dtype=float)

    corners = model.theta_set.corners()
    # Step 1: fixed point of each corner parameter (continuation between
    # corners keeps the solves cheap and on the same attractor branch).
    fixed_points = []
    current_guess = x0_guess
    for theta in corners:
        fp = find_fixed_point(
            model.drift_fn(theta), current_guess, settle_time=settle_time
        )
        fixed_points.append(fp)
        current_guess = fp
    fixed_points = np.array(fixed_points)

    # Step 2: seed trajectories between fixed points under switched
    # corner parameters (the paper's x1 / x2 loop, generalised).
    points = [fixed_points]
    for i in range(corners.shape[0]):
        for j in range(corners.shape[0]):
            if i == j and corners.shape[0] > 1:
                continue
            traj = solve_ode(
                model.vector_field(corners[j]),
                fixed_points[i],
                (0.0, loop_time),
                t_eval=np.linspace(0.0, loop_time, samples_per_trajectory),
            )
            points.append(traj.states)
    cloud = np.vstack(points)

    diameter = float(
        np.max(np.linalg.norm(cloud - cloud.mean(axis=0), axis=1), initial=0.0)
    )
    if diameter <= degenerate_diameter:
        return BirkhoffResult(
            polygon=None,
            points=cloud,
            corner_fixed_points=fixed_points,
            certified=True,
            degenerate=True,
            rounds=0,
            max_outward_drift=0.0,
            converged=True,
        )

    hull = convex_hull(cloud)
    if hull.shape[0] < 3:
        # Collinear seed cloud: nudge along the normal direction to give
        # the hull area; the growth loop will immediately correct it.
        direction = hull[-1] - hull[0]
        normal = np.array([-direction[1], direction[0]])
        norm = np.linalg.norm(normal)
        normal = normal / norm if norm > 0 else np.array([0.0, 1.0])
        cloud = np.vstack([cloud, cloud.mean(axis=0) + 1e-8 * normal])
    polygon = ConvexPolygon(cloud)

    # Step 3: growth loop.
    history: List[float] = []
    certified = False
    converged = False
    max_outward = np.inf
    rounds = 0
    for rounds in range(1, max_rounds + 1):
        boundary, normals = polygon.boundary_points(per_edge=per_edge)
        candidates = []
        max_outward = -np.inf
        for x, n in zip(boundary, normals):
            theta_star, outward = extremizer.maximize_direction(x, n)
            max_outward = max(max_outward, outward)
            if outward > tolerance:
                candidates.append((outward, x, theta_star))
        history.append(max_outward)
        if not candidates:
            certified = True
            converged = True
            break
        candidates.sort(key=lambda item: -item[0])
        escapes = []
        # The outward excursion is often brief (the flow curves back into
        # the recurrent set), so the early part of each escape is sampled
        # densely or the hull gain is missed entirely.
        early = min(1.0, 0.1 * grow_time)
        t_escape = np.unique(
            np.concatenate(
                [
                    np.linspace(0.0, early, samples_per_trajectory // 2),
                    np.linspace(early, grow_time, samples_per_trajectory // 2),
                ]
            )
        )
        for _, x, theta_star in candidates[:max_escapes_per_round]:
            traj = solve_ode(
                model.vector_field(theta_star),
                x,
                (0.0, grow_time),
                t_eval=t_escape,
                rtol=1e-8,
                atol=1e-10,
            )
            escapes.append(traj.states)
        escape_cloud = np.vstack(escapes)
        gain = float(np.max(polygon.signed_margin(escape_cloud)))
        if gain <= spatial_tolerance:
            converged = True
            break
        polygon = polygon.expanded_with(escape_cloud)
        polygon = polygon.simplified(simplify_tolerance)

    return BirkhoffResult(
        polygon=polygon,
        points=polygon.vertices,
        corner_fixed_points=fixed_points,
        certified=certified,
        degenerate=False,
        rounds=rounds,
        max_outward_drift=float(max_outward),
        converged=converged,
        history=history,
    )


def uncertain_fixed_points(
    model,
    resolution: int = 41,
    x0_guess=None,
    settle_time: float = 60.0,
    batch: bool = True,
) -> np.ndarray:
    """Equilibria of the uncertain models over a parameter grid.

    Returns an ``(m, dim)`` array: the fixed point of
    ``x' = f(x, theta)`` for each ``theta`` on a uniform grid of
    ``Theta``.  For the SIR model this is the red steady-state curve of
    Figures 3 and 5; by Corollary 2 the stationary measures of the
    uncertain processes concentrate on these points.

    With ``batch`` enabled (the default) the whole grid settles at once
    through :func:`~repro.ode.find_fixed_point_batch` — one vectorized
    integrator loop instead of one scipy solve per ``theta``, each lane
    started from ``x0_guess`` and Newton-polished to the same tolerance.
    The scalar path (``batch=False``) keeps the legacy warm-started
    continuation along the grid; both land on the same attractor branch
    for the catalog models and are pinned against each other in the
    differential suite.
    """
    if x0_guess is None:
        if model.state_lower is not None:
            x0_guess = 0.5 * (model.state_lower + model.state_upper)
        else:
            x0_guess = np.full(model.dim, 0.5)
    guess = np.asarray(x0_guess, dtype=float)
    thetas = model.theta_set.grid(resolution)
    if batch:
        result = find_fixed_point_batch(
            lambda X, th: model.drift_batch(X, th),
            np.broadcast_to(guess, (thetas.shape[0], model.dim)),
            settle_time=settle_time,
            lane_args=thetas,
        )
        if not result.converged.all():
            # Mirror the scalar path's near-miss signal: lanes inside
            # the acceptance band but above tol are usable, not silent.
            n_loose = int(np.count_nonzero(~result.converged))
            warnings.warn(
                f"{n_loose} of {len(result)} equilibria settled with "
                f"residual above tolerance (worst |f| = "
                f"{float(result.residuals.max()):.2e})",
                RuntimeWarning,
                stacklevel=2,
            )
        return result.points
    out = np.empty((thetas.shape[0], model.dim))
    for k, theta in enumerate(thetas):
        fp = find_fixed_point(model.drift_fn(theta), guess, settle_time=settle_time)
        out[k] = fp
        guess = fp
    return out
