"""Power-of-two-choices load balancing with an imprecise arrival rate.

An extension model addressing the paper's closing remark ("we will …
test the approach on larger models, to properly understand its
scalability"): the classical supermarket model is the canonical
mean-field system whose state dimension is a free knob, so it is the
natural scalability probe for the bound machinery.

``n`` identical servers; jobs arrive at total rate ``N * lambda(t)``
with ``lambda(t)`` imprecise in an interval; each job samples ``d``
servers uniformly (``d = 2`` by default) and joins the shortest of them;
service is exponential at rate ``mu``.  In the standard *tail*
coordinates ``x_k = fraction of servers with at least k jobs``
(``k = 1..K``, truncated at buffer ``K``), the mean-field drift is

.. math::
    \\dot x_k = \\lambda (x_{k-1}^d - x_k^d) - \\mu (x_k - x_{k+1}),

with ``x_0 = 1`` and ``x_{K+1} = 0``.  The drift is affine in
``lambda`` with coefficient vector ``(x_{k-1}^d - x_k^d)_k``, so the
whole Section IV toolbox applies at any truncation depth ``K``.
"""

from __future__ import annotations

import numpy as np

from repro.params import Interval
from repro.population import PopulationModel, Transition

__all__ = ["make_power_of_d_model"]


def make_power_of_d_model(
    buffer_depth: int = 10,
    choices: int = 2,
    mu: float = 1.0,
    arrival_bounds=(0.7, 0.95),
) -> PopulationModel:
    """Build the truncated power-of-``d``-choices model.

    Parameters
    ----------
    buffer_depth:
        Truncation level ``K``; the state is ``(x_1, ..., x_K)``.
    choices:
        Number of sampled servers per arrival (``d >= 1``; ``d = 1`` is
        random routing, ``d = 2`` the classical supermarket model).
    mu:
        Service rate.
    arrival_bounds:
        The imprecise arrival-rate interval (load per server); keep the
        upper bound below ``mu`` for a stable system.
    """
    if buffer_depth < 1:
        raise ValueError("buffer_depth must be >= 1")
    if choices < 1:
        raise ValueError("choices must be >= 1")
    if mu <= 0:
        raise ValueError("mu must be positive")
    lo, hi = float(arrival_bounds[0]), float(arrival_bounds[1])
    theta_set = Interval(lo, hi, name="arrival_rate")
    dim = int(buffer_depth)
    d = int(choices)

    def tail(x, k: int):
        """``x_k`` with the boundary conventions ``x_0 = 1``, ``x_{K+1} = 0``.

        Works coordinate-wise on both a single state vector and the
        coordinate-major ``(d, n)`` batches of the vectorized engine, so
        the rates below vectorize transparently.
        """
        if k <= 0:
            return 1.0
        if k > dim:
            return 0.0
        return x[k - 1]

    transitions = []
    for k in range(1, dim + 1):
        arrival_change = np.zeros(dim)
        arrival_change[k - 1] = 1.0
        # Arrival raising a level-(k-1) server to level k: happens when
        # the shortest sampled server has exactly k-1 jobs.
        transitions.append(
            Transition(
                f"arrival_to_{k}",
                change=arrival_change,
                rate=(lambda kk: (
                    lambda x, th: th[0]
                    * np.maximum(tail(x, kk - 1) ** d - tail(x, kk) ** d, 0.0)
                ))(k),
            )
        )
        service_change = np.zeros(dim)
        service_change[k - 1] = -1.0
        transitions.append(
            Transition(
                f"service_from_{k}",
                change=service_change,
                rate=(lambda kk: (
                    lambda x, th: mu
                    * np.maximum(tail(x, kk) - tail(x, kk + 1), 0.0)
                ))(k),
            )
        )

    def affine_drift(x):
        g0 = np.zeros(dim)
        coeff = np.zeros((dim, 1))
        for k in range(1, dim + 1):
            g0[k - 1] = -mu * max(tail(x, k) - tail(x, k + 1), 0.0)
            coeff[k - 1, 0] = max(tail(x, k - 1) ** d - tail(x, k) ** d, 0.0)
        return g0, coeff

    def affine_drift_batch(x):
        n = x.shape[0]
        # Columns of `padded` are the tails x_0 .. x_{K+1} with the
        # boundary conventions x_0 = 1, x_{K+1} = 0 baked in.
        padded = np.concatenate([np.ones((n, 1)), x, np.zeros((n, 1))], axis=1)
        g0 = -mu * np.maximum(padded[:, 1:dim + 1] - padded[:, 2:dim + 2], 0.0)
        coeff = np.maximum(
            padded[:, 0:dim] ** d - padded[:, 1:dim + 1] ** d, 0.0
        )
        return g0, coeff[:, :, None]

    def jacobian(x, theta):
        lam = float(theta[0])
        jac = np.zeros((dim, dim))
        for k in range(1, dim + 1):
            row = k - 1
            # d/dx of lam (x_{k-1}^d - x_k^d) - mu (x_k - x_{k+1}).
            if k - 1 >= 1:
                jac[row, k - 2] += lam * d * tail(x, k - 1) ** (d - 1)
            jac[row, k - 1] += -lam * d * tail(x, k) ** (d - 1) - mu
            if k + 1 <= dim:
                jac[row, k] += mu
        return jac

    def jacobian_batch(x, theta):
        lam = theta[:, 0]
        jac = np.zeros((x.shape[0], dim, dim))
        for k in range(1, dim + 1):
            row = k - 1
            if k - 1 >= 1:
                jac[:, row, k - 2] += lam * d * x[:, k - 2] ** (d - 1)
            jac[:, row, k - 1] += -lam * d * x[:, k - 1] ** (d - 1) - mu
            if k + 1 <= dim:
                jac[:, row, k] += mu
        return jac

    return PopulationModel(
        name=f"power_of_{d}_choices",
        state_names=tuple(f"x{k}" for k in range(1, dim + 1)),
        transitions=transitions,
        theta_set=theta_set,
        affine_drift=affine_drift,
        affine_drift_batch=affine_drift_batch,
        drift_jacobian=jacobian,
        drift_jacobian_batch=jacobian_batch,
        state_bounds=(np.zeros(dim), np.ones(dim)),
        observables={
            "busy_fraction": np.eye(dim)[0],
            "mean_queue_length": np.ones(dim),
        },
    )
