"""A scaled M/M/C queue with server breakdowns and imprecise load.

An extension model for capacity planning under unreliable service: jobs
from ``N`` closed sources feed a pool of ``C = c N`` servers that fail
and get repaired.  Normalised state ``x = (q, b)`` with ``q`` the queued
job density (fraction of the ``N`` sources with a job waiting) and ``b``
the broken-server density (so ``c - b`` is the operational density):

- *arrival*: an idle source submits a job, rate ``lambda (1 - q)`` —
  the per-source demand ``lambda`` is imprecise (flash crowds, diurnal
  waves);
- *service*: operational servers drain the queue by mass-action
  coupling, rate ``mu (c - b) q``;
- *breakdown*: operational servers fail, rate ``gamma (c - b)`` — the
  failure rate ``gamma`` is also imprecise (correlated faults, attacks);
- *repair*: broken servers are restored, rate ``rho b``.

The drift is affine in ``theta = (lambda, gamma)`` over a box, the same
structure as the paper's GPS example (Section VI), so the whole
Section IV toolbox applies:

.. math::
    f_q = \\lambda (1 - q) - \\mu (c - b) q \\\\
    f_b = \\gamma (c - b) - \\rho b
"""

from __future__ import annotations

import numpy as np

from repro.params import Box
from repro.population import PopulationModel, Transition

__all__ = ["make_repairable_queue_model"]


def make_repairable_queue_model(
    mu: float = 4.0,
    rho: float = 2.0,
    capacity: float = 0.5,
    arrival_bounds=(0.5, 1.5),
    breakdown_bounds=(0.2, 1.0),
) -> PopulationModel:
    """Build the repairable-queue model with imprecise demand and faults.

    Parameters
    ----------
    mu:
        Per-server service rate (mass-action coupling with the queue).
    rho:
        Repair rate of broken servers.
    capacity:
        Normalised server pool size ``c`` (servers per job source).
    arrival_bounds:
        Interval of the imprecise per-source arrival rate ``lambda``.
    breakdown_bounds:
        Interval of the imprecise server failure rate ``gamma``.
    """
    if mu <= 0 or rho <= 0:
        raise ValueError("service and repair rates must be positive")
    if capacity <= 0:
        raise ValueError("normalised capacity must be positive")
    (l_lo, l_hi) = (float(arrival_bounds[0]), float(arrival_bounds[1]))
    (g_lo, g_hi) = (float(breakdown_bounds[0]), float(breakdown_bounds[1]))
    theta_set = Box([("lambda", l_lo, l_hi), ("gamma", g_lo, g_hi)])
    c = float(capacity)

    arrival = Transition(
        "arrival",
        change=[1.0, 0.0],
        rate=lambda x, th: th[0] * (1.0 - x[0]),
    )
    service = Transition(
        "service",
        change=[-1.0, 0.0],
        rate=lambda x, th: mu * (c - x[1]) * x[0],
    )
    breakdown = Transition(
        "breakdown",
        change=[0.0, 1.0],
        rate=lambda x, th: th[1] * (c - x[1]),
    )
    repair = Transition(
        "repair",
        change=[0.0, -1.0],
        rate=lambda x, th: rho * x[1],
    )

    def affine_drift(x):
        q, b = float(x[0]), float(x[1])
        g0 = np.array([-mu * (c - b) * q, -rho * b])
        big_g = np.array([[1.0 - q, 0.0], [0.0, c - b]])
        return g0, big_g

    def affine_drift_batch(x):
        q, b_ = x[:, 0], x[:, 1]
        n = x.shape[0]
        g0 = np.stack([-mu * (c - b_) * q, -rho * b_], axis=1)
        big_g = np.zeros((n, 2, 2))
        big_g[:, 0, 0] = 1.0 - q
        big_g[:, 1, 1] = c - b_
        return g0, big_g

    def jacobian(x, theta):
        q, b = float(x[0]), float(x[1])
        lam, gam = float(theta[0]), float(theta[1])
        return np.array(
            [
                [-lam - mu * (c - b), mu * q],
                [0.0, -gam - rho],
            ]
        )

    def jacobian_batch(x, theta):
        q, b = x[:, 0], x[:, 1]
        lam, gam = theta[:, 0], theta[:, 1]
        jac = np.zeros((x.shape[0], 2, 2))
        jac[:, 0, 0] = -lam - mu * (c - b)
        jac[:, 0, 1] = mu * q
        jac[:, 1, 1] = -gam - rho
        return jac

    return PopulationModel(
        name="repairable_queue",
        state_names=("q", "b"),
        transitions=[arrival, service, breakdown, repair],
        theta_set=theta_set,
        affine_drift=affine_drift,
        affine_drift_batch=affine_drift_batch,
        drift_jacobian=jacobian,
        drift_jacobian_batch=jacobian_batch,
        state_bounds=([0.0, 0.0], [1.0, c]),
        observables={
            "queue": [1.0, 0.0],
            "broken": [0.0, 1.0],
            "operational": [0.0, -1.0],  # c - b up to the constant c
        },
    )
