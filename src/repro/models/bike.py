"""The single-station bike-sharing model of Sections II–III.

The station has ``N`` racks; the state is the fraction ``x`` of occupied
racks.  Customers take a bike at rate ``N * theta_a`` (when a bike is
available) and return one at rate ``N * theta_r`` (when a rack is free).
Both rates are imprecise: ``theta_a in [theta_a_min, theta_a_max]`` and
``theta_r in [theta_r_min, theta_r_max]``.

The rates carry boundary indicators (a departure needs ``x > 0``, a
return needs ``x < 1``), so the mean-field drift is discontinuous at the
two boundary points — exactly the situation covered by the differential
inclusion limit of [17] (Gast & Gaujal) that Theorem 1 generalises.  The
finite-``N`` chain is a birth–death process, which makes this model the
reference case for the exact CTMC machinery (:mod:`repro.ctmc`): the
imprecise Kolmogorov bounds can be validated against enumeration over
extreme constant parameters.
"""

from __future__ import annotations

import numpy as np

from repro.params import Box
from repro.population import PopulationModel, Transition

__all__ = ["make_bike_station_model"]


def make_bike_station_model(
    arrival_bounds=(0.8, 1.2),
    return_bounds=(0.9, 1.1),
) -> PopulationModel:
    """Build the single-station model with imprecise traffic rates.

    State ``x in [0, 1]``: occupied fraction of the ``N`` racks.
    ``theta = (theta_a, theta_r)``: customer arrival (bike departure) and
    bike return rates, each confined to its interval.
    """
    (a_lo, a_hi) = (float(arrival_bounds[0]), float(arrival_bounds[1]))
    (r_lo, r_hi) = (float(return_bounds[0]), float(return_bounds[1]))
    theta_set = Box([("theta_a", a_lo, a_hi), ("theta_r", r_lo, r_hi)])

    departure = Transition(
        "departure",
        change=[-1.0],
        rate=lambda x, th: th[0] if x[0] > 0.0 else 0.0,
    )
    bike_return = Transition(
        "return",
        change=[1.0],
        rate=lambda x, th: th[1] if x[0] < 1.0 else 0.0,
    )

    def affine_drift(x):
        occupied = float(x[0])
        g0 = np.zeros(1)
        big_g = np.array(
            [[-1.0 if occupied > 0.0 else 0.0, 1.0 if occupied < 1.0 else 0.0]]
        )
        return g0, big_g

    def affine_drift_batch(x):
        occupied = x[:, 0]
        n = x.shape[0]
        g0 = np.zeros((n, 1))
        big_g = np.stack(
            [
                np.where(occupied > 0.0, -1.0, 0.0),
                np.where(occupied < 1.0, 1.0, 0.0),
            ],
            axis=1,
        )[:, None, :]
        return g0, big_g

    def jacobian(x, theta):
        # Piecewise constant drift: zero Jacobian away from the boundary.
        return np.zeros((1, 1))

    def jacobian_batch(x, theta):
        return np.zeros((x.shape[0], 1, 1))

    return PopulationModel(
        name="bike_station",
        state_names=("occupied",),
        transitions=[departure, bike_return],
        theta_set=theta_set,
        affine_drift=affine_drift,
        affine_drift_batch=affine_drift_batch,
        drift_jacobian=jacobian,
        drift_jacobian_batch=jacobian_batch,
        state_bounds=([0.0], [1.0]),
        observables={"occupied": [1.0]},
    )
