"""The SIR epidemic model of Section V.

A population of ``N`` nodes, each susceptible (S), infected (I) or
recovered (R).  Events (Section V-A):

- *infection*: a susceptible node is infected from an external source at
  rate ``a`` or by contact with infected nodes at rate ``theta * X_I``;
  aggregate density rate ``a X_S + theta X_S X_I``;
- *recovery*: infected nodes recover at rate ``b`` (density ``b X_I``);
- *loss of immunity*: recovered nodes become susceptible again at rate
  ``c`` (density ``c X_R``).

The contact rate ``theta`` is the imprecise parameter, varying in
``[theta_min, theta_max]``.  Because ``X_S + X_I + X_R = 1`` the model is
two-dimensional; :func:`make_sir_model` builds the reduced ``(S, I)``
model whose drift is Eq. (11) of the paper, and
:func:`make_sir_full_model` keeps the full three compartments (Eq. 10).

Paper parameter values (Section V-A): ``a = 0.1``, ``b = 5``, ``c = 1``,
``theta in [1, 10]``, initial state ``(S, I, R) = (0.7, 0.3, 0)``.
"""

from __future__ import annotations

import numpy as np

from repro.params import Interval
from repro.population import PopulationModel, Transition

__all__ = ["SIR_PAPER_PARAMS", "make_sir_model", "make_sir_full_model"]

#: The exact parameters used throughout Section V of the paper.
SIR_PAPER_PARAMS = {
    "a": 0.1,
    "b": 5.0,
    "c": 1.0,
    "theta_min": 1.0,
    "theta_max": 10.0,
    "x0_full": (0.7, 0.3, 0.0),
    "x0": (0.7, 0.3),
}


def make_sir_model(
    a: float = 0.1,
    b: float = 5.0,
    c: float = 1.0,
    theta_min: float = 1.0,
    theta_max: float = 10.0,
) -> PopulationModel:
    """Build the reduced two-dimensional SIR model (Eq. 11).

    State ``x = (X_S, X_I)`` with ``X_R = 1 - X_S - X_I`` substituted:

    .. math::
        f_S = c - (a + c) X_S - c X_I - \\theta X_S X_I \\\\
        f_I = a X_S + \\theta X_S X_I - b X_I

    The drift is affine in ``theta`` with
    ``G(x) = (-X_S X_I, +X_S X_I)^T``, which is the structure exploited by
    the bang-bang Pontryagin maximiser and the corner-based hull.
    """
    for label, value in (("a", a), ("b", b), ("c", c)):
        if value < 0:
            raise ValueError(f"rate {label} must be non-negative, got {value}")
    theta_set = Interval(theta_min, theta_max, name="contact_rate")

    infection = Transition(
        "infection",
        change=[-1.0, 1.0],
        rate=lambda x, th: a * x[0] + th[0] * x[0] * x[1],
    )
    recovery = Transition(
        "recovery",
        change=[0.0, -1.0],
        rate=lambda x, th: b * x[1],
    )
    immunity_loss = Transition(
        "immunity_loss",
        change=[1.0, 0.0],
        rate=lambda x, th: c * (1.0 - x[0] - x[1]),
    )

    def affine_drift(x):
        s, i = float(x[0]), float(x[1])
        g0 = np.array([c - (a + c) * s - c * i, a * s - b * i])
        big_g = np.array([[-s * i], [s * i]])
        return g0, big_g

    def affine_drift_batch(x):
        # Filled column-by-column (not np.stack): this decomposition is
        # the innermost call of every hull RHS evaluation.
        s, i = x[:, 0], x[:, 1]
        g0 = np.empty_like(x)
        g0[:, 0] = c - (a + c) * s - c * i
        g0[:, 1] = a * s - b * i
        si = s * i
        big_g = np.empty((x.shape[0], 2, 1))
        big_g[:, 0, 0] = -si
        big_g[:, 1, 0] = si
        return g0, big_g

    def jacobian(x, theta):
        s, i = float(x[0]), float(x[1])
        th = float(theta[0])
        return np.array(
            [
                [-(a + c) - th * i, -c - th * s],
                [a + th * i, th * s - b],
            ]
        )

    def jacobian_batch(x, theta):
        s, i = x[:, 0], x[:, 1]
        th = theta[:, 0]
        jac = np.empty((x.shape[0], 2, 2))
        jac[:, 0, 0] = -(a + c) - th * i
        jac[:, 0, 1] = -c - th * s
        jac[:, 1, 0] = a + th * i
        jac[:, 1, 1] = th * s - b
        return jac

    return PopulationModel(
        name="sir_reduced",
        state_names=("S", "I"),
        transitions=[infection, recovery, immunity_loss],
        theta_set=theta_set,
        affine_drift=affine_drift,
        affine_drift_batch=affine_drift_batch,
        drift_jacobian=jacobian,
        drift_jacobian_batch=jacobian_batch,
        state_bounds=([0.0, 0.0], [1.0, 1.0]),
        observables={
            "S": [1.0, 0.0],
            "I": [0.0, 1.0],
            # X_R = 1 - S - I is affine, not linear; use `sir_recovered`.
        },
    )


def sir_recovered(x) -> float:
    """The recovered proportion ``X_R = 1 - X_S - X_I`` of the reduced model."""
    return 1.0 - float(x[0]) - float(x[1])


def make_sir_full_model(
    a: float = 0.1,
    b: float = 5.0,
    c: float = 1.0,
    theta_min: float = 1.0,
    theta_max: float = 10.0,
) -> PopulationModel:
    """Build the full three-dimensional SIR model (Eq. 10).

    State ``x = (X_S, X_I, X_R)`` on the unit simplex.  The conservation
    ``X_S + X_I + X_R = 1`` is declared and exploited by the tests; the
    reduced model of :func:`make_sir_model` is the projection used by the
    numerics.
    """
    theta_set = Interval(theta_min, theta_max, name="contact_rate")

    infection = Transition(
        "infection",
        change=[-1.0, 1.0, 0.0],
        rate=lambda x, th: a * x[0] + th[0] * x[0] * x[1],
    )
    recovery = Transition(
        "recovery",
        change=[0.0, -1.0, 1.0],
        rate=lambda x, th: b * x[1],
    )
    immunity_loss = Transition(
        "immunity_loss",
        change=[1.0, 0.0, -1.0],
        rate=lambda x, th: c * x[2],
    )

    def affine_drift(x):
        s, i, r = float(x[0]), float(x[1]), float(x[2])
        g0 = np.array([c * r - a * s, a * s - b * i, b * i - c * r])
        big_g = np.array([[-s * i], [s * i], [0.0]])
        return g0, big_g

    def affine_drift_batch(x):
        s, i, r = x[:, 0], x[:, 1], x[:, 2]
        g0 = np.stack([c * r - a * s, a * s - b * i, b * i - c * r], axis=1)
        si = s * i
        big_g = np.stack([-si, si, np.zeros_like(si)], axis=1)[:, :, None]
        return g0, big_g

    def jacobian(x, theta):
        s, i = float(x[0]), float(x[1])
        th = float(theta[0])
        return np.array(
            [
                [-a - th * i, -th * s, c],
                [a + th * i, th * s - b, 0.0],
                [0.0, b, -c],
            ]
        )

    def jacobian_batch(x, theta):
        s, i = x[:, 0], x[:, 1]
        th = theta[:, 0]
        jac = np.zeros((x.shape[0], 3, 3))
        jac[:, 0, 0] = -a - th * i
        jac[:, 0, 1] = -th * s
        jac[:, 0, 2] = c
        jac[:, 1, 0] = a + th * i
        jac[:, 1, 1] = th * s - b
        jac[:, 2, 1] = b
        jac[:, 2, 2] = -c
        return jac

    return PopulationModel(
        name="sir_full",
        state_names=("S", "I", "R"),
        transitions=[infection, recovery, immunity_loss],
        theta_set=theta_set,
        affine_drift=affine_drift,
        affine_drift_batch=affine_drift_batch,
        drift_jacobian=jacobian,
        drift_jacobian_batch=jacobian_batch,
        state_bounds=([0.0, 0.0, 0.0], [1.0, 1.0, 1.0]),
        conservations=[([1.0, 1.0, 1.0], 1.0)],
        observables={
            "S": [1.0, 0.0, 0.0],
            "I": [0.0, 1.0, 0.0],
            "R": [0.0, 0.0, 1.0],
        },
    )
