"""The generalised-processor-sharing (GPS) network of Section VI.

A closed tandem network: ``N`` applications, split into two classes of
fixed fractions ``n_1 + n_2 = 1``, send jobs to one shared machine of
capacity ``C = c N``.  The machine serves queued jobs with a GPS
discipline: class ``i`` receives a fraction
``phi_i K_i / (phi_1 K_1 + phi_2 K_2)`` of the capacity, where ``K_i`` is
its queue length and ``phi_i`` its weight.  Job sizes of class ``i`` are
exponential with mean ``1 / mu_i``.

Two job-creation scenarios are modelled (Section VI-A):

- **Poisson**: an application that received its completed job waits an
  exponential time of mean ``1 / lambda'_i`` and sends the next job.
  State per class: the queued fraction only.
- **MAP** (Markov arrival process): the application first waits an
  exponential time of mean ``1 / a_i`` to become *active*, then sends the
  job after a further exponential time of mean ``1 / lambda_i``.  State
  per class: queued and idle fractions (active is the complement).

The imprecise parameters are the per-class sending rates
``lambda_i in [lambda_i_min, lambda_i_max]``.  For a fair comparison the
paper couples the two scenarios by matching mean inter-job times:
``1 / lambda'_i = 1 / a_i + 1 / lambda_i`` (:func:`poisson_rate_from_map`).

State normalisation: the model state stores ``q_i = K_i / N`` (fractions
of the *total* population), which keeps unit jump vectors on the count
lattice.  The per-class queue fraction the paper plots is
``Q_i = q_i / n_i``; it is exposed as the linear observables ``"Q1"`` and
``"Q2"``.

Paper parameter values (Section VI-C): ``mu = (5, 1)``,
``phi = (1, 1)``, ``lambda_1 in [1, 7]``, ``lambda_2 in [2, 3]``,
``a = (1, 2)``, initial ``Q_1(0) = Q_2(0) = 0.1``.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.params import Box
from repro.population import PopulationModel, Transition

__all__ = [
    "GPS_PAPER_PARAMS",
    "poisson_rate_from_map",
    "make_gps_poisson_model",
    "make_gps_map_model",
    "gps_initial_state_poisson",
    "gps_initial_state_map",
]

#: The exact parameters used in Section VI-C of the paper.
GPS_PAPER_PARAMS = {
    "mu": (5.0, 1.0),
    "phi": (1.0, 1.0),
    "lambda_bounds": ((1.0, 7.0), (2.0, 3.0)),
    "activation": (1.0, 2.0),
    "q0_class_fraction": (0.1, 0.1),
    "horizon": 5.0,
}

#: Denominator floor guarding the GPS share at an empty system.  When both
#: queues are exactly empty no job is in service, so the service rate is
#: zero; the floor makes that limit explicit instead of dividing by zero.
_DENOMINATOR_FLOOR = 1e-12

#: Larger floor used in the *Jacobians* only.  The share's derivatives
#: scale as 1/den^2 and make the costate equation arbitrarily stiff near
#: an empty system; flooring the denominator there regularises the
#: Pontryagin search direction without touching the drift itself (bound
#: values always come from exact forward integration of the drift).
_JACOBIAN_FLOOR = 1e-4


def poisson_rate_from_map(activation_rate: float, send_rate: float) -> float:
    """Poisson sending rate with the same mean inter-job time as a MAP stage.

    The MAP application waits ``Exp(a)`` then ``Exp(lambda)``; the matched
    Poisson application waits a single exponential of the same mean:
    ``1 / lambda' = 1 / a + 1 / lambda``.
    """
    if activation_rate <= 0 or send_rate <= 0:
        raise ValueError("rates must be positive")
    return 1.0 / (1.0 / activation_rate + 1.0 / send_rate)


def _check_common(mu, phi, fractions, capacity):
    mu = tuple(float(v) for v in mu)
    phi = tuple(float(v) for v in phi)
    fractions = tuple(float(v) for v in fractions)
    if len(mu) != 2 or len(phi) != 2 or len(fractions) != 2:
        raise ValueError("mu, phi and fractions must each have two entries")
    if min(mu) <= 0 or min(phi) <= 0:
        raise ValueError("service rates and GPS weights must be positive")
    if min(fractions) <= 0 or abs(sum(fractions) - 1.0) > 1e-12:
        raise ValueError("class fractions must be positive and sum to 1")
    if capacity <= 0:
        raise ValueError("normalised capacity must be positive")
    return mu, phi, fractions, float(capacity)


def _gps_share_rate(q1: float, q2: float, mu_i: float, phi_i: float, q_i: float,
                    phi: Tuple[float, float], capacity: float) -> float:
    """Density-scaled GPS service rate of one class at queue state (q1, q2).

    Queue values are clamped at zero before forming the share: the GPS
    share is only defined on the admissible orthant, and the clamped
    extension keeps the drift bounded (``<= c mu_i``) when fixed-step
    integrators overshoot the boundary by a step — the raw extension has
    a pole at ``phi . q = 0`` that destabilises forward sweeps.
    """
    q1 = max(q1, 0.0)
    q2 = max(q2, 0.0)
    q_i = max(q_i, 0.0)
    denominator = phi[0] * q1 + phi[1] * q2
    if denominator <= _DENOMINATOR_FLOOR:
        return 0.0
    return capacity * mu_i * phi_i * q_i / denominator


def _gps_share_rate_batch(q1, q2, mu_i, phi_i, q_i, phi, capacity):
    """Vectorized :func:`_gps_share_rate` over parallel queue-state vectors.

    Identical arithmetic per element (the flooring only replaces the
    denominator where the share is zero anyway), so the batched affine
    decomposition agrees with the scalar one bit-for-bit.
    """
    q1 = np.maximum(q1, 0.0)
    q2 = np.maximum(q2, 0.0)
    q_i = np.maximum(q_i, 0.0)
    denominator = phi[0] * q1 + phi[1] * q2
    safe = np.maximum(denominator, _DENOMINATOR_FLOOR)
    return np.where(
        denominator <= _DENOMINATOR_FLOOR,
        0.0,
        capacity * mu_i * phi_i * q_i / safe,
    )


def make_gps_poisson_model(
    mu: Sequence[float] = GPS_PAPER_PARAMS["mu"],
    phi: Sequence[float] = GPS_PAPER_PARAMS["phi"],
    lambda_bounds: Sequence[Tuple[float, float]] = None,
    fractions: Sequence[float] = (0.5, 0.5),
    capacity: float = 0.5,
) -> PopulationModel:
    """Build the Poisson-arrivals GPS model (state ``(q1, q2)``).

    ``lambda_bounds`` are the bounds of the *Poisson* sending rates
    ``lambda'_i``.  When omitted they are derived from the paper's MAP
    parameters through :func:`poisson_rate_from_map`, exactly as
    Section VI-C does.

    Drift (per class ``i``, with ``Q_i = q_i / n_i``):

    .. math::
        \\dot q_i = \\lambda'_i (n_i - q_i)
                    - c \\mu_i \\phi_i q_i / (\\phi_1 q_1 + \\phi_2 q_2)
    """
    mu, phi, fractions, capacity = _check_common(mu, phi, fractions, capacity)
    if lambda_bounds is None:
        lambda_bounds = tuple(
            (
                poisson_rate_from_map(a_i, lo),
                poisson_rate_from_map(a_i, hi),
            )
            for a_i, (lo, hi) in zip(
                GPS_PAPER_PARAMS["activation"], GPS_PAPER_PARAMS["lambda_bounds"]
            )
        )
    (lo1, hi1), (lo2, hi2) = lambda_bounds
    theta_set = Box([("lambda1", lo1, hi1), ("lambda2", lo2, hi2)])
    n1, n2 = fractions

    creation_1 = Transition(
        "creation_1",
        change=[1.0, 0.0],
        rate=lambda x, th: th[0] * max(n1 - x[0], 0.0),
    )
    creation_2 = Transition(
        "creation_2",
        change=[0.0, 1.0],
        rate=lambda x, th: th[1] * max(n2 - x[1], 0.0),
    )
    service_1 = Transition(
        "service_1",
        change=[-1.0, 0.0],
        rate=lambda x, th: _gps_share_rate(
            x[0], x[1], mu[0], phi[0], x[0], phi, capacity
        ),
    )
    service_2 = Transition(
        "service_2",
        change=[0.0, -1.0],
        rate=lambda x, th: _gps_share_rate(
            x[0], x[1], mu[1], phi[1], x[1], phi, capacity
        ),
    )

    def affine_drift(x):
        q1, q2 = float(x[0]), float(x[1])
        s1 = _gps_share_rate(q1, q2, mu[0], phi[0], q1, phi, capacity)
        s2 = _gps_share_rate(q1, q2, mu[1], phi[1], q2, phi, capacity)
        g0 = np.array([-s1, -s2])
        big_g = np.array(
            [
                [max(n1 - q1, 0.0), 0.0],
                [0.0, max(n2 - q2, 0.0)],
            ]
        )
        return g0, big_g

    def affine_drift_batch(x):
        q1, q2 = x[:, 0], x[:, 1]
        n = x.shape[0]
        s1 = _gps_share_rate_batch(q1, q2, mu[0], phi[0], q1, phi, capacity)
        s2 = _gps_share_rate_batch(q1, q2, mu[1], phi[1], q2, phi, capacity)
        g0 = np.stack([-s1, -s2], axis=1)
        big_g = np.zeros((n, 2, 2))
        big_g[:, 0, 0] = np.maximum(n1 - q1, 0.0)
        big_g[:, 1, 1] = np.maximum(n2 - q2, 0.0)
        return g0, big_g

    def jacobian(x, theta):
        q1, q2 = max(float(x[0]), 0.0), max(float(x[1]), 0.0)
        lam1, lam2 = float(theta[0]), float(theta[1])
        den = max(phi[0] * q1 + phi[1] * q2, _JACOBIAN_FLOOR)
        # d/dq_j of c mu_i phi_i q_i / den
        service_grad = np.array(
            [
                [
                    capacity * mu[0] * phi[0] * (den - q1 * phi[0]) / den**2,
                    -capacity * mu[0] * phi[0] * q1 * phi[1] / den**2,
                ],
                [
                    -capacity * mu[1] * phi[1] * q2 * phi[0] / den**2,
                    capacity * mu[1] * phi[1] * (den - q2 * phi[1]) / den**2,
                ],
            ]
        )
        creation_grad = np.diag([-lam1, -lam2])
        return creation_grad - service_grad

    def jacobian_batch(x, theta):
        q1 = np.maximum(x[:, 0], 0.0)
        q2 = np.maximum(x[:, 1], 0.0)
        lam1, lam2 = theta[:, 0], theta[:, 1]
        den = np.maximum(phi[0] * q1 + phi[1] * q2, _JACOBIAN_FLOOR)
        den2 = den ** 2
        jac = np.empty((x.shape[0], 2, 2))
        jac[:, 0, 0] = -lam1 - capacity * mu[0] * phi[0] * (den - q1 * phi[0]) / den2
        jac[:, 0, 1] = capacity * mu[0] * phi[0] * q1 * phi[1] / den2
        jac[:, 1, 0] = capacity * mu[1] * phi[1] * q2 * phi[0] / den2
        jac[:, 1, 1] = -lam2 - capacity * mu[1] * phi[1] * (den - q2 * phi[1]) / den2
        return jac

    return PopulationModel(
        name="gps_poisson",
        state_names=("q1", "q2"),
        transitions=[creation_1, creation_2, service_1, service_2],
        theta_set=theta_set,
        affine_drift=affine_drift,
        affine_drift_batch=affine_drift_batch,
        drift_jacobian=jacobian,
        drift_jacobian_batch=jacobian_batch,
        state_bounds=([0.0, 0.0], [n1, n2]),
        observables={
            "Q1": [1.0 / n1, 0.0],
            "Q2": [0.0, 1.0 / n2],
            "Qtotal": [1.0 / n1, 1.0 / n2],
        },
    )


def make_gps_map_model(
    mu: Sequence[float] = GPS_PAPER_PARAMS["mu"],
    phi: Sequence[float] = GPS_PAPER_PARAMS["phi"],
    lambda_bounds: Sequence[Tuple[float, float]] = GPS_PAPER_PARAMS["lambda_bounds"],
    activation: Sequence[float] = GPS_PAPER_PARAMS["activation"],
    fractions: Sequence[float] = (0.5, 0.5),
    capacity: float = 0.5,
) -> PopulationModel:
    """Build the MAP-arrivals GPS model (state ``(q1, e1, q2, e2)``).

    Per class ``i``: ``q_i`` queued fraction, ``e_i`` idle fraction and
    ``alpha_i = n_i - q_i - e_i`` active fraction (all of the total
    population).  Events: *send* (active -> queued, rate
    ``lambda_i alpha_i``), *service* (queued -> idle, GPS rate) and
    *activate* (idle -> active, rate ``a_i e_i``).  The imprecise
    parameters are the sending rates ``lambda_i``.
    """
    mu, phi, fractions, capacity = _check_common(mu, phi, fractions, capacity)
    activation = tuple(float(v) for v in activation)
    if len(activation) != 2 or min(activation) <= 0:
        raise ValueError("activation must hold two positive rates")
    (lo1, hi1), (lo2, hi2) = lambda_bounds
    theta_set = Box([("lambda1", lo1, hi1), ("lambda2", lo2, hi2)])
    n1, n2 = fractions

    def active(x, class_index: int) -> float:
        if class_index == 0:
            return max(n1 - x[0] - x[1], 0.0)
        return max(n2 - x[2] - x[3], 0.0)

    send_1 = Transition(
        "send_1",
        change=[1.0, 0.0, 0.0, 0.0],
        rate=lambda x, th: th[0] * active(x, 0),
    )
    send_2 = Transition(
        "send_2",
        change=[0.0, 0.0, 1.0, 0.0],
        rate=lambda x, th: th[1] * active(x, 1),
    )
    service_1 = Transition(
        "service_1",
        change=[-1.0, 1.0, 0.0, 0.0],
        rate=lambda x, th: _gps_share_rate(
            x[0], x[2], mu[0], phi[0], x[0], phi, capacity
        ),
    )
    service_2 = Transition(
        "service_2",
        change=[0.0, 0.0, -1.0, 1.0],
        rate=lambda x, th: _gps_share_rate(
            x[0], x[2], mu[1], phi[1], x[2], phi, capacity
        ),
    )
    activate_1 = Transition(
        "activate_1",
        change=[0.0, -1.0, 0.0, 0.0],
        rate=lambda x, th: activation[0] * x[1],
    )
    activate_2 = Transition(
        "activate_2",
        change=[0.0, 0.0, 0.0, -1.0],
        rate=lambda x, th: activation[1] * x[3],
    )

    def affine_drift(x):
        q1, e1, q2, e2 = (float(v) for v in x)
        s1 = _gps_share_rate(q1, q2, mu[0], phi[0], q1, phi, capacity)
        s2 = _gps_share_rate(q1, q2, mu[1], phi[1], q2, phi, capacity)
        g0 = np.array(
            [
                -s1,
                s1 - activation[0] * e1,
                -s2,
                s2 - activation[1] * e2,
            ]
        )
        alpha1 = max(n1 - q1 - e1, 0.0)
        alpha2 = max(n2 - q2 - e2, 0.0)
        big_g = np.array(
            [
                [alpha1, 0.0],
                [0.0, 0.0],
                [0.0, alpha2],
                [0.0, 0.0],
            ]
        )
        return g0, big_g

    def affine_drift_batch(x):
        q1, e1, q2, e2 = x[:, 0], x[:, 1], x[:, 2], x[:, 3]
        n = x.shape[0]
        s1 = _gps_share_rate_batch(q1, q2, mu[0], phi[0], q1, phi, capacity)
        s2 = _gps_share_rate_batch(q1, q2, mu[1], phi[1], q2, phi, capacity)
        g0 = np.stack(
            [
                -s1,
                s1 - activation[0] * e1,
                -s2,
                s2 - activation[1] * e2,
            ],
            axis=1,
        )
        big_g = np.zeros((n, 4, 2))
        big_g[:, 0, 0] = np.maximum(n1 - q1 - e1, 0.0)
        big_g[:, 2, 1] = np.maximum(n2 - q2 - e2, 0.0)
        return g0, big_g

    def jacobian(x, theta):
        q1, e1, q2, e2 = (float(v) for v in x)
        q1, q2 = max(q1, 0.0), max(q2, 0.0)
        lam1, lam2 = float(theta[0]), float(theta[1])
        den = max(phi[0] * q1 + phi[1] * q2, _JACOBIAN_FLOOR)
        jac = np.zeros((4, 4))
        ds1_dq1 = capacity * mu[0] * phi[0] * (den - q1 * phi[0]) / den**2
        ds1_dq2 = -capacity * mu[0] * phi[0] * q1 * phi[1] / den**2
        ds2_dq1 = -capacity * mu[1] * phi[1] * q2 * phi[0] / den**2
        ds2_dq2 = capacity * mu[1] * phi[1] * (den - q2 * phi[1]) / den**2
        # dq1' = lam1 (n1 - q1 - e1) - s1
        jac[0, 0] = -lam1 - ds1_dq1
        jac[0, 1] = -lam1
        jac[0, 2] = -ds1_dq2
        # de1' = s1 - a1 e1
        jac[1, 0] = ds1_dq1
        jac[1, 1] = -activation[0]
        jac[1, 2] = ds1_dq2
        # dq2' = lam2 (n2 - q2 - e2) - s2
        jac[2, 0] = -ds2_dq1
        jac[2, 2] = -lam2 - ds2_dq2
        jac[2, 3] = -lam2
        # de2' = s2 - a2 e2
        jac[3, 0] = ds2_dq1
        jac[3, 2] = ds2_dq2
        jac[3, 3] = -activation[1]
        return jac

    def jacobian_batch(x, theta):
        q1 = np.maximum(x[:, 0], 0.0)
        q2 = np.maximum(x[:, 2], 0.0)
        lam1, lam2 = theta[:, 0], theta[:, 1]
        den = np.maximum(phi[0] * q1 + phi[1] * q2, _JACOBIAN_FLOOR)
        den2 = den ** 2
        ds1_dq1 = capacity * mu[0] * phi[0] * (den - q1 * phi[0]) / den2
        ds1_dq2 = -capacity * mu[0] * phi[0] * q1 * phi[1] / den2
        ds2_dq1 = -capacity * mu[1] * phi[1] * q2 * phi[0] / den2
        ds2_dq2 = capacity * mu[1] * phi[1] * (den - q2 * phi[1]) / den2
        jac = np.zeros((x.shape[0], 4, 4))
        jac[:, 0, 0] = -lam1 - ds1_dq1
        jac[:, 0, 1] = -lam1
        jac[:, 0, 2] = -ds1_dq2
        jac[:, 1, 0] = ds1_dq1
        jac[:, 1, 1] = -activation[0]
        jac[:, 1, 2] = ds1_dq2
        jac[:, 2, 0] = -ds2_dq1
        jac[:, 2, 2] = -lam2 - ds2_dq2
        jac[:, 2, 3] = -lam2
        jac[:, 3, 0] = ds2_dq1
        jac[:, 3, 2] = ds2_dq2
        jac[:, 3, 3] = -activation[1]
        return jac

    return PopulationModel(
        name="gps_map",
        state_names=("q1", "e1", "q2", "e2"),
        transitions=[send_1, send_2, service_1, service_2, activate_1, activate_2],
        theta_set=theta_set,
        affine_drift=affine_drift,
        affine_drift_batch=affine_drift_batch,
        drift_jacobian=jacobian,
        drift_jacobian_batch=jacobian_batch,
        state_bounds=([0.0, 0.0, 0.0, 0.0], [n1, n1, n2, n2]),
        observables={
            "Q1": [1.0 / n1, 0.0, 0.0, 0.0],
            "Q2": [0.0, 0.0, 1.0 / n2, 0.0],
            "Qtotal": [1.0 / n1, 0.0, 1.0 / n2, 0.0],
            "E1": [0.0, 1.0 / n1, 0.0, 0.0],
            "E2": [0.0, 0.0, 0.0, 1.0 / n2],
        },
    )


def gps_initial_state_poisson(
    q0_class_fraction: Sequence[float] = GPS_PAPER_PARAMS["q0_class_fraction"],
    fractions: Sequence[float] = (0.5, 0.5),
) -> np.ndarray:
    """Initial ``(q1, q2)`` matching the paper's ``Q_i(0) = 0.1``."""
    big_q = np.asarray(q0_class_fraction, dtype=float)
    n = np.asarray(fractions, dtype=float)
    return big_q * n


def gps_initial_state_map(
    q0_class_fraction: Sequence[float] = GPS_PAPER_PARAMS["q0_class_fraction"],
    e0_class_fraction: Sequence[float] = (0.0, 0.0),
    fractions: Sequence[float] = (0.5, 0.5),
) -> np.ndarray:
    """Initial ``(q1, e1, q2, e2)`` for the MAP model.

    The paper fixes only ``Q_i(0) = 0.1``; the idle fractions default to
    zero (all non-queued applications start active), which is the
    least-delay initialisation.
    """
    big_q = np.asarray(q0_class_fraction, dtype=float)
    big_e = np.asarray(e0_class_fraction, dtype=float)
    n = np.asarray(fractions, dtype=float)
    return np.array([big_q[0] * n[0], big_e[0] * n[0], big_q[1] * n[1], big_e[1] * n[1]])
