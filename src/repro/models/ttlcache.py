"""A TTL cache fleet with imprecise request intensity.

A cloud-workload extension model generalising the CDN placement model
(:mod:`repro.models.cdn`) to time-to-live semantics: ``N`` cache slots
across an edge fleet hold copies that age out rather than being
displaced only by churn.  Normalised state ``x = (f, s)`` with ``f``
the *fresh* fraction (entries within their TTL, served as hits), ``s``
the *stale* fraction (expired entries awaiting revalidation or
eviction) and ``e = 1 - f - s`` the empty fraction:

- *fill*: a request for an uncached item misses and installs a fresh
  copy, rate ``theta (1 - f - s)`` — the request intensity ``theta``
  is the imprecise parameter (uncertain popularity, viral spikes,
  regional events);
- *expire*: fresh entries pass their TTL, rate ``omega f`` (``omega``
  is the inverse TTL);
- *refresh*: a request hitting a stale entry revalidates it back to
  fresh, rate ``rho theta s`` (``rho`` is the relative hit intensity
  of aged content — the popularity tail);
- *evict*: stale entries are reaped by the LRU sweeper, rate ``mu s``.

Both request-driven rates are linear in ``theta``, so the drift stays
affine in the imprecise parameter and the whole Section IV toolbox
(bang-bang Pontryagin bounds, corner hulls) applies.  The question the
paper never posed: certified fresh-hit-rate bounds when the popularity
process is adversarial inside its interval:

.. math::
    f_f = \\theta (1 - f - s) + \\rho \\theta s - \\omega f \\\\
    f_s = \\omega f - \\rho \\theta s - \\mu s
"""

from __future__ import annotations

import numpy as np

from repro.params import Interval
from repro.population import PopulationModel, Transition

__all__ = ["make_ttl_cache_model"]


def make_ttl_cache_model(
    omega: float = 1.0,
    mu: float = 1.5,
    rho: float = 0.5,
    request_min: float = 0.5,
    request_max: float = 3.0,
) -> PopulationModel:
    """Build the two-dimensional TTL cache-fleet model.

    Parameters
    ----------
    omega:
        TTL expiry rate of fresh entries (inverse time-to-live).
    mu:
        Eviction rate of stale entries (LRU sweep pressure).
    rho:
        Relative request intensity on stale content (``rho theta`` is
        the revalidation rate per stale entry); ``rho <= 1`` models a
        decaying popularity tail.
    request_min, request_max:
        Bounds of the imprecise request intensity ``theta``.
    """
    for label, value in (("omega", omega), ("mu", mu), ("rho", rho)):
        if value < 0:
            raise ValueError(f"rate {label} must be non-negative, got {value}")
    theta_set = Interval(request_min, request_max, name="request_rate")

    fill = Transition(
        "fill",
        change=[1.0, 0.0],
        rate=lambda x, th: th[0] * (1.0 - x[0] - x[1]),
    )
    expire = Transition(
        "expire",
        change=[-1.0, 1.0],
        rate=lambda x, th: omega * x[0],
    )
    refresh = Transition(
        "refresh",
        change=[1.0, -1.0],
        rate=lambda x, th: rho * th[0] * x[1],
    )
    evict = Transition(
        "evict",
        change=[0.0, -1.0],
        rate=lambda x, th: mu * x[1],
    )

    def affine_drift(x):
        f, s = float(x[0]), float(x[1])
        g0 = np.array([-omega * f, omega * f - mu * s])
        big_g = np.array([[(1.0 - f - s) + rho * s], [-rho * s]])
        return g0, big_g

    def affine_drift_batch(x):
        f, s = x[:, 0], x[:, 1]
        g0 = np.stack([-omega * f, omega * f - mu * s], axis=1)
        big_g = np.stack([(1.0 - f - s) + rho * s, -rho * s],
                         axis=1)[:, :, None]
        return g0, big_g

    def jacobian(x, theta):
        th = float(theta[0])
        return np.array(
            [
                [-th - omega, th * (rho - 1.0)],
                [omega, -rho * th - mu],
            ]
        )

    def jacobian_batch(x, theta):
        th = theta[:, 0]
        jac = np.empty((x.shape[0], 2, 2))
        jac[:, 0, 0] = -th - omega
        jac[:, 0, 1] = th * (rho - 1.0)
        jac[:, 1, 0] = omega
        jac[:, 1, 1] = -rho * th - mu
        return jac

    return PopulationModel(
        name="ttl_cache_fleet",
        state_names=("fresh", "stale"),
        transitions=[fill, expire, refresh, evict],
        theta_set=theta_set,
        affine_drift=affine_drift,
        affine_drift_batch=affine_drift_batch,
        drift_jacobian=jacobian,
        drift_jacobian_batch=jacobian_batch,
        state_bounds=([0.0, 0.0], [1.0, 1.0]),
        observables={
            "hit_rate": [1.0, 0.0],   # fresh entries serve hits
            "stale": [0.0, 1.0],
            "cached": [1.0, 1.0],     # resident (fresh or stale)
        },
    )
