"""A push–pull gossip / malware-spread model with an imprecise push rate.

An extension population model in the paper's spirit (the introduction
motivates the framework with "a patching (or vaccination) strategy to
counteract an epidemic"): the classical Maki–Thompson rumour dynamics
with re-susceptibility.  ``N`` nodes are *ignorant* (X), *spreaders* (Y)
or *stiflers* (Z = 1 - X - Y):

- *push*: a spreader contacts an ignorant node and converts it,
  aggregate density rate ``theta X Y`` — the contact (push) rate
  ``theta`` is the imprecise parameter, varying in
  ``[theta_min, theta_max]``;
- *stifle*: a spreader contacting an already-informed node (spreader or
  stifler) loses interest, rate ``k Y (Y + Z) = k Y (1 - X)``;
- *forget*: stiflers decay back to ignorance (content churn), rate
  ``delta Z``.

The forgetting loop keeps the dynamics recurrent, so the model has a
non-trivial Birkhoff centre like the paper's SIR example, while the
stifling term ``Y (1 - X)`` gives it a nonlinearity the SIR family does
not exercise.

Reduced state ``x = (X, Y)``:

.. math::
    f_X = \\delta (1 - X - Y) - \\theta X Y \\\\
    f_Y = \\theta X Y - k Y (1 - X)
"""

from __future__ import annotations

import numpy as np

from repro.params import Interval
from repro.population import PopulationModel, Transition

__all__ = ["make_gossip_model"]


def make_gossip_model(
    k: float = 1.0,
    delta: float = 0.5,
    theta_min: float = 2.0,
    theta_max: float = 4.0,
) -> PopulationModel:
    """Build the reduced two-dimensional gossip model.

    Parameters
    ----------
    k:
        Stifling rate (spreader meets informed node).
    delta:
        Forgetting rate (stifler becomes ignorant again).
    theta_min, theta_max:
        Bounds of the imprecise push (contact) rate.
    """
    for label, value in (("k", k), ("delta", delta)):
        if value < 0:
            raise ValueError(f"rate {label} must be non-negative, got {value}")
    theta_set = Interval(theta_min, theta_max, name="push_rate")

    push = Transition(
        "push",
        change=[-1.0, 1.0],
        rate=lambda x, th: th[0] * x[0] * x[1],
    )
    stifle = Transition(
        "stifle",
        change=[0.0, -1.0],
        rate=lambda x, th: k * x[1] * (1.0 - x[0]),
    )
    forget = Transition(
        "forget",
        change=[1.0, 0.0],
        rate=lambda x, th: delta * (1.0 - x[0] - x[1]),
    )

    def affine_drift(x):
        ig, sp = float(x[0]), float(x[1])
        g0 = np.array([delta * (1.0 - ig - sp), -k * sp * (1.0 - ig)])
        big_g = np.array([[-ig * sp], [ig * sp]])
        return g0, big_g

    def affine_drift_batch(x):
        ig, sp = x[:, 0], x[:, 1]
        g0 = np.stack(
            [delta * (1.0 - ig - sp), -k * sp * (1.0 - ig)], axis=1
        )
        igsp = ig * sp
        big_g = np.stack([-igsp, igsp], axis=1)[:, :, None]
        return g0, big_g

    def jacobian(x, theta):
        ig, sp = float(x[0]), float(x[1])
        th = float(theta[0])
        return np.array(
            [
                [-delta - th * sp, -delta - th * ig],
                [th * sp + k * sp, th * ig - k * (1.0 - ig)],
            ]
        )

    def jacobian_batch(x, theta):
        ig, sp = x[:, 0], x[:, 1]
        th = theta[:, 0]
        jac = np.empty((x.shape[0], 2, 2))
        jac[:, 0, 0] = -delta - th * sp
        jac[:, 0, 1] = -delta - th * ig
        jac[:, 1, 0] = th * sp + k * sp
        jac[:, 1, 1] = th * ig - k * (1.0 - ig)
        return jac

    return PopulationModel(
        name="gossip_push_pull",
        state_names=("X", "Y"),
        transitions=[push, stifle, forget],
        theta_set=theta_set,
        affine_drift=affine_drift,
        affine_drift_batch=affine_drift_batch,
        drift_jacobian=jacobian,
        drift_jacobian_batch=jacobian_batch,
        state_bounds=([0.0, 0.0], [1.0, 1.0]),
        observables={
            "ignorant": [1.0, 0.0],
            "spreaders": [0.0, 1.0],
        },
    )
