"""A CSMA wireless-contention cell with imprecise load and aggressiveness.

A cloud/edge-workload extension model: ``N`` stations share one radio
channel under carrier-sense multiple access.  Normalised state
``x = (b, t)`` with ``b`` the backlogged (contending) fraction, ``t``
the transmitting fraction and ``1 - b - t`` the idle fraction:

- *wake*: an idle station queues a frame, rate ``lambda (1 - b - t)``
  — the offered load ``lambda`` is imprecise (bursty IoT uplinks,
  mobility);
- *grab*: a backlogged station senses the channel free and starts
  transmitting, rate ``beta b (1 - t)`` — the airtime factor
  ``1 - t`` is the mean-field carrier-sense blocking, and the attempt
  rate ``beta`` is imprecise too (fading, hidden terminals, adaptive
  back-off all modulate the effective aggressiveness);
- *finish*: a transmission completes, rate ``mu t``.

The drift is affine in ``theta = (lambda, beta)`` over a box — the same
two-parameter structure as the paper's GPS example — so the Section IV
machinery applies directly.  The questions the paper never posed:
certified worst/best-case channel utilisation and backlog when both the
load and the contention behaviour are adversarial:

.. math::
    f_b = \\lambda (1 - b - t) - \\beta b (1 - t) \\\\
    f_t = \\beta b (1 - t) - \\mu t
"""

from __future__ import annotations

import numpy as np

from repro.params import Box
from repro.population import PopulationModel, Transition

__all__ = ["make_csma_model"]


def make_csma_model(
    mu: float = 2.0,
    arrival_bounds=(0.3, 1.2),
    attempt_bounds=(1.0, 4.0),
) -> PopulationModel:
    """Build the two-dimensional CSMA contention model.

    Parameters
    ----------
    mu:
        Transmission completion rate (inverse mean frame airtime).
    arrival_bounds:
        Interval of the imprecise per-station offered load ``lambda``.
    attempt_bounds:
        Interval of the imprecise channel-attempt rate ``beta``.
    """
    if mu <= 0:
        raise ValueError(f"completion rate mu must be positive, got {mu}")
    (l_lo, l_hi) = (float(arrival_bounds[0]), float(arrival_bounds[1]))
    (a_lo, a_hi) = (float(attempt_bounds[0]), float(attempt_bounds[1]))
    theta_set = Box([("lambda", l_lo, l_hi), ("beta", a_lo, a_hi)])

    wake = Transition(
        "wake",
        change=[1.0, 0.0],
        rate=lambda x, th: th[0] * (1.0 - x[0] - x[1]),
    )
    grab = Transition(
        "grab",
        change=[-1.0, 1.0],
        rate=lambda x, th: th[1] * x[0] * (1.0 - x[1]),
    )
    finish = Transition(
        "finish",
        change=[0.0, -1.0],
        rate=lambda x, th: mu * x[1],
    )

    def affine_drift(x):
        b, t = float(x[0]), float(x[1])
        g0 = np.array([0.0, -mu * t])
        big_g = np.array(
            [
                [1.0 - b - t, -b * (1.0 - t)],
                [0.0, b * (1.0 - t)],
            ]
        )
        return g0, big_g

    def affine_drift_batch(x):
        b, t = x[:, 0], x[:, 1]
        n = x.shape[0]
        g0 = np.stack([np.zeros(n), -mu * t], axis=1)
        big_g = np.zeros((n, 2, 2))
        big_g[:, 0, 0] = 1.0 - b - t
        big_g[:, 0, 1] = -b * (1.0 - t)
        big_g[:, 1, 1] = b * (1.0 - t)
        return g0, big_g

    def jacobian(x, theta):
        b, t = float(x[0]), float(x[1])
        lam, beta = float(theta[0]), float(theta[1])
        return np.array(
            [
                [-lam - beta * (1.0 - t), -lam + beta * b],
                [beta * (1.0 - t), -beta * b - mu],
            ]
        )

    def jacobian_batch(x, theta):
        b, t = x[:, 0], x[:, 1]
        lam, beta = theta[:, 0], theta[:, 1]
        jac = np.empty((x.shape[0], 2, 2))
        jac[:, 0, 0] = -lam - beta * (1.0 - t)
        jac[:, 0, 1] = -lam + beta * b
        jac[:, 1, 0] = beta * (1.0 - t)
        jac[:, 1, 1] = -beta * b - mu
        return jac

    return PopulationModel(
        name="csma_contention",
        state_names=("backlog", "air"),
        transitions=[wake, grab, finish],
        theta_set=theta_set,
        affine_drift=affine_drift,
        affine_drift_batch=affine_drift_batch,
        drift_jacobian=jacobian,
        drift_jacobian_batch=jacobian_batch,
        state_bounds=([0.0, 0.0], [1.0, 1.0]),
        observables={
            "backlogged": [1.0, 0.0],
            "throughput": [0.0, 1.0],  # airtime fraction ~ goodput
            "active": [1.0, 1.0],
        },
    )
