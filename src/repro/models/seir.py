"""A SEIR epidemic extension model.

Not part of the paper's evaluation; included to exercise the library on a
three-dimensional system (the paper's numerics are all at most 2-D on the
imprecise side) and to support the epidemic-response example.  The model
adds an *exposed* compartment to the SIR dynamics of Section V:
a contact infects a susceptible node into the exposed (latent) state,
which becomes infectious at rate ``sigma``.

Reduced state ``(S, E, I)`` with ``R = 1 - S - E - I``:

.. math::
    \\dot S = c (1 - S - E - I) - a S - \\theta S I \\\\
    \\dot E = a S + \\theta S I - \\sigma E \\\\
    \\dot I = \\sigma E - b I

where ``theta in [theta_min, theta_max]`` is the imprecise contact rate.
"""

from __future__ import annotations

import numpy as np

from repro.params import Interval
from repro.population import PopulationModel, Transition

__all__ = ["make_seir_model"]


def make_seir_model(
    a: float = 0.1,
    b: float = 5.0,
    c: float = 1.0,
    sigma: float = 2.0,
    theta_min: float = 1.0,
    theta_max: float = 10.0,
) -> PopulationModel:
    """Build the reduced three-dimensional SEIR model.

    Parameters mirror :func:`repro.models.sir.make_sir_model` with the
    extra incubation rate ``sigma``.
    """
    for label, value in (("a", a), ("b", b), ("c", c), ("sigma", sigma)):
        if value < 0:
            raise ValueError(f"rate {label} must be non-negative, got {value}")
    theta_set = Interval(theta_min, theta_max, name="contact_rate")

    exposure = Transition(
        "exposure",
        change=[-1.0, 1.0, 0.0],
        rate=lambda x, th: a * x[0] + th[0] * x[0] * x[2],
    )
    incubation = Transition(
        "incubation",
        change=[0.0, -1.0, 1.0],
        rate=lambda x, th: sigma * x[1],
    )
    recovery = Transition(
        "recovery",
        change=[0.0, 0.0, -1.0],
        rate=lambda x, th: b * x[2],
    )
    immunity_loss = Transition(
        "immunity_loss",
        change=[1.0, 0.0, 0.0],
        rate=lambda x, th: c * (1.0 - x[0] - x[1] - x[2]),
    )

    def affine_drift(x):
        s, e, i = float(x[0]), float(x[1]), float(x[2])
        g0 = np.array(
            [
                c * (1.0 - s - e - i) - a * s,
                a * s - sigma * e,
                sigma * e - b * i,
            ]
        )
        big_g = np.array([[-s * i], [s * i], [0.0]])
        return g0, big_g

    def affine_drift_batch(x):
        s, e, i = x[:, 0], x[:, 1], x[:, 2]
        g0 = np.stack(
            [
                c * (1.0 - s - e - i) - a * s,
                a * s - sigma * e,
                sigma * e - b * i,
            ],
            axis=1,
        )
        si = s * i
        big_g = np.stack([-si, si, np.zeros_like(si)], axis=1)[:, :, None]
        return g0, big_g

    def jacobian(x, theta):
        s, i = float(x[0]), float(x[2])
        th = float(theta[0])
        return np.array(
            [
                [-c - a - th * i, -c, -c - th * s],
                [a + th * i, -sigma, th * s],
                [0.0, sigma, -b],
            ]
        )

    def jacobian_batch(x, theta):
        s, i = x[:, 0], x[:, 2]
        th = theta[:, 0]
        jac = np.zeros((x.shape[0], 3, 3))
        jac[:, 0, 0] = -c - a - th * i
        jac[:, 0, 1] = -c
        jac[:, 0, 2] = -c - th * s
        jac[:, 1, 0] = a + th * i
        jac[:, 1, 1] = -sigma
        jac[:, 1, 2] = th * s
        jac[:, 2, 1] = sigma
        jac[:, 2, 2] = -b
        return jac

    return PopulationModel(
        name="seir_reduced",
        state_names=("S", "E", "I"),
        transitions=[exposure, incubation, recovery, immunity_loss],
        theta_set=theta_set,
        affine_drift=affine_drift,
        affine_drift_batch=affine_drift_batch,
        drift_jacobian=jacobian,
        drift_jacobian_batch=jacobian_batch,
        state_bounds=([0.0, 0.0, 0.0], [1.0, 1.0, 1.0]),
        observables={
            "S": [1.0, 0.0, 0.0],
            "E": [0.0, 1.0, 0.0],
            "I": [0.0, 0.0, 1.0],
        },
    )
