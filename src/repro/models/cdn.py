"""A CDN / edge-cache content-placement model with imprecise demand.

An extension model for content-delivery planning: ``N`` edge-cache
slots hold copies of a rotating catalogue.  Each slot is *hot* (holds a
currently-popular item), *warm* (holds an item whose popularity has
decayed) or *empty*.  Normalised state ``x = (h, w)`` with the empty
fraction ``e = 1 - h - w``:

- *fill*: a request for a popular item misses the cache (probability
  scaling with ``1 - h``) and is installed into an empty slot, rate
  ``theta e (1 - h)`` — the request intensity ``theta`` is the
  imprecise parameter (viral spikes, regional events);
- *demote*: hot items fall out of the trending set, rate ``gamma h``;
- *evict*: warm items are evicted to make room, rate ``mu w``.

The miss-driven fill rate ``e (1 - h)`` is quadratic in the state and
affine in ``theta``, so the Section IV machinery (bang-bang Pontryagin
bounds, corner hulls) applies directly:

.. math::
    f_h = \\theta (1 - h - w)(1 - h) - \\gamma h \\\\
    f_w = \\gamma h - \\mu w
"""

from __future__ import annotations

import numpy as np

from repro.params import Interval
from repro.population import PopulationModel, Transition

__all__ = ["make_cdn_cache_model"]


def make_cdn_cache_model(
    gamma: float = 1.0,
    mu: float = 2.0,
    theta_min: float = 1.0,
    theta_max: float = 5.0,
) -> PopulationModel:
    """Build the reduced two-dimensional cache-placement model.

    Parameters
    ----------
    gamma:
        Popularity-decay (demotion) rate of hot items.
    mu:
        Eviction rate of warm items.
    theta_min, theta_max:
        Bounds of the imprecise request intensity.
    """
    for label, value in (("gamma", gamma), ("mu", mu)):
        if value < 0:
            raise ValueError(f"rate {label} must be non-negative, got {value}")
    theta_set = Interval(theta_min, theta_max, name="request_rate")

    fill = Transition(
        "fill",
        change=[1.0, 0.0],
        rate=lambda x, th: th[0] * (1.0 - x[0] - x[1]) * (1.0 - x[0]),
    )
    demote = Transition(
        "demote",
        change=[-1.0, 1.0],
        rate=lambda x, th: gamma * x[0],
    )
    evict = Transition(
        "evict",
        change=[0.0, -1.0],
        rate=lambda x, th: mu * x[1],
    )

    def affine_drift(x):
        h, w = float(x[0]), float(x[1])
        g0 = np.array([-gamma * h, gamma * h - mu * w])
        big_g = np.array([[(1.0 - h - w) * (1.0 - h)], [0.0]])
        return g0, big_g

    def affine_drift_batch(x):
        h, w = x[:, 0], x[:, 1]
        g0 = np.stack([-gamma * h, gamma * h - mu * w], axis=1)
        fill_coeff = (1.0 - h - w) * (1.0 - h)
        big_g = np.stack([fill_coeff, np.zeros_like(fill_coeff)],
                         axis=1)[:, :, None]
        return g0, big_g

    def jacobian(x, theta):
        h, w = float(x[0]), float(x[1])
        th = float(theta[0])
        return np.array(
            [
                [-th * ((1.0 - h) + (1.0 - h - w)) - gamma, -th * (1.0 - h)],
                [gamma, -mu],
            ]
        )

    def jacobian_batch(x, theta):
        h, w = x[:, 0], x[:, 1]
        th = theta[:, 0]
        jac = np.empty((x.shape[0], 2, 2))
        jac[:, 0, 0] = -th * ((1.0 - h) + (1.0 - h - w)) - gamma
        jac[:, 0, 1] = -th * (1.0 - h)
        jac[:, 1, 0] = gamma
        jac[:, 1, 1] = -mu
        return jac

    return PopulationModel(
        name="cdn_cache",
        state_names=("hot", "warm"),
        transitions=[fill, demote, evict],
        theta_set=theta_set,
        affine_drift=affine_drift,
        affine_drift_batch=affine_drift_batch,
        drift_jacobian=jacobian,
        drift_jacobian_batch=jacobian_batch,
        state_bounds=([0.0, 0.0], [1.0, 1.0]),
        observables={
            "hit_rate": [1.0, 0.0],
            "warm": [0.0, 1.0],
            "resident": [1.0, 1.0],
        },
    )
