"""An autoscaling microservice pool with imprecise arrival rates.

A cloud-workload extension model: ``N`` request sources feed a pool of
elastic service replicas governed by a reactive autoscaler.  Normalised
state ``x = (q, s)`` with ``q`` the backlog density (fraction of
sources with a request in flight) and ``s`` the active-replica density:

- *arrival*: an idle source submits a request, rate ``lambda (1 - q)``
  — the per-source demand ``lambda`` is the imprecise parameter (flash
  crowds, diurnal waves, regional failover);
- *service*: active replicas drain the backlog by mass-action
  coupling, rate ``mu s q``;
- *scale-up*: the autoscaler launches replicas in proportion to the
  observed backlog pressure and the remaining headroom, rate
  ``alpha q (s_max - s)``;
- *scale-down*: replicas are reaped in proportion to the observed
  idleness, rate ``beta s (1 - q)``.

The up and down controllers react to *different* signals (backlog vs
idleness), which is the hysteresis of real autoscalers: after a demand
spike subsides the pool stays large until the backlog has drained, and
after a lull it lags the recovering load.  The imprecise-bounds
machinery answers the question the paper never posed: how far can an
adversarial in-interval arrival process over- or under-provision the
pool, and how large can the worst-case backlog get?

The drift is affine in ``theta = (lambda,)``:

.. math::
    f_q = \\lambda (1 - q) - \\mu s q \\\\
    f_s = \\alpha q (s_{max} - s) - \\beta s (1 - q)
"""

from __future__ import annotations

import numpy as np

from repro.params import Interval
from repro.population import PopulationModel, Transition

__all__ = ["make_autoscaler_model"]


def make_autoscaler_model(
    mu: float = 3.0,
    alpha: float = 2.0,
    beta: float = 1.0,
    s_max: float = 1.0,
    arrival_min: float = 0.5,
    arrival_max: float = 2.0,
) -> PopulationModel:
    """Build the two-dimensional autoscaling-pool model.

    Parameters
    ----------
    mu:
        Per-replica service rate (mass-action coupling with the backlog).
    alpha:
        Scale-up gain: launch rate per unit backlog per unit headroom.
    beta:
        Scale-down gain: reap rate per unit idleness per active replica.
    s_max:
        Normalised replica-pool ceiling (quota).
    arrival_min, arrival_max:
        Bounds of the imprecise per-source arrival rate ``lambda``.
    """
    for label, value in (("mu", mu), ("alpha", alpha), ("beta", beta)):
        if value < 0:
            raise ValueError(f"rate {label} must be non-negative, got {value}")
    if s_max <= 0:
        raise ValueError(f"pool ceiling s_max must be positive, got {s_max}")
    theta_set = Interval(arrival_min, arrival_max, name="arrival_rate")
    cap = float(s_max)

    arrival = Transition(
        "arrival",
        change=[1.0, 0.0],
        rate=lambda x, th: th[0] * (1.0 - x[0]),
    )
    service = Transition(
        "service",
        change=[-1.0, 0.0],
        rate=lambda x, th: mu * x[1] * x[0],
    )
    scale_up = Transition(
        "scale_up",
        change=[0.0, 1.0],
        rate=lambda x, th: alpha * x[0] * (cap - x[1]),
    )
    scale_down = Transition(
        "scale_down",
        change=[0.0, -1.0],
        rate=lambda x, th: beta * x[1] * (1.0 - x[0]),
    )

    def affine_drift(x):
        q, s = float(x[0]), float(x[1])
        g0 = np.array(
            [-mu * s * q, alpha * q * (cap - s) - beta * s * (1.0 - q)]
        )
        big_g = np.array([[1.0 - q], [0.0]])
        return g0, big_g

    def affine_drift_batch(x):
        q, s = x[:, 0], x[:, 1]
        g0 = np.stack(
            [-mu * s * q, alpha * q * (cap - s) - beta * s * (1.0 - q)],
            axis=1,
        )
        big_g = np.stack([1.0 - q, np.zeros_like(q)], axis=1)[:, :, None]
        return g0, big_g

    def jacobian(x, theta):
        q, s = float(x[0]), float(x[1])
        th = float(theta[0])
        return np.array(
            [
                [-th - mu * s, -mu * q],
                [alpha * (cap - s) + beta * s, -alpha * q - beta * (1.0 - q)],
            ]
        )

    def jacobian_batch(x, theta):
        q, s = x[:, 0], x[:, 1]
        th = theta[:, 0]
        jac = np.empty((x.shape[0], 2, 2))
        jac[:, 0, 0] = -th - mu * s
        jac[:, 0, 1] = -mu * q
        jac[:, 1, 0] = alpha * (cap - s) + beta * s
        jac[:, 1, 1] = -alpha * q - beta * (1.0 - q)
        return jac

    return PopulationModel(
        name="autoscaler_pool",
        state_names=("q", "s"),
        transitions=[arrival, service, scale_up, scale_down],
        theta_set=theta_set,
        affine_drift=affine_drift,
        affine_drift_batch=affine_drift_batch,
        drift_jacobian=jacobian,
        drift_jacobian_batch=jacobian_batch,
        state_bounds=([0.0, 0.0], [1.0, cap]),
        observables={
            "backlog": [1.0, 0.0],
            "pool": [0.0, 1.0],
            "pressure": [1.0, -1.0],  # backlog in excess of the pool
        },
    )
