"""The case-study models of the paper, plus extensions.

- :mod:`repro.models.sir` — the SIR epidemic of Section V (3-state full
  form and the 2-state reduction of Eq. 11), with the paper's parameters.
- :mod:`repro.models.gps` — the closed generalised-processor-sharing
  network of Section VI, in both the Poisson and the MAP (Markov arrival
  process) variants.
- :mod:`repro.models.bike` — the single-station bike-sharing model used
  as the running example of Sections II–III.
- :mod:`repro.models.seir` — a four-compartment epidemic extension
  demonstrating that the machinery is not tied to the paper's examples.
- :mod:`repro.models.loadbalancing` — the power-of-``d``-choices
  supermarket model, the scalability probe.
- :mod:`repro.models.gossip` / :mod:`repro.models.queueing` /
  :mod:`repro.models.cdn` — extension workloads for the scenario
  catalog (:mod:`repro.scenarios`): push–pull gossip spread, a
  repairable M/M/C service pool, and CDN content placement, each with
  paper-style imprecise parameters.
- :mod:`repro.models.autoscaler` / :mod:`repro.models.ttlcache` /
  :mod:`repro.models.csma` — cloud-workload extensions exercising the
  catalog-wide conformance harness (:mod:`repro.testing`): an
  autoscaling microservice pool with scale-up/down hysteresis, a TTL
  cache fleet generalising the CDN model, and a CSMA wireless
  contention cell.
"""

from repro.models.autoscaler import make_autoscaler_model
from repro.models.bike import make_bike_station_model
from repro.models.cdn import make_cdn_cache_model
from repro.models.csma import make_csma_model
from repro.models.gossip import make_gossip_model
from repro.models.gps import (
    GPS_PAPER_PARAMS,
    gps_initial_state_map,
    gps_initial_state_poisson,
    make_gps_map_model,
    make_gps_poisson_model,
    poisson_rate_from_map,
)
from repro.models.loadbalancing import make_power_of_d_model
from repro.models.queueing import make_repairable_queue_model
from repro.models.seir import make_seir_model
from repro.models.sir import (
    SIR_PAPER_PARAMS,
    make_sir_full_model,
    make_sir_model,
)
from repro.models.ttlcache import make_ttl_cache_model

__all__ = [
    "make_sir_model",
    "make_sir_full_model",
    "SIR_PAPER_PARAMS",
    "make_gps_poisson_model",
    "make_gps_map_model",
    "gps_initial_state_poisson",
    "gps_initial_state_map",
    "poisson_rate_from_map",
    "GPS_PAPER_PARAMS",
    "make_bike_station_model",
    "make_seir_model",
    "make_power_of_d_model",
    "make_gossip_model",
    "make_repairable_queue_model",
    "make_cdn_cache_model",
    "make_autoscaler_model",
    "make_ttl_cache_model",
    "make_csma_model",
]
