"""repro — Mean-field approximation of uncertain stochastic models.

A production-oriented reproduction of Bortolussi & Gast, *Mean Field
Approximation of Uncertain Stochastic Models*, DSN 2016.

The library models large populations of interacting agents whose
transition rates depend on parameters that are *uncertain* (constant but
unknown in a set ``Theta``) or *imprecise* (varying arbitrarily in time
within ``Theta``), and analyses them through their mean-field limits —
differential inclusions — with sound transient and steady-state bounds.

Typical usage::

    import numpy as np
    from repro import (
        make_sir_model, pontryagin_transient_bounds, uncertain_envelope,
    )

    model = make_sir_model()                     # theta in [1, 10]
    x0 = [0.7, 0.3]
    horizons = np.linspace(0.25, 4.0, 16)
    imprecise = pontryagin_transient_bounds(model, x0, horizons,
                                            observables=["I"])
    uncertain = uncertain_envelope(model, x0, np.insert(horizons, 0, 0.0))

Package map (see DESIGN.md for the full inventory):

- ``repro.params`` / ``repro.population`` / ``repro.models`` — model
  definitions;
- ``repro.meanfield`` / ``repro.inclusion`` — the limit objects;
- ``repro.bounds`` — transient bounds (sweep / hull / Pontryagin);
- ``repro.steadystate`` — Birkhoff centres and stationary rectangles;
- ``repro.simulation`` / ``repro.ctmc`` — finite-``N`` stochastic and
  exact analysis;
- ``repro.engine`` — vectorized multi-trajectory SSA ensembles and
  multiprocessing parameter sweeps;
- ``repro.analysis`` / ``repro.reporting`` — robust design, convergence
  studies and harness output;
- ``repro.scenarios`` — the declarative scenario catalog, unified
  analysis dispatch and content-hash result cache behind
  ``python -m repro``.
"""

from repro.analysis import (
    birkhoff_inclusion_fraction,
    convergence_study,
    ensemble_inclusion_fraction,
    interval_width_sensitivity,
    robust_minimize_scalar,
)
from repro.bounds import (
    TemplatePolytope,
    box_directions,
    differential_hull_bounds,
    extremal_trajectory,
    octagon_directions,
    pontryagin_transient_bounds,
    reachable_polytope_2d,
    switching_times,
    switching_times_from_costate,
    template_reachable_bounds,
    uncertain_envelope,
)
from repro.ctmc import ImpreciseCTMC, IntervalDTMC, imprecise_reward_bounds
from repro.engine import simulate_ensemble, sweep_constant_ensembles
from repro.inclusion import DriftExtremizer, ParametricInclusion
from repro.meanfield import (
    mean_field_accuracy,
    mean_field_inclusion,
    mean_field_ode,
    verify_population_scaling,
)
from repro.models import (
    GPS_PAPER_PARAMS,
    SIR_PAPER_PARAMS,
    gps_initial_state_map,
    gps_initial_state_poisson,
    make_bike_station_model,
    make_cdn_cache_model,
    make_gossip_model,
    make_gps_map_model,
    make_gps_poisson_model,
    make_power_of_d_model,
    make_repairable_queue_model,
    make_seir_model,
    make_sir_full_model,
    make_sir_model,
)
from repro.params import Box, DiscreteSet, Interval, ParameterSet, Singleton
from repro.population import FinitePopulation, PopulationModel, Transition
from repro.reporting import ExperimentResult, Series, render_table
from repro.scenarios import (
    Question,
    ScenarioSpec,
    get_scenario,
    list_scenarios,
    register_scenario,
    run_scenario,
)
from repro.simulation import (
    ConstantPolicy,
    FeedbackPolicy,
    HysteresisPolicy,
    PiecewiseConstantPolicy,
    RandomJumpPolicy,
    batch_simulate,
    simulate,
)
from repro.steadystate import (
    asymptotic_reachable_hull,
    birkhoff_centre_2d,
    hull_steady_rectangle,
    uncertain_fixed_points,
)

#: Bump on releases that change any computation backend: the scenario
#: disk cache stamps entries with this version and treats entries from
#: other versions as stale (repro.scenarios.cache).
__version__ = "1.2.0"

__all__ = [
    "__version__",
    # parameter domains
    "ParameterSet", "Interval", "Box", "DiscreteSet", "Singleton",
    # modelling
    "Transition", "PopulationModel", "FinitePopulation",
    # paper models
    "make_sir_model", "make_sir_full_model", "SIR_PAPER_PARAMS",
    "make_gps_poisson_model", "make_gps_map_model", "GPS_PAPER_PARAMS",
    "gps_initial_state_poisson", "gps_initial_state_map",
    "make_bike_station_model", "make_seir_model",
    "make_power_of_d_model", "make_gossip_model",
    "make_repairable_queue_model", "make_cdn_cache_model",
    # mean-field limits
    "mean_field_inclusion", "mean_field_ode", "verify_population_scaling",
    "mean_field_accuracy",
    "ParametricInclusion", "DriftExtremizer",
    # bounds
    "uncertain_envelope", "differential_hull_bounds",
    "extremal_trajectory", "pontryagin_transient_bounds",
    "switching_times", "switching_times_from_costate",
    "reachable_polytope_2d", "template_reachable_bounds",
    "TemplatePolytope", "box_directions", "octagon_directions",
    # steady state
    "birkhoff_centre_2d", "uncertain_fixed_points", "hull_steady_rectangle",
    "asymptotic_reachable_hull",
    # stochastic / exact
    "simulate", "batch_simulate", "simulate_ensemble",
    "sweep_constant_ensembles", "ConstantPolicy", "PiecewiseConstantPolicy",
    "FeedbackPolicy", "HysteresisPolicy", "RandomJumpPolicy",
    "ImpreciseCTMC", "IntervalDTMC", "imprecise_reward_bounds",
    # studies & reporting
    "robust_minimize_scalar", "birkhoff_inclusion_fraction",
    "ensemble_inclusion_fraction",
    "convergence_study", "interval_width_sensitivity",
    "ExperimentResult", "Series", "render_table",
    # scenario catalog
    "Question", "ScenarioSpec", "register_scenario", "get_scenario",
    "list_scenarios", "run_scenario",
]
