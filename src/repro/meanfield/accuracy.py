"""Empirical accuracy of the mean-field approximation.

Theorem 1 gives convergence in probability; the classical quantitative
companion (Kurtz; Benaïm & Le Boudec [5]) is that for a *precise* model
the sup-norm deviation between the scaled chain and its mean-field ODE
decays like ``O(1 / sqrt(N))``.  :func:`mean_field_accuracy` measures
that rate empirically: for a ladder of population sizes it runs
replicated SSAs against the ODE (or, for imprecise models, against the
matching witness solution under the same policy) and fits the log–log
slope of the mean sup-deviation.

Two uses:

- a *diagnostic* that a model is correctly scaled (a slope far from
  ``-1/2`` almost always means mis-scaled rates — the same bug class
  :func:`~repro.meanfield.verify_population_scaling` targets from the
  definition side);
- a quantitative justification for the fluctuation tolerance
  ``eps_N ~ c / sqrt(N)`` used by the Figure 6 inclusion measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.ode import solve_ode
from repro.simulation import ConstantPolicy, batch_simulate

__all__ = ["AccuracyStudy", "mean_field_accuracy"]


@dataclass
class AccuracyStudy:
    """Sup-deviation statistics of the chain against its mean-field limit."""

    sizes: np.ndarray
    mean_deviation: List[float] = field(default_factory=list)
    max_deviation: List[float] = field(default_factory=list)
    n_replications: int = 0

    def fitted_rate(self) -> float:
        """Slope of ``log(mean deviation)`` against ``log(N)``.

        The Kurtz regime shows a slope close to ``-1/2``.
        """
        logs_n = np.log(self.sizes.astype(float))
        logs_d = np.log(np.maximum(np.asarray(self.mean_deviation), 1e-300))
        slope, _ = np.polyfit(logs_n, logs_d, 1)
        return float(slope)

    def deviation_constant(self) -> float:
        """The ``c`` in ``deviation ~ c / sqrt(N)`` (least squares)."""
        scaled = np.asarray(self.mean_deviation) * np.sqrt(
            self.sizes.astype(float)
        )
        return float(np.mean(scaled))


def mean_field_accuracy(
    model,
    theta,
    x0,
    t_final: float,
    sizes: Sequence[int] = (100, 400, 1600),
    n_replications: int = 8,
    seed: int = 0,
    n_samples: int = 60,
    reference: Optional[Callable] = None,
    engine: str = "vectorized",
) -> AccuracyStudy:
    """Measure the SSA-to-mean-field deviation across population sizes.

    Parameters
    ----------
    model, theta:
        The population model and the (constant) parameter to freeze —
        this measures the *uncertain-scenario* accuracy, where the limit
        is the single ODE of Corollary 1.
    x0, t_final:
        Initial state and horizon of the comparison window.
    sizes:
        Population-size ladder (increasing).
    n_replications:
        Independent SSA runs per size; the reported deviation is the
        mean over replications of the sup-norm deviation along the path.
        The replications of each size run as one vectorized ensemble.
    reference:
        Optional precomputed reference trajectory callable ``t -> x``;
        defaults to integrating the mean-field ODE.
    engine:
        Forwarded to :func:`~repro.simulation.batch_simulate`.
    """
    sizes = np.asarray(sorted(int(n) for n in sizes))
    if sizes.shape[0] < 2:
        raise ValueError("need at least two population sizes")
    if n_replications < 1:
        raise ValueError("n_replications must be positive")
    theta = np.asarray(theta, dtype=float)
    t_eval = np.linspace(0.0, float(t_final), n_samples)
    if reference is None:
        ode = solve_ode(model.vector_field(theta), x0, (0.0, float(t_final)),
                        t_eval=t_eval)
        reference_states = ode.states
    else:
        reference_states = np.stack([np.asarray(reference(t)) for t in t_eval])

    study = AccuracyStudy(sizes=sizes, n_replications=n_replications)
    for k, n in enumerate(sizes):
        population = model.instantiate(int(n), x0)
        batch = batch_simulate(
            population, lambda: ConstantPolicy(theta), float(t_final),
            n_runs=n_replications, seed=seed + 10_000 * k,
            n_samples=n_samples, engine=engine,
        )
        # Per-run sup-norm deviation along the path, shape (n_replications,).
        deviations = np.max(
            np.abs(batch.states - reference_states[None, :, :]), axis=(1, 2)
        )
        study.mean_deviation.append(float(np.mean(deviations)))
        study.max_deviation.append(float(np.max(deviations)))
    return study
