"""Mean-field limits of imprecise population processes (Section III).

- :func:`mean_field_inclusion` — builds the limiting differential
  inclusion of Theorem 1 for an imprecise model.
- :func:`mean_field_ode` — the limiting ODE of Corollary 1 for a frozen
  parameter (the classical Kurtz limit when ``Theta`` is a singleton).
- :func:`verify_population_scaling` — numerically checks the three
  conditions of Definition 4 (uniformizability, vanishing jumps, bounded
  drift) on a sequence of instantiated population sizes, returning a
  :class:`ScalingReport`.
"""

from repro.meanfield.accuracy import AccuracyStudy, mean_field_accuracy
from repro.meanfield.limits import mean_field_inclusion, mean_field_ode
from repro.meanfield.scaling import ScalingReport, verify_population_scaling

__all__ = [
    "mean_field_inclusion",
    "mean_field_ode",
    "verify_population_scaling",
    "ScalingReport",
    "mean_field_accuracy",
    "AccuracyStudy",
]
