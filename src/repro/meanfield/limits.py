"""Construction of mean-field limit objects."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.inclusion import DriftExtremizer, ParametricInclusion

__all__ = ["mean_field_inclusion", "mean_field_ode"]


def mean_field_inclusion(model, method: str = "auto", grid_resolution: int = 9,
                         refine: bool = False,
                         batch: bool = True) -> ParametricInclusion:
    """Build the mean-field differential inclusion of Theorem 1.

    For an imprecise population process with density-scaled transition
    rates, the drift of the size-``N`` system is independent of ``N``
    (``f^N(x, theta) = f(x, theta)``), so the limit drift of Eq. (4) is
    the closed convex hull of ``{f(x, theta) : theta in Theta}`` — which
    the returned :class:`~repro.inclusion.ParametricInclusion` represents
    parametrically.

    Parameters mirror :class:`~repro.inclusion.DriftExtremizer`; they
    select how support functions of ``F(x)`` are computed.
    """
    extremizer = DriftExtremizer(
        model, method=method, grid_resolution=grid_resolution, refine=refine,
        batch=batch,
    )
    return ParametricInclusion(model, extremizer=extremizer)


def mean_field_ode(model, theta) -> Callable:
    """The limiting ODE field of Corollary 1 for a frozen ``theta``.

    Returns ``f(t, x)`` suitable for any integrator.  With ``Theta`` a
    singleton this is the classical mean-field (Kurtz) limit; for an
    uncertain model it is one member of the family swept over by
    :mod:`repro.bounds.sweep`.
    """
    theta = np.asarray(theta, dtype=float)
    if not model.theta_set.contains(theta, tol=1e-9):
        raise ValueError(f"theta {theta.tolist()} is outside Theta")
    return model.vector_field(theta)
