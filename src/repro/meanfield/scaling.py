"""Numerical verification of the population-scaling conditions.

Definition 4 of the paper admits a sequence of imprecise chains as a
*population process* when three conditions hold uniformly over the state
space and the parameter domain:

(i)   uniformizability — total exit rates are bounded for each ``N``;
(ii)  vanishing jumps — ``sup_x sum_y Q^N_{xy} |y - x|^{1 + eps} -> 0``;
(iii) bounded drift — ``sup_x sum_y Q^N_{xy} |y - x|`` stays bounded.

For transition-class models with density-scaled rates these reduce to
closed-form expressions in ``N`` (jump norms are ``|change| / N`` and
aggregate rates are ``N * rate``), but checking them *numerically* on the
instantiated chains guards against mis-scaled rate functions — the most
common modelling bug.  :func:`verify_population_scaling` probes states
and parameter corners and reports the three supremum statistics per size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

__all__ = ["ScalingReport", "verify_population_scaling"]


@dataclass
class ScalingSample:
    """Per-size scaling statistics (suprema over probed states/parameters)."""

    population_size: int
    max_exit_rate: float
    jump_moment: float  # sup of sum_e N rate_e * (|change_e| / N)^(1 + eps)
    drift_norm: float  # sup of |f(x, theta)|


@dataclass
class ScalingReport:
    """Outcome of :func:`verify_population_scaling`."""

    model_name: str
    epsilon: float
    samples: List[ScalingSample] = field(default_factory=list)

    @property
    def jump_moments(self) -> np.ndarray:
        return np.array([s.jump_moment for s in self.samples])

    @property
    def drift_norms(self) -> np.ndarray:
        return np.array([s.drift_norm for s in self.samples])

    def jumps_vanish(self) -> bool:
        """Condition (ii): the jump moment decreases towards zero in N."""
        moments = self.jump_moments
        if moments.shape[0] < 2:
            raise ValueError("need at least two population sizes to check decay")
        decreasing = bool(np.all(np.diff(moments) <= 1e-12))
        return decreasing and moments[-1] < moments[0]

    def drift_bounded(self, factor: float = 4.0) -> bool:
        """Condition (iii): drift suprema do not grow with N."""
        norms = self.drift_norms
        return bool(np.max(norms) <= factor * max(np.min(norms), 1e-12))

    def uniformizable(self) -> bool:
        """Condition (i): every sampled exit rate is finite."""
        return all(np.isfinite(s.max_exit_rate) for s in self.samples)

    def all_conditions_hold(self) -> bool:
        return self.uniformizable() and self.jumps_vanish() and self.drift_bounded()


def _probe_states(model, per_axis: int) -> np.ndarray:
    lower = model.state_lower
    upper = model.state_upper
    if lower is None:
        lower = np.zeros(model.dim)
        upper = np.ones(model.dim)
    axes = [np.linspace(lo, hi, per_axis) for lo, hi in zip(lower, upper)]
    mesh = np.meshgrid(*axes, indexing="ij")
    return np.stack([m.ravel() for m in mesh], axis=-1)


def verify_population_scaling(
    model,
    sizes: Sequence[int] = (10, 100, 1000, 10000),
    epsilon: float = 0.5,
    states_per_axis: int = 5,
) -> ScalingReport:
    """Probe the Definition-4 conditions for a model across sizes.

    Parameters
    ----------
    model:
        The :class:`~repro.population.PopulationModel` to audit.
    sizes:
        Increasing population sizes to instantiate.
    epsilon:
        The ``eps > 0`` of condition (ii).
    states_per_axis:
        Grid resolution of the probed states per state coordinate (keep
        small for high-dimensional models: cost is ``per_axis ** dim``).
    """
    sizes = sorted(int(n) for n in sizes)
    if len(sizes) < 2:
        raise ValueError("provide at least two population sizes")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    states = _probe_states(model, states_per_axis)
    corners = model.theta_set.corners()
    report = ScalingReport(model_name=model.name, epsilon=float(epsilon))

    change_norms = np.array(
        [float(np.linalg.norm(tr.change)) for tr in model.transitions]
    )
    for n in sizes:
        max_exit = 0.0
        max_jump_moment = 0.0
        max_drift = 0.0
        for theta in corners:
            for x in states:
                rates = model.transition_rates(x, theta)
                # Aggregate exit rate of the size-n chain at this state.
                max_exit = max(max_exit, n * float(np.sum(rates)))
                # sum_y Q_xy |y - x|^(1+eps) with |y - x| = |change| / n.
                moment = float(
                    np.sum(n * rates * (change_norms / n) ** (1.0 + epsilon))
                )
                max_jump_moment = max(max_jump_moment, moment)
                max_drift = max(
                    max_drift, float(np.linalg.norm(model.drift(x, theta)))
                )
        report.samples.append(
            ScalingSample(
                population_size=n,
                max_exit_rate=max_exit,
                jump_moment=max_jump_moment,
                drift_norm=max_drift,
            )
        )
    return report
