"""repro.telemetry — zero-dependency tracing + metrics for the toolkit.

Two instruments, one gate:

- **Spans** (:func:`span`): nestable context managers producing a
  walltime-annotated tree (``render_trace``), exportable to
  ``chrome://tracing`` JSON (``chrome_trace``/``save_chrome_trace``),
  with a live subscriber API (``subscribe``) for progress streaming.
- **Metrics** (:func:`inc`/:func:`observe`/:func:`set_gauge`): a
  process-local registry of counters, gauges and power-of-two-bucket
  histograms, snapshotted with :func:`snapshot`.

Everything is **off by default**.  Disabled, ``span()`` returns a shared
no-op singleton and the metric helpers return after one flag check — the
overhead regression test in ``tests/test_telemetry.py`` pins the total
disabled cost on a fig2-sized Pontryagin ladder to ≤5%.  Enable with::

    from repro import telemetry

    telemetry.enable()
    run = run_scenario("sir-transient")
    print(telemetry.render_trace())
    print(telemetry.snapshot()["counters"])

or end to end from the CLI::

    python -m repro run sir-transient --trace --metrics-out metrics.json
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional

from repro.telemetry import core as _core
from repro.telemetry.core import subscribe, unsubscribe
from repro.telemetry.export import chrome_trace, save_chrome_trace, save_snapshot
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.spans import (
    NOOP_SPAN,
    Span,
    clear_trace,
    current_span,
    render_trace,
    span,
    trace_roots,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "NOOP_SPAN",
    "chrome_trace",
    "clear",
    "clear_trace",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "inc",
    "live_counter",
    "live_histogram",
    "observe",
    "observe_many",
    "registry",
    "render_trace",
    "reset_metrics",
    "save_chrome_trace",
    "save_snapshot",
    "set_gauge",
    "snapshot",
    "span",
    "stats",
    "subscribe",
    "trace_roots",
    "unsubscribe",
]

_registry = MetricsRegistry()


# ----------------------------------------------------------------------
# Gate
# ----------------------------------------------------------------------

def enable() -> None:
    """Turn tracing + metrics collection on (process-wide)."""
    _core._set_enabled(True)


def disable() -> None:
    _core._set_enabled(False)


def enabled() -> bool:
    return _core._enabled


def clear() -> None:
    """Drop all recorded spans, metrics and internal op counts."""
    _registry.reset()
    clear_trace()
    _core.reset_stats()


def stats() -> Dict[str, int]:
    """Internal op tally (``spans``, ``updates``) — see the overhead
    regression test."""
    return _core.stats()


# ----------------------------------------------------------------------
# Metrics (gated module-level helpers — what library code calls)
# ----------------------------------------------------------------------

def registry() -> MetricsRegistry:
    """The global registry (ungated; reads are always allowed)."""
    return _registry


def snapshot() -> Dict[str, Dict[str, Any]]:
    return _registry.snapshot()


def reset_metrics() -> None:
    _registry.reset()


def inc(name: str, n: int = 1) -> None:
    if not _core._enabled:
        return
    _registry.counter(name).inc(n)
    _core.count_op("updates")


def set_gauge(name: str, value: float) -> None:
    if not _core._enabled:
        return
    _registry.gauge(name).set(value)
    _core.count_op("updates")


def observe(name: str, value: float) -> None:
    if not _core._enabled:
        return
    _registry.histogram(name).observe(value)
    _core.count_op("updates")


def observe_many(name: str, values: Iterable[float]) -> None:
    if not _core._enabled:
        return
    n = _registry.histogram(name).observe_many(values)
    _core.count_op("updates", n)


def live_counter(name: str) -> Optional[Counter]:
    """The named counter iff enabled, else ``None`` — for call sites
    that update inside a tight loop and want to hoist the lookup."""
    if not _core._enabled:
        return None
    _core.count_op("updates")
    return _registry.counter(name)


def live_histogram(name: str) -> Optional[Histogram]:
    if not _core._enabled:
        return None
    _core.count_op("updates")
    return _registry.histogram(name)
