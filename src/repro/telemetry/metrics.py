"""Process-local metrics registry: counters, gauges, histograms.

The instruments are deliberately tiny — plain ``__slots__`` objects with
integer/float fields — so an update is a couple of attribute operations.
Histograms keep count/sum/min/max plus power-of-two buckets, which is
enough to answer "how big are the SSA chunks" or "how fast do the
Pontryagin residuals shrink" without a dependency on any stats package.

A :class:`MetricsRegistry` is always live once you hold one; the
enable/disable gating lives in the module-level helpers in
:mod:`repro.telemetry` (``inc``/``observe``/``set_gauge``), which is the
API instrumented library code uses.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Tuple


class Counter:
    """Monotonic event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-write-wins instantaneous value (e.g. events/sec)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


def _bucket_edge(value: float) -> float:
    """Upper edge of the power-of-two bucket containing ``value``."""
    if value <= 0.0:
        return 0.0
    return 2.0 ** math.ceil(math.log2(value))


class Histogram:
    """count/sum/min/max plus log-scale (power-of-two) buckets."""

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: Dict[float, int] = {}

    def observe(self, value: float) -> None:
        v = float(value)
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        edge = _bucket_edge(v)
        self.buckets[edge] = self.buckets.get(edge, 0) + 1

    def observe_many(self, values: Iterable[float]) -> int:
        n = 0
        for v in values:
            self.observe(v)
            n += 1
        return n

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
        }
        if self.count:
            out["min"] = self.min
            out["max"] = self.max
        buckets: List[Tuple[float, int]] = sorted(self.buckets.items())
        out["buckets"] = [[edge, n] for edge, n in buckets]
        return out


class MetricsRegistry:
    """Named instrument store with a consistent snapshot/reset surface."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            with self._lock:
                inst = self._counters.setdefault(name, Counter(name))
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            with self._lock:
                inst = self._gauges.setdefault(name, Gauge(name))
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            with self._lock:
                inst = self._histograms.setdefault(name, Histogram(name))
        return inst

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-serializable view of every instrument."""
        with self._lock:
            return {
                "counters": {k: c.value for k, c in self._counters.items()},
                "gauges": {k: g.value for k, g in self._gauges.items()},
                "histograms": {
                    k: h.summary() for k, h in self._histograms.items()
                },
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
