"""Contextvar-based span tracer.

``span("pontryagin.sweep", lanes=32)`` is a nestable context manager;
entering links the span under the current one (or makes it a root),
exiting stamps the wall time.  Parent linkage rides on a
:class:`contextvars.ContextVar`, so the tree stays correct across
threads and asyncio tasks — the seam the future serving layer needs.

When telemetry is disabled :func:`span` returns a shared no-op
singleton, so the instrumented call sites pay one flag check and one
(empty) ``with`` block.
"""

from __future__ import annotations

import time
from contextvars import ContextVar
from typing import Any, Dict, List, Optional

from repro.telemetry import core

_current: ContextVar[Optional["Span"]] = ContextVar(
    "repro_telemetry_current_span", default=None
)
_roots: List["Span"] = []

# Children groups at least this large render as one aggregated line —
# per-iteration kernel spans (rk4 sweeps, credal steps) stay readable.
_AGGREGATE_THRESHOLD = 4


class Span:
    __slots__ = ("name", "attributes", "start", "end", "children",
                 "error", "_token")

    def __init__(self, name: str, attributes: Dict[str, Any]) -> None:
        self.name = name
        self.attributes = attributes
        self.start = 0.0
        self.end = 0.0
        self.children: List["Span"] = []
        self.error: Optional[str] = None
        self._token = None

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def set(self, key: str, value: Any) -> None:
        """Attach an attribute discovered mid-span."""
        self.attributes[key] = value

    def __enter__(self) -> "Span":
        parent = _current.get()
        if parent is not None:
            parent.children.append(self)
        else:
            _roots.append(self)
        self._token = _current.set(self)
        core.count_op("spans")
        core.notify("span_start", self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = time.perf_counter()
        if exc_type is not None:
            self.error = exc_type.__name__
            self.attributes.setdefault("error", exc_type.__name__)
        if self._token is not None:
            _current.reset(self._token)
            self._token = None
        core.notify("span_end", self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "Span(%r, %.6fs, %d children)" % (
            self.name, self.duration, len(self.children))


class _NoOpSpan:
    """Shared disabled-mode stand-in; every method is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NoOpSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        pass


NOOP_SPAN = _NoOpSpan()


def span(name: str, **attributes: Any):
    """Open a traced span, or the shared no-op when telemetry is off."""
    if not core._enabled:
        return NOOP_SPAN
    return Span(name, attributes)


def current_span() -> Optional[Span]:
    return _current.get()


def trace_roots() -> List[Span]:
    """Completed-or-open root spans recorded since the last clear."""
    return list(_roots)


def clear_trace() -> None:
    _roots.clear()
    if _current.get() is not None:
        _current.set(None)


def _format_attrs(attributes: Dict[str, Any]) -> str:
    if not attributes:
        return ""
    parts = []
    for key, value in attributes.items():
        text = str(value)
        if len(text) > 32:
            text = text[:29] + "..."
        parts.append("%s=%s" % (key, text))
    return " [" + " ".join(parts) + "]"


def _render_span(sp: Span, indent: int, lines: List[str]) -> None:
    pad = "  " * indent
    mark = " !" + sp.error if sp.error else ""
    lines.append("%s%s%s  %.3fs%s" % (
        pad, sp.name, _format_attrs(sp.attributes), sp.duration, mark))
    # Group same-name children, preserving first-seen order.
    groups: Dict[str, List[Span]] = {}
    for child in sp.children:
        groups.setdefault(child.name, []).append(child)
    for name, members in groups.items():
        if len(members) >= _AGGREGATE_THRESHOLD:
            total = sum(m.duration for m in members)
            lines.append("%s  %s ×%d  total=%.3fs mean=%.4fs" % (
                pad, name, len(members), total,
                total / len(members)))
        else:
            for member in members:
                _render_span(member, indent + 1, lines)


def render_trace(spans: Optional[List[Span]] = None) -> str:
    """Indented walltime-annotated tree of the recorded spans.

    Runs of four or more same-name siblings (per-iteration kernel
    spans) are folded into one ``name ×N total=...`` line.
    """
    roots = trace_roots() if spans is None else spans
    if not roots:
        return "(no spans recorded)"
    lines: List[str] = []
    for root in roots:
        _render_span(root, 0, lines)
    return "\n".join(lines)
