"""Exporters: Chrome-trace JSON (``chrome://tracing`` / Perfetto) and
metrics-snapshot files.

The Chrome trace format is a flat list of complete (``"ph": "X"``)
events with microsecond timestamps; nesting is reconstructed by the
viewer from overlap, so the tree walk just flattens.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.telemetry.spans import Span, trace_roots


def _json_safe(value: Any) -> Any:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def _walk(sp: Span, t0: float, tid: int, pid: int,
          events: List[Dict[str, Any]]) -> None:
    events.append({
        "name": sp.name,
        "cat": "repro",
        "ph": "X",
        "ts": (sp.start - t0) * 1e6,
        "dur": sp.duration * 1e6,
        "pid": pid,
        "tid": tid,
        "args": {k: _json_safe(v) for k, v in sp.attributes.items()},
    })
    for child in sp.children:
        _walk(child, t0, tid, pid, events)


def chrome_trace(spans: Optional[List[Span]] = None) -> Dict[str, Any]:
    """Recorded spans as a ``chrome://tracing``-loadable event dict."""
    roots = trace_roots() if spans is None else spans
    events: List[Dict[str, Any]] = []
    pid = os.getpid()
    if roots:
        t0 = min(sp.start for sp in roots)
        for tid, root in enumerate(roots):
            _walk(root, t0, tid, pid, events)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def save_chrome_trace(path, spans: Optional[List[Span]] = None) -> Path:
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(spans), indent=1,
                               sort_keys=True))
    return path


def save_snapshot(path, snapshot: Dict[str, Any]) -> Path:
    path = Path(path)
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True))
    return path
