"""Shared state for :mod:`repro.telemetry`: the on/off gate, the
subscriber fan-out, and the internal operation tally.

Everything here is process-local and stdlib-only.  The gate defaults to
*off*; in that state every public telemetry helper is a constant-time
no-op so instrumented library code pays only a flag check.

The operation tally (:func:`stats`) counts how many telemetry
operations *would have been* recorded — it is what lets the overhead
regression test convert "ops per workload" into a provable disabled-cost
bound instead of a flaky wall-clock A/B comparison.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

# Flipped by repro.telemetry.enable()/disable().  Read directly
# (``core._enabled``) on hot paths: one global load, no function call.
_enabled: bool = False

_ops: Dict[str, int] = {"spans": 0, "updates": 0}

_subscribers: Dict[int, Callable[[str, Any], None]] = {}
_next_token: int = 0


def enabled() -> bool:
    return _enabled


def _set_enabled(value: bool) -> None:
    global _enabled
    _enabled = bool(value)


def count_op(kind: str, n: int = 1) -> None:
    _ops[kind] = _ops.get(kind, 0) + int(n)


def stats() -> Dict[str, int]:
    """Internal telemetry-operation counts (spans recorded, registry
    updates) since the last :func:`reset_stats`/``telemetry.clear``."""
    return dict(_ops)


def reset_stats() -> None:
    _ops.clear()
    _ops.update({"spans": 0, "updates": 0})


def subscribe(callback: Callable[[str, Any], None]) -> int:
    """Register ``callback(event, span)`` for ``"span_start"`` /
    ``"span_end"`` events; returns a token for :func:`unsubscribe`.

    This is the progress seam for streaming consumers: a subscriber sees
    every span boundary live, without waiting for the tree to finish.
    """
    global _next_token
    _next_token += 1
    _subscribers[_next_token] = callback
    return _next_token


def unsubscribe(token: int) -> None:
    _subscribers.pop(token, None)


def clear_subscribers() -> None:
    _subscribers.clear()


def notify(event: str, span: Any) -> None:
    if not _subscribers:
        return
    for callback in list(_subscribers.values()):
        try:
            callback(event, span)
        except Exception:
            # A broken progress listener must never take down the
            # instrumented computation; the failure is tallied so
            # stats() exposes it instead of hiding it.
            count_op("subscriber_errors")
