"""Convex polygons in the plane.

All functions operate on ``(n, 2)`` float arrays of vertex coordinates.
Polygons produced by :func:`convex_hull` are in counter-clockwise (CCW)
order, which is the orientation assumed by :class:`ConvexPolygon`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "convex_hull",
    "polygon_area",
    "polygon_centroid",
    "point_in_polygon",
    "segment_midpoints",
    "ConvexPolygon",
]


def _cross(o: np.ndarray, a: np.ndarray, b: np.ndarray) -> float:
    """Z-component of the cross product (a - o) x (b - o)."""
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


def convex_hull(points) -> np.ndarray:
    """Return the convex hull of a point cloud in CCW order.

    Implements Andrew's monotone-chain algorithm, O(n log n).  Collinear
    points on the hull boundary are dropped, so the result is a *strictly*
    convex vertex list.  Degenerate inputs (all points collinear) return
    the two extreme points; a single point returns itself.

    >>> convex_hull([(0, 0), (1, 0), (1, 1), (0, 1), (0.5, 0.5)])
    array([[0., 0.],
           [1., 0.],
           [1., 1.],
           [0., 1.]])
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ValueError(f"expected an (n, 2) array, got shape {pts.shape}")
    if pts.shape[0] == 0:
        raise ValueError("cannot take the hull of an empty point set")
    # Sort lexicographically and drop exact duplicates.
    order = np.lexsort((pts[:, 1], pts[:, 0]))
    pts = pts[order]
    keep = np.ones(len(pts), dtype=bool)
    keep[1:] = np.any(np.diff(pts, axis=0) != 0.0, axis=1)
    pts = pts[keep]
    if pts.shape[0] == 1:
        return pts.copy()
    if pts.shape[0] == 2:
        return pts.copy()

    def half_hull(points_sorted):
        stack = []
        for p in points_sorted:
            while len(stack) >= 2 and _cross(stack[-2], stack[-1], p) <= 0:
                stack.pop()
            stack.append(p)
        return stack

    lower = half_hull(pts)
    upper = half_hull(pts[::-1])
    hull = np.array(lower[:-1] + upper[:-1])
    if hull.shape[0] < 3:
        # All points collinear: return the extreme pair.
        return np.array([pts[0], pts[-1]])
    return hull


def polygon_area(vertices) -> float:
    """Signed area of a polygon (positive when CCW), via the shoelace formula."""
    verts = np.asarray(vertices, dtype=float)
    if verts.shape[0] < 3:
        return 0.0
    x, y = verts[:, 0], verts[:, 1]
    return 0.5 * float(np.sum(x * np.roll(y, -1) - np.roll(x, -1) * y))


def polygon_centroid(vertices) -> np.ndarray:
    """Centroid of a polygon; falls back to the vertex mean when degenerate."""
    verts = np.asarray(vertices, dtype=float)
    area = polygon_area(verts)
    if abs(area) < 1e-15:
        return verts.mean(axis=0)
    x, y = verts[:, 0], verts[:, 1]
    xn, yn = np.roll(x, -1), np.roll(y, -1)
    cross = x * yn - xn * y
    cx = float(np.sum((x + xn) * cross)) / (6.0 * area)
    cy = float(np.sum((y + yn) * cross)) / (6.0 * area)
    return np.array([cx, cy])


def point_in_polygon(point, vertices, tol: float = 1e-12) -> bool:
    """Ray-casting membership test; boundary points count as inside.

    Works for arbitrary simple polygons, convex or not.
    """
    verts = np.asarray(vertices, dtype=float)
    px, py = float(point[0]), float(point[1])
    n = verts.shape[0]
    if n == 0:
        return False
    if n == 1:
        return bool(np.hypot(px - verts[0, 0], py - verts[0, 1]) <= tol)
    # Boundary check: distance from each edge segment.
    for i in range(n):
        a = verts[i]
        b = verts[(i + 1) % n]
        ab = b - a
        denom = float(ab @ ab)
        if denom < tol * tol:
            continue
        t = np.clip(((px - a[0]) * ab[0] + (py - a[1]) * ab[1]) / denom, 0.0, 1.0)
        proj = a + t * ab
        if np.hypot(px - proj[0], py - proj[1]) <= tol:
            return True
    if n == 2:
        return False
    inside = False
    j = n - 1
    for i in range(n):
        xi, yi = verts[i]
        xj, yj = verts[j]
        if (yi > py) != (yj > py):
            x_cross = xi + (py - yi) * (xj - xi) / (yj - yi)
            if px < x_cross:
                inside = not inside
        j = i
    return inside


def segment_midpoints(vertices) -> np.ndarray:
    """Midpoints of the edges of a closed polygon, shape ``(n, 2)``."""
    verts = np.asarray(vertices, dtype=float)
    return 0.5 * (verts + np.roll(verts, -1, axis=0))


class ConvexPolygon:
    """A convex region of the plane, stored as CCW hull vertices.

    This is the region container used by the Birkhoff-centre growth loop
    (Section V-C of the paper): the loop adds trajectory points with
    :meth:`expanded_with`, inspects :meth:`boundary_points` and
    :meth:`outward_normals` to look for escaping drift directions, and
    reports :meth:`contains` / :meth:`distance` for Figure 6 diagnostics.
    """

    def __init__(self, points):
        hull = convex_hull(points)
        if hull.shape[0] < 3:
            raise ValueError(
                "a ConvexPolygon needs at least 3 non-collinear points; "
                f"hull had {hull.shape[0]} vertices"
            )
        self.vertices = hull

    @property
    def n_vertices(self) -> int:
        return self.vertices.shape[0]

    @property
    def area(self) -> float:
        """Area of the region (always positive: vertices are CCW)."""
        return polygon_area(self.vertices)

    @property
    def centroid(self) -> np.ndarray:
        return polygon_centroid(self.vertices)

    def contains(self, point, tol: float = 1e-9) -> bool:
        """Membership with a tolerance measured as distance to the region."""
        if point_in_polygon(point, self.vertices, tol=tol):
            return True
        return self.distance(point) <= tol

    def distance(self, point) -> float:
        """Euclidean distance from ``point`` to the region (0 if inside)."""
        if point_in_polygon(point, self.vertices):
            return 0.0
        p = np.asarray(point, dtype=float)
        best = np.inf
        n = self.n_vertices
        for i in range(n):
            a = self.vertices[i]
            b = self.vertices[(i + 1) % n]
            ab = b - a
            denom = float(ab @ ab)
            t = 0.0 if denom == 0.0 else np.clip(float((p - a) @ ab) / denom, 0.0, 1.0)
            proj = a + t * ab
            best = min(best, float(np.hypot(*(p - proj))))
        return best

    def signed_margin(self, points) -> np.ndarray:
        """Vectorised signed distance proxy to the boundary.

        For each point returns ``max_e (n_e . p - b_e)`` over the edge
        halfspaces: negative inside, and for outside points a lower bound
        on the true distance (exact when the nearest boundary point lies
        in an edge interior).  Used for fast "did the region actually
        grow" checks on large point clouds.
        """
        pts = np.asarray(points, dtype=float)
        if pts.ndim == 1:
            pts = pts[None, :]
        normals = self.outward_normals()
        offsets = np.einsum("ij,ij->i", normals, self.vertices)
        return np.max(pts @ normals.T - offsets[None, :], axis=1)

    def edges(self) -> np.ndarray:
        """Edge vectors ``v[i+1] - v[i]``, shape ``(n, 2)``."""
        return np.roll(self.vertices, -1, axis=0) - self.vertices

    def outward_normals(self) -> np.ndarray:
        """Unit outward normals of each edge, shape ``(n, 2)``.

        Vertices are CCW, so the outward normal of edge ``(dx, dy)`` is
        ``(dy, -dx)`` normalised.
        """
        e = self.edges()
        normals = np.stack([e[:, 1], -e[:, 0]], axis=1)
        lengths = np.linalg.norm(normals, axis=1, keepdims=True)
        lengths[lengths == 0.0] = 1.0
        return normals / lengths

    def boundary_points(self, per_edge: int = 1) -> Tuple[np.ndarray, np.ndarray]:
        """Sample points on the boundary with their outward normals.

        Returns ``(points, normals)`` where each edge contributes
        ``per_edge`` equally spaced interior points (no shared vertices, so
        every sampled point has a well-defined normal).
        """
        if per_edge < 1:
            raise ValueError("per_edge must be >= 1")
        normals = self.outward_normals()
        pts, nrm = [], []
        n = self.n_vertices
        for i in range(n):
            a = self.vertices[i]
            b = self.vertices[(i + 1) % n]
            for k in range(per_edge):
                t = (k + 1.0) / (per_edge + 1.0)
                pts.append(a + t * (b - a))
                nrm.append(normals[i])
        return np.array(pts), np.array(nrm)

    def expanded_with(self, points) -> "ConvexPolygon":
        """Return the convex hull of this region together with new points."""
        extra = np.asarray(points, dtype=float)
        if extra.ndim == 1:
            extra = extra[None, :]
        return ConvexPolygon(np.vstack([self.vertices, extra]))

    def simplified(self, tolerance: float, min_vertices: int = 8) -> "ConvexPolygon":
        """Drop vertices that deviate less than ``tolerance`` from their chord.

        Hulls of smooth trajectory clouds carry thousands of nearly
        collinear vertices; removing a vertex whose perpendicular
        distance to the chord of its neighbours is below ``tolerance``
        changes the region by at most ``tolerance`` locally while
        collapsing the vertex count.  The result is a subset of the
        original region (vertex removal only shrinks a convex polygon).
        """
        if tolerance <= 0:
            return ConvexPolygon(self.vertices)
        vertices = self.vertices
        changed = True
        while changed and vertices.shape[0] > min_vertices:
            changed = False
            keep = np.ones(vertices.shape[0], dtype=bool)
            n = vertices.shape[0]
            i = 0
            while i < n and np.count_nonzero(keep) > min_vertices:
                if not keep[i]:
                    i += 1
                    continue
                prev_i = (i - 1) % n
                next_i = (i + 1) % n
                while not keep[prev_i]:
                    prev_i = (prev_i - 1) % n
                while not keep[next_i]:
                    next_i = (next_i + 1) % n
                a, b, c = vertices[prev_i], vertices[i], vertices[next_i]
                chord = c - a
                norm = np.hypot(*chord)
                if norm < 1e-15:
                    deviation = float(np.hypot(*(b - a)))
                else:
                    deviation = abs(_cross(a, c, b)) / norm
                if deviation < tolerance:
                    keep[i] = False
                    changed = True
                    i += 2  # skip the neighbour to avoid cascading drops
                else:
                    i += 1
            vertices = vertices[keep]
        if vertices.shape[0] < 3:
            return ConvexPolygon(self.vertices)
        return ConvexPolygon(vertices)

    def __repr__(self) -> str:
        return f"ConvexPolygon({self.n_vertices} vertices, area={self.area:.4g})"
