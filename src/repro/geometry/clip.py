"""Convex polygon clipping (Sutherland–Hodgman) and overlap metrics.

Used to *compare* computed regions quantitatively: e.g. how much of the
stationary hull rectangle of Figure 5 is wasted relative to the Birkhoff
centre, or how two Birkhoff regions for different ``Theta`` widths nest.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.polygon import ConvexPolygon, polygon_area

__all__ = ["clip_convex", "intersection_area", "overlap_metrics"]


def clip_convex(subject, clip) -> np.ndarray:
    """Intersection of two convex polygons (CCW vertex arrays).

    Sutherland–Hodgman: clip the subject polygon successively against
    every edge halfplane of the clip polygon.  Returns the vertex array
    of the intersection (possibly empty, shape ``(0, 2)``).
    """
    subject = np.asarray(
        subject.vertices if isinstance(subject, ConvexPolygon) else subject,
        dtype=float,
    )
    clip = np.asarray(
        clip.vertices if isinstance(clip, ConvexPolygon) else clip,
        dtype=float,
    )
    if subject.shape[0] < 3 or clip.shape[0] < 3:
        return np.empty((0, 2))
    output = [tuple(v) for v in subject]
    n = clip.shape[0]
    for i in range(n):
        a = clip[i]
        b = clip[(i + 1) % n]
        edge = b - a
        if not output:
            break
        input_list = output
        output = []

        def inside(p):
            # CCW clip polygon: interior is to the left of each edge.
            return (edge[0] * (p[1] - a[1]) - edge[1] * (p[0] - a[0])) >= -1e-12

        def intersect(p, q):
            d1 = np.array(q) - np.array(p)
            denom = edge[0] * d1[1] - edge[1] * d1[0]
            if abs(denom) < 1e-15:
                return tuple(q)
            t = (edge[0] * (a[1] - p[1]) - edge[1] * (a[0] - p[0])) / denom
            point = np.array(p) + np.clip(t, 0.0, 1.0) * d1
            return tuple(point)

        previous = input_list[-1]
        for current in input_list:
            if inside(current):
                if not inside(previous):
                    output.append(intersect(previous, current))
                output.append(current)
            elif inside(previous):
                output.append(intersect(previous, current))
            previous = current
    return np.asarray(output, dtype=float) if output else np.empty((0, 2))


def intersection_area(polygon_a, polygon_b) -> float:
    """Area of the intersection of two convex polygons."""
    clipped = clip_convex(polygon_a, polygon_b)
    if clipped.shape[0] < 3:
        return 0.0
    return abs(polygon_area(clipped))


def overlap_metrics(polygon_a, polygon_b) -> dict:
    """Jaccard index and containment fractions of two convex regions.

    Returns a dict with keys ``intersection``, ``jaccard``,
    ``a_inside_b`` (fraction of A's area inside B) and ``b_inside_a``.
    """
    area_a = abs(polygon_area(
        polygon_a.vertices if isinstance(polygon_a, ConvexPolygon) else polygon_a
    ))
    area_b = abs(polygon_area(
        polygon_b.vertices if isinstance(polygon_b, ConvexPolygon) else polygon_b
    ))
    inter = intersection_area(polygon_a, polygon_b)
    union = area_a + area_b - inter
    return {
        "intersection": inter,
        "jaccard": inter / union if union > 0 else 1.0,
        "a_inside_b": inter / area_a if area_a > 0 else 1.0,
        "b_inside_a": inter / area_b if area_b > 0 else 1.0,
    }
