"""Planar geometry utilities supporting the Birkhoff-centre algorithm.

The steady-state construction of Section V-C represents the candidate
Birkhoff centre of a two-dimensional differential inclusion as a convex
region delimited by trajectories.  This package provides the polygon
machinery that construction needs:

- :func:`convex_hull` — Andrew monotone-chain convex hull.
- :class:`ConvexPolygon` — a convex region with membership tests, outward
  normals, boundary sampling and distance queries.
- :func:`polygon_area`, :func:`point_in_polygon` — generic helpers that
  also work for non-convex polygons (used in tests and diagnostics).
"""

from repro.geometry.clip import clip_convex, intersection_area, overlap_metrics
from repro.geometry.polygon import (
    ConvexPolygon,
    convex_hull,
    point_in_polygon,
    polygon_area,
    polygon_centroid,
    segment_midpoints,
)

__all__ = [
    "convex_hull",
    "ConvexPolygon",
    "polygon_area",
    "polygon_centroid",
    "point_in_polygon",
    "segment_midpoints",
    "clip_convex",
    "intersection_area",
    "overlap_metrics",
]
