"""Golden regression pins for the paper-figure bound computations.

The Figure 1 (Pontryagin transient bounds) and Figure 4 (differential
hull) pipelines are deterministic given the model and grids, so their
outputs are pinned to literal values computed from the current
implementation.  A future refactor that silently shifts the bounds —
a wrong sign in the Hamiltonian maximiser, a changed integrator
tolerance, a broken warm start — fails these pins immediately, while a
legitimate algorithmic change must update them consciously.

Tolerances are loose enough (``rtol=1e-4``) to absorb benign
floating-point reordering but far tighter than any real behavioural
change in the bounds.
"""

import numpy as np
import pytest

from repro.bounds import differential_hull_bounds, pontryagin_transient_bounds
from repro.models import make_sir_model

X0 = [0.7, 0.3]

#: Fig. 1 settings — SIR with theta in [1, 10], x0 = (0.7, 0.3),
#: bounds on the infected fraction at a ladder of horizons.
FIG1_HORIZONS = np.array([0.5, 1.0, 2.0, 3.0])
FIG1_LOWER_I = np.array(
    [0.048982884308, 0.020967067308, 0.015721987839, 0.016318643199]
)
FIG1_UPPER_I = np.array(
    [0.200374571356, 0.142585013127, 0.157089504406, 0.170538327409]
)

#: Fig. 4 settings — differential hull of the same model on [0, 1.5]
#: (the hull blows up and becomes trivial shortly after; see Fig. 4).
FIG4_T_EVAL = np.linspace(0.0, 1.5, 7)
FIG4_LOWER = np.array([
    [7.000000000000e-01, 3.000000000000e-01],
    [2.797001938438e-01, 1.030378175875e-01],
    [7.303986912367e-02, 3.280542711129e-02],
    [-2.545744942788e-02, 9.545934883302e-03],
    [-2.262436177271e-01, 3.758567952262e-04],
    [-5.530834674056e-01, -5.645432457508e-03],
    [-8.298099903417e-01, -1.110706953304e-02],
])
FIG4_UPPER = np.array([
    [0.700000000000, 0.300000000000],
    [0.683467692445, 0.497513557036],
    [0.715438265180, 0.838443496981],
    [0.754969235587, 1.535094282321],
    [0.790400861987, 3.066797052334],
    [0.824505261637, 6.638995547771],
    [0.862674617133, 15.695810380661],
])


@pytest.fixture(scope="module")
def fig1_bounds():
    # The golden pins live on the scalar (warm-started sequential) path;
    # the lane-parallel default is pinned against it in
    # tests/test_ode_batch.py and against the same literals below.
    return pontryagin_transient_bounds(
        make_sir_model(), X0, FIG1_HORIZONS, observables=["I"], lanes=False
    )


@pytest.fixture(scope="module")
def fig4_hull():
    return differential_hull_bounds(make_sir_model(), X0, FIG4_T_EVAL)


class TestFig1PontryaginGolden:
    def test_transient_bounds_pinned(self, fig1_bounds):
        np.testing.assert_allclose(
            fig1_bounds.lower["I"], FIG1_LOWER_I, rtol=1e-4, atol=1e-8
        )
        np.testing.assert_allclose(
            fig1_bounds.upper["I"], FIG1_UPPER_I, rtol=1e-4, atol=1e-8
        )

    def test_bounds_are_ordered(self, fig1_bounds):
        assert np.all(fig1_bounds.lower["I"] <= fig1_bounds.upper["I"])

    def test_lane_parallel_path_hits_pins(self):
        """The default lane-parallel sweep reproduces the golden curves.

        Cold starts converge to the same bang-bang optima; the slightly
        looser tolerance absorbs the value-stability stopping rule
        firing a sweep earlier than the warm-started scalar path did
        when the pins were recorded (~1e-4 relative), which is still far
        below any behavioural change in the bounds.
        """
        lanes = pontryagin_transient_bounds(
            make_sir_model(), X0, FIG1_HORIZONS, observables=["I"]
        )
        np.testing.assert_allclose(lanes.lower["I"], FIG1_LOWER_I,
                                   rtol=3e-4, atol=1e-8)
        np.testing.assert_allclose(lanes.upper["I"], FIG1_UPPER_I,
                                   rtol=3e-4, atol=1e-8)


class TestFig4HullGolden:
    def test_hull_bounds_pinned(self, fig4_hull):
        np.testing.assert_allclose(fig4_hull.lower, FIG4_LOWER, rtol=1e-4,
                                   atol=1e-8)
        np.testing.assert_allclose(fig4_hull.upper, FIG4_UPPER, rtol=1e-4,
                                   atol=1e-8)

    def test_hull_scalar_path_matches_batched_pin(self, fig4_hull):
        """The legacy scalar-extremization hull hits the same pins, and
        agrees with the default batched path bit-for-bit."""
        scalar = differential_hull_bounds(make_sir_model(), X0, FIG4_T_EVAL,
                                          batch=False)
        np.testing.assert_allclose(scalar.lower, FIG4_LOWER, rtol=1e-4,
                                   atol=1e-8)
        np.testing.assert_allclose(scalar.upper, FIG4_UPPER, rtol=1e-4,
                                   atol=1e-8)
        np.testing.assert_array_equal(scalar.lower, fig4_hull.lower)
        np.testing.assert_array_equal(scalar.upper, fig4_hull.upper)

    def test_hull_brackets_fig1_pins(self, fig4_hull):
        # The hull is a relaxation: at matching times its I-range must
        # contain the exact Pontryagin range (cross-check of the two
        # golden fixtures against each other, using the pinned values).
        at = {0.5: 2, 1.0: 4}
        for k, (horizon, idx) in enumerate(at.items()):
            assert fig4_hull.lower[idx, 1] <= FIG1_LOWER_I[k] + 1e-6
            assert fig4_hull.upper[idx, 1] >= FIG1_UPPER_I[k] - 1e-6
