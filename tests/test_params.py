"""Unit tests for parameter domains (repro.params)."""

import numpy as np
import pytest

from repro.params import Box, DiscreteSet, Interval, ParameterSet, Singleton


class TestInterval:
    def test_basic_properties(self):
        iv = Interval(1.0, 10.0, name="contact")
        assert iv.dim == 1
        assert iv.lower == 1.0
        assert iv.upper == 10.0
        assert iv.width == 9.0
        assert iv.names == ("contact",)

    def test_contains_interior_and_bounds(self):
        iv = Interval(1.0, 10.0)
        assert iv.contains(5.0)
        assert iv.contains(1.0)
        assert iv.contains(10.0)
        assert not iv.contains(0.5)
        assert not iv.contains(10.5)

    def test_contains_with_tolerance(self):
        iv = Interval(0.0, 1.0)
        assert iv.contains(1.0 + 1e-13)
        assert not iv.contains(1.0 + 1e-6)

    def test_dunder_contains(self):
        iv = Interval(0.0, 1.0)
        assert 0.5 in iv
        assert 2.0 not in iv

    def test_project_clips(self):
        iv = Interval(1.0, 10.0)
        assert iv.project(0.0) == pytest.approx([1.0])
        assert iv.project(20.0) == pytest.approx([10.0])
        assert iv.project(3.3) == pytest.approx([3.3])

    def test_corners(self):
        corners = Interval(1.0, 10.0).corners()
        assert corners.shape == (2, 1)
        np.testing.assert_allclose(corners.ravel(), [1.0, 10.0])

    def test_grid_endpoints_and_count(self):
        grid = Interval(0.0, 4.0).grid(5)
        assert grid.shape == (5, 1)
        np.testing.assert_allclose(grid.ravel(), [0, 1, 2, 3, 4])

    def test_grid_single_point_is_midpoint(self):
        grid = Interval(0.0, 4.0).grid(1)
        np.testing.assert_allclose(grid, [[2.0]])

    def test_grid_invalid_resolution(self):
        with pytest.raises(ValueError):
            Interval(0.0, 1.0).grid(0)

    def test_sample_within_bounds(self, rng):
        samples = Interval(2.0, 3.0).sample(rng, 100)
        assert samples.shape == (100, 1)
        assert np.all(samples >= 2.0)
        assert np.all(samples <= 3.0)

    def test_center(self):
        np.testing.assert_allclose(Interval(1.0, 3.0).center(), [2.0])

    def test_degenerate_interval_allowed(self):
        iv = Interval(2.0, 2.0)
        assert iv.contains(2.0)
        assert iv.width == 0.0

    def test_reversed_bounds_rejected(self):
        with pytest.raises(ValueError):
            Interval(3.0, 1.0)

    def test_nonfinite_bounds_rejected(self):
        with pytest.raises(ValueError):
            Interval(0.0, np.inf)


class TestBox:
    def make(self):
        return Box([("a", 1.0, 7.0), ("b", 2.0, 3.0)])

    def test_basic_properties(self):
        box = self.make()
        assert box.dim == 2
        assert box.names == ("a", "b")
        np.testing.assert_allclose(box.lowers, [1.0, 2.0])
        np.testing.assert_allclose(box.uppers, [7.0, 3.0])

    def test_from_bounds(self):
        box = Box.from_bounds([0.0, 1.0], [1.0, 2.0])
        assert box.dim == 2
        assert box.names == ("theta0", "theta1")

    def test_from_bounds_mismatched_lengths(self):
        with pytest.raises(ValueError):
            Box.from_bounds([0.0], [1.0, 2.0])

    def test_from_intervals(self):
        box = Box([Interval(0.0, 1.0, name="x"), Interval(2.0, 4.0, name="y")])
        assert box.names == ("x", "y")
        np.testing.assert_allclose(box.uppers, [1.0, 4.0])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Box([("a", 0, 1), ("a", 0, 1)])

    def test_interval_accessor(self):
        box = self.make()
        iv = box.interval("b")
        assert iv.lower == 2.0 and iv.upper == 3.0
        iv0 = box.interval(0)
        assert iv0.names == ("a",)

    def test_contains(self):
        box = self.make()
        assert box.contains([3.0, 2.5])
        assert box.contains([1.0, 2.0])
        assert not box.contains([0.0, 2.5])
        assert not box.contains([3.0, 3.5])

    def test_contains_wrong_dimension(self):
        assert not self.make().contains([3.0])

    def test_project(self):
        box = self.make()
        np.testing.assert_allclose(box.project([0.0, 10.0]), [1.0, 3.0])
        np.testing.assert_allclose(box.project([4.0, 2.5]), [4.0, 2.5])

    def test_project_wrong_dimension(self):
        with pytest.raises(ValueError):
            self.make().project([1.0])

    def test_corners_count_and_membership(self):
        box = self.make()
        corners = box.corners()
        assert corners.shape == (4, 2)
        for corner in corners:
            assert box.contains(corner)

    def test_grid_shape_and_membership(self):
        box = self.make()
        grid = box.grid(3)
        assert grid.shape == (9, 2)
        for point in grid:
            assert box.contains(point)

    def test_sample(self, rng):
        box = self.make()
        samples = box.sample(rng, 50)
        assert samples.shape == (50, 2)
        for s in samples:
            assert box.contains(s)

    def test_center(self):
        np.testing.assert_allclose(self.make().center(), [4.0, 2.5])


class TestDiscreteSet:
    def test_scalar_values_promoted(self):
        ds = DiscreteSet([1.0, 2.0, 3.0])
        assert ds.dim == 1
        assert ds.values.shape == (3, 1)

    def test_contains(self):
        ds = DiscreteSet([[1.0, 0.0], [0.0, 1.0]])
        assert ds.contains([1.0, 0.0])
        assert not ds.contains([0.5, 0.5])

    def test_project_picks_nearest(self):
        ds = DiscreteSet([[0.0], [10.0]])
        np.testing.assert_allclose(ds.project([3.0]), [0.0])
        np.testing.assert_allclose(ds.project([7.0]), [10.0])

    def test_corners_are_all_values(self):
        ds = DiscreteSet([[1.0], [2.0], [5.0]])
        assert ds.corners().shape == (3, 1)

    def test_sample_draws_members(self, rng):
        ds = DiscreteSet([[1.0], [2.0]])
        for s in ds.sample(rng, 20):
            assert ds.contains(s)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DiscreteSet(np.empty((0, 1)))

    def test_name_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DiscreteSet([[1.0, 2.0]], names=["only_one"])


class TestSingleton:
    def test_value_roundtrip(self):
        s = Singleton([4.2])
        np.testing.assert_allclose(s.value, [4.2])
        assert s.contains([4.2])
        assert not s.contains([4.3])

    def test_center_is_value(self):
        s = Singleton([1.0, 2.0])
        np.testing.assert_allclose(s.center(), [1.0, 2.0])

    def test_is_parameter_set(self):
        assert isinstance(Singleton([1.0]), ParameterSet)


class TestAbstractInterface:
    def test_base_class_raises(self):
        base = ParameterSet()
        with pytest.raises(NotImplementedError):
            base.contains([1.0])
        with pytest.raises(NotImplementedError):
            base.corners()
        with pytest.raises(NotImplementedError):
            _ = base.dim


class TestProjectBatch:
    """Differential: every project_batch row equals per-row project()."""

    @pytest.mark.parametrize("domain", [
        Interval(1.0, 10.0),
        Box([("lam1", 1.0, 7.0), ("lam2", 2.0, 3.0)]),
        DiscreteSet([[1.0, 0.0], [4.0, 2.0], [9.0, -1.0]]),
        Singleton([2.5]),
    ], ids=lambda d: type(d).__name__)
    def test_matches_scalar_rows(self, domain):
        rng = np.random.default_rng(20160604)
        thetas = rng.uniform(-5.0, 15.0, size=(16, domain.dim))
        batched = domain.project_batch(thetas)
        assert batched.shape == (16, domain.dim)
        for r, row in enumerate(thetas):
            np.testing.assert_array_equal(batched[r], domain.project(row))

    def test_generic_base_path_matches_scalar_rows(self):
        # A set that only implements project() exercises the base-class
        # row loop the overrides above replace.
        class HalfLine(ParameterSet):
            names = ("h",)

            @property
            def dim(self):
                return 1

            def project(self, theta):
                return np.maximum(np.asarray(theta, dtype=float), 0.0)

        domain = HalfLine()
        thetas = np.array([[-2.0], [0.0], [3.5]])
        batched = domain.project_batch(thetas)
        for r, row in enumerate(thetas):
            np.testing.assert_array_equal(batched[r], domain.project(row))

    @pytest.mark.parametrize("domain", [
        Interval(1.0, 10.0),
        Box([("lam1", 1.0, 7.0), ("lam2", 2.0, 3.0)]),
        DiscreteSet([[1.0, 0.0], [4.0, 2.0]]),
    ], ids=lambda d: type(d).__name__)
    def test_wrong_width_rejected(self, domain):
        with pytest.raises(ValueError):
            domain.project_batch(np.zeros((4, domain.dim + 1)))
