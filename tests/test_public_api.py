"""The top-level package exposes the documented public API."""

import importlib.util
import pathlib

import repro

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.2.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            if name == "__version__":
                continue
            assert hasattr(repro, name), f"missing export {name}"

    def test_quickstart_snippet_from_docstring(self):
        """The usage example in the package docstring must run."""
        import numpy as np

        model = repro.make_sir_model()
        x0 = [0.7, 0.3]
        horizons = np.array([0.5, 1.0])
        imprecise = repro.pontryagin_transient_bounds(
            model, x0, horizons, observables=["I"], steps_per_unit=40,
        )
        uncertain = repro.uncertain_envelope(
            model, x0, np.insert(horizons, 0, 0.0), resolution=5,
        )
        assert imprecise.upper["I"][0] >= uncertain.upper["I"][1] - 1e-6

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.bounds
        import repro.ctmc
        import repro.engine
        import repro.geometry
        import repro.inclusion
        import repro.meanfield
        import repro.models
        import repro.ode
        import repro.params
        import repro.population
        import repro.reporting
        import repro.simulation
        import repro.steadystate  # noqa: F401

    def test_examples_import_and_define_main(self):
        """Every shipped example loads against the public API.

        Loading executes imports and definitions only (the run is behind
        an ``if __name__`` guard); the full executions are exercised
        manually and by the documented commands.
        """
        scripts = sorted(EXAMPLES_DIR.glob("*.py"))
        assert len(scripts) >= 5
        for script in scripts:
            spec = importlib.util.spec_from_file_location(script.stem, script)
            module = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(module)
            assert hasattr(module, "main"), script.name

    def test_subpackage_alls_resolve(self):
        import importlib

        for pkg in (
            "repro.params", "repro.geometry", "repro.ode", "repro.population",
            "repro.models", "repro.inclusion", "repro.meanfield",
            "repro.bounds", "repro.steadystate", "repro.simulation",
            "repro.engine", "repro.ctmc", "repro.analysis", "repro.reporting",
        ):
            module = importlib.import_module(pkg)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{pkg}.{name} missing"
