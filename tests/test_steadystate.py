"""Tests for Birkhoff centres and stationary hull rectangles."""

import numpy as np
import pytest

from repro.models import make_sir_model
from repro.steadystate import (
    birkhoff_centre_2d,
    hull_steady_rectangle,
    uncertain_fixed_points,
)


@pytest.fixture(scope="module")
def sir_birkhoff():
    """The paper's Figure-3 region (computed once for the module)."""
    model = make_sir_model()
    return model, birkhoff_centre_2d(model, x0_guess=[0.7, 0.05])


class TestUncertainFixedPoints:
    def test_curve_shape(self, sir_model):
        curve = uncertain_fixed_points(sir_model, resolution=9)
        assert curve.shape == (9, 2)

    def test_fixed_points_have_zero_drift(self, sir_model):
        curve = uncertain_fixed_points(sir_model, resolution=5)
        thetas = sir_model.theta_set.grid(5)
        for fp, theta in zip(curve, thetas):
            assert np.linalg.norm(sir_model.drift(fp, theta)) < 1e-7

    def test_endpoint_fixed_points_match_paper_extremes(self, sir_model):
        curve = uncertain_fixed_points(sir_model, resolution=11)
        # theta = 1 equilibrium: high S, low I; theta = 10: low S, higher I.
        assert curve[0, 0] > 0.85  # S at theta_min
        assert curve[-1, 0] < 0.5  # S at theta_max
        assert curve[-1, 1] > curve[0, 1]  # I increases with theta

    def test_monotone_s_in_theta(self, sir_model):
        curve = uncertain_fixed_points(sir_model, resolution=15)
        assert np.all(np.diff(curve[:, 0]) < 1e-9)


class TestBirkhoffCentre:
    def test_requires_2d(self, gps_map):
        with pytest.raises(ValueError):
            birkhoff_centre_2d(gps_map)

    def test_converged_with_polygon(self, sir_birkhoff):
        _, result = sir_birkhoff
        assert result.converged
        assert not result.degenerate
        assert result.polygon is not None
        assert result.polygon.area > 0.01

    def test_corner_fixed_points_on_boundary_region(self, sir_birkhoff):
        _, result = sir_birkhoff
        for fp in result.corner_fixed_points:
            assert result.contains(fp, tol=1e-3)

    def test_uncertain_fixed_points_inside(self, sir_birkhoff):
        """Figure 3: the uncertain steady states lie in the imprecise region."""
        model, result = sir_birkhoff
        curve = uncertain_fixed_points(model, resolution=11)
        for fp in curve:
            assert result.contains(fp, tol=1e-3)

    def test_region_strictly_larger_than_uncertain_curve(self, sir_birkhoff):
        """Figure 3's key claim: points with smaller S / larger I than any
        uncertain equilibrium belong to the imprecise steady-state set."""
        model, result = sir_birkhoff
        curve = uncertain_fixed_points(model, resolution=21)
        vertices = result.polygon.vertices
        assert vertices[:, 0].min() < curve[:, 0].min() - 0.01
        assert vertices[:, 1].max() > curve[:, 1].max() + 0.01

    def test_distance_and_membership(self, sir_birkhoff):
        _, result = sir_birkhoff
        centroid = result.polygon.centroid
        assert result.contains(centroid)
        assert result.distance(centroid) == 0.0
        assert result.distance([2.0, 2.0]) > 1.0

    def test_region_shrinks_with_theta_range(self, sir_birkhoff):
        _, wide = sir_birkhoff
        narrow_model = make_sir_model(theta_max=2.0)
        narrow = birkhoff_centre_2d(narrow_model, x0_guess=[0.7, 0.05])
        assert narrow.converged
        assert narrow.polygon.area < wide.polygon.area

    def test_degenerate_for_singleton_theta(self):
        model = make_sir_model(theta_min=5.0, theta_max=5.0)
        result = birkhoff_centre_2d(model, x0_guess=[0.7, 0.05])
        assert result.degenerate
        assert result.certified
        # The degenerate region is the unique equilibrium.
        fp = result.corner_fixed_points[0]
        assert np.linalg.norm(model.drift(fp, [5.0])) < 1e-8
        assert result.contains(fp, tol=1e-6)
        assert result.distance(fp) < 1e-6

    def test_history_recorded(self, sir_birkhoff):
        _, result = sir_birkhoff
        assert len(result.history) == result.rounds


class TestHullSteadyRectangle:
    def test_narrow_theta_converges(self):
        model = make_sir_model(theta_max=2.0)
        rect = hull_steady_rectangle(model, [0.7, 0.3])
        assert rect.converged
        assert np.all(rect.widths() >= 0)
        assert np.all(rect.lower >= -0.05)
        assert np.all(rect.upper <= 1.05)

    def test_rectangle_contains_birkhoff_region(self):
        model = make_sir_model(theta_max=2.0)
        rect = hull_steady_rectangle(model, [0.7, 0.3])
        region = birkhoff_centre_2d(model, x0_guess=[0.7, 0.05])
        for vertex in region.polygon.vertices:
            assert rect.contains(vertex, tol=1e-2)

    def test_wide_theta_diverges(self):
        model = make_sir_model(theta_max=6.0)
        rect = hull_steady_rectangle(model, [0.7, 0.3], horizon=50.0)
        assert not rect.converged

    def test_rectangle_contains_uncertain_fixed_points(self):
        model = make_sir_model(theta_max=3.0)
        rect = hull_steady_rectangle(model, [0.7, 0.3])
        curve = uncertain_fixed_points(model, resolution=9)
        for fp in curve:
            assert rect.contains(fp, tol=1e-2)
