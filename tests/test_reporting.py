"""Tests for the reporting layer (repro.reporting)."""

import json

import numpy as np
import pytest

from repro.reporting import ExperimentResult, Series, render_series_table, render_table


class TestSeries:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Series("s", [0.0, 1.0], [1.0])

    def test_final_and_at(self):
        s = Series("s", [0.0, 1.0, 2.0], [0.0, 2.0, 4.0])
        assert s.final == 4.0
        assert s.at(0.5) == pytest.approx(1.0)
        assert s.at(1.5) == pytest.approx(3.0)


class TestExperimentResult:
    def make(self):
        result = ExperimentResult("fig1", "SIR transient bounds",
                                  parameters={"theta_max": 10.0})
        result.add_series("upper", [0.0, 1.0], [0.3, 0.2])
        result.add_series("lower", [0.0, 1.0], [0.3, 0.05])
        result.add_finding("gap_at_1", 0.15)
        result.add_note("imprecise envelope wider than uncertain")
        return result

    def test_series_accessible(self):
        result = self.make()
        assert set(result.series) == {"upper", "lower"}
        assert result.series["upper"].final == pytest.approx(0.2)

    def test_findings(self):
        result = self.make()
        assert result.findings["gap_at_1"] == pytest.approx(0.15)

    def test_render_contains_everything(self):
        text = self.make().render()
        assert "fig1" in text
        assert "theta_max" in text
        assert "gap_at_1" in text
        assert "upper" in text
        assert "note:" in text

    def test_render_with_time_points(self):
        text = self.make().render(time_points=[0.0, 1.0])
        assert text.count("\n") > 3

    def test_to_json_roundtrip(self):
        payload = json.loads(self.make().to_json())
        assert payload["experiment_id"] == "fig1"
        assert payload["parameters"]["theta_max"] == 10.0
        assert payload["series"]["upper"]["values"] == [0.3, 0.2]

    def test_json_handles_numpy_types(self):
        result = ExperimentResult(
            "x", "t", parameters={"arr": np.array([1.0, 2.0]),
                                  "num": np.float64(3.5),
                                  "tup": (1, 2)}
        )
        payload = json.loads(result.to_json())
        assert payload["parameters"]["arr"] == [1.0, 2.0]
        assert payload["parameters"]["num"] == 3.5
        assert payload["parameters"]["tup"] == [1, 2]

    def test_from_json_roundtrip_is_lossless(self):
        original = self.make()
        rebuilt = ExperimentResult.from_json(original.to_json())
        assert rebuilt.experiment_id == original.experiment_id
        assert rebuilt.title == original.title
        assert rebuilt.parameters == original.parameters
        assert rebuilt.findings == pytest.approx(original.findings)
        assert rebuilt.notes == original.notes
        assert set(rebuilt.series) == set(original.series)
        for name, series in original.series.items():
            np.testing.assert_array_equal(series.times,
                                          rebuilt.series[name].times)
            np.testing.assert_array_equal(series.values,
                                          rebuilt.series[name].values)
        # A second trip is byte-identical (the round trip is a fixpoint).
        assert rebuilt.to_json() == ExperimentResult.from_json(
            rebuilt.to_json()
        ).to_json()

    def test_from_json_accepts_parsed_dicts(self):
        payload = json.loads(self.make().to_json())
        rebuilt = ExperimentResult.from_json(payload)
        assert rebuilt.series["upper"].final == pytest.approx(0.2)

    def test_from_json_preserves_nonfinite_values(self):
        result = ExperimentResult("h", "hull blow-up")
        result.add_series("upper", [0.0, 1.0], [1.0, np.inf])
        result.add_finding("width", np.inf)
        rebuilt = ExperimentResult.from_json(result.to_json())
        assert np.isposinf(rebuilt.series["upper"].values[-1])
        assert np.isposinf(rebuilt.findings["width"])

    def test_from_json_rejects_malformed_payloads(self):
        with pytest.raises(ValueError, match="experiment_id"):
            ExperimentResult.from_json({"title": "missing id"})
        with pytest.raises(TypeError):
            ExperimentResult.from_json(["not", "a", "dict"])
        with pytest.raises(ValueError, match="times"):
            Series.from_json("s", {"values": [1.0]})


class TestRenderTable:
    def test_alignment_and_rule(self):
        text = render_table(["name", "value"], [["a", 1.0], ["bb", 2.5]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) == {"-"}
        assert len(lines) == 4

    def test_float_formatting(self):
        text = render_table(["v"], [[1.23456789]], float_format="{:.2f}")
        assert "1.23" in text

    def test_row_length_validated(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_render_series_table_empty(self):
        assert render_series_table({}) == "(no series)"

    def test_render_series_table_subsamples(self):
        t = np.linspace(0, 1, 100)
        series = {"a": Series("a", t, t**2)}
        text = render_series_table(series, max_rows=5)
        # header + rule + 5 rows
        assert len(text.splitlines()) == 7

    def test_render_series_table_common_grid(self):
        s1 = Series("a", [0.0, 1.0], [0.0, 1.0])
        s2 = Series("b", [0.0, 0.5, 1.0], [1.0, 1.0, 1.0])
        text = render_series_table({"a": s1, "b": s2}, time_points=[0.0, 1.0])
        lines = text.splitlines()
        assert lines[0].split()[0] == "t"
        assert len(lines) == 4
