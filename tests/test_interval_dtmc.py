"""Tests for interval-probability DTMCs (repro.ctmc.interval_dtmc)."""

import numpy as np
import pytest

from repro.ctmc import ImpreciseCTMC, IntervalDTMC, imprecise_reward_bounds
from repro.models import make_bike_station_model


def two_state_dtmc(width=0.1):
    """2-state chain with interval self-loop probabilities."""
    lower = np.array([[0.7 - width, 0.3 - width],
                      [0.4 - width, 0.6 - width]])
    upper = np.array([[0.7 + width, 0.3 + width],
                      [0.4 + width, 0.6 + width]])
    return IntervalDTMC(lower, upper)


class TestValidation:
    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            IntervalDTMC(np.zeros((2, 3)), np.ones((2, 3)))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            IntervalDTMC(np.zeros((2, 2)), np.ones((3, 3)))

    def test_bounds_order_rejected(self):
        with pytest.raises(ValueError):
            IntervalDTMC(np.full((2, 2), 0.6), np.full((2, 2), 0.4))

    def test_out_of_unit_interval_rejected(self):
        with pytest.raises(ValueError):
            IntervalDTMC(np.full((2, 2), -0.2), np.full((2, 2), 0.5))

    def test_empty_credal_set_rejected(self):
        # Row sums of upper bounds below 1: no distribution fits.
        with pytest.raises(ValueError):
            IntervalDTMC(np.zeros((2, 2)), np.full((2, 2), 0.3))

    def test_precise_chain_accepted(self):
        p = np.array([[0.5, 0.5], [0.2, 0.8]])
        dtmc = IntervalDTMC(p, p)
        np.testing.assert_allclose(dtmc.extreme_row(0, [1.0, 0.0]), p[0])


class TestRowOptimisation:
    def test_extreme_row_is_distribution(self):
        dtmc = two_state_dtmc()
        for row in range(2):
            for reward in ([1.0, 0.0], [0.0, 1.0], [0.3, -0.7]):
                p = dtmc.extreme_row(row, reward)
                assert p.sum() == pytest.approx(1.0)
                assert np.all(p >= dtmc.lower[row] - 1e-12)
                assert np.all(p <= dtmc.upper[row] + 1e-12)

    def test_extreme_row_maximises_over_samples(self, rng):
        dtmc = two_state_dtmc()
        reward = np.array([0.9, -0.4])
        best = float(dtmc.extreme_row(0, reward) @ reward)
        # Random admissible rows never beat the knapsack optimum.
        for _ in range(200):
            p = rng.uniform(dtmc.lower[0], dtmc.upper[0])
            total = p.sum()
            if not 0.999 <= total <= 1.001:
                continue
            p = p / total
            if np.any(p < dtmc.lower[0] - 1e-9) or np.any(p > dtmc.upper[0] + 1e-9):
                continue
            assert p @ reward <= best + 1e-9

    def test_reward_shape_validated(self):
        with pytest.raises(ValueError):
            two_state_dtmc().extreme_row(0, [1.0, 2.0, 3.0])


class TestToleranceRenormalization:
    """Rows admitted under the constructor's 1e-9 feasibility tolerance
    must still come back stochastic (regression: negative slack was
    silently kept, returning a super-stochastic row)."""

    def test_super_stochastic_lower_sum_renormalized(self):
        lower = np.array([[0.6, 0.4 + 5e-10], [0.3, 0.7]])
        upper = np.array([[0.7, 0.5], [0.4, 0.8]])
        dtmc = IntervalDTMC(lower, upper)
        for maximize in (True, False):
            p = dtmc.extreme_row(0, [1.0, 0.0], maximize=maximize)
            assert p.sum() == pytest.approx(1.0, abs=1e-14)
            batch = dtmc.extreme_rows_batch(np.array([1.0, 0.0]),
                                            maximize=maximize)
            np.testing.assert_array_equal(batch[0], p)

    def test_sub_stochastic_upper_sum_renormalized(self):
        lower = np.array([[0.2, 0.2], [0.3, 0.3]])
        upper = np.array([[0.5, 0.5 - 5e-10], [0.6, 0.6]])
        dtmc = IntervalDTMC(lower, upper)
        p = dtmc.extreme_row(0, [1.0, 0.0])
        assert p.sum() == pytest.approx(1.0, abs=1e-14)

    def test_exactly_feasible_rows_untouched(self):
        p = np.array([[0.5, 0.5], [0.2, 0.8]])
        dtmc = IntervalDTMC(p, p)
        np.testing.assert_array_equal(dtmc.extreme_row(0, [1.0, 0.0]), p[0])


class TestExpectations:
    def test_zero_steps_identity(self):
        dtmc = two_state_dtmc()
        reward = np.array([1.0, 0.0])
        np.testing.assert_allclose(dtmc.upper_expectation(reward, 0), reward)

    def test_upper_dominates_lower(self):
        dtmc = two_state_dtmc()
        reward = np.array([1.0, -1.0])
        for steps in (1, 3, 10):
            lo, hi = dtmc.expectation_bounds(reward, steps)
            assert np.all(lo <= hi + 1e-12)

    def test_precise_chain_matches_matrix_power(self):
        p = np.array([[0.5, 0.5], [0.2, 0.8]])
        dtmc = IntervalDTMC(p, p)
        reward = np.array([1.0, 0.0])
        expected = np.linalg.matrix_power(p, 4) @ reward
        np.testing.assert_allclose(dtmc.upper_expectation(reward, 4),
                                   expected, atol=1e-12)
        np.testing.assert_allclose(dtmc.lower_expectation(reward, 4),
                                   expected, atol=1e-12)

    def test_width_grows_with_interval_width(self):
        reward = np.array([1.0, 0.0])
        widths = []
        for w in (0.02, 0.1):
            dtmc = two_state_dtmc(width=w)
            lo, hi = dtmc.expectation_bounds(reward, 5)
            widths.append(float(np.max(hi - lo)))
        assert widths[1] > widths[0]

    def test_bounded_reward_stays_bounded(self):
        dtmc = two_state_dtmc()
        reward = np.array([1.0, 0.0])
        hi = dtmc.upper_expectation(reward, 20)
        lo = dtmc.lower_expectation(reward, 20)
        assert np.all(hi <= 1.0 + 1e-9)
        assert np.all(lo >= -1e-9)

    def test_negative_steps_rejected(self):
        with pytest.raises(ValueError):
            two_state_dtmc().upper_expectation([1.0, 0.0], -1)


class TestStationary:
    def test_zero_max_iter_raises_value_error(self):
        # Regression: used to die with UnboundLocalError on `spread`.
        with pytest.raises(ValueError, match="max_iter"):
            two_state_dtmc().stationary_expectation_bounds(
                [1.0, 0.0], max_iter=0
            )

    def test_failure_message_reports_final_iterate(self):
        # A deterministic 2-cycle never flattens; the error must report
        # the final iterate's spread and step size, not a stale value.
        p = np.array([[0.0, 1.0], [1.0, 0.0]])
        dtmc = IntervalDTMC(p, p)
        with pytest.raises(RuntimeError) as excinfo:
            dtmc.stationary_expectation_bounds([1.0, 0.0], max_iter=5)
        message = str(excinfo.value)
        assert "did not flatten within 5 steps" in message
        assert "final spread 1.00e+00" in message
        assert "last step moved 1.00e+00" in message

    def test_regular_chain_bounds_ordered(self):
        dtmc = two_state_dtmc()
        lo, hi = dtmc.stationary_expectation_bounds([1.0, 0.0])
        assert lo <= hi
        assert dtmc.stationary_expectation_bounds(
            [1.0, 0.0], batch=False
        ) == (lo, hi)


class TestUniformizedBounds:
    def test_zero_horizon_is_reward_range(self):
        dtmc = two_state_dtmc()
        reward = np.array([1.0, 0.0])
        lo, hi = dtmc.uniformized_bounds(reward, 0.0, rate=10.0)
        np.testing.assert_allclose(lo, reward, atol=1e-12)
        np.testing.assert_allclose(hi, reward, atol=1e-12)

    def test_bounds_ordered_and_within_reward_range(self):
        dtmc = two_state_dtmc()
        reward = np.array([1.0, -1.0])
        lo, hi = dtmc.uniformized_bounds(reward, 2.0, rate=5.0)
        assert np.all(lo <= hi + 1e-12)
        assert np.all(hi <= 1.0 + 1e-9) and np.all(lo >= -1.0 - 1e-9)

    def test_invalid_arguments_rejected(self):
        dtmc = two_state_dtmc()
        with pytest.raises(ValueError):
            dtmc.uniformized_bounds([1.0, 0.0], -1.0, rate=5.0)
        with pytest.raises(ValueError):
            dtmc.uniformized_bounds([1.0, 0.0], 1.0, rate=0.0)


class TestUniformization:
    @pytest.fixture(scope="class")
    def bike_chain(self):
        model = make_bike_station_model()
        return ImpreciseCTMC(model.instantiate(8, [0.5]))

    def test_roundtrip_shapes(self, bike_chain):
        dtmc, rate = IntervalDTMC.from_imprecise_ctmc(bike_chain)
        assert dtmc.n_states == bike_chain.n_states
        assert rate > 0

    def test_rows_contain_corner_matrices(self, bike_chain):
        dtmc, rate = IntervalDTMC.from_imprecise_ctmc(bike_chain)
        for theta in bike_chain.model.theta_set.corners():
            p = (np.eye(bike_chain.n_states)
                 + bike_chain.generator(theta).toarray() / rate)
            assert np.all(p >= dtmc.lower - 1e-12)
            assert np.all(p <= dtmc.upper + 1e-12)

    def test_conservative_vs_exact_kolmogorov(self, bike_chain):
        """The entry-wise interval relaxation must bracket the exact
        imprecise-CTMC bound (it forgets the theta coupling)."""
        reward = (bike_chain.states[:, 0] == 0).astype(float)
        horizon = 2.0
        exact = imprecise_reward_bounds(bike_chain, reward, horizon,
                                        maximize=True, n_steps=150)
        dtmc, rate = IntervalDTMC.from_imprecise_ctmc(bike_chain)
        steps = int(np.ceil(horizon * rate))
        relaxed = dtmc.upper_expectation(reward, steps)
        # Starting state is row 0 of the enumeration.
        assert relaxed[0] >= exact.value - 5e-3

    def test_invalid_rate_rejected(self, bike_chain):
        with pytest.raises(ValueError):
            IntervalDTMC.from_imprecise_ctmc(bike_chain,
                                             uniformization_rate=-1.0)

    def test_dense_generator_chain_accepted(self, bike_chain):
        """Regression: duck-typed chains returning dense ndarrays used
        to crash on the assumed ``.toarray()``."""

        class DenseChain:
            model = bike_chain.model
            states = bike_chain.states
            n_states = bike_chain.n_states

            @staticmethod
            def generator(theta):
                return bike_chain.generator(theta).toarray()

        dense_dtmc, dense_rate = IntervalDTMC.from_imprecise_ctmc(DenseChain())
        sparse_dtmc, sparse_rate = IntervalDTMC.from_imprecise_ctmc(bike_chain)
        assert dense_rate == sparse_rate
        np.testing.assert_array_equal(dense_dtmc.lower, sparse_dtmc.lower)
        np.testing.assert_array_equal(dense_dtmc.upper, sparse_dtmc.upper)
