"""Tests for interval-probability DTMCs (repro.ctmc.interval_dtmc)."""

import numpy as np
import pytest

from repro.ctmc import ImpreciseCTMC, IntervalDTMC, imprecise_reward_bounds
from repro.models import make_bike_station_model


def two_state_dtmc(width=0.1):
    """2-state chain with interval self-loop probabilities."""
    lower = np.array([[0.7 - width, 0.3 - width],
                      [0.4 - width, 0.6 - width]])
    upper = np.array([[0.7 + width, 0.3 + width],
                      [0.4 + width, 0.6 + width]])
    return IntervalDTMC(lower, upper)


class TestValidation:
    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            IntervalDTMC(np.zeros((2, 3)), np.ones((2, 3)))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            IntervalDTMC(np.zeros((2, 2)), np.ones((3, 3)))

    def test_bounds_order_rejected(self):
        with pytest.raises(ValueError):
            IntervalDTMC(np.full((2, 2), 0.6), np.full((2, 2), 0.4))

    def test_out_of_unit_interval_rejected(self):
        with pytest.raises(ValueError):
            IntervalDTMC(np.full((2, 2), -0.2), np.full((2, 2), 0.5))

    def test_empty_credal_set_rejected(self):
        # Row sums of upper bounds below 1: no distribution fits.
        with pytest.raises(ValueError):
            IntervalDTMC(np.zeros((2, 2)), np.full((2, 2), 0.3))

    def test_precise_chain_accepted(self):
        p = np.array([[0.5, 0.5], [0.2, 0.8]])
        dtmc = IntervalDTMC(p, p)
        np.testing.assert_allclose(dtmc.extreme_row(0, [1.0, 0.0]), p[0])


class TestRowOptimisation:
    def test_extreme_row_is_distribution(self):
        dtmc = two_state_dtmc()
        for row in range(2):
            for reward in ([1.0, 0.0], [0.0, 1.0], [0.3, -0.7]):
                p = dtmc.extreme_row(row, reward)
                assert p.sum() == pytest.approx(1.0)
                assert np.all(p >= dtmc.lower[row] - 1e-12)
                assert np.all(p <= dtmc.upper[row] + 1e-12)

    def test_extreme_row_maximises_over_samples(self, rng):
        dtmc = two_state_dtmc()
        reward = np.array([0.9, -0.4])
        best = float(dtmc.extreme_row(0, reward) @ reward)
        # Random admissible rows never beat the knapsack optimum.
        for _ in range(200):
            p = rng.uniform(dtmc.lower[0], dtmc.upper[0])
            total = p.sum()
            if not 0.999 <= total <= 1.001:
                continue
            p = p / total
            if np.any(p < dtmc.lower[0] - 1e-9) or np.any(p > dtmc.upper[0] + 1e-9):
                continue
            assert p @ reward <= best + 1e-9

    def test_reward_shape_validated(self):
        with pytest.raises(ValueError):
            two_state_dtmc().extreme_row(0, [1.0, 2.0, 3.0])


class TestExpectations:
    def test_zero_steps_identity(self):
        dtmc = two_state_dtmc()
        reward = np.array([1.0, 0.0])
        np.testing.assert_allclose(dtmc.upper_expectation(reward, 0), reward)

    def test_upper_dominates_lower(self):
        dtmc = two_state_dtmc()
        reward = np.array([1.0, -1.0])
        for steps in (1, 3, 10):
            lo, hi = dtmc.expectation_bounds(reward, steps)
            assert np.all(lo <= hi + 1e-12)

    def test_precise_chain_matches_matrix_power(self):
        p = np.array([[0.5, 0.5], [0.2, 0.8]])
        dtmc = IntervalDTMC(p, p)
        reward = np.array([1.0, 0.0])
        expected = np.linalg.matrix_power(p, 4) @ reward
        np.testing.assert_allclose(dtmc.upper_expectation(reward, 4),
                                   expected, atol=1e-12)
        np.testing.assert_allclose(dtmc.lower_expectation(reward, 4),
                                   expected, atol=1e-12)

    def test_width_grows_with_interval_width(self):
        reward = np.array([1.0, 0.0])
        widths = []
        for w in (0.02, 0.1):
            dtmc = two_state_dtmc(width=w)
            lo, hi = dtmc.expectation_bounds(reward, 5)
            widths.append(float(np.max(hi - lo)))
        assert widths[1] > widths[0]

    def test_bounded_reward_stays_bounded(self):
        dtmc = two_state_dtmc()
        reward = np.array([1.0, 0.0])
        hi = dtmc.upper_expectation(reward, 20)
        lo = dtmc.lower_expectation(reward, 20)
        assert np.all(hi <= 1.0 + 1e-9)
        assert np.all(lo >= -1e-9)

    def test_negative_steps_rejected(self):
        with pytest.raises(ValueError):
            two_state_dtmc().upper_expectation([1.0, 0.0], -1)


class TestUniformization:
    @pytest.fixture(scope="class")
    def bike_chain(self):
        model = make_bike_station_model()
        return ImpreciseCTMC(model.instantiate(8, [0.5]))

    def test_roundtrip_shapes(self, bike_chain):
        dtmc, rate = IntervalDTMC.from_imprecise_ctmc(bike_chain)
        assert dtmc.n_states == bike_chain.n_states
        assert rate > 0

    def test_rows_contain_corner_matrices(self, bike_chain):
        dtmc, rate = IntervalDTMC.from_imprecise_ctmc(bike_chain)
        for theta in bike_chain.model.theta_set.corners():
            p = (np.eye(bike_chain.n_states)
                 + bike_chain.generator(theta).toarray() / rate)
            assert np.all(p >= dtmc.lower - 1e-12)
            assert np.all(p <= dtmc.upper + 1e-12)

    def test_conservative_vs_exact_kolmogorov(self, bike_chain):
        """The entry-wise interval relaxation must bracket the exact
        imprecise-CTMC bound (it forgets the theta coupling)."""
        reward = (bike_chain.states[:, 0] == 0).astype(float)
        horizon = 2.0
        exact = imprecise_reward_bounds(bike_chain, reward, horizon,
                                        maximize=True, n_steps=150)
        dtmc, rate = IntervalDTMC.from_imprecise_ctmc(bike_chain)
        steps = int(np.ceil(horizon * rate))
        relaxed = dtmc.upper_expectation(reward, steps)
        # Starting state is row 0 of the enumeration.
        assert relaxed[0] >= exact.value - 5e-3

    def test_invalid_rate_rejected(self, bike_chain):
        with pytest.raises(ValueError):
            IntervalDTMC.from_imprecise_ctmc(bike_chain,
                                             uniformization_rate=-1.0)
