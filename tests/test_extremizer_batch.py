"""Differential tests: batched extremization == legacy scalar loop.

The batched kernels of :class:`repro.inclusion.DriftExtremizer` (and the
model-level ``affine_parts_batch`` / ``drift_batch`` they sit on) claim
*exactness*: every row of a batched call must reproduce the scalar
evaluation of that row, in both the support value and the maximising
``theta``.  This suite pins that claim across the whole model catalog,
random states and directions, and all three strategies — it is the test
the ``batch=False`` legacy path exists for, and CI fails if any of it is
skipped.
"""

import numpy as np
import pytest

from repro.bounds import (
    differential_hull_bounds,
    extremal_trajectory,
    template_reachable_bounds,
)
from repro.inclusion import DriftExtremizer, ParametricInclusion
from repro.models import (
    make_autoscaler_model,
    make_bike_station_model,
    make_cdn_cache_model,
    make_csma_model,
    make_gossip_model,
    make_gps_map_model,
    make_gps_poisson_model,
    make_power_of_d_model,
    make_repairable_queue_model,
    make_seir_model,
    make_sir_full_model,
    make_sir_model,
    make_ttl_cache_model,
)
from repro.params import DiscreteSet, Interval
from repro.population import PopulationModel, Transition

CATALOG_FACTORIES = [
    make_sir_model,
    make_sir_full_model,
    make_seir_model,
    make_gossip_model,
    make_repairable_queue_model,
    make_cdn_cache_model,
    make_bike_station_model,
    make_power_of_d_model,
    make_gps_poisson_model,
    make_gps_map_model,
    make_autoscaler_model,
    make_ttl_cache_model,
    make_csma_model,
]

STRATEGIES = ("affine", "corners", "grid")

N_POINTS = 8


def _random_batch(model, rng):
    """A batch of admissible-ish states and generic directions."""
    states = rng.uniform(0.0, 1.0, size=(N_POINTS, model.dim))
    directions = rng.normal(size=(N_POINTS, model.dim))
    return states, directions


@pytest.mark.parametrize("factory", CATALOG_FACTORIES,
                         ids=lambda f: f.__name__)
@pytest.mark.parametrize("method", STRATEGIES)
class TestBatchedEqualsScalar:
    def test_maximize_direction_values_and_argmax(self, factory, method):
        model = factory()
        rng = np.random.default_rng(20160527)
        states, directions = _random_batch(model, rng)
        batched = DriftExtremizer(model, method=method, grid_resolution=5)
        scalar = DriftExtremizer(model, method=method, grid_resolution=5,
                                 batch=False)
        thetas_b, values_b = batched.maximize_direction_batch(states, directions)
        thetas_s, values_s = scalar.maximize_direction_batch(states, directions)
        np.testing.assert_allclose(values_b, values_s, rtol=1e-12, atol=1e-12)
        np.testing.assert_array_equal(thetas_b, thetas_s)

    def test_scalar_api_delegates_to_batch_kernels(self, factory, method):
        model = factory()
        rng = np.random.default_rng(11)
        states, directions = _random_batch(model, rng)
        batched = DriftExtremizer(model, method=method, grid_resolution=5)
        scalar = DriftExtremizer(model, method=method, grid_resolution=5,
                                 batch=False)
        for x, p in zip(states, directions):
            theta_b, value_b = batched.maximize_direction(x, p)
            theta_s, value_s = scalar.maximize_direction(x, p)
            assert value_b == pytest.approx(value_s, rel=1e-12, abs=1e-12)
            np.testing.assert_array_equal(theta_b, theta_s)

    def test_minimize_direction_batch_matches_scalar(self, factory, method):
        model = factory()
        rng = np.random.default_rng(42)
        states, directions = _random_batch(model, rng)
        batched = DriftExtremizer(model, method=method, grid_resolution=5)
        scalar = DriftExtremizer(model, method=method, grid_resolution=5,
                                 batch=False)
        thetas_b, values_b = batched.minimize_direction_batch(
            states, directions
        )
        for r, (x, p) in enumerate(zip(states, directions)):
            theta_s, value_s = scalar.minimize_direction(x, p)
            assert values_b[r] == pytest.approx(value_s, rel=1e-12, abs=1e-12)
            np.testing.assert_array_equal(thetas_b[r], theta_s)

    def test_velocity_envelope_batch(self, factory, method):
        model = factory()
        rng = np.random.default_rng(7)
        states, _ = _random_batch(model, rng)
        batched = DriftExtremizer(model, method=method, grid_resolution=5)
        scalar = DriftExtremizer(model, method=method, grid_resolution=5,
                                 batch=False)
        lower_b, upper_b = batched.velocity_envelope_batch(states)
        for r, x in enumerate(states):
            lower_s, upper_s = scalar.velocity_envelope(x)
            np.testing.assert_allclose(lower_b[r], lower_s, rtol=1e-12,
                                       atol=1e-12)
            np.testing.assert_allclose(upper_b[r], upper_s, rtol=1e-12,
                                       atol=1e-12)

    def test_support_and_coordinate_range_batch(self, factory, method):
        model = factory()
        rng = np.random.default_rng(99)
        states, directions = _random_batch(model, rng)
        batched = DriftExtremizer(model, method=method, grid_resolution=5)
        scalar = DriftExtremizer(model, method=method, grid_resolution=5,
                                 batch=False)
        values = batched.support_batch(states, directions)
        for r, (x, p) in enumerate(zip(states, directions)):
            assert values[r] == pytest.approx(scalar.support(x, p), rel=1e-12,
                                              abs=1e-12)
        index = model.dim - 1
        lower_b, upper_b = batched.coordinate_range_batch(states, index)
        for r, x in enumerate(states):
            lower_s, upper_s = scalar.coordinate_range(x, index)
            assert lower_b[r] == pytest.approx(lower_s, rel=1e-12, abs=1e-12)
            assert upper_b[r] == pytest.approx(upper_s, rel=1e-12, abs=1e-12)


class TestModelBatchKernels:
    @pytest.mark.parametrize("factory", CATALOG_FACTORIES,
                             ids=lambda f: f.__name__)
    def test_affine_parts_batch_matches_scalar(self, factory):
        model = factory()
        rng = np.random.default_rng(3)
        states = rng.uniform(0.0, 1.0, size=(N_POINTS, model.dim))
        g0s, big_gs = model.affine_parts_batch(states)
        assert g0s.shape == (N_POINTS, model.dim)
        assert big_gs.shape == (N_POINTS, model.dim, model.theta_dim)
        for r, x in enumerate(states):
            g0, big_g = model.affine_parts(x)
            np.testing.assert_allclose(g0s[r], g0, rtol=1e-12, atol=1e-12)
            np.testing.assert_allclose(big_gs[r], big_g, rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("factory", CATALOG_FACTORIES,
                             ids=lambda f: f.__name__)
    def test_drift_batch_matches_scalar(self, factory):
        model = factory()
        rng = np.random.default_rng(5)
        states = rng.uniform(0.0, 1.0, size=(N_POINTS, model.dim))
        thetas = model.theta_set.sample(rng, N_POINTS)
        drifts = model.drift_batch(states, thetas)
        assert drifts.shape == (N_POINTS, model.dim)
        for r in range(N_POINTS):
            np.testing.assert_allclose(
                drifts[r], model.drift(states[r], thetas[r]),
                rtol=1e-12, atol=1e-12,
            )

    @pytest.mark.parametrize("factory", CATALOG_FACTORIES,
                             ids=lambda f: f.__name__)
    def test_jacobian_x_batch_matches_scalar(self, factory):
        model = factory()
        rng = np.random.default_rng(13)
        states = rng.uniform(0.0, 1.0, size=(N_POINTS, model.dim))
        thetas = model.theta_set.sample(rng, N_POINTS)
        jacs = model.jacobian_x_batch(states, thetas)
        assert jacs.shape == (N_POINTS, model.dim, model.dim)
        for r in range(N_POINTS):
            np.testing.assert_allclose(
                jacs[r], model.jacobian_x(states[r], thetas[r]),
                rtol=1e-12, atol=1e-12,
            )

    def test_jacobian_x_batch_row_mismatch_rejected(self):
        model = make_sir_model()
        states = np.full((3, model.dim), 0.4)
        thetas = model.theta_set.sample(np.random.default_rng(0), 2)
        with pytest.raises(ValueError, match="rows"):
            model.jacobian_x_batch(states, thetas)

    def test_affine_parts_batch_without_declaration_falls_back(self):
        tr = Transition("t", [1.0], lambda x, th: x[0] * th[0])
        model = PopulationModel(
            "plain", ("x",), [tr], Interval(0.0, 2.0),
            affine_drift=lambda x: (np.zeros(1), np.array([[float(x[0])]])),
        )
        states = np.array([[0.25], [0.5], [2.0]])
        g0s, big_gs = model.affine_parts_batch(states)
        np.testing.assert_allclose(big_gs[:, 0, 0], states[:, 0])
        np.testing.assert_allclose(g0s, 0.0)

    def test_wrong_batch_declaration_rejected(self):
        tr = Transition("t", [1.0], lambda x, th: x[0] * th[0])
        model = PopulationModel(
            "broken", ("x",), [tr], Interval(0.0, 2.0),
            affine_drift=lambda x: (np.zeros(1), np.array([[float(x[0])]])),
            affine_drift_batch=lambda xs: (
                np.zeros((xs.shape[0], 1)),
                2.0 * xs[:, :, None],  # wrong by a factor of two
            ),
        )
        with pytest.raises(ValueError, match="disagrees"):
            model.affine_parts_batch(np.array([[0.5], [1.0]]))

    def test_batch_declaration_requires_scalar_form(self):
        tr = Transition("t", [1.0], lambda x, th: x[0] * th[0])
        with pytest.raises(ValueError, match="affine_drift_batch"):
            PopulationModel(
                "headless", ("x",), [tr], Interval(0.0, 2.0),
                affine_drift_batch=lambda xs: (
                    np.zeros((xs.shape[0], 1)), xs[:, :, None]
                ),
            )


class TestNonAffineAndDiscrete:
    def _quadratic_model(self):
        """Drift quadratic in theta: exercises the grid fallback."""
        tr = Transition("t", [1.0], lambda x, th: 1.0 - (th[0] - 0.3) ** 2)
        return PopulationModel("quad", ("x",), [tr], Interval(0.0, 1.0))

    @pytest.mark.parametrize("refine", [False, True])
    def test_grid_strategy_batched_equals_scalar(self, refine):
        model = self._quadratic_model()
        rng = np.random.default_rng(17)
        states = rng.uniform(0.0, 1.0, size=(6, 1))
        directions = rng.normal(size=(6, 1))
        batched = DriftExtremizer(model, method="grid", grid_resolution=4,
                                  refine=refine)
        scalar = DriftExtremizer(model, method="grid", grid_resolution=4,
                                 refine=refine, batch=False)
        thetas_b, values_b = batched.maximize_direction_batch(states, directions)
        thetas_s, values_s = scalar.maximize_direction_batch(states, directions)
        np.testing.assert_allclose(values_b, values_s, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(thetas_b, thetas_s, rtol=1e-9, atol=1e-12)

    def test_discrete_theta_set_batched(self):
        tr = Transition("t", [1.0], lambda x, th: th[0])
        model = PopulationModel(
            "d", ("x",), [tr], DiscreteSet([[1.0], [3.0], [2.0]]),
            affine_drift=lambda x: (np.zeros(1), np.ones((1, 1))),
        )
        batched = DriftExtremizer(model)
        scalar = DriftExtremizer(model, batch=False)
        states = np.zeros((4, 1))
        directions = np.array([[1.0], [-1.0], [2.0], [-0.5]])
        thetas_b, values_b = batched.maximize_direction_batch(states, directions)
        thetas_s, values_s = scalar.maximize_direction_batch(states, directions)
        np.testing.assert_array_equal(thetas_b, thetas_s)
        np.testing.assert_allclose(values_b, values_s, rtol=1e-12)
        lower_b, upper_b = batched.velocity_envelope_batch(states)
        lower_s, upper_s = scalar.velocity_envelope(states[0])
        np.testing.assert_allclose(lower_b[0], lower_s, rtol=1e-12)
        np.testing.assert_allclose(upper_b[0], upper_s, rtol=1e-12)


class TestConsumersBatchedVsScalar:
    """The rewired bound computations agree with the legacy loops."""

    def test_hull_differential(self, sir_model):
        t_eval = np.linspace(0.0, 1.5, 7)
        batched = differential_hull_bounds(sir_model, [0.7, 0.3], t_eval)
        scalar = differential_hull_bounds(sir_model, [0.7, 0.3], t_eval,
                                          batch=False)
        np.testing.assert_allclose(batched.lower, scalar.lower,
                                   rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(batched.upper, scalar.upper,
                                   rtol=1e-9, atol=1e-12)

    def test_hull_differential_interior_sampling(self, sir_narrow):
        """x_samples_per_axis > 2 exercises the generic stacked path."""
        t_eval = np.linspace(0.0, 1.0, 5)
        batched = differential_hull_bounds(sir_narrow, [0.7, 0.3], t_eval,
                                           x_samples_per_axis=3)
        scalar = differential_hull_bounds(sir_narrow, [0.7, 0.3], t_eval,
                                          x_samples_per_axis=3, batch=False)
        np.testing.assert_allclose(batched.lower, scalar.lower,
                                   rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(batched.upper, scalar.upper,
                                   rtol=1e-9, atol=1e-12)

    def test_hull_differential_four_dimensional(self, gps_map):
        from repro.models import gps_initial_state_map

        t_eval = np.linspace(0.0, 0.5, 4)
        x0 = gps_initial_state_map()
        batched = differential_hull_bounds(gps_map, x0, t_eval)
        scalar = differential_hull_bounds(gps_map, x0, t_eval, batch=False)
        np.testing.assert_allclose(batched.lower, scalar.lower,
                                   rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(batched.upper, scalar.upper,
                                   rtol=1e-9, atol=1e-12)

    def test_pontryagin_differential(self, sir_model, sir_x0):
        batched = extremal_trajectory(sir_model, sir_x0, 2.0, [0.0, 1.0],
                                      n_steps=150)
        scalar = extremal_trajectory(sir_model, sir_x0, 2.0, [0.0, 1.0],
                                     n_steps=150, batch=False)
        assert batched.value == pytest.approx(scalar.value, rel=1e-10)
        np.testing.assert_allclose(batched.controls, scalar.controls,
                                   rtol=1e-9, atol=1e-12)

    def test_template_differential(self, sir_model, sir_x0):
        batched = template_reachable_bounds(sir_model, sir_x0, 1.0,
                                            n_steps=80)
        scalar = template_reachable_bounds(sir_model, sir_x0, 1.0,
                                           n_steps=80, batch=False)
        np.testing.assert_allclose(batched.offsets, scalar.offsets,
                                   rtol=1e-9, atol=1e-12)

    def test_inclusion_membership_batched(self, sir_model, rng):
        batched = ParametricInclusion(sir_model)
        scalar = ParametricInclusion(
            sir_model, extremizer=DriftExtremizer(sir_model, batch=False)
        )
        x = np.array([0.5, 0.2])
        for theta in sir_model.theta_set.sample(rng, 5):
            v = sir_model.drift(x, theta)
            assert batched.contains_velocity(x, v)
        outside = np.array([10.0, 10.0])
        assert not batched.contains_velocity(x, outside)
        assert not scalar.contains_velocity(x, outside)


class TestBackendDifferential:
    """Extremiser queries routed through each installed backend.

    numpy must be bit-identical to the unrouted extremiser (its kernels
    are the model's bound batch methods); compiled backends are pinned
    at tolerance by ``assert_backend_close``.
    """

    @pytest.mark.parametrize("factory", [make_sir_model, make_seir_model],
                             ids=lambda f: f.__name__)
    def test_velocity_envelope(self, factory, rng, backend_name,
                               assert_backend_close):
        model = factory()
        states, _ = _random_batch(model, rng)
        reference = DriftExtremizer(model).velocity_envelope_batch(states)
        routed = DriftExtremizer(
            model, backend=backend_name
        ).velocity_envelope_batch(states)
        assert_backend_close(routed[0], reference[0])
        assert_backend_close(routed[1], reference[1])

    def test_directional_extremes(self, rng, backend_name,
                                  assert_backend_close):
        model = make_sir_model()
        states, directions = _random_batch(model, rng)
        reference = DriftExtremizer(model).maximize_direction_batch(
            states, directions
        )
        routed = DriftExtremizer(
            model, backend=backend_name
        ).maximize_direction_batch(states, directions)
        assert_backend_close(routed[0], reference[0])
        assert_backend_close(routed[1], reference[1])

    def test_pontryagin_bounds(self, backend_name, assert_backend_close):
        from repro.bounds import pontryagin_transient_bounds

        model = make_sir_model()
        horizons = np.array([0.5, 1.0])
        reference = pontryagin_transient_bounds(
            model, [0.9, 0.1], horizons, observables=["I"]
        )
        routed = pontryagin_transient_bounds(
            model, [0.9, 0.1], horizons, observables=["I"],
            backend=backend_name,
        )
        assert_backend_close(routed.lower["I"], reference.lower["I"])
        assert_backend_close(routed.upper["I"], reference.upper["I"])

    def test_hull_bounds(self, backend_name, assert_backend_close):
        model = make_sir_model(theta_max=2.0)
        times = np.linspace(0.0, 1.0, 5)
        reference = differential_hull_bounds(model, [0.9, 0.1], times)
        routed = differential_hull_bounds(model, [0.9, 0.1], times,
                                          backend=backend_name)
        assert_backend_close(routed.lower, reference.lower)
        assert_backend_close(routed.upper, reference.upper)
